//! Solver-heuristic ablations (the paper's "Better SAT Solving"
//! direction, Sec. VII): solve the same LaS instance with individual
//! CDCL features disabled.

use criterion::{criterion_group, criterion_main, Criterion};
use sat::{Backend, Budget, CdclConfig, CdclSolver};
use synth::encode::encode;
use workloads::graphs::Graph;
use workloads::specs::graph_state_spec;

fn bench_ablation(c: &mut Criterion) {
    let spec = graph_state_spec(&Graph::cycle(6), 2);
    let enc = encode(&spec).unwrap();
    let configs: Vec<(&str, CdclConfig)> = vec![
        ("full", CdclConfig::default()),
        (
            "no_restarts",
            CdclConfig {
                use_restarts: false,
                ..CdclConfig::default()
            },
        ),
        (
            "no_phase_saving",
            CdclConfig {
                use_phase_saving: false,
                ..CdclConfig::default()
            },
        ),
        (
            "no_clause_deletion",
            CdclConfig {
                use_clause_deletion: false,
                ..CdclConfig::default()
            },
        ),
        (
            "no_minimization",
            CdclConfig {
                use_minimization: false,
                ..CdclConfig::default()
            },
        ),
    ];
    let mut group = c.benchmark_group("ablation_graph_state_ring6");
    group.sample_size(10);
    for (name, config) in configs {
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = CdclSolver::with_config(config.clone()).solve_with(
                    &enc.cnf,
                    &[],
                    &Budget::default(),
                );
                assert!(out.is_sat());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
