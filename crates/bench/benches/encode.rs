//! Encoding throughput: spec → CNF, per evaluation subject.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use synth::encode::encode;
use workloads::graphs::Graph;
use workloads::specs::{graph_state_spec, majority_gate_spec, t_factory_nodelay_spec};

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    group.sample_size(20);
    let cnot = lasre::fixtures::cnot_spec();
    group.bench_function("cnot_2x2x3", |b| {
        b.iter(|| encode(black_box(&cnot)).unwrap())
    });
    let gs = graph_state_spec(&Graph::cycle(8), 2);
    group.bench_function("graph_state_8q_d2", |b| {
        b.iter(|| encode(black_box(&gs)).unwrap())
    });
    let maj = majority_gate_spec(3);
    group.bench_function("majority_3x3x5", |b| {
        b.iter(|| encode(black_box(&maj)).unwrap())
    });
    let tf = t_factory_nodelay_spec(11);
    group.bench_function("t_factory_3x3x11", |b| {
        b.iter(|| encode(black_box(&tf)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_encode);
criterion_main!(benches);
