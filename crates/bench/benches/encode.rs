//! Encoding throughput: spec → CNF, per evaluation subject. The
//! majority-gate encode time is tracked across commits via
//! `BENCH_encode_majority_3x3x5.json`.

use bench_support::report::BenchRecord;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use synth::encode::encode;
use workloads::graphs::Graph;
use workloads::specs::{graph_state_spec, majority_gate_spec, t_factory_nodelay_spec};

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    group.sample_size(20);
    let cnot = lasre::fixtures::cnot_spec();
    group.bench_function("cnot_2x2x3", |b| {
        b.iter(|| encode(black_box(&cnot)).unwrap())
    });
    let gs = graph_state_spec(&Graph::cycle(8), 2);
    group.bench_function("graph_state_8q_d2", |b| {
        b.iter(|| encode(black_box(&gs)).unwrap())
    });
    let maj = majority_gate_spec(3);
    group.bench_function("majority_3x3x5", |b| {
        b.iter(|| encode(black_box(&maj)).unwrap())
    });
    let tf = t_factory_nodelay_spec(11);
    group.bench_function("t_factory_3x3x11", |b| {
        b.iter(|| encode(black_box(&tf)).unwrap())
    });
    group.finish();
    emit_majority_record(&maj);
}

/// Measures encoding alone and writes the tracked `BENCH_*.json`
/// record (encode-only, so the solver counters are zero).
fn emit_majority_record(spec: &lasre::LasSpec) {
    const SAMPLES: u32 = 20;
    let _ = encode(spec).unwrap(); // warm-up, unrecorded
    let start = std::time::Instant::now();
    for _ in 0..SAMPLES {
        let _ = black_box(encode(black_box(spec)).unwrap());
    }
    let record = BenchRecord {
        name: "encode_majority_3x3x5".into(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3 / f64::from(SAMPLES),
        conflicts: 0,
        propagations: 0,
        proof_checked: None,
    };
    match record.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench record: {e}"),
    }
}

criterion_group!(benches, bench_encode);
criterion_main!(benches);
