//! End-to-end synthesis of small subroutines (encode + solve + decode +
//! verify), the per-instance cost behind Fig. 13, plus the solver-only
//! majority-gate measurement tracked across commits via
//! `BENCH_solve_majority_3x3x5.json`.

use bench_support::report::BenchRecord;
use criterion::{criterion_group, criterion_main, Criterion};
use sat::{Backend, Budget, CdclSolver};
use synth::Synthesizer;
use workloads::graphs::Graph;
use workloads::specs::graph_state_spec;

fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve");
    group.sample_size(10);
    group.bench_function("cnot", |b| {
        b.iter(|| {
            let r = Synthesizer::new(lasre::fixtures::cnot_spec())
                .unwrap()
                .run()
                .unwrap();
            assert!(r.is_sat());
        })
    });
    for n in [4usize, 6] {
        let g = Graph::cycle(n);
        group.bench_function(format!("graph_state_ring{n}_d2"), |b| {
            b.iter(|| {
                let r = Synthesizer::new(graph_state_spec(&g, 2))
                    .unwrap()
                    .run()
                    .unwrap();
                assert!(r.is_sat());
            })
        });
    }
    group.bench_function("majority_3x3x5", |b| {
        b.iter(|| {
            let spec = workloads::specs::majority_gate_spec(3);
            let r = Synthesizer::new(spec).unwrap().run().unwrap();
            assert!(r.is_sat());
        })
    });
    group.finish();
    emit_majority_record();
}

/// Measures the solver (alone, on a pre-built encoding) on the
/// majority-gate CNF and writes the tracked `BENCH_*.json` record.
fn emit_majority_record() {
    let spec = workloads::specs::majority_gate_spec(3);
    let synth = Synthesizer::new(spec).expect("valid majority spec");
    let cnf = synth.cnf();
    const SAMPLES: u32 = 10;
    let mut solver = CdclSolver::default();
    // Warm-up, unrecorded.
    assert!(solver.solve_with(cnf, &[], &Budget::default()).is_sat());
    let start = std::time::Instant::now();
    for _ in 0..SAMPLES {
        let out = solver.solve_with(cnf, &[], &Budget::default());
        assert!(out.is_sat(), "majority gate must stay SAT");
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(SAMPLES);
    let record = BenchRecord {
        name: "solve_majority_3x3x5".into(),
        wall_ms,
        conflicts: solver.stats.conflicts,
        propagations: solver.stats.propagations,
    };
    match record.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench record: {e}"),
    }
}

criterion_group!(benches, bench_solve);
criterion_main!(benches);
