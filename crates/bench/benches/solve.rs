//! End-to-end synthesis of small subroutines (encode + solve + decode +
//! verify), the per-instance cost behind Fig. 13, plus the solver-only
//! majority-gate measurement tracked across commits via
//! `BENCH_solve_majority_3x3x5.json`.

use bench_support::report::BenchRecord;
use criterion::{criterion_group, criterion_main, Criterion};
use sat::{Backend, Budget, CdclSolver};
use synth::optimize::{find_min_depth, DepthSearch};
use synth::{SynthOptions, Synthesizer};
use workloads::graphs::Graph;
use workloads::specs::graph_state_spec;

fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve");
    group.sample_size(10);
    group.bench_function("cnot", |b| {
        b.iter(|| {
            let r = Synthesizer::new(lasre::fixtures::cnot_spec())
                .unwrap()
                .run()
                .unwrap();
            assert!(r.is_sat());
        })
    });
    for n in [4usize, 6] {
        let g = Graph::cycle(n);
        group.bench_function(format!("graph_state_ring{n}_d2"), |b| {
            b.iter(|| {
                let r = Synthesizer::new(graph_state_spec(&g, 2))
                    .unwrap()
                    .run()
                    .unwrap();
                assert!(r.is_sat());
            })
        });
    }
    group.bench_function("majority_3x3x5", |b| {
        b.iter(|| {
            let spec = workloads::specs::majority_gate_spec(3);
            let r = Synthesizer::new(spec).unwrap().run().unwrap();
            assert!(r.is_sat());
        })
    });
    group.finish();
    emit_majority_record();
    emit_min_depth_records();
}

/// Measures the solver (alone, on a pre-built encoding) on the
/// majority-gate CNF and writes the tracked `BENCH_*.json` record.
fn emit_majority_record() {
    let spec = workloads::specs::majority_gate_spec(3);
    let synth = Synthesizer::new(spec).expect("valid majority spec");
    let cnf = synth.cnf();
    const SAMPLES: u32 = 10;
    let mut solver = CdclSolver::default();
    // Warm-up, unrecorded.
    assert!(solver.solve_with(cnf, &[], &Budget::default()).is_sat());
    let start = std::time::Instant::now();
    for _ in 0..SAMPLES {
        let out = solver.solve_with(cnf, &[], &Budget::default());
        assert!(out.is_sat(), "majority gate must stay SAT");
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(SAMPLES);
    let record = BenchRecord {
        name: "solve_majority_3x3x5".into(),
        wall_ms,
        conflicts: solver.stats.conflicts,
        propagations: solver.stats.propagations,
        // SAT instance: nothing to certify.
        proof_checked: None,
    };
    match record.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench record: {e}"),
    }
}

/// Measures the full min-depth probe sequence on the majority gate in
/// both modes and writes one tracked record each: the incremental
/// session (depth-layered CNF, learnt clauses shared across probes)
/// against from-scratch re-encoding per probe. The two searches must
/// agree probe-for-probe — the differential half of the ISSUE's
/// acceptance criterion — before either record is written.
fn emit_min_depth_records() {
    // The paper's workflow: start at the spec's depth (5), descend to
    // the minimum; `HI` leaves ascending headroom that a descending
    // search never pays for.
    const LO: usize = 4;
    const HI: usize = 6;
    const START: usize = 5;
    const SAMPLES: u32 = 5;
    let spec = workloads::specs::majority_gate_spec(3);
    let run = |incremental: bool| -> DepthSearch {
        let options = SynthOptions {
            incremental,
            ..SynthOptions::default()
        };
        find_min_depth(&spec, LO, HI, START, &options).expect("majority depth search")
    };
    // Untimed certified rerun: every UNSAT probe must carry a DRAT
    // proof the in-tree checker accepts, without perturbing the timed
    // (proof-logging-off) measurements above. `find_min_depth` errors
    // if any proof fails to check, so reaching the flag computation at
    // all means no uncertified UNSAT slipped through. (On this
    // instance depth `LO` is SAT and `LO - 1` is structurally invalid,
    // so the certified sweep is vacuous unless the search regresses —
    // the pigeonhole family in `crates/sat/tests/certify.rs` covers
    // non-trivial refutations.)
    let certify = |incremental: bool| -> bool {
        let options = SynthOptions {
            incremental,
            certify: true,
            ..SynthOptions::default()
        };
        let search =
            find_min_depth(&spec, LO, HI, START, &options).expect("certified depth search");
        search
            .probes
            .iter()
            .all(|p| p.certified == (p.sat == Some(false)))
    };
    // Measures one mode and returns (record, probe verdicts) — the
    // verdicts come from the sampled runs themselves, so the
    // cross-mode agreement check below costs no extra solves. (The
    // same property is unit-gated by `tests/min_depth.rs`.)
    let measure = |name: &str, incremental: bool| -> (BenchRecord, Vec<(usize, Option<bool>)>) {
        let mut wall_ms = 0.0;
        let mut conflicts = 0;
        let mut propagations = 0;
        let mut verdicts = Vec::new();
        for _ in 0..SAMPLES {
            let start = std::time::Instant::now();
            let search = run(incremental);
            wall_ms += start.elapsed().as_secs_f64() * 1e3;
            conflicts = search
                .probes
                .iter()
                .filter_map(|p| p.stats)
                .map(|s| s.conflicts)
                .sum();
            propagations = search
                .probes
                .iter()
                .filter_map(|p| p.stats)
                .map(|s| s.propagations)
                .sum();
            verdicts = search.probes.iter().map(|p| (p.max_k, p.sat)).collect();
        }
        let record = BenchRecord {
            name: name.into(),
            wall_ms: wall_ms / f64::from(SAMPLES),
            conflicts,
            propagations,
            proof_checked: Some(certify(incremental)),
        };
        (record, verdicts)
    };
    let (incremental, inc_verdicts) = measure("min_depth_majority_3x3x5_incremental", true);
    let (scratch, scratch_verdicts) = measure("min_depth_majority_3x3x5_scratch", false);
    assert_eq!(
        inc_verdicts, scratch_verdicts,
        "incremental and from-scratch depth searches must agree"
    );
    for record in [incremental, scratch] {
        match record.write() {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write bench record: {e}"),
        }
    }
}

criterion_group!(benches, bench_solve);
criterion_main!(benches);
