//! End-to-end synthesis of small subroutines (encode + solve + decode +
//! verify), the per-instance cost behind Fig. 13.

use criterion::{criterion_group, criterion_main, Criterion};
use synth::Synthesizer;
use workloads::graphs::Graph;
use workloads::specs::graph_state_spec;

fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve");
    group.sample_size(10);
    group.bench_function("cnot", |b| {
        b.iter(|| {
            let r = Synthesizer::new(lasre::fixtures::cnot_spec())
                .unwrap()
                .run()
                .unwrap();
            assert!(r.is_sat());
        })
    });
    for n in [4usize, 6] {
        let g = Graph::cycle(n);
        group.bench_function(format!("graph_state_ring{n}_d2"), |b| {
            b.iter(|| {
                let r = Synthesizer::new(graph_state_spec(&g, 2))
                    .unwrap()
                    .run()
                    .unwrap();
                assert!(r.is_sat());
            })
        });
    }
    group.bench_function("majority_3x3x5", |b| {
        b.iter(|| {
            let spec = workloads::specs::majority_gate_spec(3);
            let r = Synthesizer::new(spec).unwrap().run().unwrap();
            assert!(r.is_sat());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solve);
criterion_main!(benches);
