//! Microbenchmarks of the substrate crates: GF(2) algebra, Pauli
//! strings, the tableau simulator and ZX flow derivation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");

    // gf2: rank of a dense pseudo-random 256×256 matrix.
    let mut m = gf2::BitMat::zeros(256, 256);
    let mut state = 0x9e3779b97f4a7c15u64;
    for r in 0..256 {
        for ch in 0..256 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            m.set(r, ch, state >> 60 & 1 == 1);
        }
    }
    group.bench_function("gf2_rank_256", |b| b.iter(|| black_box(&m).rank()));

    // pauli: products of 64-qubit strings.
    let a: pauli::PauliString = "XZYX".repeat(16).parse().unwrap();
    let bb: pauli::PauliString = "ZZXY".repeat(16).parse().unwrap();
    group.bench_function("pauli_mul_64q", |b| {
        b.iter(|| black_box(&a).mul(black_box(&bb)))
    });

    // tableau: GHZ preparation + joint measurement on 64 qubits.
    group.bench_function("tableau_ghz64_measure", |b| {
        b.iter(|| {
            let mut t = tableau::Tableau::new(64);
            t.h(0);
            for q in 1..64 {
                t.cx(0, q);
            }
            let obs: pauli::PauliString = "X".repeat(64).parse().unwrap();
            t.measure_pauli(&obs, None)
        })
    });

    // zx: flow derivation for a CNOT ladder of 8 spiders.
    group.bench_function("zx_flows_cnot_ladder", |b| {
        b.iter(|| {
            let mut d = zx::Diagram::new();
            let ins: Vec<_> = (0..4).map(|_| d.add_boundary()).collect();
            let outs: Vec<_> = (0..4).map(|_| d.add_boundary()).collect();
            let mut wires = ins.clone();
            for i in 0..3 {
                let z = d.add_spider(zx::SpiderKind::Z, 0);
                let x = d.add_spider(zx::SpiderKind::X, 0);
                d.add_edge(wires[i], z);
                d.add_edge(wires[i + 1], x);
                d.add_edge(z, x);
                wires[i] = z;
                wires[i + 1] = x;
            }
            for (w, o) in wires.iter().zip(&outs) {
                d.add_edge(*w, *o);
            }
            d.stabilizer_flows().unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
