//! Architecture exploration (paper Sec. VII, "Using LaSsynth More"):
//! compare optimal graph-state depths across lane counts — quasi-1D
//! (1 lane), the paper's 2-lane substrate, and a roomy 3-lane grid.
//! Fewer lanes are easier to fabricate but may cost depth; the
//! synthesizer quantifies that trade exactly.

use bench_support::{cli::Cli, report::Table};
use synth::optimize::find_min_depth;
use synth::SynthOptions;
use workloads::graphs::Graph;
use workloads::specs::graph_state_spec_arch;

fn main() {
    let cli = Cli::parse();
    let n = if cli.full { 8 } else { 6 };
    let workloads: Vec<(&str, Graph)> = vec![
        ("path", Graph::path(n)),
        ("cycle", Graph::cycle(n)),
        ("star", Graph::star(n)),
        ("complete", Graph::complete(n)),
        ("wheel", Graph::wheel(n)),
    ];
    println!("== architecture exploration: optimal depth by lane count ({n}-qubit graphs) ==\n");
    let options = SynthOptions::default().with_time_limit(cli.timeout);
    let mut table = Table::new([
        "graph", "1 lane", "2 lanes", "3 lanes", "vol@1", "vol@2", "vol@3",
    ]);
    for (name, g) in &workloads {
        let mut depths = Vec::new();
        let mut volumes = Vec::new();
        for lanes in 1..=3usize {
            let spec = graph_state_spec_arch(g, 3, lanes);
            let search = find_min_depth(&spec, 1, 8, 3, &options).expect("synthesis");
            match search.best_depth() {
                Some(d) => {
                    depths.push(d.to_string());
                    volumes.push((n * lanes * d).to_string());
                }
                None => {
                    depths.push("?".into());
                    volumes.push("-".into());
                }
            }
        }
        table.row([
            name.to_string(),
            depths[0].clone(),
            depths[1].clone(),
            depths[2].clone(),
            volumes[0].clone(),
            volumes[1].clone(),
            volumes[2].clone(),
        ]);
    }
    table.print();
    println!("\nreading: quasi-1D (1 lane) trades depth for footprint; dense graphs");
    println!("gain most from the extra routing lane, sparse ones barely need it.");
}
