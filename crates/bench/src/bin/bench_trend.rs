//! CI bench-trend check: compares freshly emitted `BENCH_*.json`
//! records against the committed baselines and fails on large
//! regressions (the ROADMAP's "diff against the committed record"
//! item).
//!
//! ```text
//! bench_trend <baseline-dir> <fresh-dir> [--max-ratio R] [--max-conflict-ratio C]
//! ```
//!
//! Every `BENCH_*.json` in `baseline-dir` that also exists in
//! `fresh-dir` is compared under two gates:
//!
//! * **Wall gate** — a fresh record slower than `R ×` the baseline
//!   (default 2.0, `--max-ratio` / `BENCH_TREND_MAX_RATIO` — generous
//!   because CI machines differ from the machine that committed the
//!   baseline) fails. A wall regression whose conflicts stayed flat is
//!   downgraded to a warning: the same seed doing the same work in
//!   more milliseconds is a machine-speed delta, not a code
//!   regression.
//! * **Conflicts gate** — a fresh record whose *conflict count* grew
//!   past `C ×` the baseline (default 1.5, `--max-conflict-ratio` /
//!   `BENCH_TREND_MAX_CONFLICT_RATIO`) fails regardless of wall time.
//!   Conflicts are deterministic for a given code + seed, so this gate
//!   is machine-independent — it is what keeps records with *pinned*
//!   conflict budgets (where the wall gate can only ever warn) and
//!   lucky-trajectory records from silently rotting: a code change
//!   that costs a small instance its lucky trajectory shows up here as
//!   a hard failure, not a wall warning.
//!
//! Baselines with no fresh counterpart are reported but do not fail:
//! CI's smoke job only runs a subset of the benches.
//!
//! A second mode renders the committed records as a reproduction
//! table instead of gating:
//!
//! ```text
//! bench_trend --table [dir]
//! ```
//!
//! prints a markdown table (one row per `BENCH_*.json` in `dir`,
//! default `.`) suitable for committing as `REPRODUCTION.md` — the
//! ROADMAP's "REPRODUCTION.md-style table produced by the existing
//! bench bins" deliverable.

use bench_support::report::BenchRecord;
use std::path::Path;
use std::process::ExitCode;

fn load_records(dir: &Path) -> Vec<(String, BenchRecord)> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        match std::fs::read_to_string(entry.path()).map_err(|e| e.to_string()) {
            Ok(text) => match BenchRecord::parse(&text) {
                Ok(record) => out.push((name, record)),
                Err(e) => eprintln!("warning: unparsable record {name}: {e}"),
            },
            Err(e) => eprintln!("warning: unreadable record {name}: {e}"),
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// The paper anchor each tracked benchmark reproduces, for the
/// `--table` report. Names without an entry still get a table row.
fn paper_anchor(name: &str) -> &'static str {
    match name {
        "BENCH_encode_majority_3x3x5.json" => "Fig. 15 instance, encode only",
        "BENCH_solve_majority_3x3x5.json" => "Fig. 15 majority gate, single solve",
        "BENCH_min_depth_majority_3x3x5_incremental.json" => "Fig. 15, min-depth (incremental)",
        "BENCH_min_depth_majority_3x3x5_scratch.json" => "Fig. 15, min-depth (from scratch)",
        "BENCH_t_factory_budgeted.json" => "Fig. 17 probe, 60k-conflict budget",
        "BENCH_t_factory_shared_portfolio.json" => "Fig. 17 probe, 4-seed fleet, clause sharing",
        "BENCH_t_factory_isolated_portfolio.json" => "Fig. 17 probe, 4-seed fleet, no sharing",
        _ => "\u{2014}",
    }
}

/// Renders all records in `dir` as a markdown reproduction table.
fn print_table(dir: &Path) -> ExitCode {
    let records = load_records(dir);
    if records.is_empty() {
        eprintln!("error: no BENCH_*.json records in {}", dir.display());
        return ExitCode::from(2);
    }
    println!("# Benchmark reproduction record");
    println!();
    println!(
        "Committed `BENCH_*.json` measurements, one row per tracked\n\
         benchmark. Regenerate with `cargo bench -p lassynth-bench` (plus\n\
         the ignored budgeted probe test), then re-render this file with\n\
         `cargo run -p lassynth-bench --bin bench_trend -- --table`.\n\
         Conflicts and propagations are deterministic per code + seed;\n\
         wall times are from the committing machine."
    );
    println!();
    println!(
        "| benchmark | paper anchor | wall (ms) | conflicts | propagations | props/conflict | proof checked |"
    );
    println!("|---|---|---:|---:|---:|---:|---:|");
    for (file, r) in &records {
        let props_per_conflict = if r.conflicts > 0 {
            format!("{:.1}", r.propagations as f64 / r.conflicts as f64)
        } else {
            "\u{2014}".to_string()
        };
        // "yes" = every UNSAT answer behind the record also passed the
        // in-tree DRAT checker in an untimed certified rerun; "—" = the
        // bench has nothing to certify (encode-only or SAT-only).
        let proof_checked = match r.proof_checked {
            Some(true) => "yes",
            Some(false) => "no",
            None => "\u{2014}",
        };
        println!(
            "| {} | {} | {:.3} | {} | {} | {} | {} |",
            r.name,
            paper_anchor(file),
            r.wall_ms,
            r.conflicts,
            r.propagations,
            props_per_conflict,
            proof_checked
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<String> = Vec::new();
    let mut max_ratio_arg: Option<String> = None;
    let mut max_conflict_ratio_arg: Option<String> = None;
    let mut table = false;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--table" {
            table = true;
            i += 1;
        } else if args[i] == "--max-ratio" {
            max_ratio_arg = args.get(i + 1).cloned();
            i += 2;
        } else if args[i] == "--max-conflict-ratio" {
            max_conflict_ratio_arg = args.get(i + 1).cloned();
            i += 2;
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    if table {
        let dir = positional.first().map_or(".", String::as_str);
        return print_table(Path::new(dir));
    }
    let [baseline_dir, fresh_dir] = &positional[..] else {
        eprintln!(
            "usage: bench_trend <baseline-dir> <fresh-dir> [--max-ratio R] \
             [--max-conflict-ratio C] | bench_trend --table [dir]"
        );
        return ExitCode::from(2);
    };
    let max_ratio: f64 = max_ratio_arg
        .or_else(|| std::env::var("BENCH_TREND_MAX_RATIO").ok())
        .map_or(2.0, |s| s.parse().expect("--max-ratio expects a number"));
    let max_conflict_ratio: f64 = max_conflict_ratio_arg
        .or_else(|| std::env::var("BENCH_TREND_MAX_CONFLICT_RATIO").ok())
        .map_or(1.5, |s| {
            s.parse().expect("--max-conflict-ratio expects a number")
        });
    let baselines = load_records(Path::new(baseline_dir));
    if baselines.is_empty() {
        eprintln!("error: no BENCH_*.json baselines in {baseline_dir}");
        return ExitCode::from(2);
    }
    let fresh = load_records(Path::new(fresh_dir));
    let mut compared = 0usize;
    let mut failures = 0usize;
    for (file, base) in &baselines {
        let Some((_, new)) = fresh.iter().find(|(f, _)| f == file) else {
            println!("SKIP {file}: not emitted by this run");
            continue;
        };
        compared += 1;
        // Guard the division: a sub-microsecond baseline is noise.
        let ratio = if base.wall_ms > 1e-3 {
            new.wall_ms / base.wall_ms
        } else {
            1.0
        };
        // Deterministic work measure: identical code + seed reproduces
        // the conflict count on any machine, so a wall blow-up with
        // flat conflicts is the runner being slower, not the solver —
        // while conflict growth past the conflict gate is a code
        // regression wherever it runs (zero-conflict encode records
        // are exempt: there is no search to regress).
        let conflicts_flat = new.conflicts <= base.conflicts.saturating_mul(11) / 10;
        let conflicts_regressed =
            base.conflicts > 0 && new.conflicts as f64 > base.conflicts as f64 * max_conflict_ratio;
        let wall_regressed = ratio > max_ratio;
        let verdict = match (conflicts_regressed, wall_regressed, conflicts_flat) {
            (true, _, _) => "FAIL",
            (false, false, _) => "ok",
            (false, true, true) => "WARN",
            (false, true, false) => "FAIL",
        };
        println!(
            "{verdict:>4} {file}: {:.3} ms -> {:.3} ms ({ratio:.2}x, limit {max_ratio:.2}x), \
             conflicts {} -> {} (limit {max_conflict_ratio:.2}x)",
            base.wall_ms, new.wall_ms, base.conflicts, new.conflicts
        );
        if verdict == "FAIL" {
            failures += 1;
        }
    }
    // Surface fresh records with no baseline: they carry no regression
    // protection until their record is committed.
    for (file, _) in &fresh {
        if !baselines.iter().any(|(f, _)| f == file) {
            println!(" NEW {file}: no committed baseline — commit it to start trend tracking");
        }
    }
    if compared == 0 {
        eprintln!("error: no fresh record matched any committed baseline");
        return ExitCode::from(2);
    }
    if failures > 0 {
        eprintln!(
            "bench trend check failed: {failures} record(s) regressed \
             (wall >{max_ratio:.2}x with conflict growth, or conflicts \
             >{max_conflict_ratio:.2}x)"
        );
        return ExitCode::FAILURE;
    }
    println!("bench trend check passed ({compared} record(s) compared)");
    ExitCode::SUCCESS
}
