//! Regenerates paper Fig. 13: LaS volume and synthesis runtime for the
//! graph-state benchmark set, against the 2-lane baseline compiler.
//!
//! Default: 6-qubit graphs, 25 instances (quick). `--full`: the
//! paper-scale 8-qubit, 101-instance set. `--timeout` bounds each SAT
//! probe; probes that time out fall back to the last satisfiable depth.

use bench_support::{cli::Cli, report::Table, timing::time_it};
use synth::optimize::find_min_depth;
use synth::SynthOptions;
use workloads::baseline::compile_graph_state;
use workloads::graphs::benchmark_set;
use workloads::specs::graph_state_spec;

fn main() {
    let cli = Cli::parse();
    let (n, count) = if cli.full { (8, 101) } else { (6, 25) };
    println!("== Fig. 13: {n}-qubit graph-state generation ({count} graphs) ==\n");
    let graphs = benchmark_set(n, count, 2024);
    let options = SynthOptions::default().with_time_limit(cli.timeout);
    let mut table = Table::new([
        "graph",
        "edges",
        "las depth",
        "las vol",
        "baseline vol",
        "reduction",
        "time",
    ]);
    let mut reductions = Vec::new();
    let mut total_time = std::time::Duration::ZERO;
    for (idx, g) in graphs.iter().enumerate() {
        let base = compile_graph_state(g);
        let spec = graph_state_spec(g, 3);
        let (search, time) =
            time_it(|| find_min_depth(&spec, 1, 8, 3, &options).expect("synthesis"));
        total_time += time;
        let Some(depth) = search.best_depth() else {
            table.row([
                format!("g{idx}"),
                g.num_edges().to_string(),
                "?".into(),
                "?".into(),
                base.volume.to_string(),
                "-".into(),
                format!("{time:.1?}"),
            ]);
            continue;
        };
        let las_vol = 2 * n * depth;
        let reduction = 100.0 * (base.volume as f64 - las_vol as f64) / base.volume as f64;
        reductions.push(reduction);
        table.row([
            format!("g{idx}"),
            g.num_edges().to_string(),
            depth.to_string(),
            las_vol.to_string(),
            base.volume.to_string(),
            format!("{reduction:.0}%"),
            format!("{time:.1?}"),
        ]);
    }
    table.print();
    let avg = reductions.iter().sum::<f64>() / reductions.len().max(1) as f64;
    println!("\naverage volume reduction vs baseline: {avg:.1}% (paper: 56% for n=8)");
    println!("total synthesis time: {total_time:.1?}");
    println!("\npaper shape check: LaSsynth should win on (nearly) every graph;");
    println!("long runtimes should coincide with depth spikes (UNSAT proofs).");
}
