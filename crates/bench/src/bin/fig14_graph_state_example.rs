//! Regenerates paper Fig. 14: the specific 8-qubit graph state, solved
//! at 8×2×2 by LaSsynth vs the baseline's 8×4×2.

use bench_support::cli::Cli;
use synth::{SynthOptions, Synthesizer};
use workloads::baseline::compile_graph_state;
use workloads::graphs::fig14_graph;
use workloads::specs::graph_state_spec;

fn main() {
    let cli = Cli::parse();
    let g = fig14_graph();
    println!("== Fig. 14: 8-qubit example graph state ==");
    println!("stabilizers:");
    for s in g.stabilizers() {
        println!("  {s}");
    }
    let base = compile_graph_state(&g);
    println!("\nbaseline (2-tile patches, MIS init + interval scheduling):");
    println!(
        "  footprint {} × depth {} = volume {}  (paper: 8×4×2 = 64)",
        base.footprint, base.depth, base.volume
    );

    let spec = graph_state_spec(&g, 2);
    let mut synth = Synthesizer::new(spec)
        .expect("valid spec")
        .with_options(SynthOptions::default().with_time_limit(cli.timeout));
    let result = synth.run().expect("synthesis");
    match result {
        synth::SynthResult::Sat(design) => {
            println!("\nLaSsynth: SAT at 8×2×2 = volume 32 (paper: 8×2×2)");
            println!("  verified: {}", design.verified());
            println!("  domain walls: {}", design.domain_walls().len());
            println!("\ntime slices:\n{}", lasre::slices::render(&design));
            std::fs::create_dir_all(&cli.out).ok();
            let scene = viz::Scene::from_design(&design, viz::SceneOptions::default());
            let path = format!("{}/fig14_graph_state.gltf", cli.out);
            std::fs::write(&path, viz::gltf::to_gltf(&scene)).expect("write gltf");
            println!("wrote {path}");
            let reduction = 100.0 * (base.volume as f64 - 32.0) / base.volume as f64;
            println!(
                "\nvolume reduction vs baseline: {reduction:.0}% (paper: 50% on this instance)"
            );
        }
        other => println!("\nLaSsynth at depth 2: {other:?} (try a longer --timeout)"),
    }
}
