//! Regenerates paper Fig. 15: the CCZ-consuming majority gate.
//! Baseline (Ref. [20]): 3×5×5 = 75. Paper's discovered design:
//! 3×3×5 = 45, a 40% reduction. We synthesize at both widths.

use bench_support::{cli::Cli, report::Table, timing::time_it};
use synth::{SynthOptions, SynthResult, Synthesizer};
use workloads::specs::{baselines, majority_gate_spec};

fn main() {
    let cli = Cli::parse();
    println!("== Fig. 15: majority gate ==\n");
    println!(
        "paper baseline volume: {} (3×5×5, Ref. [20])",
        baselines::MAJORITY_VOLUME
    );
    println!(
        "paper result:          {} (3×3×5, −40%)\n",
        baselines::PAPER_MAJORITY_VOLUME
    );
    let mut table = Table::new([
        "interior width",
        "volume",
        "V·nstab",
        "vars",
        "clauses",
        "verdict",
        "time",
    ]);
    for width in [5usize, 4, 3] {
        let spec = majority_gate_spec(width);
        let mut synth = Synthesizer::new(spec)
            .expect("valid spec")
            .with_options(SynthOptions::default().with_time_limit(cli.timeout));
        let stats = synth.stats();
        let (result, time) = time_it(|| synth.run().expect("synthesis"));
        let verdict = match &result {
            SynthResult::Sat(d) => {
                if let SynthResult::Sat(d2) = &result {
                    assert!(d2.verified());
                }
                std::fs::create_dir_all(&cli.out).ok();
                let scene = viz::Scene::from_design(d, viz::SceneOptions::default());
                let path = format!("{}/fig15_majority_w{width}.gltf", cli.out);
                std::fs::write(&path, viz::gltf::to_gltf(&scene)).ok();
                "SAT (verified)"
            }
            SynthResult::Unsat => "UNSAT",
            SynthResult::Unknown => "TIMEOUT",
        };
        table.row([
            width.to_string(),
            (width * 3 * 5).to_string(),
            stats.v_nstab.to_string(),
            stats.num_vars.to_string(),
            stats.num_clauses.to_string(),
            verdict.to_string(),
            format!("{time:.2?}"),
        ]);
    }
    table.print();
    println!("\nshape check: SAT at width 3 reproduces the paper's 45-volume design;");
    println!("the paper's Table I reports 9.02 s (Kissat) for the width-3 instance.");
}
