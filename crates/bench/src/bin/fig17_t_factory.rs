//! Regenerates paper Fig. 17: the injection-aware 15-to-1 T-factory.
//! Baseline (Refs. [10], [21]): 8×4×5.5 = 176 average volume. The
//! paper's discovered design: 9×4×4.5 = 162 (−8%).
//!
//! Encoding statistics are exact; the SAT solve is attempted under
//! `--timeout` (the paper's Kissat needed 469 s — pass `--solve
//! --timeout 3600` to chase it with our CDCL).

use bench_support::{cli::Cli, timing::time_it};
use synth::{SynthOptions, SynthResult, Synthesizer};
use workloads::specs::{baselines, t_factory_spec};

fn main() {
    let cli = Cli::parse();
    println!("== Fig. 17: 15-to-1 T-factory with injection fixups ==\n");
    println!(
        "baseline volume: {} (8×4 footprint × 5.5 avg depth)",
        baselines::T_FACTORY_VOLUME
    );
    println!(
        "paper result:    {} (9×4×4.5, −8%)\n",
        baselines::PAPER_T_FACTORY_VOLUME
    );
    let spec = t_factory_spec(4);
    let mut synth = Synthesizer::new(spec)
        .expect("valid spec")
        .with_options(SynthOptions::default().with_time_limit(cli.timeout));
    let stats = synth.stats();
    println!(
        "encoding: V·nstab = {} (paper: 2304), vars = {}, clauses = {}",
        stats.v_nstab, stats.num_vars, stats.num_clauses
    );
    if cli.solve {
        let (result, time) = time_it(|| synth.run().expect("synthesis"));
        match result {
            SynthResult::Sat(d) => {
                println!("SAT in {time:.1?}; verified = {}", d.verified());
                println!("reported volume: 9×4×(4 + 0.5 fixup layer) = 162");
            }
            SynthResult::Unsat => {
                println!("UNSAT in {time:.1?} (unexpected — check the port layout)")
            }
            SynthResult::Unknown => {
                println!("TIMEOUT after {time:.1?} (paper's Kissat: 469 s, seed SD 4e3)")
            }
        }
    } else {
        println!("\n(encode-only; pass --solve to attempt the SAT query)");
    }
    println!("\nfixup accounting (paper Sec. V-D): each |T⟩ injection bends");
    println!("inward from its port; the S-fixup layer adds 0.5 to the depth,");
    println!("giving 9×4×4.5 = 162 against the baseline's 176.");
}
