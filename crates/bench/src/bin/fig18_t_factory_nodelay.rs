//! Regenerates paper Fig. 18: the T-factory assuming no classical
//! injection delay. Litinski's design (Ref. [8]): 11 patches × depth 11
//! = 121. The paper's: 3×3×11 = 99 (−18%), a smaller footprint at the
//! same depth.

use bench_support::{cli::Cli, report::Table, timing::time_it};
use synth::{SynthOptions, SynthResult, Synthesizer};
use workloads::specs::{baselines, t_factory_nodelay_spec};

fn main() {
    let cli = Cli::parse();
    println!("== Fig. 18: no-delay 15-to-1 T-factory ==\n");
    println!(
        "Litinski baseline: {} (11-patch floorplan × depth 11)",
        baselines::T_FACTORY_NODELAY_VOLUME
    );
    println!(
        "paper result:      {} (3×3×11, 9-patch floorplan, −18%)\n",
        baselines::PAPER_T_FACTORY_NODELAY_VOLUME
    );
    let mut table = Table::new([
        "floorplan",
        "volume",
        "V·nstab",
        "vars",
        "clauses",
        "verdict",
        "time",
    ]);
    {
        let depth = 11usize;
        let spec = t_factory_nodelay_spec(depth);
        let mut synth = Synthesizer::new(spec)
            .expect("valid spec")
            .with_options(SynthOptions::default().with_time_limit(cli.timeout));
        let stats = synth.stats();
        let (verdict, time) = if cli.solve {
            let (result, time) = time_it(|| synth.run().expect("synthesis"));
            let v = match result {
                SynthResult::Sat(d) => {
                    std::fs::create_dir_all(&cli.out).ok();
                    let scene = viz::Scene::from_design(&d, viz::SceneOptions::default());
                    std::fs::write(
                        format!("{}/fig18_t_factory.gltf", cli.out),
                        viz::gltf::to_gltf(&scene),
                    )
                    .ok();
                    "SAT (verified)"
                }
                SynthResult::Unsat => "UNSAT",
                SynthResult::Unknown => "TIMEOUT",
            };
            (v.to_string(), format!("{time:.1?}"))
        } else {
            ("(encode only)".into(), "-".into())
        };
        table.row([
            format!("3x3x{depth}"),
            (9 * depth).to_string(),
            stats.v_nstab.to_string(),
            stats.num_vars.to_string(),
            stats.num_clauses.to_string(),
            verdict,
            time,
        ]);
    }
    table.print();
    println!("\npaper's Kissat solved the 99-volume instance in 20.6 s (seed SD 0.61);");
    println!("pass --solve --timeout 3600 to attempt it with the in-tree CDCL.");
}
