//! Regenerates paper Table I: size and runtime for the non-Clifford
//! designs (majority gate, 99/121/162 T-factories): the V·nstab scaling
//! factor, CNF size, and min/SD solve time across random seeds.
//!
//! Encoding statistics print always; solve times require `--solve`
//! (the paper's Kissat times: Majority 9.02 s, 99-factory 20.6 s,
//! 121-factory 40.9 s, 162-factory 469 s with seed SD up to 4000 s).

use bench_support::{cli::Cli, report::Table, timing::mean_sd, timing::time_it};
use lasre::LasSpec;
use synth::{SynthOptions, SynthResult, Synthesizer};
use workloads::specs::{majority_gate_spec, t_factory_nodelay_spec, t_factory_spec};

fn instances() -> Vec<(&'static str, LasSpec)> {
    // The "121-factory" row is the paper's Fig. 18a design on Litinski's
    // floorplan; we model it as the wide-footprint factory at depth 10
    // (same volume class). See DESIGN.md §2.
    let mut spec121 = t_factory_spec(10);
    spec121.name = "t-factory-121-flavor".into();
    vec![
        ("Majority", majority_gate_spec(3)),
        ("99-factory", t_factory_nodelay_spec(11)),
        ("121-factory", spec121),
        ("162-factory", t_factory_spec(4)),
    ]
}

fn main() {
    let cli = Cli::parse();
    println!("== Table I: size and runtime for non-Clifford designs ==\n");
    let mut table = Table::new([
        "name", "V·nstab", "vars", "clauses", "min time", "SD", "verdicts",
    ]);
    for (name, spec) in instances() {
        let stats = Synthesizer::new(spec.clone()).expect("valid spec").stats();
        let mut times = Vec::new();
        let mut verdicts = String::new();
        if cli.solve {
            for seed in 0..cli.seeds as u64 {
                let mut opts = SynthOptions::default().with_seed(seed);
                opts.budget.max_time = Some(cli.timeout);
                let mut s = Synthesizer::new(spec.clone())
                    .expect("valid spec")
                    .with_options(opts);
                let (result, time) = time_it(|| s.run().expect("synthesis"));
                match result {
                    SynthResult::Sat(_) => {
                        verdicts.push('S');
                        times.push(time);
                    }
                    SynthResult::Unsat => verdicts.push('U'),
                    SynthResult::Unknown => verdicts.push('T'),
                }
            }
        }
        let (min, sd) = if times.is_empty() {
            ("-".to_string(), "-".to_string())
        } else {
            let min = times.iter().min().expect("non-empty");
            let (_, sd) = mean_sd(&times);
            (format!("{min:.2?}"), format!("{sd:.2}s"))
        };
        table.row([
            name.to_string(),
            stats.v_nstab.to_string(),
            stats.num_vars.to_string(),
            stats.num_clauses.to_string(),
            min,
            sd,
            if cli.solve {
                verdicts
            } else {
                "(encode only)".into()
            },
        ]);
    }
    table.print();
    println!("\nshape check vs paper: V·nstab alone does not order difficulty;");
    println!("CNF size tracks it better, and seed variance grows with hardness.");
    println!("Pass --solve --seeds 10 --timeout 600 for the full experiment.");
}
