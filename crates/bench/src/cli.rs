//! Minimal CLI flag parsing shared by the experiment binaries.

use std::time::Duration;

/// Parsed common flags.
#[derive(Clone, Debug)]
pub struct Cli {
    /// `--full`: run the paper-scale configuration.
    pub full: bool,
    /// `--solve`: attempt expensive SAT solves instead of encode-only.
    pub solve: bool,
    /// `--timeout <secs>` per solver call.
    pub timeout: Duration,
    /// `--seeds <n>` for seed-variance experiments.
    pub seeds: usize,
    /// `--out <dir>` for generated artifacts (glTF etc.).
    pub out: String,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            full: false,
            solve: false,
            timeout: Duration::from_secs(30),
            seeds: 3,
            out: "target/experiments".into(),
        }
    }
}

impl Cli {
    /// Parses `std::env::args`, ignoring unknown flags.
    pub fn parse() -> Cli {
        let mut cli = Cli::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => cli.full = true,
                "--solve" => cli.solve = true,
                "--timeout" => {
                    i += 1;
                    cli.timeout =
                        Duration::from_secs(args.get(i).and_then(|s| s.parse().ok()).unwrap_or(30));
                }
                "--seeds" => {
                    i += 1;
                    cli.seeds = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(3);
                }
                "--out" => {
                    i += 1;
                    cli.out = args
                        .get(i)
                        .cloned()
                        .unwrap_or_else(|| "target/experiments".into());
                }
                other => eprintln!("(ignoring unknown flag {other:?})"),
            }
            i += 1;
        }
        cli
    }
}
