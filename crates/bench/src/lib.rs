//! Shared support for the experiment harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index). This library holds the
//! common pieces: CLI parsing, wall-clock timing, and aligned table
//! printing so the binaries emit the same rows/series the paper reports.

#![forbid(unsafe_code)]

pub mod cli;
pub mod report;
pub mod timing;
