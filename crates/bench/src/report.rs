//! Aligned table printing for experiment reports.

/// A simple fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "volume"]);
        t.row(["cnot", "8"]);
        t.row(["t-factory", "162"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("volume"));
        assert!(lines[3].trim_start().starts_with("t-factory"));
    }
}
