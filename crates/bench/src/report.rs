//! Aligned table printing and benchmark-record emission for experiment
//! reports.
//!
//! [`BenchRecord`] is the cross-commit perf trail the ROADMAP asks for:
//! each tracked benchmark serializes one record to `BENCH_<name>.json`
//! at the workspace root, so `git log -p BENCH_*.json` (and the CI
//! artifact of the bench-smoke job) shows how solver performance moves
//! over time.

use std::io;
use std::path::{Path, PathBuf};

/// One benchmark measurement, serialized to `BENCH_<name>.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name (also names the output file; keep it
    /// `[a-z0-9_]+`).
    pub name: String,
    /// Mean wall-clock time per iteration, in milliseconds.
    pub wall_ms: f64,
    /// Solver conflicts for one iteration (0 for encode-only benches).
    pub conflicts: u64,
    /// Solver propagations for one iteration (0 for encode-only benches).
    pub propagations: u64,
    /// `Some(true)` when every UNSAT answer behind this record also
    /// passed the in-tree DRAT checker (in a separate, untimed
    /// certified run — the timed numbers above are measured with proof
    /// logging off). `None` for benches that do not certify (encode
    /// only, or SAT-only instances); omitted from the JSON so their
    /// committed records are unchanged.
    pub proof_checked: Option<bool>,
}

impl BenchRecord {
    /// Renders the record as a single JSON object. Keys are emitted in
    /// a fixed order so committed records diff cleanly.
    pub fn to_json(&self) -> String {
        // Names are restricted to `[a-z0-9_]+`, but escape quotes and
        // backslashes anyway so the output is always valid JSON.
        let escaped: String = self
            .name
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                c if c.is_control() => vec![' '],
                c => vec![c],
            })
            .collect();
        let proof_checked = match self.proof_checked {
            Some(b) => format!(",\n  \"proof_checked\": {b}"),
            None => String::new(),
        };
        format!(
            "{{\n  \"name\": \"{}\",\n  \"wall_ms\": {:.3},\n  \"conflicts\": {},\n  \"propagations\": {}{}\n}}\n",
            escaped, self.wall_ms, self.conflicts, self.propagations, proof_checked
        )
    }

    /// Parses a record previously written by [`BenchRecord::to_json`]
    /// (what the CI trend check compares).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn parse(text: &str) -> Result<BenchRecord, String> {
        let value: serde_json::Value =
            serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| format!("missing field {key:?}"))
        };
        let bad = |key: &str| format!("field {key:?} has the wrong type");
        Ok(BenchRecord {
            name: field("name")?
                .as_str()
                .ok_or_else(|| bad("name"))?
                .to_string(),
            wall_ms: field("wall_ms")?.as_f64().ok_or_else(|| bad("wall_ms"))?,
            conflicts: field("conflicts")?
                .as_u64()
                .ok_or_else(|| bad("conflicts"))?,
            propagations: field("propagations")?
                .as_u64()
                .ok_or_else(|| bad("propagations"))?,
            // Optional: records predating proof certification (and
            // benches that never certify) simply lack the key.
            proof_checked: match value.get("proof_checked") {
                None => None,
                Some(v) => Some(v.as_bool().ok_or_else(|| bad("proof_checked"))?),
            },
        })
    }

    /// Writes the record to `BENCH_<name>.json` in `dir`, returning the
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the write.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes the record at the workspace root (the directory
    /// benchmarks and CI agree on), or `$BENCH_OUT_DIR` when set.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the write.
    pub fn write(&self) -> io::Result<PathBuf> {
        self.write_to(&bench_out_dir())
    }
}

/// The directory benchmark records are written to: `$BENCH_OUT_DIR` if
/// set, else the workspace root (two levels above this crate).
pub fn bench_out_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("BENCH_OUT_DIR") {
        return PathBuf::from(dir);
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the workspace root") // lint:allow(no-panic)
        .to_path_buf()
}

/// A simple fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_record_json_shape() {
        let r = BenchRecord {
            name: "solve_majority_3x3x5".into(),
            wall_ms: 12.3456,
            conflicts: 164,
            propagations: 36698,
            proof_checked: None,
        };
        let json = r.to_json();
        assert!(json.contains("\"name\": \"solve_majority_3x3x5\""));
        assert!(json.contains("\"wall_ms\": 12.346"));
        assert!(json.contains("\"conflicts\": 164"));
        assert!(json.contains("\"propagations\": 36698"));
        assert!(
            !json.contains("proof_checked"),
            "uncertified records keep the legacy shape"
        );
        // Valid JSON according to the vendored parser.
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v["conflicts"], serde_json::json!(164));
    }

    #[test]
    fn bench_record_parse_round_trips() {
        let r = BenchRecord {
            name: "min_depth_majority_3x3x5_incremental".into(),
            wall_ms: 42.125,
            conflicts: 1234,
            propagations: 567890,
            proof_checked: None,
        };
        let back = BenchRecord::parse(&r.to_json()).expect("parse own output");
        assert_eq!(back, r);
        assert!(BenchRecord::parse("{}").is_err());
        assert!(BenchRecord::parse("{\"name\": \"x\"").is_err());
    }

    #[test]
    fn bench_record_proof_checked_round_trips() {
        let r = BenchRecord {
            name: "min_depth_majority_3x3x5_incremental".into(),
            wall_ms: 42.125,
            conflicts: 1234,
            propagations: 567890,
            proof_checked: Some(true),
        };
        let json = r.to_json();
        assert!(json.contains("\"proof_checked\": true"));
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v["proof_checked"], serde_json::json!(true));
        assert_eq!(BenchRecord::parse(&json).expect("parse"), r);
        // A wrong type is a parse error, not a silent None.
        assert!(BenchRecord::parse(
            "{\"name\": \"x\", \"wall_ms\": 1.0, \"conflicts\": 0, \
             \"propagations\": 0, \"proof_checked\": \"yes\"}"
        )
        .is_err());
    }

    #[test]
    fn bench_record_writes_named_file() {
        let dir = std::env::temp_dir().join(format!("lassynth-bench-rec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let r = BenchRecord {
            name: "unit_test".into(),
            wall_ms: 1.0,
            conflicts: 0,
            propagations: 0,
            proof_checked: None,
        };
        let path = r.write_to(&dir).expect("write record");
        assert_eq!(path.file_name().unwrap(), "BENCH_unit_test.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"wall_ms\": 1.000"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "volume"]);
        t.row(["cnot", "8"]);
        t.row(["t-factory", "162"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("volume"));
        assert!(lines[3].trim_start().starts_with("t-factory"));
    }
}
