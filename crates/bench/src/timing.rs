//! Wall-clock helpers.

use std::time::{Duration, Instant};

/// Runs `f`, returning its result and elapsed time.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Mean and (population) standard deviation of durations, in seconds.
pub fn mean_sd(times: &[Duration]) -> (f64, f64) {
    if times.is_empty() {
        return (0.0, 0.0);
    }
    let secs: Vec<f64> = times.iter().map(Duration::as_secs_f64).collect();
    let mean = secs.iter().sum::<f64>() / secs.len() as f64;
    let var = secs.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / secs.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_returns_value() {
        let (v, t) = time_it(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(t < Duration::from_secs(5));
    }

    #[test]
    fn mean_sd_of_constant_is_zero_sd() {
        let times = vec![Duration::from_millis(100); 4];
        let (mean, sd) = mean_sd(&times);
        assert!((mean - 0.1).abs() < 1e-9);
        assert!(sd.abs() < 1e-12);
    }
}
