//! CI `certify` lane: the budgeted majority-gate depth probe (paper
//! Fig. 15) runs with `--certify` semantics — proof logging on, every
//! UNSAT verdict checked by the in-tree forward DRAT checker before it
//! is reported — inside the bench-smoke time budget.

use sat::Budget;
use synth::optimize::find_min_depth;
use synth::SynthOptions;

/// Per-probe conflict budget: ~100x the instance's deterministic
/// conflict count (165 across the whole search), so the run is bounded
/// on any machine yet never trips on the known trajectory.
const CONFLICT_BUDGET: u64 = 20_000;

#[test]
fn certified_majority_depth_probe_stays_within_budget() {
    let spec = workloads::specs::majority_gate_spec(3);
    for incremental in [true, false] {
        let options = SynthOptions {
            incremental,
            certify: true,
            budget: Budget::conflict_limit(CONFLICT_BUDGET),
            ..SynthOptions::default()
        };
        // `find_min_depth` errors out (rather than answering) if any
        // UNSAT probe's proof fails the checker, so an Ok result is
        // itself the certification verdict.
        let search =
            find_min_depth(&spec, 4, 6, 5, &options).expect("certified majority depth search");
        assert_eq!(
            search.best_depth(),
            Some(4),
            "majority gate min depth (incremental={incremental})"
        );
        for p in &search.probes {
            assert_ne!(p.sat, None, "budget must not expire (probe {})", p.max_k);
            assert_eq!(
                p.certified,
                p.sat == Some(false),
                "probe {} certification flag (incremental={incremental})",
                p.max_k
            );
        }
    }
}

/// An exhausted budget under `--certify` is a clean Unknown — no proof
/// check fires, no error, and the probe is reported uncertified.
#[test]
fn certified_probe_with_tiny_budget_reports_unknown() {
    let spec = workloads::specs::majority_gate_spec(3);
    let options = SynthOptions {
        certify: true,
        budget: Budget::conflict_limit(1),
        ..SynthOptions::default()
    };
    let search = find_min_depth(&spec, 4, 6, 5, &options).expect("budgeted certified search");
    assert!(
        search.probes.iter().all(|p| p.sat.is_none()),
        "one conflict cannot settle any majority probe"
    );
    assert!(search.probes.iter().all(|p| !p.certified));
    assert_eq!(search.best_depth(), None);
}
