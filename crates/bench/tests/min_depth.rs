//! The depth-search acceptance criterion on the majority-gate workload
//! (paper Fig. 15): the incremental probe sequence must reproduce the
//! from-scratch verdicts and best depth exactly.

use synth::optimize::{find_min_depth, DepthSearch};
use synth::SynthOptions;
use workloads::specs::majority_gate_spec;

fn run(incremental: bool) -> DepthSearch {
    let options = SynthOptions {
        incremental,
        ..SynthOptions::default()
    };
    find_min_depth(&majority_gate_spec(3), 4, 6, 5, &options).expect("majority depth search")
}

#[test]
fn majority_min_depth_modes_agree() {
    let incremental = run(true);
    let scratch = run(false);
    let view = |s: &DepthSearch| -> Vec<(usize, Option<bool>)> {
        s.probes.iter().map(|p| (p.max_k, p.sat)).collect()
    };
    let got = view(&incremental);
    assert_eq!(got, view(&scratch), "probe sequences diverge");
    assert_eq!(incremental.best_depth(), scratch.best_depth());
    // The search descends from 6 and settles on a definitive verdict
    // for every probe (no budget in play).
    assert_eq!(got[0].0, 5);
    assert!(got.iter().all(|(_, sat)| sat.is_some()));
    assert!(incremental.best_depth().is_some(), "majority fits depth 5");
    for p in &incremental.probes {
        let stats = p.stats.expect("cdcl probes report stats");
        println!(
            "incremental max_k {}: sat={:?} {:?} conflicts={} propagations={}",
            p.max_k, p.sat, p.time, stats.conflicts, stats.propagations
        );
    }
    for p in &scratch.probes {
        println!(
            "scratch     max_k {}: sat={:?} {:?} conflicts={}",
            p.max_k,
            p.sat,
            p.time,
            p.stats.map_or(0, |s| s.conflicts)
        );
    }
}
