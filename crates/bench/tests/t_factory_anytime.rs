//! Deadline-bounded anytime depth search on the Fig. 17 T-factory
//! instance: the resource governor's acceptance demo.
//!
//! The full 15-to-1 T-factory min-depth search is far beyond an
//! interactive budget (the paper's Kissat needs ~469 s for a *single*
//! depth), so the useful contract is the *anytime* one: a search whose
//! wall-clock budget expires must still come back with the window
//! `[certified lower bound, best SAT depth]` plus every probe's
//! verdict and exhaustion reason — never an error, never silently
//! discarded work.
//!
//! No `BENCH_*.json` record is written here: a deadline pins wall
//! time, not conflicts, so the conflict count is machine-dependent and
//! has no place in the conflict-identical record trail the other
//! T-factory probes maintain.
//!
//! `#[ignore]`d locally (it deliberately burns its whole deadline);
//! the CI bench-smoke job runs it with `--ignored`.

use std::time::Duration;
use synth::SynthOptions;
use workloads::specs::t_factory_spec;

/// Per-probe wall-clock budget. Long enough to do real work on the
/// depth-4 probe, short enough for a CI smoke job; the search visits
/// at most a handful of probes before the first expiry stops the walk.
const PROBE_DEADLINE: Duration = Duration::from_secs(10);

#[test]
#[ignore = "deadline-bounded T-factory probe (burns its deadline): run by the CI bench-smoke job"]
fn t_factory_anytime_window_under_deadline() {
    let spec = t_factory_spec(4);
    let mut options = SynthOptions::default();
    options.budget.max_time = Some(PROBE_DEADLINE);
    let lo = 3;
    let hi = 5;
    let start = std::time::Instant::now();
    let search = synth::optimize::find_min_depth(&spec, lo, hi, 4, &options)
        .expect("an expired deadline is an anytime answer, not an error");
    let wall = start.elapsed();
    for p in &search.probes {
        println!(
            "max_k {}: sat={:?} exhaustion={:?} conflicts={} ({:.2?})",
            p.max_k,
            p.sat,
            p.exhaustion,
            p.stats.map_or(0, |s| s.conflicts),
            p.time
        );
    }
    let (bound, best) = search.window();
    println!(
        "anytime window after {wall:.2?}: certified lower bound {bound}, best SAT depth {best:?}, \
         exhaustion {:?}",
        search.exhaustion
    );
    assert!(!search.probes.is_empty(), "at least one probe ran");
    assert!(
        (lo..=hi).contains(&bound),
        "certified lower bound {bound} stays inside the searched range [{lo}, {hi}]"
    );
    if let Some(d) = best {
        assert!(
            (bound..=hi).contains(&d),
            "best SAT depth {d} must sit inside the window [{bound}, {hi}]"
        );
    }
    // Either the search resolved inside the deadline (then the window
    // is closed) or the governor stopped it (then the reason says so).
    match search.exhaustion {
        None => assert_eq!(
            best,
            Some(bound),
            "a resolved search closes the window: {best:?} vs {bound}"
        ),
        Some(reason) => {
            println!("governor stopped the search: {reason}");
            assert_ne!(
                best,
                Some(bound),
                "an exhausted search left the window open"
            );
        }
    }
    assert!(
        search.quarantined.is_empty(),
        "no worker crashes expected without fault injection: {:?}",
        search.quarantined
    );
}
