//! Budgeted T-factory probe: the Fig. 17 instance under a fixed
//! conflict budget.
//!
//! The full 15-to-1 T-factory solve still exceeds an interactive
//! budget on the in-tree CDCL (the paper's Kissat needs ~469 s), so
//! the tracked number is *throughput under a fixed amount of work*: a
//! conflict-limited solve whose wall time measures how fast the solver
//! burns through its budget, with inprocessing enabled by default. The
//! test asserts the solver neither crashes nor misreports UNSAT,
//! prints conflicts/second, and emits `BENCH_t_factory_budgeted.json`.
//!
//! What actually gates here: because the conflict count is pinned by
//! the budget, `bench_trend` downgrades any wall-time swing on this
//! record to a warning (flat conflicts = machine-speed delta by its
//! rules), so the committed record is a cross-commit throughput
//! *trail*, not a hard wall-time gate. The hard, machine-independent
//! gate is the propagations-per-conflict ceiling asserted below:
//! propagations are deterministic for a given code + seed, so a change
//! that makes each conflict drastically more expensive to derive (a
//! missed-implication regression in chronological backtracking, a
//! watch-list pathology) fails CI everywhere, while honest wall noise
//! never does.
//!
//! `#[ignore]`d locally (it runs for tens of seconds); the CI
//! bench-smoke job runs it with `--ignored`.

use bench_support::report::BenchRecord;
use sat::{Backend, Budget, CdclSolver, SolveOutcome};
use synth::Synthesizer;
use workloads::specs::t_factory_spec;

/// Fixed work budget: large enough to get past the early easy
/// conflicts into steady-state search (where inprocessing passes
/// actually trigger), small enough for a CI smoke job.
const CONFLICT_BUDGET: u64 = 60_000;

/// Deterministic regression ceiling: mean propagations per conflict
/// over the budgeted run. The current solver needs ~109 (PR 4's
/// conservative chrono needed ~320, the pre-inprocessing solver
/// ~560); the ceiling leaves ample room for trajectory drift across
/// code changes while still catching a propagation pathology that
/// makes conflicts several times more expensive.
const MAX_PROPAGATIONS_PER_CONFLICT: u64 = 2000;

#[test]
#[ignore = "budgeted T-factory probe (tens of seconds): run by the CI bench-smoke job"]
fn t_factory_budgeted_probe() {
    let spec = t_factory_spec(4);
    let synth = Synthesizer::new(spec).expect("valid T-factory spec");
    let cnf = synth.cnf();
    println!(
        "t-factory 9x4 depth-4 encoding: {} vars, {} clauses",
        cnf.num_vars(),
        cnf.num_clauses()
    );
    let mut solver = CdclSolver::default();
    let start = std::time::Instant::now();
    let out = solver.solve_with(cnf, &[], &Budget::conflict_limit(CONFLICT_BUDGET));
    let wall = start.elapsed();
    match &out {
        SolveOutcome::Sat(m) => {
            assert!(cnf.eval(m), "T-factory model must satisfy the encoding");
            println!("solved SAT within the budget");
        }
        SolveOutcome::Unsat => {
            panic!("T-factory depth-4 misreported UNSAT (the paper finds a design here)")
        }
        SolveOutcome::Unknown(_) => println!("budget expired (expected)"),
    }
    let stats = solver.stats;
    let secs = wall.as_secs_f64();
    println!(
        "budgeted probe: {} conflicts / {} propagations in {:.2} s -> {:.0} conflicts/s",
        stats.conflicts,
        stats.propagations,
        secs,
        stats.conflicts as f64 / secs
    );
    println!(
        "inprocessing: vivified_lits={} subsumed_clauses={} strengthened_clauses={} \
         chrono_backtracks={} gc_passes={}",
        stats.vivified_lits,
        stats.subsumed_clauses,
        stats.strengthened_clauses,
        stats.chrono_backtracks,
        stats.gc_passes
    );
    println!(
        "simplification: eliminated_vars={} elim_resolvents={} probed_literals={} \
         failed_literals={}",
        stats.eliminated_vars, stats.elim_resolvents, stats.probed_literals, stats.failed_literals
    );
    println!(
        "search: decisions={} restarts={} restarts_blocked={} rephases={} oob_enqueues={} \
         missed_implications={}",
        stats.decisions,
        stats.restarts,
        stats.restarts_blocked,
        stats.rephases,
        stats.oob_enqueues,
        stats.missed_implications
    );
    assert!(
        stats.propagations <= stats.conflicts.max(1) * MAX_PROPAGATIONS_PER_CONFLICT,
        "propagations per conflict blew past the deterministic ceiling: {} conflicts, {} \
         propagations (limit {}/conflict)",
        stats.conflicts,
        stats.propagations,
        MAX_PROPAGATIONS_PER_CONFLICT
    );
    let record = BenchRecord {
        name: "t_factory_budgeted".into(),
        wall_ms: secs * 1e3,
        conflicts: stats.conflicts,
        propagations: stats.propagations,
        // The budgeted probe stops at Unknown — no UNSAT to certify.
        proof_checked: None,
    };
    match record.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench record: {e}"),
    }
}
