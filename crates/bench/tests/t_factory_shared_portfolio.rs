//! Shared-clause lockstep portfolio on the budgeted Fig. 17 instance.
//!
//! Companion to `t_factory_budgeted`: the same 9x4 depth-4 T-factory
//! encoding, solved by a 4-seed diversified fleet under the
//! deterministic single-threaded lockstep driver, once with clause
//! sharing off (every worker isolated) and once with sharing on
//! (low-LBD learnt clauses fanned out through the bounded exchange and
//! RUP-filtered on import). The tracked comparison is *total fleet
//! conflicts until the driver stops* — a verdict from any worker, or
//! every per-worker budget exhausted. Conflicts are deterministic for
//! a given code + seeds + quantum (the driver is single-threaded, the
//! exchange order is seed-stable), so the gates below are
//! machine-independent; wall time is printed for the trail only.
//!
//! Gates:
//! * the sharing fleet is bit-deterministic: two consecutive runs
//!   produce identical verdicts and identical per-worker stats,
//! * sharing is live: the fleet imports and keeps foreign clauses,
//! * if either fleet reaches a verdict, the sharing fleet reaches one
//!   in no more total conflicts than the isolated fleet — the win
//!   clause sharing is for (with neither fleet reaching a verdict,
//!   both must burn exactly the full budget),
//! * the propagations-per-conflict ceiling of the budgeted probe also
//!   holds for the fleet total.
//!
//! Emits `BENCH_t_factory_shared_portfolio.json` (sharing on) and
//! `BENCH_t_factory_isolated_portfolio.json` (sharing off); CI's
//! bench-smoke job diffs both against the committed records.
//!
//! `#[ignore]`d locally (seconds of solving); the CI bench-smoke job
//! runs it with `--ignored`.

use bench_support::report::BenchRecord;
use sat::{Budget, CdclConfig, CdclSolver, ClauseExchange, ShareLimits, SolveOutcome, SolverStats};
use std::sync::Arc;
use synth::Synthesizer;
use workloads::specs::t_factory_spec;

/// The diversified fleet (seed 0 is the reference configuration the
/// single-solve probe runs).
const SEEDS: [u64; 4] = [0, 1, 2, 3];
/// Per-worker conflict budget: the fleet's total equals the
/// single-solve probe's 60k budget, so the two records measure the
/// same amount of work.
const PER_WORKER_CONFLICTS: u64 = 15_000;
/// Lockstep turn length, in conflicts.
const QUANTUM: u64 = 2_000;
/// Same deterministic ceiling as the single-solve budgeted probe,
/// applied to the fleet totals.
const MAX_PROPAGATIONS_PER_CONFLICT: u64 = 2000;

struct FleetOutcome {
    /// `Some((worker, is_sat))` when a worker reached a verdict.
    verdict: Option<(usize, bool)>,
    per_worker: Vec<SolverStats>,
}

impl FleetOutcome {
    fn total(&self) -> SolverStats {
        self.per_worker
            .iter()
            .copied()
            .fold(SolverStats::default(), SolverStats::merged)
    }
}

/// One deterministic lockstep run: round-robin turns of `QUANTUM`
/// conflicts over the seed fleet until a verdict or exhaustion.
fn run_fleet(cnf: &sat::Cnf, share: bool) -> FleetOutcome {
    let hub = share.then(|| Arc::new(ClauseExchange::new(SEEDS.len(), 1024)));
    let mut workers: Vec<CdclSolver> = SEEDS
        .iter()
        .enumerate()
        .map(|(index, &seed)| {
            let mut solver = CdclSolver::with_config(CdclConfig::diversified(seed));
            solver.add_cnf(cnf);
            if let Some(hub) = &hub {
                solver.connect_exchange(Arc::clone(hub), index, ShareLimits::default());
            }
            solver
        })
        .collect();
    let mut remaining = vec![PER_WORKER_CONFLICTS; workers.len()];
    let mut verdict = None;
    'driver: loop {
        let mut progressed = false;
        for index in 0..workers.len() {
            if remaining[index] == 0 {
                continue;
            }
            let turn = QUANTUM.min(remaining[index]);
            let before = workers[index].session_stats().conflicts;
            let outcome = workers[index].solve_assuming(&[], &Budget::conflict_limit(turn));
            let spent = workers[index].session_stats().conflicts - before;
            remaining[index] = remaining[index].saturating_sub(spent.max(1));
            progressed = true;
            match outcome {
                SolveOutcome::Sat(model) => {
                    assert!(cnf.eval(&model), "worker {index} returned a bogus model");
                    verdict = Some((index, true));
                    break 'driver;
                }
                SolveOutcome::Unsat => {
                    verdict = Some((index, false));
                    break 'driver;
                }
                SolveOutcome::Unknown(_) => {}
            }
        }
        if !progressed {
            break;
        }
    }
    FleetOutcome {
        verdict,
        per_worker: workers.iter().map(CdclSolver::session_stats).collect(),
    }
}

fn describe(label: &str, fleet: &FleetOutcome, wall_s: f64) {
    let total = fleet.total();
    println!(
        "{label}: verdict={:?} total conflicts={} propagations={} \
         exported={} imported={} kept={} in {wall_s:.2} s",
        fleet.verdict,
        total.conflicts,
        total.propagations,
        total.exported_clauses,
        total.imported_clauses,
        total.imported_kept
    );
    for (seed, stats) in SEEDS.iter().zip(&fleet.per_worker) {
        println!(
            "  seed {seed}: conflicts={} propagations={} exported={} imported={} kept={}",
            stats.conflicts,
            stats.propagations,
            stats.exported_clauses,
            stats.imported_clauses,
            stats.imported_kept
        );
    }
}

#[test]
#[ignore = "budgeted T-factory portfolio probe (seconds): run by the CI bench-smoke job"]
fn t_factory_shared_portfolio_probe() {
    let spec = t_factory_spec(4);
    let synth = Synthesizer::new(spec).expect("valid T-factory spec");
    let cnf = synth.cnf();

    let start = std::time::Instant::now();
    let isolated = run_fleet(cnf, false);
    let isolated_wall = start.elapsed().as_secs_f64();
    describe("isolated fleet", &isolated, isolated_wall);

    let start = std::time::Instant::now();
    let shared = run_fleet(cnf, true);
    let shared_wall = start.elapsed().as_secs_f64();
    describe("shared fleet", &shared, shared_wall);

    // Determinism gate: an identical second sharing run must reproduce
    // the verdict and every per-worker counter bit for bit.
    let rerun = run_fleet(cnf, true);
    assert_eq!(
        shared.verdict, rerun.verdict,
        "sharing fleet verdict is not reproducible"
    );
    assert_eq!(
        shared.per_worker, rerun.per_worker,
        "sharing fleet stats are not reproducible"
    );

    // The paper finds a design at this depth: UNSAT is a solver bug.
    for fleet in [&isolated, &shared] {
        assert!(
            !matches!(fleet.verdict, Some((_, false))),
            "T-factory depth-4 misreported UNSAT"
        );
    }

    // Sharing must actually be live (and quiet when off).
    let shared_total = shared.total();
    let isolated_total = isolated.total();
    assert_eq!(isolated_total.imported_clauses, 0);
    assert!(
        shared_total.imported_kept > 0,
        "the sharing fleet never kept an imported clause"
    );

    // The machine-independent comparison: conflicts until the driver
    // stopped. A verdict must not cost the sharing fleet more total
    // conflicts than the isolated fleet; with no verdict anywhere both
    // fleets burn exactly the full budget.
    match (shared.verdict, isolated.verdict) {
        (None, None) => {
            let budget = PER_WORKER_CONFLICTS * SEEDS.len() as u64;
            assert_eq!(shared_total.conflicts, budget);
            assert_eq!(isolated_total.conflicts, budget);
        }
        _ => assert!(
            shared_total.conflicts <= isolated_total.conflicts,
            "clause sharing made the verdict more expensive: {} vs {} total conflicts",
            shared_total.conflicts,
            isolated_total.conflicts
        ),
    }

    for (label, total) in [("shared", &shared_total), ("isolated", &isolated_total)] {
        assert!(
            total.propagations <= total.conflicts.max(1) * MAX_PROPAGATIONS_PER_CONFLICT,
            "{label} fleet propagations per conflict blew past the deterministic ceiling: \
             {} conflicts, {} propagations (limit {}/conflict)",
            total.conflicts,
            total.propagations,
            MAX_PROPAGATIONS_PER_CONFLICT
        );
    }

    for (name, total, wall_s) in [
        ("t_factory_shared_portfolio", &shared_total, shared_wall),
        (
            "t_factory_isolated_portfolio",
            &isolated_total,
            isolated_wall,
        ),
    ] {
        let record = BenchRecord {
            name: name.into(),
            wall_ms: wall_s * 1e3,
            conflicts: total.conflicts,
            propagations: total.propagations,
            // The budgeted fleets stop at Unknown/SAT — nothing to
            // certify.
            proof_checked: None,
        };
        match record.write() {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write bench record: {e}"),
        }
    }
}
