//! Decoding SAT models into solved designs, with post-processing.

use crate::encode::Encoding;
use lasre::{LasDesign, LasSpec};
use sat::Model;

/// Turns a satisfying model into a [`LasDesign`]: reads the LaSre
/// variables off the model, prunes port-disconnected structure (the
/// paper's "pipe donuts"), and infers K-pipe colors / domain walls.
pub fn decode(spec: &LasSpec, encoding: &Encoding, model: &Model) -> LasDesign {
    let values: Vec<bool> = encoding
        .var_map
        .iter()
        .map(|&lit| model.lit_true(lit))
        .collect();
    let mut design = LasDesign::new(spec.clone(), values);
    design.prune();
    design.infer_k_colors();
    design
}

#[cfg(test)]
mod tests {
    use crate::encode::encode;
    use lasre::fixtures::cnot_spec;
    use sat::Backend;

    #[test]
    fn solver_model_decodes_to_valid_design() {
        let spec = cnot_spec();
        let enc = encode(&spec).unwrap();
        let out = sat::CdclSolver::default().solve(&enc.cnf);
        let model = out.expect_sat();
        let design = super::decode(&spec, &enc, &model);
        let errors = lasre::check_validity(&design);
        assert!(
            errors.is_empty(),
            "decoded design violates constraints: {errors:?}"
        );
        // All four port pipes present.
        for port in &design.spec().ports {
            let (base, axis) = port.pipe();
            assert!(design.has_pipe(axis, base));
        }
    }
}
