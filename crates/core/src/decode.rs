//! Decoding SAT models into solved designs, with post-processing.

use crate::encode::{Encoding, LayeredEncoding};
use lasre::{Axis, CorrKind, LasDesign, LasSpec, StructVar, VarTable};
use sat::Model;

/// Turns a satisfying model into a [`LasDesign`]: reads the LaSre
/// variables off the model, prunes port-disconnected structure (the
/// paper's "pipe donuts"), and infers K-pipe colors / domain walls.
pub fn decode(spec: &LasSpec, encoding: &Encoding, model: &Model) -> LasDesign {
    let values: Vec<bool> = encoding
        .var_map
        .iter()
        .map(|&lit| model.lit_true(lit))
        .collect();
    let mut design = LasDesign::new(spec.clone(), values);
    design.prune();
    design.infer_k_colors();
    design
}

/// Decodes a model of a [`LayeredEncoding`] solved at probe `depth`
/// into a design for `spec.with_depth(depth)`: the layers below `depth`
/// are copied variable-for-variable out of the full-depth tables (the
/// tube columns above the active top belong to the outside world and
/// are simply not part of the shallower spec's arrays).
///
/// # Panics
///
/// Panics if `depth` is outside the layered range.
pub fn decode_layered(
    layered: &LayeredEncoding,
    spec: &LasSpec,
    depth: usize,
    model: &Model,
) -> LasDesign {
    assert!(
        (layered.lo..=layered.hi).contains(&depth),
        "depth {depth} outside the layered range"
    );
    let spec_d = spec.with_depth(depth);
    let table_d = VarTable::new(spec_d.bounds(), spec_d.nstab());
    let table_hi = &layered.encoding.table;
    let var_map = &layered.encoding.var_map;
    let mut values = vec![false; table_d.num_total()];
    // Every cube of the shallow bounds exists in the deep bounds at the
    // same coordinate, so indices translate table-to-table directly.
    for c in spec_d.bounds().iter() {
        let mut copy = |d_idx: usize, hi_idx: usize| {
            values[d_idx] = model.lit_true(var_map[hi_idx]);
        };
        copy(
            table_d.structural(StructVar::YCube(c)),
            table_hi.structural(StructVar::YCube(c)),
        );
        for axis in Axis::ALL {
            copy(
                table_d.structural(StructVar::Exist(axis, c)),
                table_hi.structural(StructVar::Exist(axis, c)),
            );
        }
        for axis in [Axis::I, Axis::J] {
            copy(
                table_d.structural(StructVar::Color(axis, c)),
                table_hi.structural(StructVar::Color(axis, c)),
            );
        }
        for s in 0..spec_d.nstab() {
            for kind in CorrKind::all() {
                copy(table_d.corr(s, kind, c), table_hi.corr(s, kind, c));
            }
        }
    }
    let mut design = LasDesign::new(spec_d, values);
    design.prune();
    design.infer_k_colors();
    design
}

#[cfg(test)]
mod tests {
    use crate::encode::{encode, encode_layered};
    use lasre::fixtures::cnot_spec;
    use sat::Backend;

    #[test]
    fn solver_model_decodes_to_valid_design() {
        let spec = cnot_spec();
        let enc = encode(&spec).unwrap();
        let out = sat::CdclSolver::default().solve(&enc.cnf);
        let model = out.expect_sat();
        let design = super::decode(&spec, &enc, &model);
        let errors = lasre::check_validity(&design);
        assert!(
            errors.is_empty(),
            "decoded design violates constraints: {errors:?}"
        );
        // All four port pipes present.
        for port in &design.spec().ports {
            let (base, axis) = port.pipe();
            assert!(design.has_pipe(axis, base));
        }
    }

    /// A layered model solved at a shallow probe depth decodes into a
    /// valid design of the shallow spec, ports relocated and all.
    #[test]
    fn layered_model_decodes_at_probe_depth() {
        let spec = cnot_spec();
        let layered = encode_layered(&spec, 2, 5).unwrap();
        for depth in [3usize, 4] {
            let model = sat::CdclSolver::default()
                .solve_with(
                    &layered.encoding.cnf,
                    &layered.assumptions_for(depth),
                    &sat::Budget::default(),
                )
                .expect_sat();
            let design = super::decode_layered(&layered, &spec, depth, &model);
            assert_eq!(design.spec().max_k, depth);
            let errors = lasre::check_validity(&design);
            assert!(errors.is_empty(), "depth {depth}: {errors:?}");
            for port in &design.spec().ports {
                let (base, axis) = port.pipe();
                assert!(design.has_pipe(axis, base), "depth {depth} port pipe");
            }
        }
    }
}
