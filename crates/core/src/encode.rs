//! Encoding a LaS specification into CNF (paper Secs. III–IV).
//!
//! One CNF variable per LaSre variable (structural + correlation), plus
//! Tseitin auxiliaries. Ports and forbidden cubes fix many variables
//! outright; [`sat::CnfBuilder`] propagates those constants at emission
//! time, standing in for the paper's Z3 `simplify`/`propagate-values`
//! stage.

use lasre::geom::{red_normal_axis, Sign};
use lasre::{Axis, Coord, LasSpec, SpecError, VarTable};
use lasre::{CorrKind, StructVar};
use pauli::Pauli;
use sat::{Cnf, CnfBuilder, Lit};
use std::collections::HashSet;

/// Size statistics of an encoding (Table I's columns).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EncodeStats {
    /// The paper's scaling factor: array volume × number of stabilizers.
    pub v_nstab: usize,
    /// CNF variable count (including auxiliaries and the constant).
    pub num_vars: usize,
    /// CNF clause count.
    pub num_clauses: usize,
    /// Clauses removed by constant propagation during emission.
    pub simplified_away: usize,
}

/// A compiled instance: the CNF plus the mapping from LaSre variables
/// (indexed per [`VarTable`]) to CNF literals.
#[derive(Clone, Debug)]
pub struct Encoding {
    /// The formula to hand to a [`sat::Backend`].
    pub cnf: Cnf,
    /// `var_map[i]` is the literal for LaSre variable `i`.
    pub var_map: Vec<Lit>,
    /// The shared variable layout.
    pub table: VarTable,
    /// Size statistics.
    pub stats: EncodeStats,
}

impl Encoding {
    /// Runs the CNF structural analyzer ([`sat::analyze`]) over the
    /// compiled instance: unconstrained variables, duplicate /
    /// tautological clauses, contradictory root units, connectivity.
    /// An encoder regression shows up here before any solving does.
    pub fn lint(&self) -> sat::CnfReport {
        sat::analyze::analyze(&self.cnf)
    }
}

/// Encodes a validated specification.
///
/// # Errors
///
/// Returns the spec's own validation error if it is malformed.
pub fn encode(spec: &LasSpec) -> Result<Encoding, SpecError> {
    spec.validate()?;
    let table = VarTable::new(spec.bounds(), spec.nstab());
    let mut enc = Encoder::new(spec, table);
    enc.fix_ports();
    enc.fix_forbidden();
    enc.structural_constraints();
    enc.functionality_constraints();
    Ok(enc.finish())
}

/// A depth-layered instance: one CNF built at depth `hi` whose
/// activation literals select any probe depth in `lo..=hi` — the
/// substrate of the incremental depth search
/// (`synth::optimize::find_min_depth`).
///
/// Layer `m` (cubes with `k = m`, for `m` in `lo..hi`) gets one
/// activation literal. Assuming the literals of layers `lo..d` true and
/// the rest false makes the formula equisatisfiable with
/// `encode(spec.with_depth(d))`:
///
/// * an inactive layer holds no Y cubes and no horizontal pipes, and no
///   K pipe pokes into it — except in the columns of top (`-K`) ports,
///   where the pipes are instead *forced on*, forming a straight
///   vertical tube from the active top to the fixed port boundary at
///   `hi`. The functionality constraints of a straight tube equate the
///   correlation pieces of consecutive K pipes, so the port's fixed
///   boundary values telescope down to the pipe leaving the active
///   volume — exactly `with_depth(d)`'s boundary condition;
/// * deactivation is upward-closed (`¬act[m] ⇒ ¬act[m+1]`);
/// * forbidden cubes at layers `≥ lo` apply only while their layer is
///   active, mirroring `with_depth`'s truncation of the forbidden list.
#[derive(Clone, Debug)]
pub struct LayeredEncoding {
    /// The compiled instance at depth `hi`.
    pub encoding: Encoding,
    /// Smallest selectable depth.
    pub lo: usize,
    /// Largest selectable depth (the depth the CNF is built at).
    pub hi: usize,
    /// `activation[i]` activates layer `lo + i`.
    pub activation: Vec<Lit>,
}

impl LayeredEncoding {
    /// The assumptions selecting probe depth `depth`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is outside `lo..=hi`.
    pub fn assumptions_for(&self, depth: usize) -> Vec<Lit> {
        assert!(
            (self.lo..=self.hi).contains(&depth),
            "depth {depth} outside the layered range [{}, {}]",
            self.lo,
            self.hi
        );
        self.activation
            .iter()
            .enumerate()
            .map(|(i, &a)| if self.lo + i < depth { a } else { !a })
            .collect()
    }

    /// [`Encoding::lint`] plus the layered-specific check: every
    /// activation literal must gate at least one payload clause
    /// (otherwise the depth it selects collapses onto its neighbour —
    /// see [`sat::analyze::ungated_activation`]).
    pub fn lint(&self) -> sat::CnfReport {
        let mut report = self.encoding.lint();
        report.push(sat::analyze::ungated_activation(
            &self.encoding.cnf,
            &self.activation,
        ));
        report
    }
}

/// Encodes `spec` once for every probe depth in `lo..=hi` (see
/// [`LayeredEncoding`]).
///
/// # Errors
///
/// Returns a validation error if *any* depth in the range yields a
/// malformed spec (a side port above `lo`, a forbidden cube colliding
/// with a relocated port, …) — the layered CNF must be sound for every
/// selectable depth, so the whole range is checked up front.
///
/// # Panics
///
/// Panics unless `1 <= lo <= hi`.
pub fn encode_layered(spec: &LasSpec, lo: usize, hi: usize) -> Result<LayeredEncoding, SpecError> {
    assert!(
        1 <= lo && lo <= hi,
        "layered depth range must satisfy 1 <= lo <= hi (got [{lo}, {hi}])"
    );
    for d in lo..=hi {
        spec.with_depth(d).validate()?;
    }
    let top = spec.with_depth(hi);
    let table = VarTable::new(top.bounds(), top.nstab());
    let mut enc = Encoder::new(&top, table);
    enc.gate_from = Some(lo);
    enc.fix_ports();
    enc.fix_forbidden();
    enc.structural_constraints();
    enc.functionality_constraints();
    let activation = enc.emit_layer_activation(lo, hi);
    Ok(LayeredEncoding {
        encoding: enc.finish(),
        lo,
        hi,
        activation,
    })
}

struct Encoder<'s> {
    spec: &'s LasSpec,
    table: VarTable,
    builder: CnfBuilder,
    var_map: Vec<Lit>,
    virtual_cubes: HashSet<Coord>,
    port_pipes: std::collections::HashMap<(Coord, Axis), usize>,
    /// Layered mode: layers at `k >= gate_from` are activation-gated
    /// rather than fixed, so forbidden cubes there must be emitted as
    /// guarded clauses (see [`Encoder::emit_layer_activation`]).
    gate_from: Option<usize>,
}

impl<'s> Encoder<'s> {
    fn new(spec: &'s LasSpec, table: VarTable) -> Self {
        let mut builder = CnfBuilder::new();
        let var_map = builder.new_lits(table.num_total());
        Encoder {
            spec,
            table,
            builder,
            var_map,
            virtual_cubes: spec.virtual_cubes(),
            port_pipes: spec.port_pipes(),
            gate_from: None,
        }
    }

    /// The literal for a pipe from `c` toward `+axis`; constant false
    /// out of bounds.
    fn exist(&self, axis: Axis, c: Coord) -> Lit {
        if self.table.bounds().contains(c) {
            self.var_map[self.table.structural(StructVar::Exist(axis, c))]
        } else {
            self.builder.false_lit()
        }
    }

    fn ycube(&self, c: Coord) -> Lit {
        if self.spec.allow_y_cubes {
            self.var_map[self.table.structural(StructVar::YCube(c))]
        } else {
            self.builder.false_lit()
        }
    }

    fn color(&self, axis: Axis, c: Coord) -> Lit {
        self.var_map[self.table.structural(StructVar::Color(axis, c))]
    }

    fn corr(&self, s: usize, kind: CorrKind, c: Coord) -> Lit {
        self.var_map[self.table.corr(s, kind, c)]
    }

    /// Literal "`pipe`'s faces normal to `n` are red", for an I/J pipe.
    fn isred(&self, axis: Axis, base: Coord, n: Axis) -> Lit {
        let c = self.color(axis, base);
        if red_normal_axis(axis, true) == n {
            c
        } else {
            !c
        }
    }

    /// Incident pipe slots of a cube: (axis, base coordinate of pipe).
    fn incident_slots(c: Coord) -> [(Axis, Coord); 6] {
        [
            (Axis::I, c),
            (Axis::I, c.prev(Axis::I)),
            (Axis::J, c),
            (Axis::J, c.prev(Axis::J)),
            (Axis::K, c),
            (Axis::K, c.prev(Axis::K)),
        ]
    }

    fn fix_ports(&mut self) {
        for port in &self.spec.ports {
            let (base, axis) = port.pipe();
            let e = self.exist(axis, base);
            self.builder.fix(e, true);
            if axis != Axis::K {
                let c = self.color(axis, base);
                self.builder.fix(c, port.color_orientation());
            }
            // Virtual (padding) port cubes: nothing else may touch them.
            if port.is_virtual(self.spec.bounds()) {
                let loc = port.location;
                if self.spec.allow_y_cubes {
                    let y = self.ycube(loc);
                    self.builder.fix(y, false);
                }
                for (a, b) in Self::incident_slots(loc) {
                    if (b, a) == (base, axis) {
                        continue;
                    }
                    let l = self.exist(a, b);
                    if self.builder.value(l).is_none() {
                        self.builder.fix(l, false);
                    }
                }
            }
        }
        // No unexpected ports: boundary-exiting pipes must be declared.
        let bounds = self.spec.bounds();
        for c in bounds.iter() {
            for axis in Axis::ALL {
                if bounds.contains(c.next(axis)) {
                    continue;
                }
                if self.port_pipes.contains_key(&(c, axis)) {
                    continue;
                }
                let l = self.exist(axis, c);
                if self.builder.value(l).is_none() {
                    self.builder.fix(l, false);
                }
            }
        }
    }

    fn fix_forbidden(&mut self) {
        for &c in &self.spec.forbidden_cubes {
            // In layered mode a forbidden cube above the gate boundary
            // only applies while its layer is active; it is emitted as
            // guarded clauses in `emit_layer_activation` instead.
            if self.gate_from.is_some_and(|lo| c.k >= lo as i32) {
                continue;
            }
            if self.spec.allow_y_cubes {
                let y = self.ycube(c);
                if self.builder.value(y).is_none() {
                    self.builder.fix(y, false);
                }
            }
            for (axis, base) in Self::incident_slots(c) {
                let l = self.exist(axis, base);
                if self.builder.value(l).is_none() {
                    self.builder.fix(l, false);
                }
            }
        }
    }

    fn structural_constraints(&mut self) {
        let bounds = self.spec.bounds();
        for c in bounds.iter() {
            if self.virtual_cubes.contains(&c) {
                continue;
            }
            let y = self.ycube(c);
            let slots: Vec<(Axis, Coord, Lit)> = Self::incident_slots(c)
                .into_iter()
                .map(|(a, b)| (a, b, self.exist(a, b)))
                .collect();

            // Time-like Y cubes (Fig. 9c): no horizontal pipes, and no
            // K-passthrough (terminal only; see DESIGN.md §3).
            if self.spec.allow_y_cubes {
                for &(a, _, e) in &slots {
                    if a != Axis::K {
                        self.builder.implies_clause(&[y, e], &[]);
                    }
                }
                let k_dn = self.exist(Axis::K, c.prev(Axis::K));
                let k_up = self.exist(Axis::K, c);
                self.builder.implies_clause(&[y, k_dn, k_up], &[]);
                // A Y cube must touch at least one K pipe (no floating Y).
                self.builder.implies_clause(&[y], &[k_dn, k_up]);
            }

            // No 3D corners (Fig. 9d): some axis has no pipes.
            let mut empties = Vec::new();
            for axis in Axis::ALL {
                let minus = self.exist(axis, c.prev(axis));
                let plus = self.exist(axis, c);
                let none = self.builder.and(!minus, !plus);
                empties.push(none);
            }
            self.builder.clause(empties.clone());

            // No degree-1 non-Y cubes (Fig. 9e).
            for (idx, &(_, _, e)) in slots.iter().enumerate() {
                let others: Vec<Lit> = slots
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != idx)
                    .map(|(_, &(_, _, o))| o)
                    .collect();
                self.builder.implies_clause(&[!y, e], &others);
            }

            // Color matching (Fig. 9f–g) between horizontal pipes.
            let horiz: Vec<(Axis, Coord, Lit)> = slots
                .iter()
                .copied()
                .filter(|&(a, _, _)| a != Axis::K)
                .collect();
            for (ai, &(aa, ab, ae)) in horiz.iter().enumerate() {
                for &(ba, bb, be) in &horiz[ai + 1..] {
                    // Skip unusable slots early (constant-false pipes).
                    if self.builder.value(ae) == Some(false)
                        || self.builder.value(be) == Some(false)
                    {
                        continue;
                    }
                    for n in Axis::ALL {
                        if n == aa || n == ba {
                            continue;
                        }
                        let ra = self.isred(aa, ab, n);
                        let rb = self.isred(ba, bb, n);
                        self.builder.equal_under(&[ae, be], ra, rb);
                    }
                }
            }
        }
    }

    fn functionality_constraints(&mut self) {
        let bounds = self.spec.bounds();
        // (a) Port boundary conditions (Fig. 11a): fixed values.
        for s in 0..self.spec.nstab() {
            for (p_idx, port) in self.spec.ports.iter().enumerate() {
                let (base, axis) = port.pipe();
                let z_kind = CorrKind::new(axis, port.z_basis_direction);
                let x_kind = CorrKind::new(axis, port.x_basis_direction());
                let (want_z, want_x) = match self.spec.stabilizers[s].get(p_idx) {
                    Pauli::I => (false, false),
                    Pauli::Z => (true, false),
                    Pauli::X => (false, true),
                    Pauli::Y => (true, true),
                };
                let zl = self.corr(s, z_kind, base);
                let xl = self.corr(s, x_kind, base);
                self.builder.fix(zl, want_z);
                self.builder.fix(xl, want_x);
            }
        }
        for c in bounds.iter() {
            if self.virtual_cubes.contains(&c) {
                continue;
            }
            let y = self.ycube(c);
            let k_slots = [(Axis::K, c.prev(Axis::K)), (Axis::K, c)];
            for s in 0..self.spec.nstab() {
                // (d) Both-or-none at Y cubes (Fig. 11d).
                if self.spec.allow_y_cubes {
                    for &(_, base) in &k_slots {
                        if !bounds.contains(base) {
                            continue;
                        }
                        let e = self.exist(Axis::K, base);
                        let ki = self.corr(s, CorrKind::new(Axis::K, Axis::I), base);
                        let kj = self.corr(s, CorrKind::new(Axis::K, Axis::J), base);
                        self.builder.equal_under(&[y, e], ki, kj);
                    }
                }
                // (b)/(c) per axis with no incident pipes (Fig. 11b–c).
                for normal in Axis::ALL {
                    let n_minus = self.exist(normal, c.prev(normal));
                    let n_plus = self.exist(normal, c);
                    let guards = [!y, !n_minus, !n_plus];
                    let [a1, a2] = normal.others();
                    let mut parallel_terms = Vec::new();
                    let mut orth_terms = Vec::new();
                    for axis in [a1, a2] {
                        for base in [c.prev(axis), c] {
                            if !bounds.contains(base) {
                                continue;
                            }
                            let e = self.exist(axis, base);
                            if self.builder.value(e) == Some(false) {
                                continue;
                            }
                            let par = self.corr(s, CorrKind::new(axis, normal), base);
                            let orth = self.corr(s, CorrKind::new(axis, axis.third(normal)), base);
                            let t = self.builder.and(e, par);
                            parallel_terms.push(t);
                            orth_terms.push((e, orth));
                        }
                    }
                    self.builder.xor_under(&guards, &parallel_terms, false);
                    self.builder.all_equal_under(&guards, &orth_terms);
                }
            }
        }
    }

    /// Layered mode: allocates the per-layer activation literals and
    /// emits the gating clauses described on [`LayeredEncoding`].
    fn emit_layer_activation(&mut self, lo: usize, hi: usize) -> Vec<Lit> {
        let acts = self.builder.new_lits(hi - lo);
        // Deactivation is upward-closed: ¬act[m] ⇒ ¬act[m+1].
        for w in acts.windows(2) {
            self.builder.clause([w[0], !w[1]]);
        }
        // Columns of top ports: through inactive layers the port pipe
        // continues as a straight vertical tube down to the active top.
        let tube_columns: HashSet<(i32, i32)> = self
            .spec
            .ports
            .iter()
            .filter(|p| {
                p.direction.axis == Axis::K
                    && p.direction.sign == Sign::Minus
                    && p.location.k == hi as i32
            })
            .map(|p| (p.location.i, p.location.j))
            .collect();
        let bounds = self.spec.bounds();
        for (idx, m) in (lo..hi).enumerate() {
            let act = acts[idx];
            for i in 0..bounds.get(Axis::I) as i32 {
                for j in 0..bounds.get(Axis::J) as i32 {
                    let c = Coord::new(i, j, m as i32);
                    // An inactive layer holds no Y cubes and no
                    // horizontal pipes (pipes based at neighbouring
                    // cubes of the same layer are covered when those
                    // cubes are visited).
                    let y = self.ycube(c);
                    self.builder.implies_clause(&[!act], &[!y]);
                    for axis in [Axis::I, Axis::J] {
                        let e = self.exist(axis, c);
                        self.builder.implies_clause(&[!act], &[!e]);
                    }
                    // The K pipe poking up into an inactive layer is
                    // the relocated port pipe in a tube column (forced
                    // on) and forbidden everywhere else. Pipes fully
                    // inside the inactive region are covered by the
                    // same rule one layer up; the pipe at `hi - 1` is
                    // fixed by `fix_ports`.
                    let below = self.exist(Axis::K, c.prev(Axis::K));
                    if tube_columns.contains(&(i, j)) {
                        self.builder.implies_clause(&[!act], &[below]);
                    } else {
                        self.builder.implies_clause(&[!act], &[!below]);
                    }
                }
            }
        }
        // Forbidden cubes above the gate boundary bind only while their
        // layer is active (with_depth truncates them away otherwise).
        for &c in &self.spec.forbidden_cubes {
            if c.k < lo as i32 {
                continue;
            }
            let act = acts[c.k as usize - lo];
            let y = self.ycube(c);
            self.builder.implies_clause(&[act], &[!y]);
            for (axis, base) in Self::incident_slots(c) {
                let e = self.exist(axis, base);
                self.builder.implies_clause(&[act], &[!e]);
            }
        }
        acts
    }

    fn finish(self) -> Encoding {
        let stats = EncodeStats {
            v_nstab: self.spec.v_nstab(),
            num_vars: self.builder.num_vars(),
            num_clauses: self.builder.cnf().num_clauses(),
            simplified_away: self.builder.simplified_away(),
        };
        Encoding {
            cnf: self.builder.into_cnf(),
            var_map: self.var_map,
            table: self.table,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasre::fixtures::{cnot_design, cnot_spec};
    use sat::Backend as _;

    #[test]
    fn cnot_encoding_lints_without_fatal_findings() {
        // The real encoder must never emit the trivially-broken shapes:
        // no contradictory roots, no empty clauses, no tautologies, and
        // one dominant dependency component.
        let enc = encode(&cnot_spec()).unwrap();
        let report = enc.lint();
        assert_eq!(report.count(sat::analyze::LINT_CONTRADICTORY_UNITS), 0);
        assert_eq!(report.count(sat::analyze::LINT_EMPTY_CLAUSE), 0);
        assert_eq!(report.count(sat::analyze::LINT_TAUTOLOGICAL_CLAUSE), 0);
        // Emission-time constant folding leaves fixed variables in
        // singleton components (their unit clause connects nothing) and
        // strips some variables entirely — `unconstrained-var` firing
        // here is expected, informational output. The *search* still
        // has to live in one dominant component.
        assert!(report.largest_component * 3 > report.num_vars, "{report}");
    }

    #[test]
    fn layered_activation_literals_all_gate() {
        let layered = encode_layered(&cnot_spec(), 2, 5).unwrap();
        let report = layered.lint();
        assert_eq!(
            report.count(sat::analyze::LINT_UNGATED_ACTIVATION),
            0,
            "{report}"
        );
    }

    #[test]
    fn ungated_activation_detected_on_seeded_bug() {
        // Simulate the encoder bug the lint exists for: an activation
        // literal allocated (and chained) but whose gated clauses were
        // dropped. Splice a fresh variable into the activation list.
        let mut layered = encode_layered(&cnot_spec(), 2, 5).unwrap();
        let ghost = Lit::pos(sat::Var(layered.encoding.cnf.num_vars() as u32));
        layered.encoding.cnf.ensure_vars(ghost.var().index() + 1);
        // Chain it below the first real layer so only the pure-chain
        // clause mentions it.
        let first = layered.activation[0];
        layered.encoding.cnf.add_clause([ghost, !first]);
        layered.activation.insert(0, ghost);
        let report = layered.lint();
        assert_eq!(
            report.count(sat::analyze::LINT_UNGATED_ACTIVATION),
            1,
            "{report}"
        );
    }

    #[test]
    fn cnot_encoding_has_sane_size() {
        let enc = encode(&cnot_spec()).unwrap();
        assert_eq!(enc.stats.v_nstab, 48);
        assert!(enc.stats.num_vars > enc.table.num_total());
        assert!(enc.stats.num_clauses > 100);
        assert!(
            enc.stats.simplified_away > 0,
            "ports should trigger simplification"
        );
    }

    #[test]
    fn fig8_assignment_satisfies_encoding() {
        // The paper's hand-built CNOT must satisfy our CNF: extend the
        // design's assignment with consistent auxiliary values by unit
        // propagation-style evaluation — instead we check with the
        // solver under assumptions pinning every LaSre variable.
        let spec = cnot_spec();
        let enc = encode(&spec).unwrap();
        let design = cnot_design();
        let assumptions: Vec<Lit> = enc
            .var_map
            .iter()
            .zip(design.values())
            .map(|(&lit, &v)| if v { lit } else { !lit })
            .collect();
        let mut solver = sat::CdclSolver::default();
        let out =
            sat::Backend::solve_with(&mut solver, &enc.cnf, &assumptions, &sat::Budget::default());
        assert!(out.is_sat(), "paper's CNOT must satisfy the encoding");
    }

    #[test]
    fn wrong_structure_rejected_under_assumptions() {
        // Forcing the I pipe of the CNOT off while keeping everything
        // else pinned must be UNSAT (the design needs that merge).
        let spec = cnot_spec();
        let enc = encode(&spec).unwrap();
        let design = cnot_design();
        let ipipe = enc
            .table
            .structural(StructVar::Exist(Axis::I, Coord::new(0, 1, 2)));
        let assumptions: Vec<Lit> = enc
            .var_map
            .iter()
            .zip(design.values())
            .enumerate()
            .map(|(i, (&lit, &v))| {
                let v = if i == ipipe { false } else { v };
                if v {
                    lit
                } else {
                    !lit
                }
            })
            .collect();
        let mut solver = sat::CdclSolver::default();
        let out =
            sat::Backend::solve_with(&mut solver, &enc.cnf, &assumptions, &sat::Budget::default());
        assert!(out.is_unsat());
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let mut spec = cnot_spec();
        spec.stabilizers[0] = "ZZ".parse().unwrap();
        assert!(encode(&spec).is_err());
    }

    /// The layered CNF under depth-`d` assumptions must agree with the
    /// from-scratch encoding of `spec.with_depth(d)` at every depth of
    /// the range — the equisatisfiability the incremental depth search
    /// rests on.
    #[test]
    fn layered_agrees_with_sequential_encodes() {
        let spec = cnot_spec();
        let layered = encode_layered(&spec, 2, 5).unwrap();
        assert_eq!(layered.activation.len(), 3);
        for d in 2..=5 {
            let assumptions = layered.assumptions_for(d);
            let got = sat::CdclSolver::default()
                .solve_with(&layered.encoding.cnf, &assumptions, &sat::Budget::default())
                .is_sat();
            let seq = encode(&spec.with_depth(d)).unwrap();
            let want = sat::CdclSolver::default()
                .solve_with(&seq.cnf, &[], &sat::Budget::default())
                .is_sat();
            assert_eq!(got, want, "layered vs sequential disagree at depth {d}");
            // The CNOT needs depth 3: UNSAT below, SAT from there on.
            assert_eq!(want, d >= 3, "unexpected CNOT verdict at depth {d}");
        }
    }

    /// Forbidden cubes at gated layers bind exactly while their layer
    /// is active.
    #[test]
    fn layered_gates_forbidden_cubes_per_depth() {
        // Forbid both interior columns at layer 2: depth 3 becomes
        // unroutable, depth 2 stays as without the cubes (UNSAT), and
        // deeper probes route around layer 2.
        let mut spec = cnot_spec();
        spec.forbidden_cubes.push(Coord::new(0, 0, 2));
        spec.forbidden_cubes.push(Coord::new(1, 1, 2));
        let layered = encode_layered(&spec, 2, 5).unwrap();
        for d in 2..=5 {
            let got = sat::CdclSolver::default()
                .solve_with(
                    &layered.encoding.cnf,
                    &layered.assumptions_for(d),
                    &sat::Budget::default(),
                )
                .is_sat();
            let seq = encode(&spec.with_depth(d)).unwrap();
            let want = sat::CdclSolver::default()
                .solve_with(&seq.cnf, &[], &sat::Budget::default())
                .is_sat();
            assert_eq!(got, want, "gated forbidden cube diverges at depth {d}");
        }
    }

    #[test]
    fn layered_rejects_depths_invalid_anywhere_in_range() {
        // Depth 1 cuts the CNOT's bottom port cubes out of the arrays,
        // so a range including it is rejected up front.
        assert!(encode_layered(&cnot_spec(), 1, 4).is_err());
        assert!(encode_layered(&cnot_spec(), 2, 4).is_ok());
    }

    #[test]
    #[should_panic(expected = "outside the layered range")]
    fn layered_assumptions_check_range() {
        let layered = encode_layered(&cnot_spec(), 2, 4).unwrap();
        layered.assumptions_for(5);
    }
}
