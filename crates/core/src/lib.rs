//! LaSsynth: SAT-based synthesis of lattice-surgery subroutines.
//!
//! This is the paper's primary contribution (Secs. III–IV): given a
//! [`lasre::LasSpec`] (volume, ports, stabilizer flows), encode the
//! validity and functionality constraints to CNF, query a SAT backend,
//! decode the model into a [`lasre::LasDesign`], post-process (prune
//! disconnected "donuts", infer K-pipe colors, place domain walls) and
//! verify the result through ZX flow derivation.
//!
//! * [`encode`] — constraint emission (paper Fig. 9 and Fig. 11),
//! * [`decode`] — model → design + post-processing,
//! * [`verify`] — pipe diagram → ZX diagram → stabilizer flows,
//! * [`Synthesizer`] — one-shot synthesis with options,
//! * [`optimize`] — the descending/ascending volume searches and the
//!   parallel port-permutation exploration of paper Fig. 12b.
//!
//! # Examples
//!
//! ```
//! use synth::Synthesizer;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = lasre::fixtures::cnot_spec();
//! let result = Synthesizer::new(spec)?.run()?;
//! let design = result.expect_sat();
//! assert!(design.verified());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod decode;
pub mod encode;
pub mod optimize;
mod synthesize;
pub mod verify;

pub use synthesize::{BackendChoice, SynthError, SynthOptions, SynthResult, Synthesizer};
