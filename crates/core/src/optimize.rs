//! Optimization loops around the synthesizer (paper Fig. 12b).
//!
//! The synthesizer answers one SAT/UNSAT question; optimization asks a
//! sequence of them: shrink the allowed volume until UNSAT (descending),
//! or grow it until SAT (ascending), and optionally explore port
//! permutations in parallel with first-success cancellation.

use crate::decode::{decode, decode_layered};
use crate::encode::{encode, encode_layered};
use crate::synthesize::{BackendChoice, SynthError, SynthOptions, SynthResult, Synthesizer};
use crate::verify::verify;
use lasre::{LasDesign, LasSpec};
use sat::{
    Budget, CdclSolver, ClauseExchange, ExhaustionReason, ShareLimits, SolveOutcome, SolverStats,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Renders a caught panic payload (the crash reports quarantined
/// workers carry). `panic!` with a format string yields a `String`,
/// with a literal a `&str`; anything else is opaque.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast_ref::<&str>() {
        Some(s) => (*s).to_string(),
        None => match payload.downcast_ref::<String>() {
            Some(s) => s.clone(),
            None => "worker panicked (non-string payload)".to_string(),
        },
    }
}

/// One probe of the depth search.
#[derive(Debug)]
pub struct DepthProbe {
    /// The `max_k` tried.
    pub max_k: usize,
    /// `Some(true)` = SAT, `Some(false)` = UNSAT, `None` = budget expired.
    pub sat: Option<bool>,
    /// Wall-clock time of the solve.
    pub time: Duration,
    /// Search statistics of this probe's solve (conflicts,
    /// propagations, …). `None` when the backend reports none
    /// (varisat).
    pub stats: Option<SolverStats>,
    /// Whether this probe's UNSAT verdict carried a DRAT proof that
    /// passed the in-tree checker (`options.certify` only; always
    /// `false` for SAT/Unknown probes — a failing check aborts the
    /// search with [`SynthError::Certify`] instead).
    pub certified: bool,
    /// Which budget axis expired when `sat` is `None` (conflicts,
    /// propagations, deadline, memory ceiling, or a cancellation).
    /// `None` for resolved probes and for backends that report no
    /// statistics.
    pub exhaustion: Option<ExhaustionReason>,
}

/// Result of [`find_min_depth`].
///
/// Always returned, even when the budget died mid-search: the *anytime*
/// answer is the window [`DepthSearch::certified_lower_bound`] ..
/// [`DepthSearch::best_depth`], with [`DepthSearch::exhaustion`]
/// explaining which resource ran out (`None` means the search resolved
/// the minimum exactly).
#[derive(Debug)]
pub struct DepthSearch {
    /// Every probe performed, in order.
    pub probes: Vec<DepthProbe>,
    /// The best verified design found, if any.
    pub best: Option<LasDesign>,
    /// The searched depth range, as requested (inclusive).
    pub lo: usize,
    /// See [`DepthSearch::lo`].
    pub hi: usize,
    /// Why the search stopped without resolving the minimum, if it
    /// did: the budget axis that expired (or the cancellation) on the
    /// probe/driver that gave up first. `None` when the window closed.
    pub exhaustion: Option<ExhaustionReason>,
    /// Depth-parallel workers that crashed mid-search, as `(max_k,
    /// panic message)` — the fleet continued on the survivors.
    pub quarantined: Vec<(usize, String)>,
}

impl DepthSearch {
    /// The minimal satisfiable `max_k` discovered.
    pub fn best_depth(&self) -> Option<usize> {
        self.best.as_ref().map(|d| d.spec().max_k)
    }

    /// The largest depth proven unreachable plus one: every depth below
    /// this is refuted (UNSAT), so the true minimum — if any design
    /// exists in range — is at least this deep. Falls back to the
    /// range floor `lo` when no probe returned UNSAT.
    pub fn certified_lower_bound(&self) -> usize {
        self.probes
            .iter()
            .filter(|p| p.sat == Some(false))
            .map(|p| p.max_k + 1)
            .max()
            .map_or(self.lo, |b| b.max(self.lo))
    }

    /// The anytime answer: `(certified lower bound, best SAT depth)`.
    /// When the search resolved, the two coincide; under an expired
    /// budget they bracket where the true minimum can still hide.
    pub fn window(&self) -> (usize, Option<usize>) {
        (self.certified_lower_bound(), self.best_depth())
    }

    /// Total solver time across probes.
    pub fn total_time(&self) -> Duration {
        self.probes.iter().map(|p| p.time).sum()
    }
}

/// What one probe of the depth search observed.
struct ProbeOutcome {
    sat: Option<bool>,
    design: Option<LasDesign>,
    time: Duration,
    stats: Option<SolverStats>,
    certified: bool,
    exhaustion: Option<ExhaustionReason>,
}

/// The paper's probe order (start somewhere, descend while SAT, ascend
/// while UNSAT), shared by the incremental and from-scratch modes.
fn drive_depth_search(
    lo: usize,
    hi: usize,
    start: usize,
    mut probe: impl FnMut(usize) -> Result<ProbeOutcome, SynthError>,
) -> Result<DepthSearch, SynthError> {
    assert!(lo <= start && start <= hi, "start depth outside [lo, hi]");
    let mut probes = Vec::new();
    let mut best: Option<LasDesign> = None;
    let mut step = |k: usize,
                    probes: &mut Vec<DepthProbe>,
                    best: &mut Option<LasDesign>|
     -> Result<Option<bool>, SynthError> {
        let outcome = probe(k)?;
        if let Some(d) = outcome.design {
            if best
                .as_ref()
                .is_none_or(|b| d.spec().max_k < b.spec().max_k)
            {
                *best = Some(d);
            }
        }
        probes.push(DepthProbe {
            max_k: k,
            sat: outcome.sat,
            time: outcome.time,
            stats: outcome.stats,
            certified: outcome.certified,
            exhaustion: outcome.exhaustion,
        });
        Ok(outcome.sat)
    };
    let mut k = start;
    match step(k, &mut probes, &mut best)? {
        Some(true) => {
            // Descend while SAT.
            while k > lo {
                k -= 1;
                match step(k, &mut probes, &mut best)? {
                    Some(true) => continue,
                    _ => break,
                }
            }
        }
        Some(false) => {
            // Ascend while UNSAT.
            while k < hi {
                k += 1;
                match step(k, &mut probes, &mut best)? {
                    Some(false) => continue,
                    _ => break,
                }
            }
        }
        None => {}
    }
    // The walk stops at the first undecided probe, so the anytime
    // exhaustion reason is that probe's (there is at most one).
    let exhaustion =
        probes
            .iter()
            .rev()
            .find_map(|p| if p.sat.is_none() { p.exhaustion } else { None });
    Ok(DepthSearch {
        probes,
        best,
        lo,
        hi,
        exhaustion,
        quarantined: Vec::new(),
    })
}

/// Finds the minimal time extent (`max_k`) at which `spec` is
/// satisfiable, between `lo` and `hi` (inclusive), exactly as the
/// paper's evaluation does: start somewhere, descend while SAT, ascend
/// while UNSAT (Sec. V-B).
///
/// The spec's `-K` ports are relocated to each probed top layer via
/// [`LasSpec::with_depth`].
///
/// With `options.incremental` (the default, CDCL backend only) the
/// whole search runs as **one incremental solver session** over a
/// depth-layered encoding ([`encode_layered`]): each probe is a
/// `solve_assuming` call under that depth's activation literals, so the
/// clauses learnt refuting or solving one depth carry over to the next
/// — the lever the T-factory-scale instances need. Otherwise every
/// probe re-encodes `spec.with_depth(k)` and solves from scratch. Both
/// modes probe the same depths and return the same verdicts.
///
/// With `options.depth_parallel` (CDCL backend, `lo >= 1`) the walk is
/// replaced by [`find_min_depth_parallel`]: one lockstep worker per
/// candidate depth over a shared depth-layered encoding, with the
/// monotone depth axis pruning every depth a verdict dominates. The
/// answer (`best_depth`, error behavior on malformed depths) matches
/// the sequential modes; the *probe list* differs — it holds one entry
/// per worker that ran, in ascending depth order, and `sat: None`
/// marks a worker pruned or out of budget before its own verdict.
///
/// # Errors
///
/// Propagates [`SynthError`] from any probe. All modes error on the
/// probe that reaches a depth whose spec is malformed; depths the
/// search never probes are never validated (incremental sessions are
/// pre-shrunk to contiguous valid-depth sub-ranges, and the
/// depth-parallel mode reproduces the sequential walk-off-the-edge
/// errors explicitly).
pub fn find_min_depth(
    spec: &LasSpec,
    lo: usize,
    hi: usize,
    start: usize,
    options: &SynthOptions,
) -> Result<DepthSearch, SynthError> {
    if options.depth_parallel && lo >= 1 {
        if let BackendChoice::Cdcl(config) = &options.backend {
            let config = options.solver_config(config.clone());
            return find_min_depth_parallel(spec, lo, hi, start, options, config);
        }
    }
    if options.incremental && lo >= 1 {
        if let BackendChoice::Cdcl(config) = &options.backend {
            let config = options.solver_config(config.clone());
            return find_min_depth_incremental(spec, lo, hi, start, options, config);
        }
    }
    find_min_depth_scratch(spec, lo, hi, start, options)
}

/// From-scratch mode: one fresh [`Synthesizer`] per probe.
fn find_min_depth_scratch(
    spec: &LasSpec,
    lo: usize,
    hi: usize,
    start: usize,
    options: &SynthOptions,
) -> Result<DepthSearch, SynthError> {
    drive_depth_search(lo, hi, start, |k| {
        let s = spec.with_depth(k);
        let mut synth = Synthesizer::new(s)?.with_options(options.clone());
        let result = synth.run()?;
        let time = synth.last_solve_time().unwrap_or_default();
        let stats = synth.last_solver_stats();
        let (sat, design) = match result {
            SynthResult::Sat(d) => (Some(true), Some(*d)),
            SynthResult::Unsat => (Some(false), None),
            SynthResult::Unknown => (None, None),
        };
        Ok(ProbeOutcome {
            sat,
            design,
            time,
            stats,
            // `Synthesizer::run` has already checked the proof of a
            // certifying UNSAT (it errors otherwise).
            certified: options.certify && sat == Some(false),
            // Each probe is a fresh solver, so the session counters
            // are this probe's own (`None` under varisat, which
            // reports no statistics).
            exhaustion: match sat {
                None => stats.and_then(|s| s.exhaustion_reason()),
                Some(_) => None,
            },
        })
    })
}

/// One retained solver over one depth-layered CNF.
struct IncrementalSession {
    layered: crate::encode::LayeredEncoding,
    solver: CdclSolver,
}

impl IncrementalSession {
    fn new(
        spec: &LasSpec,
        lo: usize,
        hi: usize,
        config: &sat::CdclConfig,
        certify: bool,
    ) -> Result<Self, SynthError> {
        let layered = encode_layered(spec, lo, hi).map_err(SynthError::Spec)?;
        let mut solver = CdclSolver::with_config(config.clone());
        if certify {
            // Proof logging must start before the first clause so the
            // log is self-contained.
            solver.enable_proof();
        }
        solver.add_cnf(&layered.encoding.cnf);
        // Activation literals come back as assumptions on every probe,
        // so bounded variable elimination must never resolve them away:
        // declare them frozen for the lifetime of the session.
        for &a in &layered.activation {
            solver.freeze(a.var());
        }
        Ok(IncrementalSession { layered, solver })
    }

    fn covers(&self, k: usize) -> bool {
        (self.layered.lo..=self.layered.hi).contains(&k)
    }
}

/// The largest sub-range of depths `lo..=from` (descending) ending at
/// `from` whose specs all validate — a layered session may only cover
/// depths the spec is well-formed at, but must not reject depths the
/// search never reaches (from-scratch mode only errors on the probe
/// that actually hits an invalid depth, and the two modes must agree).
fn valid_depths_down(spec: &LasSpec, lo: usize, from: usize) -> usize {
    let mut v = from;
    while v > lo && spec.with_depth(v - 1).validate().is_ok() {
        v -= 1;
    }
    v
}

/// Mirror of [`valid_depths_down`] for ascending searches: the largest
/// sub-range `from..=hi` starting at `from` whose specs all validate.
fn valid_depths_up(spec: &LasSpec, from: usize, hi: usize) -> usize {
    let mut v = from;
    while v < hi && spec.with_depth(v + 1).validate().is_ok() {
        v += 1;
    }
    v
}

/// Incremental mode: a depth-layered CNF and a retained solver session;
/// each probe is one `solve_assuming` call.
///
/// The session is sized to the probes it can actually see: the layered
/// CNF pays for its *largest* layer at every probe, so starting with
/// the full `[lo, hi]` range would tax a descending search (by far the
/// common case — start at the spec's depth, shrink to the minimum)
/// with headroom it never probes. Instead the session opens at
/// `[lo, start]`; only when the first probe is UNSAT does the search
/// ascend, into a second session sized `[k, hi]` (one rebuild at most,
/// and the sole probe whose learnt clauses are dropped is the UNSAT
/// one that forced the turn). Both ranges are pre-shrunk to their
/// contiguous valid-spec sub-range, so a depth that is invalid but
/// never probed cannot fail the search; probing an invalid depth
/// errors, exactly as from-scratch mode does.
fn find_min_depth_incremental(
    spec: &LasSpec,
    lo: usize,
    hi: usize,
    start: usize,
    options: &SynthOptions,
    config: sat::CdclConfig,
) -> Result<DepthSearch, SynthError> {
    let mut session = IncrementalSession::new(
        spec,
        valid_depths_down(spec, lo, start),
        start,
        &config,
        options.certify,
    )?;
    drive_depth_search(lo, hi, start, |k| {
        if !session.covers(k) {
            // The search stepped past the session's valid range: extend
            // it in the step's direction — unless the next depth itself
            // is malformed, which errors on exactly the probe where
            // from-scratch mode would have errored.
            if let Err(e) = spec.with_depth(k).validate() {
                return Err(SynthError::Spec(e));
            }
            if k > session.layered.hi {
                session = IncrementalSession::new(
                    spec,
                    k,
                    valid_depths_up(spec, k, hi),
                    &config,
                    options.certify,
                )?;
            } else {
                session = IncrementalSession::new(
                    spec,
                    valid_depths_down(spec, lo, k),
                    k,
                    &config,
                    options.certify,
                )?;
            }
        }
        let assumptions = session.layered.assumptions_for(k);
        let before = session.solver.session_stats();
        let started = Instant::now();
        let outcome = session.solver.solve_assuming(&assumptions, &options.budget);
        let time = started.elapsed();
        let stats = Some(session.solver.session_stats().since(before));
        match outcome {
            SolveOutcome::Sat(model) => {
                let mut design = decode_layered(&session.layered, spec, k, &model);
                let violations = lasre::check_validity(&design);
                if !violations.is_empty() {
                    return Err(SynthError::InvalidDesign(violations));
                }
                if !options.skip_verify {
                    verify(&design).map_err(SynthError::Verify)?;
                    design.set_verified(true);
                }
                Ok(ProbeOutcome {
                    sat: Some(true),
                    design: Some(design),
                    time,
                    stats,
                    certified: false,
                    exhaustion: None,
                })
            }
            SolveOutcome::Unsat => {
                let mut certified = false;
                if options.certify {
                    // Proof-check this depth lower bound before
                    // reporting it. The log covers the whole session so
                    // far; the failing assumption set picks out this
                    // probe's refutation.
                    // Unreachable: the session enabled proof logging
                    // before its first clause.
                    // lint:allow(no-panic)
                    let log = session.solver.proof().expect("proof logging enabled");
                    sat::certify_unsat(log, session.solver.final_assumption_conflict())
                        .map_err(|e| SynthError::Certify(e.to_string()))?;
                    certified = true;
                }
                Ok(ProbeOutcome {
                    sat: Some(false),
                    design: None,
                    time,
                    stats,
                    certified,
                    exhaustion: None,
                })
            }
            SolveOutcome::Unknown(reason) => Ok(ProbeOutcome {
                sat: None,
                design: None,
                time,
                stats,
                certified: false,
                exhaustion: Some(reason),
            }),
        }
    })
}

/// Capacity of each worker's inbox in a clause-sharing run. Clauses
/// past a full inbox are dropped (deterministically — the lockstep
/// drivers below are single-threaded), so this only trades sharing
/// coverage against memory; it never blocks a worker.
const EXCHANGE_CAPACITY: usize = 1024;

/// How far one per-depth worker has got.
enum DepthWorkerState {
    /// Still inside the undecided window with budget left.
    Running,
    /// Spent its per-probe conflict budget without a verdict.
    Exhausted,
    /// Resolved its depth: `true` = SAT, `false` = UNSAT.
    Verdict(bool),
    /// Panicked mid-turn and was quarantined (the payload is the panic
    /// message); the fleet continued on the survivors.
    Crashed(String),
}

/// One per-depth worker of [`find_min_depth_parallel`].
struct DepthWorker {
    /// The `max_k` this worker owns.
    k: usize,
    solver: CdclSolver,
    /// Conflicts this worker may still spend. Each depth is one probe,
    /// so each worker gets the full per-probe budget
    /// (`options.budget.max_conflicts`); `None` is unlimited.
    remaining: Option<u64>,
    /// Cumulative wall time of this worker's turns.
    time: Duration,
    /// Lockstep turns taken (workers with none are omitted from the
    /// probe list — the search never touched their depth).
    turns: u64,
    state: DepthWorkerState,
    /// Whether this worker's UNSAT verdict was proof-checked.
    certified: bool,
    /// Which budget axis ran this worker dry, when one did.
    exhaustion: Option<ExhaustionReason>,
}

/// Depth-parallel mode: one lockstep worker per candidate depth.
///
/// All workers share one depth-layered encoding ([`encode_layered`])
/// over the contiguous valid-depth window around `start`; worker `i`
/// owns depth `vlo + i` and probes it as `solve_assuming` under that
/// depth's activation literals. A single-threaded round-robin driver
/// (ascending depth order, `options.parallel_quantum` conflicts per
/// turn — the target machines have one vCPU) runs every worker still
/// inside the *undecided window*: SAT at depth `k` implies SAT at
/// every deeper depth and UNSAT implies UNSAT at every shallower one,
/// so each verdict shrinks the window `(highest UNSAT, lowest SAT)`
/// and prunes the workers it dominates mid-flight. The search ends
/// when the window is empty (minimum found or whole range refuted) or
/// when every worker in it ran out of budget.
///
/// With `options.share_clauses` the workers also exchange learnt
/// clauses: clauses learnt under depth-`k` assumptions are
/// consequences of the shared CNF alone (assumptions enter learnt
/// clauses only negated), so cross-depth sharing is sound — and the
/// importer RUP-checks every clause against its own database anyway.
///
/// Deterministic by construction: fixed worker order, fixed quanta, no
/// threads — two runs produce identical verdicts, stats and import
/// sequences (only the `time` fields vary).
fn find_min_depth_parallel(
    spec: &LasSpec,
    lo: usize,
    hi: usize,
    start: usize,
    options: &SynthOptions,
    config: sat::CdclConfig,
) -> Result<DepthSearch, SynthError> {
    assert!(lo <= start && start <= hi, "start depth outside [lo, hi]");
    // The sequential modes probe `start` first and error if its spec is
    // malformed; fail identically before building anything.
    spec.with_depth(start)
        .validate()
        .map_err(SynthError::Spec)?;
    let vlo = valid_depths_down(spec, lo, start);
    let vhi = valid_depths_up(spec, start, hi);
    let layered = encode_layered(spec, vlo, vhi).map_err(SynthError::Spec)?;
    let worker_count = vhi - vlo + 1;
    let hub = options
        .share_clauses
        .then(|| Arc::new(ClauseExchange::new(worker_count, EXCHANGE_CAPACITY)));
    let mut workers: Vec<DepthWorker> = Vec::with_capacity(worker_count);
    for index in 0..worker_count {
        let mut solver = CdclSolver::with_config(config.clone());
        if options.certify {
            // Proof logging must open before the first clause so each
            // worker's log is self-contained (imports are logged as
            // derived RUP steps and stay checkable).
            solver.enable_proof();
        }
        solver.add_cnf(&layered.encoding.cnf);
        // Activation literals return as assumptions on every turn:
        // variable elimination must never resolve them away.
        for &a in &layered.activation {
            solver.freeze(a.var());
        }
        if let Some(hub) = &hub {
            solver.connect_exchange(Arc::clone(hub), index, ShareLimits::default());
        }
        workers.push(DepthWorker {
            k: vlo + index,
            solver,
            remaining: options.budget.max_conflicts,
            time: Duration::ZERO,
            turns: 0,
            state: DepthWorkerState::Running,
            certified: false,
            exhaustion: None,
        });
    }
    let quantum = options.parallel_quantum.max(1);
    let deadline = options.budget.max_time.map(|t| Instant::now() + t);
    let mut lowest_sat: Option<usize> = None;
    let mut highest_unsat: Option<usize> = None;
    let mut best: Option<LasDesign> = None;
    // Set when the *driver* (not an individual worker) gives up: the
    // fleet deadline passed or the caller's stop flag was raised.
    let mut driver_exhaustion: Option<ExhaustionReason> = None;
    'driver: loop {
        let mut progressed = false;
        for worker in workers.iter_mut() {
            // Recompute the undecided window every turn: a verdict
            // earlier in this round may have closed it or pruned this
            // worker (`vlo >= lo >= 1`, so `s - 1` cannot underflow).
            let window_lo = highest_unsat.map_or(vlo, |u| u + 1);
            let window_hi = lowest_sat.map_or(vhi, |s| s - 1);
            if window_lo > window_hi {
                break 'driver;
            }
            let k = worker.k;
            if !matches!(worker.state, DepthWorkerState::Running) || k < window_lo || k > window_hi
            {
                continue;
            }
            if let Some(stop) = &options.budget.stop {
                if stop.load(Ordering::Relaxed) {
                    driver_exhaustion = Some(ExhaustionReason::Cancelled);
                    break 'driver;
                }
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                driver_exhaustion = Some(ExhaustionReason::Deadline);
                break 'driver;
            }
            let turn = worker.remaining.map_or(quantum, |r| quantum.min(r));
            let mut turn_budget = Budget::conflict_limit(turn);
            // The memory ceiling applies per worker, every turn; time
            // and stop stay driver-level (checked between quanta).
            turn_budget.max_memory_words = options.budget.max_memory_words;
            let assumptions = layered.assumptions_for(k);
            let before = worker.solver.session_stats().conflicts;
            let started = Instant::now();
            // The quantum is the crash-isolation boundary: a worker
            // that panics (a solver bug, or an injected fault) is
            // quarantined with its message and the fleet continues on
            // the survivors.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                worker.solver.solve_assuming(&assumptions, &turn_budget)
            }));
            worker.time += started.elapsed();
            worker.turns += 1;
            let outcome = match outcome {
                Ok(outcome) => outcome,
                Err(payload) => {
                    worker.state = DepthWorkerState::Crashed(panic_message(payload));
                    progressed = true;
                    continue;
                }
            };
            let spent = worker.solver.session_stats().conflicts - before;
            if let Some(r) = &mut worker.remaining {
                *r = r.saturating_sub(spent);
            }
            progressed = true;
            match outcome {
                SolveOutcome::Sat(model) => {
                    worker.state = DepthWorkerState::Verdict(true);
                    // The window cap keeps dominated workers idle, so
                    // every SAT processed here is a new minimum.
                    lowest_sat = Some(k);
                    let mut design = decode_layered(&layered, spec, k, &model);
                    let violations = lasre::check_validity(&design);
                    if !violations.is_empty() {
                        return Err(SynthError::InvalidDesign(violations));
                    }
                    if !options.skip_verify {
                        verify(&design).map_err(SynthError::Verify)?;
                        design.set_verified(true);
                    }
                    best = Some(design);
                }
                SolveOutcome::Unsat => {
                    worker.state = DepthWorkerState::Verdict(false);
                    if options.certify {
                        // Unreachable: the worker enabled proof logging
                        // before its first clause.
                        // lint:allow(no-panic)
                        let log = worker.solver.proof().expect("proof logging enabled");
                        sat::certify_unsat(log, worker.solver.final_assumption_conflict())
                            .map_err(|e| SynthError::Certify(e.to_string()))?;
                        worker.certified = true;
                    }
                    // The window floor keeps dominated workers idle, so
                    // every UNSAT processed here raises the floor.
                    highest_unsat = Some(k);
                }
                SolveOutcome::Unknown(reason) => {
                    // The memory ceiling never recovers on its own:
                    // retire the worker now. Otherwise the turn budget
                    // is conflict-only, so Unknown means the quantum
                    // ran dry; the worker retires once its per-probe
                    // budget is spent (`spent == 0` is a defensive
                    // no-progress guard).
                    if reason == ExhaustionReason::Memory {
                        worker.state = DepthWorkerState::Exhausted;
                        worker.exhaustion = Some(ExhaustionReason::Memory);
                    } else if worker.remaining == Some(0) || spent == 0 {
                        worker.state = DepthWorkerState::Exhausted;
                        worker.exhaustion = Some(ExhaustionReason::Conflicts);
                    }
                }
            }
        }
        if !progressed {
            break; // only exhausted or pruned workers left in the window
        }
    }
    // Sequential mode walks off the valid window's edges: descending
    // from a SAT verdict at the window floor it probes `vlo - 1`, and
    // ascending past an all-UNSAT window it probes `vhi + 1` — erring
    // exactly when that depth's spec is malformed (which, when the
    // window was shrunk, is by construction). Reproduce those errors.
    if lowest_sat == Some(vlo) && vlo > lo {
        if let Err(e) = spec.with_depth(vlo - 1).validate() {
            return Err(SynthError::Spec(e));
        }
    }
    if lowest_sat.is_none() && highest_unsat == Some(vhi) && vhi < hi {
        if let Err(e) = spec.with_depth(vhi + 1).validate() {
            return Err(SynthError::Spec(e));
        }
    }
    let quarantined: Vec<(usize, String)> = workers
        .iter()
        .filter_map(|w| match &w.state {
            DepthWorkerState::Crashed(msg) => Some((w.k, msg.clone())),
            _ => None,
        })
        .collect();
    // A fleet with no survivors has no anytime answer to stand on:
    // propagate the first crash (lowest depth) as the search error.
    if !quarantined.is_empty() && quarantined.len() == workers.len() {
        let (k, msg) = &quarantined[0];
        return Err(SynthError::WorkerPanic(format!("depth {k} worker: {msg}")));
    }
    let probes = workers
        .iter()
        .filter(|w| w.turns > 0)
        .map(|w| DepthProbe {
            max_k: w.k,
            sat: match w.state {
                DepthWorkerState::Verdict(sat) => Some(sat),
                // Pruned by a dominating verdict, out of budget, or
                // crashed: this worker never resolved its depth.
                _ => None,
            },
            time: w.time,
            stats: Some(w.solver.session_stats()),
            certified: w.certified,
            exhaustion: w.exhaustion,
        })
        .collect();
    // Anytime accounting: if the undecided window is still open, the
    // search ran out of something — the driver's reason (deadline or
    // cancellation) wins, else the first dried-up worker's.
    let window_lo = highest_unsat.map_or(vlo, |u| u + 1);
    let window_hi = lowest_sat.map_or(vhi, |s| s - 1);
    let exhaustion = if window_lo <= window_hi {
        driver_exhaustion.or_else(|| workers.iter().find_map(|w| w.exhaustion))
    } else {
        None
    };
    Ok(DepthSearch {
        probes,
        best,
        lo,
        hi,
        exhaustion,
        quarantined,
    })
}

/// Runs one synthesis per port permutation in parallel (one thread per
/// permutation, as the paper runs "many LaSsynth jobs in parallel"),
/// returning the first verified design. All other workers are cancelled
/// through the solver's stop flag.
///
/// # Errors
///
/// Propagates the first [`SynthError`] if *all* workers error.
pub fn explore_port_orders(
    spec: &LasSpec,
    perms: &[Vec<usize>],
    options: &SynthOptions,
) -> Result<Option<LasDesign>, SynthError> {
    let stop = Arc::new(AtomicBool::new(false));
    let mut first_error = None;
    let mut found: Option<LasDesign> = None;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = perms
            .iter()
            .map(|perm| {
                let spec = spec.with_port_order(perm);
                let mut options = options.clone();
                options.budget.stop = Some(stop.clone());
                let stop = stop.clone();
                scope.spawn(move |_| {
                    // Crash isolation: a panicking worker is this
                    // worker's failure, not the whole exploration's —
                    // without the catch the join below would re-raise
                    // and poison every other permutation.
                    catch_unwind(AssertUnwindSafe(|| {
                        let mut synth = match Synthesizer::new(spec) {
                            Ok(s) => s.with_options(options),
                            Err(e) => return Err(e),
                        };
                        let result = synth.run()?;
                        if let SynthResult::Sat(d) = result {
                            stop.store(true, Ordering::Relaxed);
                            return Ok(Some(*d));
                        }
                        Ok(None)
                    }))
                    .unwrap_or_else(|payload| Err(SynthError::WorkerPanic(panic_message(payload))))
                })
            })
            .collect();
        for h in handles {
            // Unreachable: every worker closure catches its own panics.
            // lint:allow(no-panic)
            match h.join().expect("worker panicked") {
                Ok(Some(d)) => {
                    if found.is_none() {
                        found = Some(d);
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
    })
    .expect("scope"); // lint:allow(no-panic)
    match (found, first_error) {
        (Some(d), _) => Ok(Some(d)),
        (None, Some(e)) => Err(e),
        (None, None) => Ok(None),
    }
}

/// Outcome of [`solve_portfolio_detailed`]: the verdict plus which
/// worker produced it and the whole fleet's solver statistics.
#[derive(Debug)]
pub struct PortfolioOutcome {
    /// The first definitive verdict (or `Unknown` if none).
    pub result: SynthResult,
    /// Seed of the worker that produced the verdict.
    pub winner_seed: Option<u64>,
    /// Solver statistics of the winning worker, when its backend
    /// reports them.
    pub stats: Option<sat::SolverStats>,
    /// Every worker's `(seed, stats)` in the caller's seed order,
    /// losers included — the cost the portfolio actually paid, not
    /// just the winner's share (losing workers' stats used to be
    /// dropped on the floor).
    pub worker_stats: Vec<(u64, Option<SolverStats>)>,
    /// Element-wise sum of every reporting worker's statistics
    /// ([`SolverStats::merged`]): what `--stats` prints as the
    /// `portfolio total` line. `None` only when no worker reported
    /// stats at all.
    pub total: Option<SolverStats>,
    /// Workers that crashed (panicked) mid-solve, as `(seed, panic
    /// message)` in seed order. The fleet continued on the survivors;
    /// only when *every* worker fails does the run error out instead.
    pub quarantined: Vec<(u64, String)>,
}

/// Runs one synthesis per seed in parallel and returns the first
/// definitive verdict (SAT **or** UNSAT), cancelling the rest — the
/// portfolio the paper suggests after observing up to 26× seed
/// variance (Sec. V-E, "Random seed: more is different").
///
/// Workers are *diversified*: each seed also selects a restart/decay/
/// polarity ablation through [`sat::CdclConfig::diversified`], so the
/// portfolio explores genuinely different trajectories rather than
/// different tie-breaking only.
///
/// # Errors
///
/// Propagates a [`SynthError`] only if every worker errors.
pub fn solve_portfolio(
    spec: &LasSpec,
    seeds: &[u64],
    options: &SynthOptions,
) -> Result<SynthResult, SynthError> {
    solve_portfolio_detailed(spec, seeds, options).map(|o| o.result)
}

/// [`solve_portfolio`] with the winning seed and the whole fleet's
/// solver statistics (what `lassynth synth --seeds … --stats` prints).
///
/// With `options.share_clauses` the free-running threads are replaced
/// by [`solve_portfolio_shared`]: the same diversified fleet run by a
/// deterministic single-threaded lockstep driver that exchanges
/// low-LBD learnt clauses between the workers.
///
/// # Errors
///
/// Propagates a [`SynthError`] only if every worker errors — the error
/// of the *first* failing worker in the caller's seed order (receive
/// order is a thread race; an earlier version kept whichever error
/// arrived last).
pub fn solve_portfolio_detailed(
    spec: &LasSpec,
    seeds: &[u64],
    options: &SynthOptions,
) -> Result<PortfolioOutcome, SynthError> {
    if options.share_clauses {
        return solve_portfolio_shared(spec, seeds, options);
    }
    use std::sync::mpsc;
    type WorkerReport = (
        usize,
        Option<sat::SolverStats>,
        Result<SynthResult, SynthError>,
    );
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<WorkerReport>();
    crossbeam::thread::scope(|scope| {
        for (index, &seed) in seeds.iter().enumerate() {
            let mut options = options.clone().with_diversified_seed(seed);
            options.budget.stop = Some(stop.clone());
            let spec = spec.clone();
            let stop = stop.clone();
            let tx = tx.clone();
            scope.spawn(move |_| {
                let mut stats = None;
                // Crash isolation: a panicking worker (solver bug or
                // injected fault) must not poison the whole portfolio
                // through the scope join — catch it here and report it
                // as this worker's error instead.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    Synthesizer::new(spec).and_then(|s| {
                        let mut s = s.with_options(options);
                        let r = s.run();
                        stats = s.last_solver_stats();
                        r
                    })
                }))
                .unwrap_or_else(|payload| Err(SynthError::WorkerPanic(panic_message(payload))));
                if matches!(result, Ok(SynthResult::Sat(_)) | Ok(SynthResult::Unsat)) {
                    stop.store(true, Ordering::Relaxed);
                }
                let _ = tx.send((index, stats, result));
            });
        }
        drop(tx);
        // Drain *every* worker's report: the first definitive verdict
        // to arrive still wins, but the losers' stats are part of the
        // portfolio's cost, and they observe the stop flag and report
        // promptly once a winner raises it.
        let mut winner: Option<(usize, Option<SolverStats>, SynthResult)> = None;
        let mut reports: Vec<(usize, Option<SolverStats>)> = Vec::with_capacity(seeds.len());
        let mut errors: Vec<(usize, SynthError)> = Vec::new();
        let mut crashed: Vec<(usize, String)> = Vec::new();
        for (index, stats, result) in rx {
            reports.push((index, stats));
            match result {
                Ok(r @ (SynthResult::Sat(_) | SynthResult::Unsat)) => {
                    if winner.is_none() {
                        winner = Some((index, stats, r));
                    }
                }
                Ok(SynthResult::Unknown) => {}
                Err(e) => {
                    if let SynthError::WorkerPanic(msg) = &e {
                        crashed.push((index, msg.clone()));
                    }
                    errors.push((index, e));
                }
            }
        }
        crashed.sort_by_key(|&(index, _)| index);
        let quarantined: Vec<(u64, String)> = crashed
            .into_iter()
            .map(|(index, msg)| (seeds[index], msg))
            .collect();
        reports.sort_by_key(|&(index, _)| index);
        let total = reports
            .iter()
            .filter_map(|&(_, stats)| stats)
            .reduce(SolverStats::merged);
        let worker_stats: Vec<(u64, Option<SolverStats>)> = reports
            .into_iter()
            .map(|(index, stats)| (seeds[index], stats))
            .collect();
        match winner {
            Some((index, stats, result)) => Ok(PortfolioOutcome {
                result,
                winner_seed: Some(seeds[index]),
                stats,
                worker_stats,
                total,
                quarantined,
            }),
            None if errors.len() == seeds.len() => {
                // Every worker failed: keep the error of the first
                // worker in seed order, deterministically.
                errors.sort_by_key(|&(index, _)| index);
                match errors.into_iter().next() {
                    Some((_, e)) => Err(e),
                    // Unreachable: `seeds` is non-empty whenever
                    // `errors` is.
                    None => Ok(PortfolioOutcome {
                        result: SynthResult::Unknown,
                        winner_seed: None,
                        stats: None,
                        worker_stats,
                        total,
                        quarantined,
                    }),
                }
            }
            None => Ok(PortfolioOutcome {
                result: SynthResult::Unknown,
                winner_seed: None,
                stats: None,
                worker_stats,
                total,
                quarantined,
            }),
        }
    })
    .expect("portfolio scope") // lint:allow(no-panic)
}

/// Deterministic clause-sharing portfolio: the same diversified seed
/// fleet as the threaded path, run by a single-threaded round-robin
/// driver that hands each worker `options.parallel_quantum` conflicts
/// per turn and fans each worker's low-LBD learnt clauses out to the
/// others through a bounded [`ClauseExchange`].
///
/// Single-threaded by design: the evaluation machines have one vCPU,
/// so a free-threaded sharing portfolio would measure scheduler noise.
/// What sharing buys is *fewer total conflicts to a verdict* than the
/// same fleet running isolated; the lockstep schedule makes every run
/// bit-reproducible — same spec, seeds and quantum give the same
/// winner, the same stats and the same import sequence. Workers import
/// only at their own restart boundaries (and solve-entry), and every
/// import is RUP-checked and proof-logged, so `options.certify`
/// composes: an UNSAT verdict from an import-fed worker still carries
/// a checkable DRAT log.
fn solve_portfolio_shared(
    spec: &LasSpec,
    seeds: &[u64],
    options: &SynthOptions,
) -> Result<PortfolioOutcome, SynthError> {
    let encoding = encode(spec).map_err(SynthError::Spec)?;
    let hub = Arc::new(ClauseExchange::new(seeds.len().max(1), EXCHANGE_CAPACITY));
    let mut workers: Vec<CdclSolver> = Vec::with_capacity(seeds.len());
    for (index, &seed) in seeds.iter().enumerate() {
        let config = options.solver_config(sat::CdclConfig::diversified(seed));
        let mut solver = CdclSolver::with_config(config);
        if options.certify {
            // Proof logging must open before the first clause so the
            // log is self-contained.
            solver.enable_proof();
        }
        solver.add_cnf(&encoding.cnf);
        solver.connect_exchange(Arc::clone(&hub), index, ShareLimits::default());
        workers.push(solver);
    }
    let quantum = options.parallel_quantum.max(1);
    let deadline = options.budget.max_time.map(|t| Instant::now() + t);
    let mut remaining: Vec<Option<u64>> = vec![options.budget.max_conflicts; seeds.len()];
    let mut exhausted = vec![false; seeds.len()];
    let mut quarantined: Vec<(u64, String)> = Vec::new();
    let mut winner: Option<(usize, SolveOutcome)> = None;
    'driver: while exhausted.iter().any(|done| !done) {
        for index in 0..workers.len() {
            if exhausted[index] {
                continue;
            }
            if let Some(stop) = &options.budget.stop {
                if stop.load(Ordering::Relaxed) {
                    break 'driver;
                }
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                break 'driver;
            }
            let turn = remaining[index].map_or(quantum, |r| quantum.min(r));
            let mut turn_budget = Budget::conflict_limit(turn);
            // The memory ceiling applies per worker, every turn; time
            // and stop stay driver-level (checked between quanta).
            turn_budget.max_memory_words = options.budget.max_memory_words;
            let before = workers[index].session_stats().conflicts;
            // The quantum is the crash-isolation boundary: a worker
            // that panics mid-turn (a solver bug, or an injected
            // fault) is quarantined and the fleet continues on the
            // survivors.
            let outcome = match catch_unwind(AssertUnwindSafe(|| {
                workers[index].solve_assuming(&[], &turn_budget)
            })) {
                Ok(outcome) => outcome,
                Err(payload) => {
                    exhausted[index] = true;
                    quarantined.push((seeds[index], panic_message(payload)));
                    continue;
                }
            };
            let spent = workers[index].session_stats().conflicts - before;
            if let Some(r) = &mut remaining[index] {
                *r = r.saturating_sub(spent);
            }
            match outcome {
                SolveOutcome::Unknown(reason) => {
                    // A memory ceiling never recovers on its own:
                    // retire the worker now. Otherwise the turn budget
                    // is conflict-only, so Unknown means the quantum
                    // ran dry; the worker retires once its per-worker
                    // budget is spent (`spent == 0` is a defensive
                    // no-progress guard).
                    if reason == ExhaustionReason::Memory
                        || remaining[index] == Some(0)
                        || spent == 0
                    {
                        exhausted[index] = true;
                    }
                }
                verdict => {
                    winner = Some((index, verdict));
                    break 'driver;
                }
            }
        }
    }
    // A fleet with no survivors has nothing to report: propagate the
    // first crash in seed order instead (the vector is already in
    // driver = seed order).
    if !quarantined.is_empty() && quarantined.len() == seeds.len() {
        let (seed, msg) = &quarantined[0];
        return Err(SynthError::WorkerPanic(format!(
            "seed {seed} worker: {msg}"
        )));
    }
    let worker_stats: Vec<(u64, Option<SolverStats>)> = seeds
        .iter()
        .zip(&workers)
        .map(|(&seed, worker)| (seed, Some(worker.session_stats())))
        .collect();
    let total = worker_stats
        .iter()
        .filter_map(|&(_, stats)| stats)
        .reduce(SolverStats::merged);
    let (result, winner_seed, stats) = match winner {
        Some((index, SolveOutcome::Sat(model))) => {
            let mut design = decode(spec, &encoding, &model);
            let violations = lasre::check_validity(&design);
            if !violations.is_empty() {
                return Err(SynthError::InvalidDesign(violations));
            }
            if !options.skip_verify {
                verify(&design).map_err(SynthError::Verify)?;
                design.set_verified(true);
            }
            (
                SynthResult::Sat(Box::new(design)),
                Some(seeds[index]),
                Some(workers[index].session_stats()),
            )
        }
        Some((index, SolveOutcome::Unsat)) => {
            if options.certify {
                // Unreachable: the worker enabled proof logging before
                // its first clause.
                // lint:allow(no-panic)
                let log = workers[index].proof().expect("proof logging enabled");
                sat::certify_unsat(log, workers[index].final_assumption_conflict())
                    .map_err(|e| SynthError::Certify(e.to_string()))?;
            }
            (
                SynthResult::Unsat,
                Some(seeds[index]),
                Some(workers[index].session_stats()),
            )
        }
        Some((_, SolveOutcome::Unknown(_))) | None => (SynthResult::Unknown, None, None),
    };
    Ok(PortfolioOutcome {
        result,
        winner_seed,
        stats,
        worker_stats,
        total,
        quarantined,
    })
}

/// All permutations of `0..n` (for small `n`), a convenience for
/// exhaustive port-order exploration.
///
/// # Panics
///
/// Panics if `n > 8` (40320 permutations is the sensible ceiling).
pub fn all_permutations(n: usize) -> Vec<Vec<usize>> {
    assert!(n <= 8, "too many permutations");
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    heap_permute(&mut current, n, &mut out);
    out
}

fn heap_permute(arr: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(arr.clone());
        return;
    }
    for i in 0..k {
        heap_permute(arr, k - 1, out);
        if k.is_multiple_of(2) {
            arr.swap(i, k - 1);
        } else {
            arr.swap(0, k - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasre::fixtures::cnot_spec;

    #[test]
    fn permutation_count() {
        assert_eq!(all_permutations(1).len(), 1);
        assert_eq!(all_permutations(3).len(), 6);
        assert_eq!(all_permutations(4).len(), 24);
        // All distinct.
        let mut p4 = all_permutations(4);
        p4.sort();
        p4.dedup();
        assert_eq!(p4.len(), 24);
    }

    #[test]
    fn depth_search_descends_to_minimum() {
        // The CNOT needs two layers (max_k = 3 with the padding layer);
        // starting at 4 must descend to 3 and stop at UNSAT for 2.
        // Exercises the default (incremental) mode.
        let spec = cnot_spec();
        let search = find_min_depth(&spec, 2, 5, 4, &SynthOptions::default()).unwrap();
        assert_eq!(search.best_depth(), Some(3));
        let probed: Vec<usize> = search.probes.iter().map(|p| p.max_k).collect();
        assert_eq!(probed, vec![4, 3, 2]);
        assert_eq!(search.probes[2].sat, Some(false));
        assert!(search.total_time() > Duration::ZERO);
        assert!(search.best.as_ref().unwrap().verified());
    }

    #[test]
    fn depth_search_ascends_from_unsat() {
        let spec = cnot_spec();
        let search = find_min_depth(&spec, 2, 5, 2, &SynthOptions::default()).unwrap();
        assert_eq!(search.best_depth(), Some(3));
        let probed: Vec<usize> = search.probes.iter().map(|p| p.max_k).collect();
        assert_eq!(probed, vec![2, 3]);
    }

    /// Runs the same search in both modes and asserts identical probe
    /// order, per-probe verdicts and best depth.
    fn assert_modes_agree(spec: &LasSpec, lo: usize, hi: usize, start: usize) {
        let incremental = find_min_depth(spec, lo, hi, start, &SynthOptions::default()).unwrap();
        let scratch_options = SynthOptions {
            incremental: false,
            ..SynthOptions::default()
        };
        let scratch = find_min_depth(spec, lo, hi, start, &scratch_options).unwrap();
        let view = |s: &DepthSearch| -> Vec<(usize, Option<bool>)> {
            s.probes.iter().map(|p| (p.max_k, p.sat)).collect()
        };
        assert_eq!(
            view(&incremental),
            view(&scratch),
            "probe sequences diverge (start {start})"
        );
        assert_eq!(incremental.best_depth(), scratch.best_depth());
        if let Some(best) = &incremental.best {
            assert!(best.verified(), "incremental best design verifies");
        }
    }

    #[test]
    fn incremental_matches_scratch_descending() {
        assert_modes_agree(&cnot_spec(), 2, 5, 4);
    }

    #[test]
    fn incremental_matches_scratch_ascending() {
        assert_modes_agree(&cnot_spec(), 2, 5, 2);
    }

    #[test]
    fn incremental_matches_scratch_from_the_top() {
        assert_modes_agree(&cnot_spec(), 2, 5, 5);
    }

    /// Depth 1 is invalid for the CNOT (its bottom-port cubes fall out
    /// of the arrays), but the descent stops at the UNSAT depth 2 and
    /// never probes it — so a range including depth 1 must still
    /// succeed, identically in both modes (the CLI defaults to
    /// `--lo 1`).
    #[test]
    fn unprobed_invalid_depths_do_not_fail_the_search() {
        assert_modes_agree(&cnot_spec(), 1, 5, 4);
    }

    /// Probing an invalid depth errors in both modes: starting *at*
    /// the CNOT's invalid depth 1 fails up front rather than probing.
    #[test]
    fn probing_an_invalid_depth_errors_in_both_modes() {
        for incremental in [true, false] {
            let options = SynthOptions {
                incremental,
                ..SynthOptions::default()
            };
            let r = find_min_depth(&cnot_spec(), 1, 5, 1, &options);
            assert!(
                matches!(r, Err(SynthError::Spec(_))),
                "expected a spec error probing depth 1 (incremental={incremental})"
            );
        }
    }

    /// Both modes record per-probe solver statistics for the CDCL
    /// backend.
    #[test]
    fn probes_carry_solver_stats() {
        let spec = cnot_spec();
        for incremental in [true, false] {
            let options = SynthOptions {
                incremental,
                ..SynthOptions::default()
            };
            let search = find_min_depth(&spec, 2, 5, 4, &options).unwrap();
            for p in &search.probes {
                let stats = p.stats.unwrap_or_else(|| {
                    panic!(
                        "probe {} missing stats (incremental={incremental})",
                        p.max_k
                    )
                });
                assert!(
                    stats.propagations > 0,
                    "probe {} did no work (incremental={incremental})",
                    p.max_k
                );
            }
        }
    }

    /// A certified search reaches the same answer as the plain one and
    /// proof-checks every UNSAT probe along the way, in both modes.
    #[test]
    fn certified_search_agrees_and_marks_unsat_probes() {
        let spec = cnot_spec();
        let plain = find_min_depth(&spec, 2, 5, 4, &SynthOptions::default()).unwrap();
        for incremental in [true, false] {
            let options = SynthOptions {
                incremental,
                certify: true,
                ..SynthOptions::default()
            };
            let certified = find_min_depth(&spec, 2, 5, 4, &options).unwrap();
            assert_eq!(certified.best_depth(), plain.best_depth());
            let view = |s: &DepthSearch| -> Vec<(usize, Option<bool>)> {
                s.probes.iter().map(|p| (p.max_k, p.sat)).collect()
            };
            assert_eq!(view(&certified), view(&plain));
            let mut unsat_probes = 0;
            for p in &certified.probes {
                assert_eq!(
                    p.certified,
                    p.sat == Some(false),
                    "probe {} certification flag (incremental={incremental})",
                    p.max_k
                );
                unsat_probes += usize::from(p.sat == Some(false));
            }
            assert!(unsat_probes > 0, "search never hit an UNSAT probe");
        }
    }

    #[test]
    fn detailed_portfolio_reports_winner_and_stats() {
        let spec = cnot_spec();
        let o = solve_portfolio_detailed(&spec, &[0, 1, 2], &SynthOptions::default()).unwrap();
        assert!(o.result.is_sat());
        assert!(o.winner_seed.is_some(), "winning seed recorded");
        let stats = o.stats.expect("CDCL workers report stats");
        assert!(stats.propagations > 0);
    }

    #[test]
    fn portfolio_returns_definitive_verdicts() {
        let spec = cnot_spec();
        let r = solve_portfolio(&spec, &[0, 1, 2, 3], &SynthOptions::default()).unwrap();
        assert!(r.is_sat());
        // And an unsatisfiable variant is proven UNSAT by some worker.
        let r = solve_portfolio(&spec.with_depth(2), &[0, 1], &SynthOptions::default()).unwrap();
        assert!(r.is_unsat());
    }

    /// Losing workers' statistics are no longer dropped: every worker
    /// reports, and the total is at least the winner's share.
    #[test]
    fn portfolio_accounts_for_losing_workers() {
        let spec = cnot_spec();
        let o = solve_portfolio_detailed(&spec, &[0, 1, 2], &SynthOptions::default()).unwrap();
        assert!(o.result.is_sat());
        assert_eq!(o.worker_stats.len(), 3, "losers report too");
        let winner = o.winner_seed.unwrap();
        assert!(o.worker_stats.iter().any(|&(seed, _)| seed == winner));
        let total = o.total.expect("CDCL workers report stats");
        let winner_stats = o.stats.unwrap();
        assert!(total.propagations >= winner_stats.propagations);
    }

    /// When every worker fails, the portfolio surfaces the error
    /// instead of an `Unknown` — two deliberately failing workers
    /// (depth 1 is invalid for the CNOT, so both die in
    /// `Synthesizer::new`) must yield the spec error.
    #[test]
    fn portfolio_propagates_error_when_all_workers_fail() {
        let spec = cnot_spec().with_depth(1);
        let r = solve_portfolio_detailed(&spec, &[0, 1], &SynthOptions::default());
        assert!(
            matches!(r, Err(SynthError::Spec(_))),
            "expected the first worker's spec error"
        );
    }

    fn shared_options() -> SynthOptions {
        SynthOptions {
            share_clauses: true,
            // Small quantum so even the CNOT-sized fixtures take
            // several lockstep turns and actually exchange clauses.
            parallel_quantum: 20,
            ..SynthOptions::default()
        }
    }

    #[test]
    fn shared_portfolio_agrees_with_threaded_verdicts() {
        let spec = cnot_spec();
        let o = solve_portfolio_detailed(&spec, &[0, 1, 2], &shared_options()).unwrap();
        assert!(o.result.is_sat());
        assert!(o.winner_seed.is_some());
        assert_eq!(o.worker_stats.len(), 3);
        assert!(o.total.expect("lockstep workers report stats").propagations > 0);
        if let SynthResult::Sat(d) = &o.result {
            assert!(d.verified());
        }
        let u = solve_portfolio_detailed(&spec.with_depth(2), &[0, 1], &shared_options()).unwrap();
        assert!(u.result.is_unsat());
    }

    /// Two identical shared-portfolio runs are bit-identical: same
    /// winner, same per-worker conflicts/propagations and the same
    /// export/import/kept sequence.
    #[test]
    fn shared_portfolio_runs_are_deterministic() {
        let spec = cnot_spec();
        let options = SynthOptions {
            // One conflict per turn: the CNOT solves in a couple of
            // conflicts, so anything larger lets the first worker win
            // before the fleet ever trades a clause.
            parallel_quantum: 1,
            ..shared_options()
        };
        let run = || {
            let o = solve_portfolio_detailed(&spec, &[0, 1, 2, 3], &options).unwrap();
            assert!(o.result.is_sat());
            let fleet: Vec<_> = o
                .worker_stats
                .iter()
                .map(|&(seed, stats)| {
                    let s = stats.unwrap();
                    (
                        seed,
                        s.conflicts,
                        s.propagations,
                        s.exported_clauses,
                        s.imported_clauses,
                        s.imported_kept,
                    )
                })
                .collect();
            (o.winner_seed, fleet)
        };
        let first = run();
        assert_eq!(first, run());
        let exchanged: u64 = first.1.iter().map(|t| t.4).sum();
        assert!(exchanged > 0, "the fleet never exchanged a clause");
    }

    /// An UNSAT verdict from an import-fed worker still carries a
    /// checkable DRAT log.
    #[test]
    fn shared_portfolio_unsat_certifies() {
        let spec = cnot_spec().with_depth(2);
        let options = SynthOptions {
            certify: true,
            ..shared_options()
        };
        let o = solve_portfolio_detailed(&spec, &[0, 1], &options).unwrap();
        assert!(o.result.is_unsat());
    }

    fn depth_parallel_options(share: bool) -> SynthOptions {
        SynthOptions {
            depth_parallel: true,
            share_clauses: share,
            parallel_quantum: 20,
            ..SynthOptions::default()
        }
    }

    /// Depth-parallel mode (with and without sharing) agrees with the
    /// sequential walk on the minimum, and both bracketing verdicts
    /// come from the depths' own workers.
    #[test]
    fn depth_parallel_finds_the_same_minimum() {
        let spec = cnot_spec();
        for share in [false, true] {
            let search = find_min_depth(&spec, 2, 5, 4, &depth_parallel_options(share)).unwrap();
            assert_eq!(search.best_depth(), Some(3), "share={share}");
            assert!(search.best.as_ref().unwrap().verified());
            let verdict = |k: usize| {
                search
                    .probes
                    .iter()
                    .find(|p| p.max_k == k)
                    .and_then(|p| p.sat)
            };
            assert_eq!(verdict(2), Some(false), "share={share}");
            assert_eq!(verdict(3), Some(true), "share={share}");
        }
    }

    #[test]
    fn depth_parallel_runs_are_deterministic() {
        let spec = cnot_spec();
        let run = || {
            let s = find_min_depth(&spec, 2, 5, 5, &depth_parallel_options(true)).unwrap();
            let probes: Vec<_> = s
                .probes
                .iter()
                .map(|p| {
                    let st = p.stats.unwrap();
                    (
                        p.max_k,
                        p.sat,
                        st.conflicts,
                        st.propagations,
                        st.imported_clauses,
                        st.imported_kept,
                    )
                })
                .collect();
            (s.best_depth(), probes)
        };
        assert_eq!(run(), run());
    }

    /// Depth-parallel UNSAT verdicts proof-check under `certify`.
    #[test]
    fn depth_parallel_certifies_unsat_depths() {
        let spec = cnot_spec();
        let options = SynthOptions {
            certify: true,
            ..depth_parallel_options(true)
        };
        let search = find_min_depth(&spec, 2, 5, 4, &options).unwrap();
        assert_eq!(search.best_depth(), Some(3));
        let p2 = search.probes.iter().find(|p| p.max_k == 2).unwrap();
        assert_eq!(p2.sat, Some(false));
        assert!(p2.certified, "UNSAT depth 2 carries a checked proof");
    }

    /// Depth-parallel reproduces the sequential edge semantics:
    /// starting at the CNOT's invalid depth 1 errors up front, while a
    /// range whose invalid depths are never needed succeeds.
    #[test]
    fn depth_parallel_edge_semantics_match_sequential() {
        let r = find_min_depth(&cnot_spec(), 1, 5, 1, &depth_parallel_options(false));
        assert!(matches!(r, Err(SynthError::Spec(_))));
        let s = find_min_depth(&cnot_spec(), 1, 5, 4, &depth_parallel_options(false)).unwrap();
        assert_eq!(s.best_depth(), Some(3));
    }

    #[test]
    fn port_order_exploration_finds_a_design() {
        let spec = cnot_spec();
        // Identity and the control/target swap are both realizable.
        let perms = vec![vec![0, 1, 2, 3], vec![1, 0, 3, 2]];
        let d = explore_port_orders(&spec, &perms, &SynthOptions::default()).unwrap();
        assert!(d.is_some());
        assert!(d.unwrap().verified());
    }

    fn panic_fault(at: u64, only_seed: Option<u64>) -> Option<sat::FaultPlan> {
        Some(sat::FaultPlan {
            kind: sat::FaultKind::Panic,
            at,
            only_seed,
        })
    }

    /// An expired per-probe budget no longer loses the work done: the
    /// search comes back as an anytime window instead of a bare
    /// Unknown, naming the axis that ran dry.
    #[test]
    fn exhausted_depth_search_returns_an_anytime_window() {
        let spec = cnot_spec();
        // One conflict per probe: the first probe gives up immediately.
        let options = SynthOptions {
            budget: Budget::conflict_limit(1),
            ..SynthOptions::default()
        };
        let search = find_min_depth(&spec, 2, 5, 4, &options).unwrap();
        assert_eq!(search.exhaustion, Some(ExhaustionReason::Conflicts));
        assert_eq!(search.window(), (2, None));
        assert_eq!(search.probes.len(), 1);
        assert_eq!(
            search.probes[0].exhaustion,
            Some(ExhaustionReason::Conflicts)
        );

        // The memory governor surfaces the same way.
        let options = SynthOptions {
            budget: Budget::memory_limit_words(1),
            ..SynthOptions::default()
        };
        let search = find_min_depth(&spec, 2, 5, 4, &options).unwrap();
        assert_eq!(search.exhaustion, Some(ExhaustionReason::Memory));
        assert_eq!(search.certified_lower_bound(), 2);
    }

    /// A resolved search reports no exhaustion and a closed window.
    #[test]
    fn resolved_depth_search_has_a_closed_window() {
        let search = find_min_depth(&cnot_spec(), 2, 5, 4, &SynthOptions::default()).unwrap();
        assert_eq!(search.exhaustion, None);
        assert_eq!(search.window(), (3, Some(3)));
        assert!(search.quarantined.is_empty());
    }

    /// Regression (crash isolation): a panicking portfolio worker used
    /// to poison the whole solve when its thread was joined. Now the
    /// panic is caught in the worker, the fleet continues, and the
    /// verdict stands.
    #[test]
    fn threaded_portfolio_survives_an_injected_worker_panic() {
        let spec = cnot_spec();
        let options = SynthOptions {
            fault_plan: panic_fault(0, Some(1)),
            ..SynthOptions::default()
        };
        let o = solve_portfolio_detailed(&spec, &[0, 1, 2], &options).unwrap();
        assert!(o.result.is_sat());
        // Seed 1 either crashed (quarantined) or was cancelled by the
        // winner before its first conflict; no other worker may crash.
        assert!(o.quarantined.iter().all(|&(seed, _)| seed == 1));
    }

    /// When every worker crashes, the portfolio errors with the first
    /// crash in seed order instead of panicking the caller.
    #[test]
    fn threaded_portfolio_total_crash_is_an_error_not_a_panic() {
        let spec = cnot_spec();
        let options = SynthOptions {
            fault_plan: panic_fault(0, None),
            ..SynthOptions::default()
        };
        let r = solve_portfolio_detailed(&spec, &[0, 1], &options);
        match r {
            Err(SynthError::WorkerPanic(msg)) => {
                assert!(msg.contains("injected fault"), "{msg}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    /// The lockstep sharing driver quarantines a crashed worker
    /// deterministically and finishes on the survivors.
    #[test]
    fn shared_portfolio_quarantines_a_crashed_worker() {
        let spec = cnot_spec();
        let options = SynthOptions {
            fault_plan: panic_fault(1, Some(1)),
            // One conflict per turn: worker 1 crashes on its first
            // turn, before any worker can win.
            parallel_quantum: 1,
            ..shared_options()
        };
        let o = solve_portfolio_detailed(&spec, &[0, 1, 2], &options).unwrap();
        assert!(o.result.is_sat());
        assert_eq!(o.quarantined.len(), 1);
        assert_eq!(o.quarantined[0].0, 1);
        assert!(o.quarantined[0].1.contains("injected fault"));
        // Survivors (and the casualty's partial work) still report
        // stats into the portfolio total.
        assert!(o.total.expect("stats").propagations > 0);
    }

    /// The depth-parallel fleet keeps the verdicts it already has when
    /// later workers crash: depth 2 resolves UNSAT in its first turn
    /// (1 conflict), then every deeper worker trips the conflict-10
    /// panic — the search still returns, quarantines the casualties
    /// and reports the certified lower bound.
    #[test]
    fn depth_parallel_crash_keeps_the_partial_answer() {
        let spec = cnot_spec();
        let options = SynthOptions {
            fault_plan: panic_fault(10, None),
            ..depth_parallel_options(false)
        };
        let search = find_min_depth(&spec, 2, 5, 4, &options).unwrap();
        let quarantined: Vec<usize> = search.quarantined.iter().map(|&(k, _)| k).collect();
        assert_eq!(quarantined, vec![3, 4, 5]);
        assert_eq!(search.certified_lower_bound(), 3);
        assert_eq!(search.best_depth(), None);
    }

    /// A depth-parallel fleet with no survivors propagates the first
    /// crash (lowest depth) as an error.
    #[test]
    fn depth_parallel_total_crash_is_an_error() {
        let spec = cnot_spec();
        let options = SynthOptions {
            fault_plan: panic_fault(1, None),
            ..depth_parallel_options(false)
        };
        let r = find_min_depth(&spec, 2, 5, 4, &options);
        match r {
            Err(SynthError::WorkerPanic(msg)) => {
                assert!(msg.contains("depth 2"), "{msg}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    /// A crashed port-order worker is that permutation's failure, not
    /// the exploration's: the surviving permutation still answers.
    #[test]
    fn port_order_exploration_survives_a_crashed_worker() {
        let spec = cnot_spec();
        let perms = vec![vec![0, 1, 2, 3], vec![1, 0, 3, 2]];
        // The fault fires in every worker; with a high trigger only
        // whoever works longest hits it — and with trigger 0, all do.
        let options = SynthOptions {
            fault_plan: panic_fault(0, None),
            ..SynthOptions::default()
        };
        let r = explore_port_orders(&spec, &perms, &options);
        // All workers crash: the first error surfaces as WorkerPanic
        // (not a caller panic, which the old join would have raised).
        assert!(matches!(r, Err(SynthError::WorkerPanic(_))));
    }
}
