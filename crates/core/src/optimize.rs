//! Optimization loops around the synthesizer (paper Fig. 12b).
//!
//! The synthesizer answers one SAT/UNSAT question; optimization asks a
//! sequence of them: shrink the allowed volume until UNSAT (descending),
//! or grow it until SAT (ascending), and optionally explore port
//! permutations in parallel with first-success cancellation.

use crate::synthesize::{SynthError, SynthOptions, SynthResult, Synthesizer};
use lasre::{LasDesign, LasSpec};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One probe of the depth search.
#[derive(Debug)]
pub struct DepthProbe {
    /// The `max_k` tried.
    pub max_k: usize,
    /// `Some(true)` = SAT, `Some(false)` = UNSAT, `None` = budget expired.
    pub sat: Option<bool>,
    /// Wall-clock time of the solve.
    pub time: Duration,
}

/// Result of [`find_min_depth`].
#[derive(Debug)]
pub struct DepthSearch {
    /// Every probe performed, in order.
    pub probes: Vec<DepthProbe>,
    /// The best verified design found, if any.
    pub best: Option<LasDesign>,
}

impl DepthSearch {
    /// The minimal satisfiable `max_k` discovered.
    pub fn best_depth(&self) -> Option<usize> {
        self.best.as_ref().map(|d| d.spec().max_k)
    }

    /// Total solver time across probes.
    pub fn total_time(&self) -> Duration {
        self.probes.iter().map(|p| p.time).sum()
    }
}

/// Finds the minimal time extent (`max_k`) at which `spec` is
/// satisfiable, between `lo` and `hi` (inclusive), exactly as the
/// paper's evaluation does: start somewhere, descend while SAT, ascend
/// while UNSAT (Sec. V-B).
///
/// The spec's `-K` ports are relocated to each probed top layer via
/// [`LasSpec::with_depth`].
///
/// # Errors
///
/// Propagates [`SynthError`] from any probe.
pub fn find_min_depth(
    spec: &LasSpec,
    lo: usize,
    hi: usize,
    start: usize,
    options: &SynthOptions,
) -> Result<DepthSearch, SynthError> {
    assert!(lo <= start && start <= hi, "start depth outside [lo, hi]");
    let mut probes = Vec::new();
    let mut best: Option<LasDesign> = None;
    let mut probe = |k: usize, probes: &mut Vec<DepthProbe>| -> Result<Option<bool>, SynthError> {
        let s = spec.with_depth(k);
        let mut synth = Synthesizer::new(s)?.with_options(options.clone());
        let result = synth.run()?;
        let time = synth.last_solve_time().unwrap_or_default();
        let sat = match result {
            SynthResult::Sat(d) => {
                if best
                    .as_ref()
                    .is_none_or(|b| d.spec().max_k < b.spec().max_k)
                {
                    best = Some(*d);
                }
                Some(true)
            }
            SynthResult::Unsat => Some(false),
            SynthResult::Unknown => None,
        };
        probes.push(DepthProbe {
            max_k: k,
            sat,
            time,
        });
        Ok(sat)
    };
    let mut k = start;
    match probe(k, &mut probes)? {
        Some(true) => {
            // Descend while SAT.
            while k > lo {
                k -= 1;
                match probe(k, &mut probes)? {
                    Some(true) => continue,
                    _ => break,
                }
            }
        }
        Some(false) => {
            // Ascend while UNSAT.
            while k < hi {
                k += 1;
                match probe(k, &mut probes)? {
                    Some(false) => continue,
                    _ => break,
                }
            }
        }
        None => {}
    }
    Ok(DepthSearch { probes, best })
}

/// Runs one synthesis per port permutation in parallel (one thread per
/// permutation, as the paper runs "many LaSsynth jobs in parallel"),
/// returning the first verified design. All other workers are cancelled
/// through the solver's stop flag.
///
/// # Errors
///
/// Propagates the first [`SynthError`] if *all* workers error.
pub fn explore_port_orders(
    spec: &LasSpec,
    perms: &[Vec<usize>],
    options: &SynthOptions,
) -> Result<Option<LasDesign>, SynthError> {
    let stop = Arc::new(AtomicBool::new(false));
    let mut first_error = None;
    let mut found: Option<LasDesign> = None;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = perms
            .iter()
            .map(|perm| {
                let spec = spec.with_port_order(perm);
                let mut options = options.clone();
                options.budget.stop = Some(stop.clone());
                let stop = stop.clone();
                scope.spawn(move |_| {
                    let mut synth = match Synthesizer::new(spec) {
                        Ok(s) => s.with_options(options),
                        Err(e) => return Err(e),
                    };
                    let result = synth.run()?;
                    if let SynthResult::Sat(d) = result {
                        stop.store(true, Ordering::Relaxed);
                        return Ok(Some(*d));
                    }
                    Ok(None)
                })
            })
            .collect();
        for h in handles {
            match h.join().expect("worker panicked") {
                Ok(Some(d)) => {
                    if found.is_none() {
                        found = Some(d);
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
    })
    .expect("scope");
    match (found, first_error) {
        (Some(d), _) => Ok(Some(d)),
        (None, Some(e)) => Err(e),
        (None, None) => Ok(None),
    }
}

/// Outcome of [`solve_portfolio_detailed`]: the verdict plus which
/// worker produced it and that worker's solver statistics.
#[derive(Debug)]
pub struct PortfolioOutcome {
    /// The first definitive verdict (or `Unknown` if none).
    pub result: SynthResult,
    /// Seed of the worker that produced the verdict.
    pub winner_seed: Option<u64>,
    /// Solver statistics of the winning worker, when its backend
    /// reports them.
    pub stats: Option<sat::SolverStats>,
}

/// Runs one synthesis per seed in parallel and returns the first
/// definitive verdict (SAT **or** UNSAT), cancelling the rest — the
/// portfolio the paper suggests after observing up to 26× seed
/// variance (Sec. V-E, "Random seed: more is different").
///
/// Workers are *diversified*: each seed also selects a restart/decay/
/// polarity ablation through [`sat::CdclConfig::diversified`], so the
/// portfolio explores genuinely different trajectories rather than
/// different tie-breaking only.
///
/// # Errors
///
/// Propagates a [`SynthError`] only if every worker errors.
pub fn solve_portfolio(
    spec: &LasSpec,
    seeds: &[u64],
    options: &SynthOptions,
) -> Result<SynthResult, SynthError> {
    solve_portfolio_detailed(spec, seeds, options).map(|o| o.result)
}

/// [`solve_portfolio`] with the winning seed and its solver statistics
/// (what `lassynth synth --seeds … --stats` prints).
///
/// # Errors
///
/// Propagates a [`SynthError`] only if every worker errors.
pub fn solve_portfolio_detailed(
    spec: &LasSpec,
    seeds: &[u64],
    options: &SynthOptions,
) -> Result<PortfolioOutcome, SynthError> {
    use std::sync::mpsc;
    type WorkerReport = (
        u64,
        Option<sat::SolverStats>,
        Result<SynthResult, SynthError>,
    );
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<WorkerReport>();
    crossbeam::thread::scope(|scope| {
        for &seed in seeds {
            let mut options = options.clone().with_diversified_seed(seed);
            options.budget.stop = Some(stop.clone());
            let spec = spec.clone();
            let stop = stop.clone();
            let tx = tx.clone();
            scope.spawn(move |_| {
                let mut stats = None;
                let result = Synthesizer::new(spec).and_then(|s| {
                    let mut s = s.with_options(options);
                    let r = s.run();
                    stats = s.last_solver_stats();
                    r
                });
                if matches!(result, Ok(SynthResult::Sat(_)) | Ok(SynthResult::Unsat)) {
                    stop.store(true, Ordering::Relaxed);
                }
                let _ = tx.send((seed, stats, result));
            });
        }
        drop(tx);
        let mut first_error = None;
        let mut unknown_seen = false;
        for (seed, stats, result) in rx {
            match result {
                Ok(r @ (SynthResult::Sat(_) | SynthResult::Unsat)) => {
                    return Ok(PortfolioOutcome {
                        result: r,
                        winner_seed: Some(seed),
                        stats,
                    })
                }
                Ok(SynthResult::Unknown) => unknown_seen = true,
                Err(e) => first_error = Some(e),
            }
        }
        match (unknown_seen, first_error) {
            (false, Some(e)) => Err(e),
            _ => Ok(PortfolioOutcome {
                result: SynthResult::Unknown,
                winner_seed: None,
                stats: None,
            }),
        }
    })
    .expect("portfolio scope")
}

/// All permutations of `0..n` (for small `n`), a convenience for
/// exhaustive port-order exploration.
///
/// # Panics
///
/// Panics if `n > 8` (40320 permutations is the sensible ceiling).
pub fn all_permutations(n: usize) -> Vec<Vec<usize>> {
    assert!(n <= 8, "too many permutations");
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    heap_permute(&mut current, n, &mut out);
    out
}

fn heap_permute(arr: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(arr.clone());
        return;
    }
    for i in 0..k {
        heap_permute(arr, k - 1, out);
        if k.is_multiple_of(2) {
            arr.swap(i, k - 1);
        } else {
            arr.swap(0, k - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasre::fixtures::cnot_spec;

    #[test]
    fn permutation_count() {
        assert_eq!(all_permutations(1).len(), 1);
        assert_eq!(all_permutations(3).len(), 6);
        assert_eq!(all_permutations(4).len(), 24);
        // All distinct.
        let mut p4 = all_permutations(4);
        p4.sort();
        p4.dedup();
        assert_eq!(p4.len(), 24);
    }

    #[test]
    fn depth_search_descends_to_minimum() {
        // The CNOT needs two layers (max_k = 3 with the padding layer);
        // starting at 4 must descend to 3 and stop at UNSAT for 2.
        let spec = cnot_spec();
        let search = find_min_depth(&spec, 2, 5, 4, &SynthOptions::default()).unwrap();
        assert_eq!(search.best_depth(), Some(3));
        let probed: Vec<usize> = search.probes.iter().map(|p| p.max_k).collect();
        assert_eq!(probed, vec![4, 3, 2]);
        assert_eq!(search.probes[2].sat, Some(false));
        assert!(search.total_time() > Duration::ZERO);
    }

    #[test]
    fn depth_search_ascends_from_unsat() {
        let spec = cnot_spec();
        let search = find_min_depth(&spec, 2, 5, 2, &SynthOptions::default()).unwrap();
        assert_eq!(search.best_depth(), Some(3));
        let probed: Vec<usize> = search.probes.iter().map(|p| p.max_k).collect();
        assert_eq!(probed, vec![2, 3]);
    }

    #[test]
    fn detailed_portfolio_reports_winner_and_stats() {
        let spec = cnot_spec();
        let o = solve_portfolio_detailed(&spec, &[0, 1, 2], &SynthOptions::default()).unwrap();
        assert!(o.result.is_sat());
        assert!(o.winner_seed.is_some(), "winning seed recorded");
        let stats = o.stats.expect("CDCL workers report stats");
        assert!(stats.propagations > 0);
    }

    #[test]
    fn portfolio_returns_definitive_verdicts() {
        let spec = cnot_spec();
        let r = solve_portfolio(&spec, &[0, 1, 2, 3], &SynthOptions::default()).unwrap();
        assert!(r.is_sat());
        // And an unsatisfiable variant is proven UNSAT by some worker.
        let r = solve_portfolio(&spec.with_depth(2), &[0, 1], &SynthOptions::default()).unwrap();
        assert!(r.is_unsat());
    }

    #[test]
    fn port_order_exploration_finds_a_design() {
        let spec = cnot_spec();
        // Identity and the control/target swap are both realizable.
        let perms = vec![vec![0, 1, 2, 3], vec![1, 0, 3, 2]];
        let d = explore_port_orders(&spec, &perms, &SynthOptions::default()).unwrap();
        assert!(d.is_some());
        assert!(d.unwrap().verified());
    }
}
