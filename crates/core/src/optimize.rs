//! Optimization loops around the synthesizer (paper Fig. 12b).
//!
//! The synthesizer answers one SAT/UNSAT question; optimization asks a
//! sequence of them: shrink the allowed volume until UNSAT (descending),
//! or grow it until SAT (ascending), and optionally explore port
//! permutations in parallel with first-success cancellation.

use crate::decode::decode_layered;
use crate::encode::encode_layered;
use crate::synthesize::{BackendChoice, SynthError, SynthOptions, SynthResult, Synthesizer};
use crate::verify::verify;
use lasre::{LasDesign, LasSpec};
use sat::{CdclSolver, SolveOutcome, SolverStats};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One probe of the depth search.
#[derive(Debug)]
pub struct DepthProbe {
    /// The `max_k` tried.
    pub max_k: usize,
    /// `Some(true)` = SAT, `Some(false)` = UNSAT, `None` = budget expired.
    pub sat: Option<bool>,
    /// Wall-clock time of the solve.
    pub time: Duration,
    /// Search statistics of this probe's solve (conflicts,
    /// propagations, …). `None` when the backend reports none
    /// (varisat).
    pub stats: Option<SolverStats>,
    /// Whether this probe's UNSAT verdict carried a DRAT proof that
    /// passed the in-tree checker (`options.certify` only; always
    /// `false` for SAT/Unknown probes — a failing check aborts the
    /// search with [`SynthError::Certify`] instead).
    pub certified: bool,
}

/// Result of [`find_min_depth`].
#[derive(Debug)]
pub struct DepthSearch {
    /// Every probe performed, in order.
    pub probes: Vec<DepthProbe>,
    /// The best verified design found, if any.
    pub best: Option<LasDesign>,
}

impl DepthSearch {
    /// The minimal satisfiable `max_k` discovered.
    pub fn best_depth(&self) -> Option<usize> {
        self.best.as_ref().map(|d| d.spec().max_k)
    }

    /// Total solver time across probes.
    pub fn total_time(&self) -> Duration {
        self.probes.iter().map(|p| p.time).sum()
    }
}

/// What one probe of the depth search observed.
struct ProbeOutcome {
    sat: Option<bool>,
    design: Option<LasDesign>,
    time: Duration,
    stats: Option<SolverStats>,
    certified: bool,
}

/// The paper's probe order (start somewhere, descend while SAT, ascend
/// while UNSAT), shared by the incremental and from-scratch modes.
fn drive_depth_search(
    lo: usize,
    hi: usize,
    start: usize,
    mut probe: impl FnMut(usize) -> Result<ProbeOutcome, SynthError>,
) -> Result<DepthSearch, SynthError> {
    assert!(lo <= start && start <= hi, "start depth outside [lo, hi]");
    let mut probes = Vec::new();
    let mut best: Option<LasDesign> = None;
    let mut step = |k: usize,
                    probes: &mut Vec<DepthProbe>,
                    best: &mut Option<LasDesign>|
     -> Result<Option<bool>, SynthError> {
        let outcome = probe(k)?;
        if let Some(d) = outcome.design {
            if best
                .as_ref()
                .is_none_or(|b| d.spec().max_k < b.spec().max_k)
            {
                *best = Some(d);
            }
        }
        probes.push(DepthProbe {
            max_k: k,
            sat: outcome.sat,
            time: outcome.time,
            stats: outcome.stats,
            certified: outcome.certified,
        });
        Ok(outcome.sat)
    };
    let mut k = start;
    match step(k, &mut probes, &mut best)? {
        Some(true) => {
            // Descend while SAT.
            while k > lo {
                k -= 1;
                match step(k, &mut probes, &mut best)? {
                    Some(true) => continue,
                    _ => break,
                }
            }
        }
        Some(false) => {
            // Ascend while UNSAT.
            while k < hi {
                k += 1;
                match step(k, &mut probes, &mut best)? {
                    Some(false) => continue,
                    _ => break,
                }
            }
        }
        None => {}
    }
    Ok(DepthSearch { probes, best })
}

/// Finds the minimal time extent (`max_k`) at which `spec` is
/// satisfiable, between `lo` and `hi` (inclusive), exactly as the
/// paper's evaluation does: start somewhere, descend while SAT, ascend
/// while UNSAT (Sec. V-B).
///
/// The spec's `-K` ports are relocated to each probed top layer via
/// [`LasSpec::with_depth`].
///
/// With `options.incremental` (the default, CDCL backend only) the
/// whole search runs as **one incremental solver session** over a
/// depth-layered encoding ([`encode_layered`]): each probe is a
/// `solve_assuming` call under that depth's activation literals, so the
/// clauses learnt refuting or solving one depth carry over to the next
/// — the lever the T-factory-scale instances need. Otherwise every
/// probe re-encodes `spec.with_depth(k)` and solves from scratch. Both
/// modes probe the same depths and return the same verdicts.
///
/// # Errors
///
/// Propagates [`SynthError`] from any probe. Both modes error on the
/// probe that reaches a depth whose spec is malformed; depths the
/// search never probes are never validated (incremental sessions are
/// pre-shrunk to contiguous valid-depth sub-ranges).
pub fn find_min_depth(
    spec: &LasSpec,
    lo: usize,
    hi: usize,
    start: usize,
    options: &SynthOptions,
) -> Result<DepthSearch, SynthError> {
    if options.incremental && lo >= 1 {
        if let BackendChoice::Cdcl(config) = &options.backend {
            let config = options.solver_config(config.clone());
            return find_min_depth_incremental(spec, lo, hi, start, options, config);
        }
    }
    find_min_depth_scratch(spec, lo, hi, start, options)
}

/// From-scratch mode: one fresh [`Synthesizer`] per probe.
fn find_min_depth_scratch(
    spec: &LasSpec,
    lo: usize,
    hi: usize,
    start: usize,
    options: &SynthOptions,
) -> Result<DepthSearch, SynthError> {
    drive_depth_search(lo, hi, start, |k| {
        let s = spec.with_depth(k);
        let mut synth = Synthesizer::new(s)?.with_options(options.clone());
        let result = synth.run()?;
        let time = synth.last_solve_time().unwrap_or_default();
        let stats = synth.last_solver_stats();
        let (sat, design) = match result {
            SynthResult::Sat(d) => (Some(true), Some(*d)),
            SynthResult::Unsat => (Some(false), None),
            SynthResult::Unknown => (None, None),
        };
        Ok(ProbeOutcome {
            sat,
            design,
            time,
            stats,
            // `Synthesizer::run` has already checked the proof of a
            // certifying UNSAT (it errors otherwise).
            certified: options.certify && sat == Some(false),
        })
    })
}

/// One retained solver over one depth-layered CNF.
struct IncrementalSession {
    layered: crate::encode::LayeredEncoding,
    solver: CdclSolver,
}

impl IncrementalSession {
    fn new(
        spec: &LasSpec,
        lo: usize,
        hi: usize,
        config: &sat::CdclConfig,
        certify: bool,
    ) -> Result<Self, SynthError> {
        let layered = encode_layered(spec, lo, hi).map_err(SynthError::Spec)?;
        let mut solver = CdclSolver::with_config(config.clone());
        if certify {
            // Proof logging must start before the first clause so the
            // log is self-contained.
            solver.enable_proof();
        }
        solver.add_cnf(&layered.encoding.cnf);
        // Activation literals come back as assumptions on every probe,
        // so bounded variable elimination must never resolve them away:
        // declare them frozen for the lifetime of the session.
        for &a in &layered.activation {
            solver.freeze(a.var());
        }
        Ok(IncrementalSession { layered, solver })
    }

    fn covers(&self, k: usize) -> bool {
        (self.layered.lo..=self.layered.hi).contains(&k)
    }
}

/// The largest sub-range of depths `lo..=from` (descending) ending at
/// `from` whose specs all validate — a layered session may only cover
/// depths the spec is well-formed at, but must not reject depths the
/// search never reaches (from-scratch mode only errors on the probe
/// that actually hits an invalid depth, and the two modes must agree).
fn valid_depths_down(spec: &LasSpec, lo: usize, from: usize) -> usize {
    let mut v = from;
    while v > lo && spec.with_depth(v - 1).validate().is_ok() {
        v -= 1;
    }
    v
}

/// Mirror of [`valid_depths_down`] for ascending searches: the largest
/// sub-range `from..=hi` starting at `from` whose specs all validate.
fn valid_depths_up(spec: &LasSpec, from: usize, hi: usize) -> usize {
    let mut v = from;
    while v < hi && spec.with_depth(v + 1).validate().is_ok() {
        v += 1;
    }
    v
}

/// Incremental mode: a depth-layered CNF and a retained solver session;
/// each probe is one `solve_assuming` call.
///
/// The session is sized to the probes it can actually see: the layered
/// CNF pays for its *largest* layer at every probe, so starting with
/// the full `[lo, hi]` range would tax a descending search (by far the
/// common case — start at the spec's depth, shrink to the minimum)
/// with headroom it never probes. Instead the session opens at
/// `[lo, start]`; only when the first probe is UNSAT does the search
/// ascend, into a second session sized `[k, hi]` (one rebuild at most,
/// and the sole probe whose learnt clauses are dropped is the UNSAT
/// one that forced the turn). Both ranges are pre-shrunk to their
/// contiguous valid-spec sub-range, so a depth that is invalid but
/// never probed cannot fail the search; probing an invalid depth
/// errors, exactly as from-scratch mode does.
fn find_min_depth_incremental(
    spec: &LasSpec,
    lo: usize,
    hi: usize,
    start: usize,
    options: &SynthOptions,
    config: sat::CdclConfig,
) -> Result<DepthSearch, SynthError> {
    let mut session = IncrementalSession::new(
        spec,
        valid_depths_down(spec, lo, start),
        start,
        &config,
        options.certify,
    )?;
    drive_depth_search(lo, hi, start, |k| {
        if !session.covers(k) {
            // The search stepped past the session's valid range: extend
            // it in the step's direction — unless the next depth itself
            // is malformed, which errors on exactly the probe where
            // from-scratch mode would have errored.
            if let Err(e) = spec.with_depth(k).validate() {
                return Err(SynthError::Spec(e));
            }
            if k > session.layered.hi {
                session = IncrementalSession::new(
                    spec,
                    k,
                    valid_depths_up(spec, k, hi),
                    &config,
                    options.certify,
                )?;
            } else {
                session = IncrementalSession::new(
                    spec,
                    valid_depths_down(spec, lo, k),
                    k,
                    &config,
                    options.certify,
                )?;
            }
        }
        let assumptions = session.layered.assumptions_for(k);
        let before = session.solver.session_stats();
        let started = Instant::now();
        let outcome = session.solver.solve_assuming(&assumptions, &options.budget);
        let time = started.elapsed();
        let stats = Some(session.solver.session_stats().since(before));
        match outcome {
            SolveOutcome::Sat(model) => {
                let mut design = decode_layered(&session.layered, spec, k, &model);
                let violations = lasre::check_validity(&design);
                if !violations.is_empty() {
                    return Err(SynthError::InvalidDesign(violations));
                }
                if !options.skip_verify {
                    verify(&design).map_err(SynthError::Verify)?;
                    design.set_verified(true);
                }
                Ok(ProbeOutcome {
                    sat: Some(true),
                    design: Some(design),
                    time,
                    stats,
                    certified: false,
                })
            }
            SolveOutcome::Unsat => {
                let mut certified = false;
                if options.certify {
                    // Proof-check this depth lower bound before
                    // reporting it. The log covers the whole session so
                    // far; the failing assumption set picks out this
                    // probe's refutation.
                    // Unreachable: the session enabled proof logging
                    // before its first clause.
                    // lint:allow(no-panic)
                    let log = session.solver.proof().expect("proof logging enabled");
                    sat::certify_unsat(log, session.solver.final_assumption_conflict())
                        .map_err(|e| SynthError::Certify(e.to_string()))?;
                    certified = true;
                }
                Ok(ProbeOutcome {
                    sat: Some(false),
                    design: None,
                    time,
                    stats,
                    certified,
                })
            }
            SolveOutcome::Unknown => Ok(ProbeOutcome {
                sat: None,
                design: None,
                time,
                stats,
                certified: false,
            }),
        }
    })
}

/// Runs one synthesis per port permutation in parallel (one thread per
/// permutation, as the paper runs "many LaSsynth jobs in parallel"),
/// returning the first verified design. All other workers are cancelled
/// through the solver's stop flag.
///
/// # Errors
///
/// Propagates the first [`SynthError`] if *all* workers error.
pub fn explore_port_orders(
    spec: &LasSpec,
    perms: &[Vec<usize>],
    options: &SynthOptions,
) -> Result<Option<LasDesign>, SynthError> {
    let stop = Arc::new(AtomicBool::new(false));
    let mut first_error = None;
    let mut found: Option<LasDesign> = None;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = perms
            .iter()
            .map(|perm| {
                let spec = spec.with_port_order(perm);
                let mut options = options.clone();
                options.budget.stop = Some(stop.clone());
                let stop = stop.clone();
                scope.spawn(move |_| {
                    let mut synth = match Synthesizer::new(spec) {
                        Ok(s) => s.with_options(options),
                        Err(e) => return Err(e),
                    };
                    let result = synth.run()?;
                    if let SynthResult::Sat(d) = result {
                        stop.store(true, Ordering::Relaxed);
                        return Ok(Some(*d));
                    }
                    Ok(None)
                })
            })
            .collect();
        for h in handles {
            // lint:allow(no-panic)
            match h.join().expect("worker panicked") {
                Ok(Some(d)) => {
                    if found.is_none() {
                        found = Some(d);
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
    })
    .expect("scope"); // lint:allow(no-panic)
    match (found, first_error) {
        (Some(d), _) => Ok(Some(d)),
        (None, Some(e)) => Err(e),
        (None, None) => Ok(None),
    }
}

/// Outcome of [`solve_portfolio_detailed`]: the verdict plus which
/// worker produced it and that worker's solver statistics.
#[derive(Debug)]
pub struct PortfolioOutcome {
    /// The first definitive verdict (or `Unknown` if none).
    pub result: SynthResult,
    /// Seed of the worker that produced the verdict.
    pub winner_seed: Option<u64>,
    /// Solver statistics of the winning worker, when its backend
    /// reports them.
    pub stats: Option<sat::SolverStats>,
}

/// Runs one synthesis per seed in parallel and returns the first
/// definitive verdict (SAT **or** UNSAT), cancelling the rest — the
/// portfolio the paper suggests after observing up to 26× seed
/// variance (Sec. V-E, "Random seed: more is different").
///
/// Workers are *diversified*: each seed also selects a restart/decay/
/// polarity ablation through [`sat::CdclConfig::diversified`], so the
/// portfolio explores genuinely different trajectories rather than
/// different tie-breaking only.
///
/// # Errors
///
/// Propagates a [`SynthError`] only if every worker errors.
pub fn solve_portfolio(
    spec: &LasSpec,
    seeds: &[u64],
    options: &SynthOptions,
) -> Result<SynthResult, SynthError> {
    solve_portfolio_detailed(spec, seeds, options).map(|o| o.result)
}

/// [`solve_portfolio`] with the winning seed and its solver statistics
/// (what `lassynth synth --seeds … --stats` prints).
///
/// # Errors
///
/// Propagates a [`SynthError`] only if every worker errors.
pub fn solve_portfolio_detailed(
    spec: &LasSpec,
    seeds: &[u64],
    options: &SynthOptions,
) -> Result<PortfolioOutcome, SynthError> {
    use std::sync::mpsc;
    type WorkerReport = (
        u64,
        Option<sat::SolverStats>,
        Result<SynthResult, SynthError>,
    );
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<WorkerReport>();
    crossbeam::thread::scope(|scope| {
        for &seed in seeds {
            let mut options = options.clone().with_diversified_seed(seed);
            options.budget.stop = Some(stop.clone());
            let spec = spec.clone();
            let stop = stop.clone();
            let tx = tx.clone();
            scope.spawn(move |_| {
                let mut stats = None;
                let result = Synthesizer::new(spec).and_then(|s| {
                    let mut s = s.with_options(options);
                    let r = s.run();
                    stats = s.last_solver_stats();
                    r
                });
                if matches!(result, Ok(SynthResult::Sat(_)) | Ok(SynthResult::Unsat)) {
                    stop.store(true, Ordering::Relaxed);
                }
                let _ = tx.send((seed, stats, result));
            });
        }
        drop(tx);
        let mut first_error = None;
        let mut unknown_seen = false;
        for (seed, stats, result) in rx {
            match result {
                Ok(r @ (SynthResult::Sat(_) | SynthResult::Unsat)) => {
                    return Ok(PortfolioOutcome {
                        result: r,
                        winner_seed: Some(seed),
                        stats,
                    })
                }
                Ok(SynthResult::Unknown) => unknown_seen = true,
                Err(e) => first_error = Some(e),
            }
        }
        match (unknown_seen, first_error) {
            (false, Some(e)) => Err(e),
            _ => Ok(PortfolioOutcome {
                result: SynthResult::Unknown,
                winner_seed: None,
                stats: None,
            }),
        }
    })
    .expect("portfolio scope") // lint:allow(no-panic)
}

/// All permutations of `0..n` (for small `n`), a convenience for
/// exhaustive port-order exploration.
///
/// # Panics
///
/// Panics if `n > 8` (40320 permutations is the sensible ceiling).
pub fn all_permutations(n: usize) -> Vec<Vec<usize>> {
    assert!(n <= 8, "too many permutations");
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    heap_permute(&mut current, n, &mut out);
    out
}

fn heap_permute(arr: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(arr.clone());
        return;
    }
    for i in 0..k {
        heap_permute(arr, k - 1, out);
        if k.is_multiple_of(2) {
            arr.swap(i, k - 1);
        } else {
            arr.swap(0, k - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasre::fixtures::cnot_spec;

    #[test]
    fn permutation_count() {
        assert_eq!(all_permutations(1).len(), 1);
        assert_eq!(all_permutations(3).len(), 6);
        assert_eq!(all_permutations(4).len(), 24);
        // All distinct.
        let mut p4 = all_permutations(4);
        p4.sort();
        p4.dedup();
        assert_eq!(p4.len(), 24);
    }

    #[test]
    fn depth_search_descends_to_minimum() {
        // The CNOT needs two layers (max_k = 3 with the padding layer);
        // starting at 4 must descend to 3 and stop at UNSAT for 2.
        // Exercises the default (incremental) mode.
        let spec = cnot_spec();
        let search = find_min_depth(&spec, 2, 5, 4, &SynthOptions::default()).unwrap();
        assert_eq!(search.best_depth(), Some(3));
        let probed: Vec<usize> = search.probes.iter().map(|p| p.max_k).collect();
        assert_eq!(probed, vec![4, 3, 2]);
        assert_eq!(search.probes[2].sat, Some(false));
        assert!(search.total_time() > Duration::ZERO);
        assert!(search.best.as_ref().unwrap().verified());
    }

    #[test]
    fn depth_search_ascends_from_unsat() {
        let spec = cnot_spec();
        let search = find_min_depth(&spec, 2, 5, 2, &SynthOptions::default()).unwrap();
        assert_eq!(search.best_depth(), Some(3));
        let probed: Vec<usize> = search.probes.iter().map(|p| p.max_k).collect();
        assert_eq!(probed, vec![2, 3]);
    }

    /// Runs the same search in both modes and asserts identical probe
    /// order, per-probe verdicts and best depth.
    fn assert_modes_agree(spec: &LasSpec, lo: usize, hi: usize, start: usize) {
        let incremental = find_min_depth(spec, lo, hi, start, &SynthOptions::default()).unwrap();
        let scratch_options = SynthOptions {
            incremental: false,
            ..SynthOptions::default()
        };
        let scratch = find_min_depth(spec, lo, hi, start, &scratch_options).unwrap();
        let view = |s: &DepthSearch| -> Vec<(usize, Option<bool>)> {
            s.probes.iter().map(|p| (p.max_k, p.sat)).collect()
        };
        assert_eq!(
            view(&incremental),
            view(&scratch),
            "probe sequences diverge (start {start})"
        );
        assert_eq!(incremental.best_depth(), scratch.best_depth());
        if let Some(best) = &incremental.best {
            assert!(best.verified(), "incremental best design verifies");
        }
    }

    #[test]
    fn incremental_matches_scratch_descending() {
        assert_modes_agree(&cnot_spec(), 2, 5, 4);
    }

    #[test]
    fn incremental_matches_scratch_ascending() {
        assert_modes_agree(&cnot_spec(), 2, 5, 2);
    }

    #[test]
    fn incremental_matches_scratch_from_the_top() {
        assert_modes_agree(&cnot_spec(), 2, 5, 5);
    }

    /// Depth 1 is invalid for the CNOT (its bottom-port cubes fall out
    /// of the arrays), but the descent stops at the UNSAT depth 2 and
    /// never probes it — so a range including depth 1 must still
    /// succeed, identically in both modes (the CLI defaults to
    /// `--lo 1`).
    #[test]
    fn unprobed_invalid_depths_do_not_fail_the_search() {
        assert_modes_agree(&cnot_spec(), 1, 5, 4);
    }

    /// Probing an invalid depth errors in both modes: starting *at*
    /// the CNOT's invalid depth 1 fails up front rather than probing.
    #[test]
    fn probing_an_invalid_depth_errors_in_both_modes() {
        for incremental in [true, false] {
            let options = SynthOptions {
                incremental,
                ..SynthOptions::default()
            };
            let r = find_min_depth(&cnot_spec(), 1, 5, 1, &options);
            assert!(
                matches!(r, Err(SynthError::Spec(_))),
                "expected a spec error probing depth 1 (incremental={incremental})"
            );
        }
    }

    /// Both modes record per-probe solver statistics for the CDCL
    /// backend.
    #[test]
    fn probes_carry_solver_stats() {
        let spec = cnot_spec();
        for incremental in [true, false] {
            let options = SynthOptions {
                incremental,
                ..SynthOptions::default()
            };
            let search = find_min_depth(&spec, 2, 5, 4, &options).unwrap();
            for p in &search.probes {
                let stats = p.stats.unwrap_or_else(|| {
                    panic!(
                        "probe {} missing stats (incremental={incremental})",
                        p.max_k
                    )
                });
                assert!(
                    stats.propagations > 0,
                    "probe {} did no work (incremental={incremental})",
                    p.max_k
                );
            }
        }
    }

    /// A certified search reaches the same answer as the plain one and
    /// proof-checks every UNSAT probe along the way, in both modes.
    #[test]
    fn certified_search_agrees_and_marks_unsat_probes() {
        let spec = cnot_spec();
        let plain = find_min_depth(&spec, 2, 5, 4, &SynthOptions::default()).unwrap();
        for incremental in [true, false] {
            let options = SynthOptions {
                incremental,
                certify: true,
                ..SynthOptions::default()
            };
            let certified = find_min_depth(&spec, 2, 5, 4, &options).unwrap();
            assert_eq!(certified.best_depth(), plain.best_depth());
            let view = |s: &DepthSearch| -> Vec<(usize, Option<bool>)> {
                s.probes.iter().map(|p| (p.max_k, p.sat)).collect()
            };
            assert_eq!(view(&certified), view(&plain));
            let mut unsat_probes = 0;
            for p in &certified.probes {
                assert_eq!(
                    p.certified,
                    p.sat == Some(false),
                    "probe {} certification flag (incremental={incremental})",
                    p.max_k
                );
                unsat_probes += usize::from(p.sat == Some(false));
            }
            assert!(unsat_probes > 0, "search never hit an UNSAT probe");
        }
    }

    #[test]
    fn detailed_portfolio_reports_winner_and_stats() {
        let spec = cnot_spec();
        let o = solve_portfolio_detailed(&spec, &[0, 1, 2], &SynthOptions::default()).unwrap();
        assert!(o.result.is_sat());
        assert!(o.winner_seed.is_some(), "winning seed recorded");
        let stats = o.stats.expect("CDCL workers report stats");
        assert!(stats.propagations > 0);
    }

    #[test]
    fn portfolio_returns_definitive_verdicts() {
        let spec = cnot_spec();
        let r = solve_portfolio(&spec, &[0, 1, 2, 3], &SynthOptions::default()).unwrap();
        assert!(r.is_sat());
        // And an unsatisfiable variant is proven UNSAT by some worker.
        let r = solve_portfolio(&spec.with_depth(2), &[0, 1], &SynthOptions::default()).unwrap();
        assert!(r.is_unsat());
    }

    #[test]
    fn port_order_exploration_finds_a_design() {
        let spec = cnot_spec();
        // Identity and the control/target swap are both realizable.
        let perms = vec![vec![0, 1, 2, 3], vec![1, 0, 3, 2]];
        let d = explore_port_orders(&spec, &perms, &SynthOptions::default()).unwrap();
        assert!(d.is_some());
        assert!(d.unwrap().verified());
    }
}
