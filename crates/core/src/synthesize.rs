//! One-shot synthesis: encode → solve → decode → verify.

use crate::decode::decode;
use crate::encode::{encode, EncodeStats, Encoding};
use crate::verify::{verify, VerifyError};
use lasre::{LasDesign, LasSpec, SpecError};
#[cfg(feature = "varisat")]
use sat::VarisatBackend;
use sat::{Backend, Budget, CdclConfig, CdclSolver, SolveOutcome, SolverStats};
use std::fmt;
use std::time::{Duration, Instant};

/// Which SAT backend to use.
// Constructed a handful of times per run; the embedded CdclConfig is
// large but boxing it would push indirection into every call site for
// no measurable gain.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum BackendChoice {
    /// The in-tree CDCL solver with the given configuration.
    Cdcl(CdclConfig),
    /// The `varisat` crate (budgets are not enforced by it).
    Varisat,
}

impl Default for BackendChoice {
    fn default() -> Self {
        BackendChoice::Cdcl(CdclConfig::default())
    }
}

/// Options controlling a synthesis run.
#[derive(Clone, Debug)]
pub struct SynthOptions {
    /// Solver backend selection.
    pub backend: BackendChoice,
    /// Resource limits for the solve call (per probe in a depth
    /// search, whether incremental or not).
    pub budget: Budget,
    /// Verify the decoded design through ZX flow derivation (on by
    /// default; the formulation guarantees correctness, so this is a
    /// self-check, exactly as in the paper).
    pub skip_verify: bool,
    /// Share one incremental CDCL session (depth-layered encoding,
    /// retained learnt clauses) across the probes of
    /// [`crate::optimize::find_min_depth`]. On by default; ignored by
    /// single-shot synthesis and by the varisat backend, which lacks an
    /// incremental API.
    pub incremental: bool,
    /// Overrides the CDCL restart policy (Luby vs adaptive LBD-EMA)
    /// for every solver this run constructs — including diversified
    /// portfolio workers, which otherwise pick their own policy per
    /// seed. `None` keeps each configuration's own choice. The CLI's
    /// `--restart-policy` flag lands here.
    pub restart_policy: Option<sat::RestartPolicy>,
    /// Overrides chronological backtracking the same way (`--chrono
    /// on|off`). `None` keeps each configuration's own choice.
    pub chrono: Option<bool>,
    /// Emit a DRAT proof for every solve and run the in-tree forward
    /// checker on each UNSAT verdict before reporting it (`--certify`).
    /// CDCL backend only; an UNSAT whose proof fails to check is
    /// surfaced as [`SynthError::Certify`] instead of being trusted.
    pub certify: bool,
    /// Exchange low-LBD learnt clauses between the workers of
    /// [`crate::optimize::solve_portfolio_detailed`] (and, with
    /// [`SynthOptions::depth_parallel`], between the per-depth workers
    /// of a depth-parallel search). Sharing switches the portfolio
    /// from free-running threads to a deterministic single-threaded
    /// lockstep driver — the target machines have one vCPU, so the
    /// win sought is *fewer total conflicts to a verdict*, and the
    /// run (winner, stats, import sequence) is bit-reproducible.
    /// CDCL backend only. The CLI's `--share-clauses` flag lands here.
    pub share_clauses: bool,
    /// Run [`crate::optimize::find_min_depth`] with one lockstep
    /// worker per candidate depth (each owning one `max_k` of a
    /// shared depth-layered encoding) instead of the sequential
    /// descend/ascend probe walk; the first definitive verdict prunes
    /// every depth it dominates through the SAT-monotonicity of the
    /// depth axis. CDCL backend only; composes with
    /// [`SynthOptions::share_clauses`]. The CLI's `--depth-parallel`
    /// flag lands here.
    pub depth_parallel: bool,
    /// Conflicts each lockstep worker runs per turn under
    /// [`SynthOptions::share_clauses`] / [`SynthOptions::depth_parallel`].
    /// Smaller quanta exchange clauses more often (and fan work out
    /// more fairly) at the cost of more restart overhead; the value
    /// only shifts *which* deterministic trajectory a run takes.
    pub parallel_quantum: u64,
    /// Arms a deterministic injected fault ([`sat::FaultPlan`]) on
    /// every CDCL solver this run constructs — including diversified
    /// portfolio workers, whose configs are rebuilt per seed and would
    /// otherwise drop a fault armed on [`SynthOptions::backend`]. Use
    /// the plan's `only_seed` to pick one fleet member. Testing and
    /// the `LASSYNTH_FAULT` harness only; `None` (the default) is
    /// zero-cost.
    pub fault_plan: Option<sat::FaultPlan>,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            backend: BackendChoice::default(),
            budget: Budget::default(),
            skip_verify: false,
            incremental: true,
            restart_policy: None,
            chrono: None,
            certify: false,
            share_clauses: false,
            depth_parallel: false,
            parallel_quantum: 2_000,
            fault_plan: None,
        }
    }
}

impl SynthOptions {
    /// Sets a wall-clock limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.budget.max_time = Some(limit);
        self
    }

    /// Uses the CDCL backend with the given seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.backend = BackendChoice::Cdcl(CdclConfig::default().with_seed(seed));
        self
    }

    /// Uses the CDCL backend with a seed-diversified configuration
    /// (varying restarts/decay/polarity, see [`CdclConfig::diversified`])
    /// — the portfolio default.
    pub fn with_diversified_seed(mut self, seed: u64) -> Self {
        self.backend = BackendChoice::Cdcl(CdclConfig::diversified(seed));
        self
    }

    /// Applies the per-run solver overrides (restart policy,
    /// chronological backtracking) on top of a concrete CDCL
    /// configuration. Every code path that instantiates a CDCL solver
    /// — one-shot, portfolio worker, incremental depth session — runs
    /// its configuration through this.
    pub fn solver_config(&self, base: CdclConfig) -> CdclConfig {
        let mut config = base;
        if let Some(policy) = self.restart_policy {
            config.restart_policy = policy;
        }
        if let Some(chrono) = self.chrono {
            config.use_chrono = chrono;
        }
        if config.fault_plan.is_none() {
            config.fault_plan = self.fault_plan;
        }
        config
    }
}

/// Errors surfaced by [`Synthesizer`].
#[derive(Debug)]
pub enum SynthError {
    /// The specification is malformed.
    Spec(SpecError),
    /// The solver produced a design that fails validity checking — a
    /// bug in the encoder, reported rather than silently accepted.
    InvalidDesign(Vec<lasre::ValidityError>),
    /// The solver produced a design whose ZX flows miss spec
    /// stabilizers — likewise an encoder bug if it ever fires.
    Verify(VerifyError),
    /// The requested SAT backend was not compiled into this build.
    BackendUnavailable(&'static str),
    /// `--certify` was requested and an UNSAT verdict's DRAT proof
    /// failed the in-tree checker (or the backend cannot emit proofs).
    Certify(String),
    /// Every worker of a portfolio or depth-parallel fleet crashed
    /// (panicked); the payload is the first crash's message in seed /
    /// depth order. A *partial* crash never surfaces here — the fleet
    /// continues on the survivors and reports the crashed workers as
    /// quarantined instead.
    WorkerPanic(String),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Spec(e) => write!(f, "invalid specification: {e}"),
            SynthError::InvalidDesign(errs) => {
                write!(
                    f,
                    "solver returned an invalid design ({} violations)",
                    errs.len()
                )
            }
            SynthError::Verify(e) => write!(f, "verification failed: {e}"),
            SynthError::BackendUnavailable(name) => write!(
                f,
                "backend `{name}` is not compiled into this build; \
                 rebuild with the `{name}` cargo feature (on by default)"
            ),
            SynthError::Certify(reason) => write!(f, "UNSAT certification failed: {reason}"),
            SynthError::WorkerPanic(msg) => {
                write!(f, "every solver worker crashed; first crash: {msg}")
            }
        }
    }
}

impl std::error::Error for SynthError {}

impl From<SpecError> for SynthError {
    fn from(e: SpecError) -> Self {
        SynthError::Spec(e)
    }
}

/// Outcome of a synthesis run.
#[derive(Debug)]
pub enum SynthResult {
    /// A verified design, with solve statistics.
    Sat(Box<LasDesign>),
    /// No design exists within the given volume/ports/stabilizers.
    Unsat,
    /// The budget expired first.
    Unknown,
}

impl SynthResult {
    /// Whether a design was found.
    pub fn is_sat(&self) -> bool {
        matches!(self, SynthResult::Sat(_))
    }

    /// Whether the instance was proven unsatisfiable.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SynthResult::Unsat)
    }

    /// Extracts the design.
    ///
    /// # Panics
    ///
    /// Panics unless the result is `Sat`.
    pub fn expect_sat(self) -> LasDesign {
        match self {
            SynthResult::Sat(d) => *d,
            other => panic!("expected SAT synthesis result, got {other:?}"), // lint:allow(no-panic)
        }
    }
}

/// The LaSsynth synthesizer (paper Fig. 12a): turns a [`LasSpec`] into
/// a verified [`LasDesign`] or an unsatisfiability verdict.
///
/// ```no_run
/// use synth::{Synthesizer, SynthOptions};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = lasre::fixtures::cnot_spec();
/// let result = Synthesizer::new(spec)?.run()?;
/// assert!(result.is_sat());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Synthesizer {
    spec: LasSpec,
    options: SynthOptions,
    encoding: Encoding,
    assumptions: Vec<sat::Lit>,
    last_solve_time: Option<Duration>,
    last_solver_stats: Option<SolverStats>,
    last_proof: Option<sat::ProofLog>,
}

impl Synthesizer {
    /// Validates and encodes the specification.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::Spec`] if the spec is malformed.
    pub fn new(spec: LasSpec) -> Result<Synthesizer, SynthError> {
        let encoding = encode(&spec)?;
        Ok(Synthesizer {
            spec,
            options: SynthOptions::default(),
            encoding,
            assumptions: Vec::new(),
            last_solve_time: None,
            last_solver_stats: None,
            last_proof: None,
        })
    }

    /// Replaces the options.
    pub fn with_options(mut self, options: SynthOptions) -> Synthesizer {
        self.options = options;
        self
    }

    /// The specification being synthesized.
    pub fn spec(&self) -> &LasSpec {
        &self.spec
    }

    /// Encoding statistics (Table I's size columns).
    pub fn stats(&self) -> EncodeStats {
        self.encoding.stats
    }

    /// The compiled CNF (e.g. for DIMACS export).
    pub fn cnf(&self) -> &sat::Cnf {
        &self.encoding.cnf
    }

    /// Wall-clock time of the most recent solve call.
    pub fn last_solve_time(&self) -> Option<Duration> {
        self.last_solve_time
    }

    /// Search statistics of the most recent solve call
    /// (decisions/conflicts/propagations/GC passes…). `None` before the
    /// first solve or when the backend does not report statistics
    /// (varisat).
    pub fn last_solver_stats(&self) -> Option<SolverStats> {
        self.last_solver_stats
    }

    /// DRAT proof log of the most recent solve, present only when
    /// [`SynthOptions::certify`] was set. For an UNSAT run this is the
    /// already-checked refutation; serialize it with
    /// [`sat::ProofLog::write_drat`] for external `drat-trim`
    /// cross-checking against the [`Self::cnf`] DIMACS.
    pub fn last_proof(&self) -> Option<&sat::ProofLog> {
        self.last_proof.as_ref()
    }

    /// Pins a structural variable to a value for subsequent solves (the
    /// paper's "interface to set the values of an arbitrary variable in
    /// the SMT model", Sec. IV). Pins are solver *assumptions*: they
    /// restrict the search without re-encoding, and UNSAT then means
    /// "unsatisfiable under the pins".
    ///
    /// # Panics
    ///
    /// Panics if the variable is out of range for the spec.
    pub fn pin_struct(&mut self, var: lasre::StructVar, value: bool) -> &mut Self {
        let lit = self.encoding.var_map[self.encoding.table.structural(var)];
        self.assumptions.push(if value { lit } else { !lit });
        self
    }

    /// Pins a correlation-surface variable (see [`Synthesizer::pin_struct`]).
    pub fn pin_corr(
        &mut self,
        s: usize,
        kind: lasre::CorrKind,
        c: lasre::Coord,
        value: bool,
    ) -> &mut Self {
        let lit = self.encoding.var_map[self.encoding.table.corr(s, kind, c)];
        self.assumptions.push(if value { lit } else { !lit });
        self
    }

    /// Forbids a cube by pinning all its incident pipes and Y flag off
    /// (the paper's "forbid cubes" optimization interface, Fig. 12b).
    pub fn forbid_cube(&mut self, c: lasre::Coord) -> &mut Self {
        use lasre::{Axis, StructVar};
        self.pin_struct(StructVar::YCube(c), false);
        for axis in Axis::ALL {
            self.pin_struct(StructVar::Exist(axis, c), false);
            let prev = c.prev(axis);
            if self.spec.bounds().contains(prev) {
                self.pin_struct(StructVar::Exist(axis, prev), false);
            }
        }
        self
    }

    /// Clears all pins.
    pub fn clear_pins(&mut self) -> &mut Self {
        self.assumptions.clear();
        self
    }

    /// Runs the solver once and decodes/verifies the outcome.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError`] for spec problems or (would-be encoder
    /// bugs) invalid/unverifiable designs.
    pub fn run(&mut self) -> Result<SynthResult, SynthError> {
        #[cfg(not(feature = "varisat"))]
        if matches!(self.options.backend, BackendChoice::Varisat) {
            return Err(SynthError::BackendUnavailable("varisat"));
        }
        if self.options.certify && matches!(self.options.backend, BackendChoice::Varisat) {
            return Err(SynthError::Certify(
                "the varisat backend cannot emit DRAT proofs; use the CDCL backend".into(),
            ));
        }
        let outcome = self.solve_raw()?;
        match outcome {
            SolveOutcome::Sat(model) => {
                let mut design = decode(&self.spec, &self.encoding, &model);
                let violations = lasre::check_validity(&design);
                if !violations.is_empty() {
                    return Err(SynthError::InvalidDesign(violations));
                }
                if !self.options.skip_verify {
                    verify(&design).map_err(SynthError::Verify)?;
                    design.set_verified(true);
                }
                Ok(SynthResult::Sat(Box::new(design)))
            }
            SolveOutcome::Unsat => Ok(SynthResult::Unsat),
            SolveOutcome::Unknown(_) => Ok(SynthResult::Unknown),
        }
    }

    fn solve_raw(&mut self) -> Result<SolveOutcome, SynthError> {
        let start = Instant::now();
        self.last_proof = None;
        let out = match &self.options.backend {
            BackendChoice::Cdcl(config) if self.options.certify => {
                // Certifying path: an incremental session with proof
                // logging on, so an UNSAT answer carries a DRAT log the
                // in-tree checker validates before we report it.
                let mut solver =
                    CdclSolver::with_config(self.options.solver_config(config.clone()));
                solver.enable_proof();
                solver.add_cnf(&self.encoding.cnf);
                let out = solver.solve_assuming(&self.assumptions, &self.options.budget);
                self.last_solver_stats = Some(solver.session_stats());
                if matches!(out, SolveOutcome::Unsat) {
                    // Unreachable: `enable_proof` ran before `add_cnf`.
                    // lint:allow(no-panic)
                    let log = solver.proof().expect("proof logging enabled");
                    sat::certify_unsat(log, solver.final_assumption_conflict())
                        .map_err(|e| SynthError::Certify(e.to_string()))?;
                }
                self.last_proof = solver.proof().cloned();
                out
            }
            BackendChoice::Cdcl(config) => {
                let mut solver =
                    CdclSolver::with_config(self.options.solver_config(config.clone()));
                let out =
                    solver.solve_with(&self.encoding.cnf, &self.assumptions, &self.options.budget);
                self.last_solver_stats = Some(solver.stats);
                out
            }
            BackendChoice::Varisat => {
                self.last_solver_stats = None; // varisat reports none
                #[cfg(feature = "varisat")]
                {
                    VarisatBackend.solve_with(
                        &self.encoding.cnf,
                        &self.assumptions,
                        &self.options.budget,
                    )
                }
                #[cfg(not(feature = "varisat"))]
                unreachable!("run() rejects the varisat backend when the feature is off")
            }
        };
        self.last_solve_time = Some(start.elapsed());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasre::fixtures::cnot_spec;

    #[test]
    fn synthesizes_and_verifies_cnot() {
        let result = Synthesizer::new(cnot_spec()).unwrap().run().unwrap();
        let design = result.expect_sat();
        assert!(design.verified());
    }

    #[cfg(feature = "varisat")]
    #[test]
    fn varisat_backend_agrees() {
        let mut s = Synthesizer::new(cnot_spec())
            .unwrap()
            .with_options(SynthOptions {
                backend: BackendChoice::Varisat,
                ..Default::default()
            });
        assert!(s.run().unwrap().is_sat());
    }

    #[test]
    fn impossible_spec_is_unsat() {
        // A CNOT needs at least one merge; with depth 1 above the port
        // padding and all interior cubes of one column forbidden, the
        // two qubits can never interact: the IZ→ZZ flow is impossible.
        let mut spec = cnot_spec();
        spec.name = "cnot-too-small".into();
        // Forbid the whole (0,0) and (1,1) columns so no routing exists.
        for k in 0..3 {
            spec.forbidden_cubes.push(lasre::Coord::new(0, 0, k));
            spec.forbidden_cubes.push(lasre::Coord::new(1, 1, k));
        }
        spec.forbidden_cubes.sort();
        spec.forbidden_cubes.dedup();
        let result = Synthesizer::new(spec).unwrap().run().unwrap();
        assert!(result.is_unsat());
    }

    /// With `certify`, the UNSAT verdict above is only reported after
    /// its DRAT proof passes the in-tree checker — and the varisat
    /// backend (no proof support) is rejected up front.
    #[test]
    fn certify_checks_unsat_and_rejects_varisat() {
        let mut spec = cnot_spec();
        spec.name = "cnot-too-small-certified".into();
        for k in 0..3 {
            spec.forbidden_cubes.push(lasre::Coord::new(0, 0, k));
            spec.forbidden_cubes.push(lasre::Coord::new(1, 1, k));
        }
        spec.forbidden_cubes.sort();
        spec.forbidden_cubes.dedup();
        let mut s = Synthesizer::new(spec.clone())
            .unwrap()
            .with_options(SynthOptions {
                certify: true,
                ..Default::default()
            });
        assert!(s.run().unwrap().is_unsat());

        #[cfg(feature = "varisat")]
        {
            let mut s = Synthesizer::new(spec).unwrap().with_options(SynthOptions {
                certify: true,
                backend: BackendChoice::Varisat,
                ..Default::default()
            });
            assert!(matches!(s.run(), Err(SynthError::Certify(_))));
        }
    }

    #[test]
    fn budget_gives_unknown_on_tiny_limit() {
        let mut spec = cnot_spec();
        spec.name = "cnot-budgeted".into();
        let mut s = Synthesizer::new(spec).unwrap().with_options(SynthOptions {
            budget: sat::Budget::conflict_limit(0),
            ..Default::default()
        });
        // A zero-conflict budget may still solve trivially-propagating
        // instances; accept either Sat or Unknown but never a panic.
        let r = s.run().unwrap();
        assert!(!r.is_unsat());
    }

    #[test]
    fn pins_restrict_the_search() {
        use lasre::{Axis, Coord, StructVar};
        // Forbid both free columns: the control and target can then
        // never interact, so the CNOT flows are unrealizable.
        let mut s = Synthesizer::new(cnot_spec()).unwrap();
        for k in 1..3 {
            s.forbid_cube(Coord::new(1, 1, k));
            s.forbid_cube(Coord::new(0, 0, k));
        }
        assert!(s.run().unwrap().is_unsat());
        // Clearing pins restores satisfiability.
        s.clear_pins();
        assert!(s.run().unwrap().is_sat());
        // Pinning a variable the solver would choose anyway is harmless.
        let mut s2 = Synthesizer::new(cnot_spec()).unwrap();
        s2.pin_struct(StructVar::Exist(Axis::K, Coord::new(0, 1, 1)), true);
        assert!(s2.run().unwrap().is_sat());
    }

    /// The per-run solver overrides land in every configuration they
    /// are applied to — including diversified portfolio members whose
    /// own choices they must beat — and `None` leaves the base
    /// configuration alone.
    #[test]
    fn solver_config_applies_overrides() {
        // Diversified seed 1 picks EMA restarts and chrono on; the
        // overrides must flip both.
        let base = CdclConfig::diversified(1);
        assert_eq!(base.restart_policy, sat::RestartPolicy::Ema);
        assert!(base.use_chrono);
        let options = SynthOptions {
            restart_policy: Some(sat::RestartPolicy::Luby),
            chrono: Some(false),
            ..SynthOptions::default()
        };
        let overridden = options.solver_config(base.clone());
        assert_eq!(overridden.restart_policy, sat::RestartPolicy::Luby);
        assert!(!overridden.use_chrono);
        // Unrelated knobs pass through untouched.
        assert_eq!(overridden.seed, base.seed);
        assert_eq!(overridden.var_decay, base.var_decay);
        // No overrides: the configuration is returned unchanged.
        let untouched = SynthOptions::default().solver_config(base.clone());
        assert_eq!(untouched.restart_policy, base.restart_policy);
        assert_eq!(untouched.use_chrono, base.use_chrono);
    }

    #[test]
    fn seeds_change_search_not_verdict() {
        for seed in [1, 7, 42] {
            let mut s = Synthesizer::new(cnot_spec())
                .unwrap()
                .with_options(SynthOptions::default().with_seed(seed));
            assert!(s.run().unwrap().is_sat(), "seed {seed}");
        }
    }
}
