//! ZX-based verification of solved designs (paper contribution 4).
//!
//! A solved pipe diagram maps to a ZX diagram — cubes become spiders
//! typed by junction color, domain walls become Hadamard edges, Y cubes
//! become π/2 phases — whose stabilizer flows must include every
//! stabilizer of the specification (up to sign).

use lasre::{Axis, Coord, CubeKind, LasDesign, Sign};
use std::collections::HashMap;
use std::fmt;
use zx::{Diagram, FlowGroup, NodeId, SpiderKind, ZxError};

/// Verification failure.
#[derive(Debug)]
pub enum VerifyError {
    /// The design contains a cube that cannot be interpreted.
    BadCube(Coord),
    /// K-pipe colors were not inferred before verification.
    MissingKColors,
    /// Flow derivation failed structurally.
    Zx(ZxError),
    /// Some specification stabilizers are not realized.
    MissingFlows(Vec<usize>),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadCube(c) => write!(f, "cube {c} cannot be interpreted"),
            VerifyError::MissingKColors => write!(f, "run infer_k_colors before verifying"),
            VerifyError::Zx(e) => write!(f, "zx derivation failed: {e}"),
            VerifyError::MissingFlows(idx) => {
                write!(f, "design does not realize stabilizers {idx:?}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<ZxError> for VerifyError {
    fn from(e: ZxError) -> Self {
        VerifyError::Zx(e)
    }
}

/// Extracts the ZX diagram of a solved design.
///
/// Boundary nodes are created in port order, so the flow group's qubit
/// order matches the spec's stabilizer strings.
///
/// # Errors
///
/// Returns [`VerifyError`] if the design has uninterpretable cubes or
/// missing K colors.
pub fn extract_zx(design: &LasDesign) -> Result<Diagram, VerifyError> {
    let spec = design.spec();
    let mut diagram = Diagram::new();
    let boundary_nodes: Vec<NodeId> = spec.ports.iter().map(|_| diagram.add_boundary()).collect();

    // One spider per structural cube.
    let mut cube_nodes: HashMap<Coord, NodeId> = HashMap::new();
    for c in design.used_cubes() {
        match design.classify(c) {
            CubeKind::Empty | CubeKind::Port(_) => {}
            CubeKind::Y => {
                cube_nodes.insert(c, diagram.add_spider(SpiderKind::Z, 1));
            }
            CubeKind::Straight { .. } => {
                cube_nodes.insert(c, diagram.add_spider(SpiderKind::Z, 0));
            }
            CubeKind::Junction { red, .. } => {
                let kind = if red { SpiderKind::X } else { SpiderKind::Z };
                cube_nodes.insert(c, diagram.add_spider(kind, 0));
            }
            CubeKind::Invalid => return Err(VerifyError::BadCube(c)),
        }
    }

    // Edges: one per pipe. Port pipes attach to boundary nodes.
    let port_pipes = spec.port_pipes();
    for pipe in design.pipes() {
        let hadamard = pipe.axis == Axis::K && design.domain_walls().contains(&pipe.base);
        if pipe.axis == Axis::K && design.k_color(pipe.base).is_none() {
            return Err(VerifyError::MissingKColors);
        }
        let (lo, hi) = pipe.endpoints();
        let node_for = |c: Coord| -> Option<NodeId> { cube_nodes.get(&c).copied() };
        let endpoint = |c: Coord, side: Sign| -> Result<NodeId, VerifyError> {
            if let Some(n) = node_for(c) {
                return Ok(n);
            }
            // Not a structural cube: must be a port location (virtual
            // inside, or outside the arrays).
            if let Some(&p_idx) = port_pipes.get(&(pipe.base, pipe.axis)) {
                let _ = side;
                return Ok(boundary_nodes[p_idx]);
            }
            Err(VerifyError::BadCube(c))
        };
        let a = endpoint(lo, Sign::Minus)?;
        let b = endpoint(hi, Sign::Plus)?;
        if hadamard {
            diagram.add_h_edge(a, b);
        } else {
            diagram.add_edge(a, b);
        }
    }
    Ok(diagram)
}

/// Derives the flows of a design and checks them against its spec.
///
/// # Errors
///
/// Returns [`VerifyError::MissingFlows`] listing unrealized stabilizer
/// indices, or a structural error.
pub fn verify(design: &LasDesign) -> Result<FlowGroup, VerifyError> {
    let diagram = extract_zx(design)?;
    let flows = diagram.stabilizer_flows()?;
    let missing = flows.missing_letters(&design.spec().stabilizers);
    if missing.is_empty() {
        Ok(flows)
    } else {
        Err(VerifyError::MissingFlows(missing))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasre::fixtures::cnot_design;

    #[test]
    fn cnot_fixture_extracts_and_verifies() {
        let mut d = cnot_design();
        d.infer_k_colors();
        let diagram = extract_zx(&d).unwrap();
        // 4 boundaries + spiders for every structural cube.
        assert_eq!(diagram.boundaries().len(), 4);
        let flows = verify(&d).expect("paper CNOT must verify");
        assert_eq!(flows.rank(), 4);
    }

    #[test]
    fn wrong_spec_fails_verification() {
        let mut d = cnot_design();
        d.infer_k_colors();
        // Claim the design is a SWAP instead: must fail.
        let mut spec = d.spec().clone();
        spec.stabilizers = vec!["Z..Z".parse().unwrap(), ".ZZ.".parse().unwrap()];
        let values = d.values().to_vec();
        let mut d2 = lasre::LasDesign::new(spec, values[..6 * 12 + 2 * 6 * 12].to_vec());
        d2.infer_k_colors();
        match verify(&d2) {
            Err(VerifyError::MissingFlows(idx)) => assert!(!idx.is_empty()),
            other => panic!("expected missing flows, got {other:?}"),
        }
    }

    #[test]
    fn unverified_without_k_colors() {
        let d = cnot_design();
        assert!(matches!(verify(&d), Err(VerifyError::MissingKColors)));
    }
}
