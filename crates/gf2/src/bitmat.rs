//! Bit-packed matrices over GF(2) with row-reduction routines.

use crate::BitVec;
use std::fmt;

/// A dense matrix over GF(2), stored as one [`BitVec`] per row.
///
/// Used throughout the workspace: stabilizer tableaus, flow-group
/// reduction, and solving small linear systems arising in verification.
///
/// # Examples
///
/// ```
/// use gf2::BitMat;
///
/// let m = BitMat::identity(4);
/// assert_eq!(m.rank(), 4);
/// assert!(m.get(2, 2));
/// assert!(!m.get(2, 3));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BitMat {
    rows: usize,
    cols: usize,
    data: Vec<BitVec>,
}

impl BitMat {
    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        BitMat {
            rows,
            cols,
            data: vec![BitVec::zeros(cols); rows],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMat::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: Vec<BitVec>) -> Self {
        let cols = rows.first().map_or(0, BitVec::len);
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        BitMat {
            rows: rows.len(),
            cols,
            data: rows,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.data[r].get(c)
    }

    /// Writes entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        self.data[r].set(c, value);
    }

    /// Borrows row `r`.
    pub fn row(&self, r: usize) -> &BitVec {
        &self.data[r]
    }

    /// Mutably borrows row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut BitVec {
        &mut self.data[r]
    }

    /// Iterates over rows.
    pub fn iter(&self) -> std::slice::Iter<'_, BitVec> {
        self.data.iter()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from `ncols` (unless the matrix is empty).
    pub fn push_row(&mut self, row: BitVec) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.data.push(row);
        self.rows += 1;
    }

    /// XORs row `src` into row `dst` (`dst += src`).
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either is out of range.
    pub fn xor_row(&mut self, dst: usize, src: usize) {
        assert_ne!(dst, src, "xor_row with src == dst");
        let (a, b) = if dst < src {
            let (lo, hi) = self.data.split_at_mut(src);
            (&mut lo[dst], &hi[0])
        } else {
            let (lo, hi) = self.data.split_at_mut(dst);
            (&mut hi[0], &lo[src])
        };
        *a ^= b;
    }

    /// Swaps two rows.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        self.data.swap(a, b);
    }

    /// In-place Gaussian elimination to **reduced row echelon form**,
    /// processing columns left-to-right. Returns the list of pivot
    /// columns (one per nonzero row, in order).
    pub fn row_reduce(&mut self) -> Vec<usize> {
        self.row_reduce_cols(&(0..self.cols).collect::<Vec<_>>())
    }

    /// Row reduction using the given column priority order.
    ///
    /// Columns earlier in `col_order` are eliminated first. This is how
    /// the ZX flow derivation pushes support off internal qubits: put the
    /// internal columns first and the rows whose pivots land there are
    /// the ones that cannot be cleaned.
    ///
    /// Returns pivot columns in elimination order.
    pub fn row_reduce_cols(&mut self, col_order: &[usize]) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut next_row = 0;
        for &c in col_order {
            if next_row >= self.rows {
                break;
            }
            let Some(pivot_row) = (next_row..self.rows).find(|&r| self.get(r, c)) else {
                continue;
            };
            self.swap_rows(next_row, pivot_row);
            for r in 0..self.rows {
                if r != next_row && self.get(r, c) {
                    self.xor_row(r, next_row);
                }
            }
            pivots.push(c);
            next_row += 1;
        }
        pivots
    }

    /// Rank of the matrix (does not modify `self`).
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        m.row_reduce().len()
    }

    /// Solves `self * x = b` (treating rows as equations), returning one
    /// solution if consistent.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != nrows`.
    pub fn solve(&self, b: &BitVec) -> Option<BitVec> {
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        // Augment with b as an extra column and reduce.
        let mut aug = BitMat::zeros(self.rows, self.cols + 1);
        for r in 0..self.rows {
            for c in self.data[r].iter_ones() {
                aug.set(r, c, true);
            }
            if b.get(r) {
                aug.set(r, self.cols, true);
            }
        }
        let pivots = aug.row_reduce();
        // Inconsistent iff some pivot is in the augmented column.
        if pivots.contains(&self.cols) {
            return None;
        }
        let mut x = BitVec::zeros(self.cols);
        for (row, &pc) in pivots.iter().enumerate() {
            if aug.get(row, self.cols) {
                x.set(pc, true);
            }
        }
        Some(x)
    }

    /// Basis of the null space of the matrix (vectors `x` with `self * x = 0`).
    pub fn nullspace(&self) -> Vec<BitVec> {
        let mut m = self.clone();
        let pivots = m.row_reduce();
        let pivot_set: std::collections::HashSet<usize> = pivots.iter().copied().collect();
        let mut basis = Vec::new();
        for free in 0..self.cols {
            if pivot_set.contains(&free) {
                continue;
            }
            let mut v = BitVec::zeros(self.cols);
            v.set(free, true);
            for (row, &pc) in pivots.iter().enumerate() {
                if m.get(row, free) {
                    v.set(pc, true);
                }
            }
            basis.push(v);
        }
        basis
    }

    /// Matrix-vector product over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &BitVec) -> BitVec {
        assert_eq!(x.len(), self.cols, "vector length mismatch");
        BitVec::from_bools(self.data.iter().map(|row| row.dot(x)))
    }

    /// Tests whether `v` lies in the row space (does not modify `self`).
    pub fn row_space_contains(&self, v: &BitVec) -> bool {
        assert_eq!(v.len(), self.cols, "vector length mismatch");
        let mut m = self.clone();
        m.push_row(v.clone());
        m.rank() == self.rank()
    }
}

impl fmt::Debug for BitMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMat {}x{} [", self.rows, self.cols)?;
        for row in &self.data {
            writeln!(f, "  {row}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&str]) -> BitMat {
        BitMat::from_rows(
            rows.iter()
                .map(|r| BitVec::from_bools(r.chars().map(|ch| ch == '1')))
                .collect(),
        )
    }

    #[test]
    fn identity_rank() {
        assert_eq!(BitMat::identity(7).rank(), 7);
    }

    #[test]
    fn rank_of_dependent_rows() {
        let m = mat(&["110", "011", "101"]);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn row_reduce_gives_rref() {
        let mut m = mat(&["110", "011", "101"]);
        let pivots = m.row_reduce();
        assert_eq!(pivots, vec![0, 1]);
        // RREF: 101 / 011 / 000
        assert_eq!(m.row(0).to_string(), "101");
        assert_eq!(m.row(1).to_string(), "011");
        assert!(m.row(2).is_zero());
    }

    #[test]
    fn row_reduce_custom_order_prioritizes_columns() {
        let mut m = mat(&["110", "011"]);
        let pivots = m.row_reduce_cols(&[2, 1, 0]);
        assert_eq!(pivots, vec![2, 1]);
        // pivot of first processed column (2) appears exactly once
        assert_eq!((0..2).filter(|&r| m.get(r, 2)).count(), 1);
    }

    #[test]
    fn solve_consistent() {
        let m = mat(&["110", "011"]);
        let b = BitVec::from_bools([true, false]);
        let x = m.solve(&b).expect("consistent");
        assert_eq!(m.mul_vec(&x), b);
    }

    #[test]
    fn solve_inconsistent() {
        let m = mat(&["110", "110"]);
        let b = BitVec::from_bools([true, false]);
        assert!(m.solve(&b).is_none());
    }

    #[test]
    fn nullspace_kernel_property() {
        let m = mat(&["110", "011", "101"]);
        let ns = m.nullspace();
        assert_eq!(ns.len(), 1);
        for v in &ns {
            assert!(m.mul_vec(v).is_zero());
        }
        assert_eq!(ns[0].to_string(), "111");
    }

    #[test]
    fn row_space_membership() {
        let m = mat(&["110", "011"]);
        assert!(m.row_space_contains(&BitVec::from_bools([true, false, true])));
        assert!(!m.row_space_contains(&BitVec::from_bools([true, false, false])));
    }

    #[test]
    fn push_row_onto_empty() {
        let mut m = BitMat::default();
        m.push_row(BitVec::from_bools([true, true]));
        assert_eq!((m.nrows(), m.ncols()), (1, 2));
    }

    #[test]
    fn xor_row_adds() {
        let mut m = mat(&["110", "011"]);
        m.xor_row(0, 1);
        assert_eq!(m.row(0).to_string(), "101");
    }

    #[test]
    fn mul_vec_matches_manual() {
        let m = mat(&["101", "111"]);
        let x = BitVec::from_bools([true, true, true]);
        assert_eq!(m.mul_vec(&x).to_string(), "01");
    }
}
