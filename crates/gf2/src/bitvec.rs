//! Bit-packed vectors over GF(2).

use crate::{words_for, WORD_BITS};
use std::fmt;
use std::ops::{BitAndAssign, BitXorAssign};

/// A fixed-length vector over GF(2), packed into `u64` words.
///
/// The length is fixed at construction; all arithmetic requires equal
/// lengths. Unused high bits of the last word are kept zero (a crate
/// invariant relied upon by [`BitVec::count_ones`] and equality).
///
/// # Examples
///
/// ```
/// use gf2::BitVec;
///
/// let mut v = BitVec::zeros(100);
/// v.set(3, true);
/// v.set(99, true);
/// assert_eq!(v.count_ones(), 2);
/// assert!(v.get(99));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of the given length.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; words_for(len)],
        }
    }

    /// Creates a vector from an iterator of booleans.
    ///
    /// ```
    /// use gf2::BitVec;
    /// let v = BitVec::from_bools([true, false, true]);
    /// assert_eq!(v.to_string(), "101");
    /// ```
    pub fn from_bools<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut v = BitVec::zeros(bits.len());
        for (i, b) in bits.iter().enumerate() {
            v.set(i, *b);
        }
        v
    }

    /// Creates a vector with exactly one bit set.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn unit(len: usize, idx: usize) -> Self {
        let mut v = BitVec::zeros(len);
        v.set(idx, true);
        v
    }

    /// Number of bits in the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "bit index {idx} out of range (len {})",
            self.len
        );
        (self.words[idx / WORD_BITS] >> (idx % WORD_BITS)) & 1 != 0
    }

    /// Writes the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[inline]
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(
            idx < self.len,
            "bit index {idx} out of range (len {})",
            self.len
        );
        let mask = 1u64 << (idx % WORD_BITS);
        if value {
            self.words[idx / WORD_BITS] |= mask;
        } else {
            self.words[idx / WORD_BITS] &= !mask;
        }
    }

    /// Flips the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[inline]
    pub fn flip(&mut self, idx: usize) {
        assert!(
            idx < self.len,
            "bit index {idx} out of range (len {})",
            self.len
        );
        self.words[idx / WORD_BITS] ^= 1u64 << (idx % WORD_BITS);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Parity (XOR) of the AND with another vector: `⟨self, other⟩` over GF(2).
    ///
    /// This is the symplectic building block used for Pauli commutation.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "dot of unequal lengths");
        let mut acc = 0u64;
        for (a, b) in self.words.iter().zip(&other.words) {
            acc ^= a & b;
        }
        acc.count_ones() % 2 == 1
    }

    /// Sets all bits to zero, keeping the length.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Iterates over the indices of set bits in increasing order.
    ///
    /// ```
    /// use gf2::BitVec;
    /// let v = BitVec::from_bools([false, true, false, true]);
    /// assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![1, 3]);
    /// ```
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            vec: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Index of the lowest set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Raw word slice (low bit of word 0 is bit 0).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Grows the vector to `new_len` bits, padding with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `new_len < len`.
    pub fn grow(&mut self, new_len: usize) {
        assert!(new_len >= self.len, "grow may not shrink");
        self.len = new_len;
        self.words.resize(words_for(new_len), 0);
    }

    /// Masks off any bits beyond `len` in the last word.
    fn fixup_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl BitXorAssign<&BitVec> for BitVec {
    /// In-place GF(2) addition.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    fn bitxor_assign(&mut self, rhs: &BitVec) {
        assert_eq!(self.len, rhs.len, "xor of unequal lengths");
        for (a, b) in self.words.iter_mut().zip(&rhs.words) {
            *a ^= b;
        }
    }
}

impl BitAndAssign<&BitVec> for BitVec {
    /// In-place bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    fn bitand_assign(&mut self, rhs: &BitVec) {
        assert_eq!(self.len, rhs.len, "and of unequal lengths");
        for (a, b) in self.words.iter_mut().zip(&rhs.words) {
            *a &= b;
        }
        self.fixup_tail();
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            f.write_str(if self.get(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec({self})")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitVec::from_bools(iter)
    }
}

/// Iterator over set-bit indices, created by [`BitVec::iter_ones`].
pub struct IterOnes<'a> {
    vec: &'a BitVec,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.vec.words.len() {
                return None;
            }
            self.current = self.vec.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_are_zero() {
        let v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert!(v.is_zero());
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(200);
        for i in [0, 1, 63, 64, 65, 127, 128, 199] {
            v.set(i, true);
            assert!(v.get(i), "bit {i}");
        }
        assert_eq!(v.count_ones(), 8);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 7);
    }

    #[test]
    fn flip_toggles() {
        let mut v = BitVec::zeros(10);
        v.flip(5);
        assert!(v.get(5));
        v.flip(5);
        assert!(!v.get(5));
    }

    #[test]
    fn xor_adds() {
        let a = BitVec::from_bools([true, true, false, false]);
        let b = BitVec::from_bools([true, false, true, false]);
        let mut c = a.clone();
        c ^= &b;
        assert_eq!(c.to_string(), "0110");
    }

    #[test]
    fn and_masks_tail() {
        let mut a = BitVec::from_bools([true; 65]);
        let b = BitVec::from_bools([true; 65]);
        a &= &b;
        assert_eq!(a.count_ones(), 65);
    }

    #[test]
    fn dot_is_symplectic_parity() {
        let a = BitVec::from_bools([true, true, true, false]);
        let b = BitVec::from_bools([true, true, false, true]);
        assert!(!a.dot(&b)); // overlap of 2 bits → even
        let c = BitVec::from_bools([true, false, false, false]);
        assert!(a.dot(&c));
    }

    #[test]
    fn iter_ones_in_order() {
        let mut v = BitVec::zeros(300);
        let idxs = [2usize, 63, 64, 150, 299];
        for &i in &idxs {
            v.set(i, true);
        }
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), idxs);
        assert_eq!(v.first_one(), Some(2));
    }

    #[test]
    fn unit_vector() {
        let v = BitVec::unit(70, 69);
        assert_eq!(v.count_ones(), 1);
        assert!(v.get(69));
    }

    #[test]
    fn grow_preserves() {
        let mut v = BitVec::from_bools([true, false, true]);
        v.grow(100);
        assert_eq!(v.len(), 100);
        assert!(v.get(0) && v.get(2) && !v.get(50));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(8).get(8);
    }

    #[test]
    fn display_and_collect() {
        let v: BitVec = [true, false, true, true].into_iter().collect();
        assert_eq!(format!("{v}"), "1011");
        assert_eq!(format!("{v:?}"), "BitVec(1011)");
    }
}
