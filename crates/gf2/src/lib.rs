//! Dense linear algebra over GF(2).
//!
//! This crate provides the bit-packed vectors ([`BitVec`]) and matrices
//! ([`BitMat`]) that the rest of the workspace builds on: Pauli strings
//! store their X/Z supports as `BitVec`s, the stabilizer tableau is a
//! `BitMat`, and the ZX flow derivation reduces stabilizer groups with
//! [`BitMat::row_reduce`].
//!
//! # Examples
//!
//! ```
//! use gf2::BitMat;
//!
//! let mut m = BitMat::zeros(3, 3);
//! m.set(0, 0, true); m.set(0, 1, true);
//! m.set(1, 1, true); m.set(1, 2, true);
//! m.set(2, 0, true); m.set(2, 2, true);
//! // rows are linearly dependent: r0 + r1 = r2
//! assert_eq!(m.rank(), 2);
//! ```

#![forbid(unsafe_code)]

mod bitmat;
mod bitvec;

pub use bitmat::BitMat;
pub use bitvec::BitVec;

/// Number of bits per storage word.
pub(crate) const WORD_BITS: usize = 64;

/// Computes the number of `u64` words needed to store `bits` bits.
#[inline]
pub(crate) fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}
