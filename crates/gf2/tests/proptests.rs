//! Property-based tests for GF(2) linear algebra invariants.

use gf2::{BitMat, BitVec};
use proptest::prelude::*;

fn arb_bitvec(len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), len).prop_map(BitVec::from_bools)
}

fn arb_bitmat(rows: usize, cols: usize) -> impl Strategy<Value = BitMat> {
    proptest::collection::vec(arb_bitvec(cols), rows).prop_map(BitMat::from_rows)
}

proptest! {
    #[test]
    fn xor_is_involution(a in arb_bitvec(97), b in arb_bitvec(97)) {
        let mut c = a.clone();
        c ^= &b;
        c ^= &b;
        prop_assert_eq!(c, a);
    }

    #[test]
    fn dot_is_bilinear(a in arb_bitvec(80), b in arb_bitvec(80), c in arb_bitvec(80)) {
        let mut bc = b.clone();
        bc ^= &c;
        prop_assert_eq!(a.dot(&bc), a.dot(&b) ^ a.dot(&c));
    }

    #[test]
    fn count_ones_matches_iter(a in arb_bitvec(130)) {
        prop_assert_eq!(a.count_ones(), a.iter_ones().count());
    }

    #[test]
    fn rank_le_dims(m in arb_bitmat(6, 9)) {
        let r = m.rank();
        prop_assert!(r <= 6);
        prop_assert!(r <= 9);
    }

    #[test]
    fn row_reduce_preserves_row_space(m in arb_bitmat(5, 8)) {
        let mut reduced = m.clone();
        reduced.row_reduce();
        // every original row is in the reduced row space and vice versa
        for r in m.iter() {
            prop_assert!(reduced.row_space_contains(r));
        }
        for r in reduced.iter() {
            if !r.is_zero() {
                prop_assert!(m.row_space_contains(r));
            }
        }
    }

    #[test]
    fn rank_nullity(m in arb_bitmat(6, 8)) {
        prop_assert_eq!(m.rank() + m.nullspace().len(), 8);
    }

    #[test]
    fn solve_returns_solutions(m in arb_bitmat(5, 7), x in arb_bitvec(7)) {
        // Construct a consistent rhs, then any returned solution must satisfy it.
        let b = m.mul_vec(&x);
        let sol = m.solve(&b).expect("constructed rhs must be consistent");
        prop_assert_eq!(m.mul_vec(&sol), b);
    }

    #[test]
    fn nullspace_vectors_are_in_kernel(m in arb_bitmat(7, 7)) {
        for v in m.nullspace() {
            prop_assert!(m.mul_vec(&v).is_zero());
        }
    }
}
