//! Solved LaS designs (the textual "LaSre" output of the paper).

use crate::geom::{red_normal_axis, Axis, Bounds, Coord, Sign};
use crate::spec::LasSpec;
use crate::vars::{CorrKind, StructVar, VarTable};
use std::collections::{HashMap, HashSet, VecDeque};

/// A reference to a pipe: the lower endpoint cube along the pipe's axis,
/// plus the axis. `Exist{axis}[base]` is the corresponding variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PipeRef {
    /// Lower endpoint (the cube the pipe leaves toward `+axis`).
    pub base: Coord,
    /// The pipe's axis.
    pub axis: Axis,
}

impl PipeRef {
    /// Builds a pipe reference.
    pub fn new(base: Coord, axis: Axis) -> PipeRef {
        PipeRef { base, axis }
    }

    /// The two endpoints (the upper one may be outside the arrays for
    /// port pipes that exit on a `+` face).
    pub fn endpoints(self) -> (Coord, Coord) {
        (self.base, self.base.next(self.axis))
    }
}

/// Classification of a cube in a solved design, used by the ZX
/// extraction, visualization and the validity checker.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CubeKind {
    /// No pipes touch the cube.
    Empty,
    /// A virtual port location (padding cube standing for the outside).
    Port(usize),
    /// A Y-basis initialization/measurement cube.
    Y,
    /// Pipes along a single axis: a straight wire segment or a terminal.
    Straight {
        /// The axis of the incident pipe(s).
        axis: Axis,
        /// Number of incident pipes (1 = terminal, 2 = passthrough).
        degree: usize,
    },
    /// Pipes along exactly two axes: a turn, T- or cross-junction lying
    /// in the plane of those axes.
    Junction {
        /// The normal axis (no pipes along it).
        normal: Axis,
        /// Whether the faces normal to `normal` are red (X-type); red
        /// junctions are X-spiders, blue ones Z-spiders (paper Sec. II-D).
        red: bool,
        /// Number of incident pipes (2–4).
        degree: usize,
    },
    /// Pipes along all three axes: a forbidden 3D corner.
    Invalid,
}

/// A solved lattice-surgery subroutine: the spec plus a full variable
/// assignment and the inferred K-pipe colors / domain walls.
///
/// Constructed by the synthesizer's decoder (or by hand, to check
/// existing human designs). Post-processing entry points:
/// [`LasDesign::prune`] and [`LasDesign::infer_k_colors`].
#[derive(Clone, Debug, PartialEq)]
pub struct LasDesign {
    spec: LasSpec,
    table: VarTable,
    values: Vec<bool>,
    /// Lower/upper color orientation of each existing K pipe.
    k_colors: HashMap<Coord, (bool, bool)>,
    /// K pipes containing a domain wall.
    domain_walls: HashSet<Coord>,
    /// Whether ZX verification succeeded (set by the synthesizer).
    verified: bool,
}

impl LasDesign {
    /// Wraps a raw variable assignment.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the spec's variable count.
    pub fn new(spec: LasSpec, values: Vec<bool>) -> LasDesign {
        let table = VarTable::new(spec.bounds(), spec.nstab());
        assert_eq!(
            values.len(),
            table.num_total(),
            "assignment length mismatch"
        );
        LasDesign {
            spec,
            table,
            values,
            k_colors: HashMap::new(),
            domain_walls: HashSet::new(),
            verified: false,
        }
    }

    /// The specification this design satisfies.
    pub fn spec(&self) -> &LasSpec {
        &self.spec
    }

    /// The variable table (shared layout with the encoder).
    pub fn table(&self) -> &VarTable {
        &self.table
    }

    /// The bounds of the variable arrays.
    pub fn bounds(&self) -> Bounds {
        self.spec.bounds()
    }

    /// Whether ZX verification has confirmed this design.
    pub fn verified(&self) -> bool {
        self.verified
    }

    /// Records the verification result (used by the synthesizer).
    pub fn set_verified(&mut self, v: bool) {
        self.verified = v;
    }

    /// Whether the cube at `c` is a Y cube (`false` out of bounds).
    pub fn is_y(&self, c: Coord) -> bool {
        self.bounds().contains(c) && self.values[self.table.structural(StructVar::YCube(c))]
    }

    /// Whether a pipe exists from `c` toward `+axis` (`false` out of bounds).
    pub fn has_pipe(&self, axis: Axis, c: Coord) -> bool {
        self.bounds().contains(c) && self.values[self.table.structural(StructVar::Exist(axis, c))]
    }

    /// The color orientation of an existing I or J pipe.
    ///
    /// # Panics
    ///
    /// Panics for K pipes (use [`LasDesign::k_color`]) or out-of-bounds
    /// coordinates.
    pub fn color(&self, axis: Axis, c: Coord) -> bool {
        self.values[self.table.structural(StructVar::Color(axis, c))]
    }

    /// The inferred (lower, upper) color orientations of a K pipe, if
    /// [`LasDesign::infer_k_colors`] has run.
    pub fn k_color(&self, base: Coord) -> Option<(bool, bool)> {
        self.k_colors.get(&base).copied()
    }

    /// K pipes containing a domain wall (paper's yellow rings).
    pub fn domain_walls(&self) -> &HashSet<Coord> {
        &self.domain_walls
    }

    /// The correlation-surface bit for stabilizer `s` in the pipe at `c`.
    pub fn corr(&self, s: usize, kind: CorrKind, c: Coord) -> bool {
        self.values[self.table.corr(s, kind, c)]
    }

    /// All existing pipes (including port pipes).
    pub fn pipes(&self) -> Vec<PipeRef> {
        let mut out = Vec::new();
        for c in self.bounds().iter() {
            for axis in Axis::ALL {
                if self.has_pipe(axis, c) {
                    out.push(PipeRef::new(c, axis));
                }
            }
        }
        out
    }

    /// The pipes incident to cube `c`, as (pipe, sign) where sign is the
    /// side of `c` the pipe leaves from (`Plus` = toward `+axis`).
    pub fn incident_pipes(&self, c: Coord) -> Vec<(PipeRef, Sign)> {
        let mut out = Vec::new();
        for axis in Axis::ALL {
            if self.has_pipe(axis, c) {
                out.push((PipeRef::new(c, axis), Sign::Plus));
            }
            let p = c.prev(axis);
            if self.has_pipe(axis, p) {
                out.push((PipeRef::new(p, axis), Sign::Minus));
            }
        }
        out
    }

    /// Number of pipes incident to `c`.
    pub fn degree(&self, c: Coord) -> usize {
        self.incident_pipes(c).len()
    }

    /// The axes along which `c` has at least one incident pipe.
    pub fn occupied_axes(&self, c: Coord) -> Vec<Axis> {
        Axis::ALL
            .into_iter()
            .filter(|&a| self.has_pipe(a, c) || self.has_pipe(a, c.prev(a)))
            .collect()
    }

    /// The color orientation of any pipe, using stored colors for I/J
    /// and the inferred end color for K (end chosen by `at_upper_end`).
    fn pipe_orientation(&self, pipe: PipeRef, at_upper_end: bool) -> Option<bool> {
        match pipe.axis {
            Axis::K => self
                .k_colors
                .get(&pipe.base)
                .map(|&(lo, hi)| if at_upper_end { hi } else { lo }),
            axis => Some(self.color(axis, pipe.base)),
        }
    }

    /// Classifies the cube at `c` (see [`CubeKind`]).
    pub fn classify(&self, c: Coord) -> CubeKind {
        if let Some(idx) = self
            .spec
            .ports
            .iter()
            .position(|p| p.is_virtual(self.bounds()) && p.location == c)
        {
            return CubeKind::Port(idx);
        }
        if self.is_y(c) {
            return CubeKind::Y;
        }
        let axes = self.occupied_axes(c);
        let degree = self.degree(c);
        match axes.len() {
            0 => CubeKind::Empty,
            1 => CubeKind::Straight {
                axis: axes[0],
                degree,
            },
            2 => {
                let normal = axes[0].third(axes[1]);
                // Read the face color normal to `normal` from a
                // horizontal incident pipe (color matching makes any
                // choice consistent).
                let red = self
                    .incident_pipes(c)
                    .iter()
                    .filter(|(p, _)| p.axis != Axis::K)
                    .map(|(p, _)| red_normal_axis(p.axis, self.color(p.axis, p.base)) == normal)
                    .next()
                    .unwrap_or(false);
                CubeKind::Junction {
                    normal,
                    red,
                    degree,
                }
            }
            _ => CubeKind::Invalid,
        }
    }

    /// Removes structures not connected to any port (the paper's pruning
    /// of "pipe donuts"). Returns the number of pipes removed.
    pub fn prune(&mut self) -> usize {
        let bounds = self.bounds();
        let mut reachable: HashSet<Coord> = HashSet::new();
        let mut queue: VecDeque<Coord> = VecDeque::new();
        for port in &self.spec.ports {
            let cube = port.cube();
            if reachable.insert(cube) {
                queue.push_back(cube);
            }
            if bounds.contains(port.location) && reachable.insert(port.location) {
                queue.push_back(port.location);
            }
        }
        while let Some(c) = queue.pop_front() {
            for (pipe, sign) in self.incident_pipes(c) {
                let other = match sign {
                    Sign::Plus => pipe.base.next(pipe.axis),
                    Sign::Minus => pipe.base,
                };
                if bounds.contains(other) && reachable.insert(other) {
                    queue.push_back(other);
                }
            }
        }
        let mut removed = 0;
        for c in bounds.iter() {
            if reachable.contains(&c) {
                continue;
            }
            let y = self.table.structural(StructVar::YCube(c));
            self.values[y] = false;
            for axis in Axis::ALL {
                let e = self.table.structural(StructVar::Exist(axis, c));
                if self.values[e] {
                    // Both endpoints unreachable (reachability is closed
                    // under pipes), so dropping the pipe is safe.
                    self.values[e] = false;
                    removed += 1;
                }
            }
        }
        removed
    }

    /// Infers the color orientation of each K pipe's two ends from its
    /// surroundings and places domain walls where the ends disagree
    /// (paper Sec. IV, post-processing).
    ///
    /// # Panics
    ///
    /// Panics if surrounding constraints are themselves inconsistent,
    /// which a design satisfying the validity constraints cannot be.
    pub fn infer_k_colors(&mut self) {
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
        struct EndRef {
            base: Coord,
            upper: bool,
        }
        let bounds = self.bounds();
        let k_pipes: Vec<Coord> = bounds
            .iter()
            .filter(|&c| self.has_pipe(Axis::K, c))
            .collect();
        // 1. Fixed constraints at each end.
        let mut fixed: HashMap<EndRef, bool> = HashMap::new();
        let port_pipes = self.spec.port_pipes();
        for &base in &k_pipes {
            for upper in [false, true] {
                let end_cube = if upper { base.next(Axis::K) } else { base };
                let endref = EndRef { base, upper };
                // Port pipes: the outer end color comes from the port.
                if let Some(&pidx) = port_pipes.get(&(base, Axis::K)) {
                    let port = self.spec.ports[pidx];
                    let outer_is_upper = port.direction.sign == Sign::Minus;
                    if upper == outer_is_upper {
                        fixed.insert(endref, port.color_orientation());
                        continue;
                    }
                }
                if !bounds.contains(end_cube) {
                    continue;
                }
                // Horizontal pipes at the end cube constrain the color.
                for (p, _) in self.incident_pipes(end_cube) {
                    if p.axis == Axis::K {
                        continue;
                    }
                    let n = Axis::K.third(p.axis);
                    let h_red_n = red_normal_axis(p.axis, self.color(p.axis, p.base)) == n;
                    // Find the K orientation with matching n-face color.
                    let o = [false, true]
                        .into_iter()
                        .find(|&o| (red_normal_axis(Axis::K, o) == n) == h_red_n)
                        .expect("one orientation matches"); // lint:allow(no-panic)
                    if let Some(&prev) = fixed.get(&endref) {
                        assert_eq!(
                            prev, o,
                            "conflicting K colors at {end_cube} (invalid design)"
                        );
                    }
                    fixed.insert(endref, o);
                }
            }
        }
        // 2. Continuity: at a cube with only K pipes through it, the
        //    upper end of the pipe below equals the lower end of the
        //    pipe above.
        let mut adj: HashMap<EndRef, Vec<EndRef>> = HashMap::new();
        for &base in &k_pipes {
            let top_cube = base.next(Axis::K);
            let above = top_cube;
            if self.has_pipe(Axis::K, above) && !self.is_y(top_cube) {
                let only_k = self.occupied_axes(top_cube) == vec![Axis::K];
                if only_k {
                    let a = EndRef { base, upper: true };
                    let b = EndRef {
                        base: above,
                        upper: false,
                    };
                    adj.entry(a).or_default().push(b);
                    adj.entry(b).or_default().push(a);
                }
            }
        }
        // 3. Propagate fixed values across continuity edges, then within
        //    pipes (preferring no wall), then default.
        let mut value: HashMap<EndRef, bool> = fixed.clone();
        let mut queue: VecDeque<EndRef> = value.keys().copied().collect();
        while let Some(e) = queue.pop_front() {
            let v = value[&e];
            for nb in adj.get(&e).cloned().unwrap_or_default() {
                match value.get(&nb) {
                    Some(&existing) => {
                        assert_eq!(existing, v, "conflicting K colors across {nb:?}")
                    }
                    None => {
                        value.insert(nb, v);
                        queue.push_back(nb);
                    }
                }
            }
        }
        // Within-pipe relaxation: copy a decided end to an undecided one.
        let mut changed = true;
        while changed {
            changed = false;
            for &base in &k_pipes {
                let lo = EndRef { base, upper: false };
                let hi = EndRef { base, upper: true };
                let (lv, hv) = (value.get(&lo).copied(), value.get(&hi).copied());
                let copy = match (lv, hv) {
                    (Some(v), None) => Some((hi, v)),
                    (None, Some(v)) => Some((lo, v)),
                    _ => None,
                };
                if let Some((e, v)) = copy {
                    value.insert(e, v);
                    changed = true;
                    // Propagate across continuity edges again.
                    let mut q = VecDeque::from([e]);
                    while let Some(x) = q.pop_front() {
                        let xv = value[&x];
                        for nb in adj.get(&x).cloned().unwrap_or_default() {
                            if let Some(&ex) = value.get(&nb) {
                                assert_eq!(ex, xv, "conflicting K colors");
                            } else {
                                value.insert(nb, xv);
                                q.push_back(nb);
                            }
                        }
                    }
                }
            }
        }
        self.k_colors.clear();
        self.domain_walls.clear();
        for &base in &k_pipes {
            let lo = value
                .get(&EndRef { base, upper: false })
                .copied()
                .unwrap_or(false);
            let hi = value
                .get(&EndRef { base, upper: true })
                .copied()
                .unwrap_or(lo);
            self.k_colors.insert(base, (lo, hi));
            if lo != hi {
                self.domain_walls.insert(base);
            }
        }
    }

    /// The red-face normal axis of a pipe at the given end (`upper` only
    /// matters for K pipes, which may flip across a domain wall).
    ///
    /// Returns `None` for K pipes before [`LasDesign::infer_k_colors`].
    pub fn red_normal(&self, pipe: PipeRef, upper: bool) -> Option<Axis> {
        self.pipe_orientation(pipe, upper)
            .map(|o| red_normal_axis(pipe.axis, o))
    }

    /// The cubes carrying any structure.
    pub fn used_cubes(&self) -> Vec<Coord> {
        self.bounds()
            .iter()
            .filter(|&c| self.degree(c) > 0 || self.is_y(c))
            .collect()
    }

    /// Raw access to the assignment (for serialization).
    pub fn values(&self) -> &[bool] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::cnot_design;

    #[test]
    fn cnot_design_pipe_census() {
        let d = cnot_design();
        // Fig. 8: one I pipe, one J pipe, and eight K pipes (two port
        // pipes at the bottom, two exiting at the top, four interior).
        let pipes = d.pipes();
        let count = |axis: Axis| pipes.iter().filter(|p| p.axis == axis).count();
        assert_eq!(count(Axis::I), 1);
        assert_eq!(count(Axis::J), 1);
        assert_eq!(count(Axis::K), 7);
    }

    #[test]
    fn cnot_design_degrees() {
        let d = cnot_design();
        // The junction cube (0,1,2) has pipes: K below, K above (port),
        // and the I pipe: a T in the I-K plane.
        assert_eq!(d.degree(Coord::new(0, 1, 2)), 3);
        assert_eq!(
            d.classify(Coord::new(0, 1, 2)),
            // The ZZ merge junction is blue (a Z-spider).
            CubeKind::Junction {
                normal: Axis::J,
                red: false,
                degree: 3
            }
        );
        // (1,1,2) is a turn: I pipe from the left, K pipe below.
        assert_eq!(d.degree(Coord::new(1, 1, 2)), 2);
        // Virtual port cubes at the bottom layer.
        assert_eq!(d.classify(Coord::new(0, 1, 0)), CubeKind::Port(0));
        // Forbidden padding cube is empty.
        assert_eq!(d.classify(Coord::new(0, 0, 0)), CubeKind::Empty);
    }

    #[test]
    fn prune_removes_disconnected_donut() {
        let mut d = cnot_design();
        // Manually add an isolated vertical pipe at (0,0,1)-(0,0,2).
        let e = d
            .table
            .structural(StructVar::Exist(Axis::K, Coord::new(0, 0, 1)));
        d.values[e] = true;
        assert_eq!(d.prune(), 1);
        assert!(!d.has_pipe(Axis::K, Coord::new(0, 0, 1)));
        // The real structure is untouched.
        assert!(d.has_pipe(Axis::I, Coord::new(0, 1, 2)));
    }

    #[test]
    fn k_color_inference_no_walls_needed_for_cnot() {
        let mut d = cnot_design();
        d.infer_k_colors();
        // All ports share z_basis_direction = J, and the single I/J pipes
        // are color-consistent, so no domain wall should appear.
        assert!(d.domain_walls().is_empty(), "walls: {:?}", d.domain_walls());
        // Every K pipe has a color.
        for p in d.pipes().into_iter().filter(|p| p.axis == Axis::K) {
            assert!(d.k_color(p.base).is_some());
        }
    }

    #[test]
    fn incident_pipes_signs() {
        let d = cnot_design();
        let inc = d.incident_pipes(Coord::new(1, 1, 2));
        assert_eq!(inc.len(), 2);
        assert!(inc
            .iter()
            .any(|(p, s)| p.axis == Axis::I && *s == Sign::Minus));
        assert!(inc
            .iter()
            .any(|(p, s)| p.axis == Axis::K && *s == Sign::Minus));
    }

    #[test]
    fn used_cubes_excludes_forbidden_corners() {
        let d = cnot_design();
        let used = d.used_cubes();
        assert!(!used.contains(&Coord::new(0, 0, 0)));
        assert!(used.contains(&Coord::new(1, 0, 1)));
    }
}
