//! Reference fixtures: the paper's CNOT example, fully assigned.
//!
//! Fig. 8 and Fig. 10 of the paper spell out every structural and
//! (for the `IZZZ` stabilizer) correlation-surface variable of a
//! 2×2×2-volume CNOT. This module reconstructs that assignment — with
//! the remaining three stabilizers' surfaces derived by hand — so the
//! validity checker, the ZX extraction and the synthesizer's decoder
//! can all be tested against ground truth.

use crate::design::LasDesign;
use crate::geom::{Axis, Coord};
use crate::port::Port;
use crate::spec::LasSpec;
use crate::vars::{CorrKind, StructVar, VarTable};

/// The CNOT specification of paper Figs. 2/8/10: 2×2 footprint, two
/// time layers (arrays 2×2×3 with a bottom padding layer for the input
/// ports), stabilizer flows `ZI→ZI`, `IZ→ZZ`, `XI→XX`, `IX→IX`.
pub fn cnot_spec() -> LasSpec {
    LasSpec {
        name: "cnot".into(),
        max_i: 2,
        max_j: 2,
        max_k: 3,
        ports: vec![
            Port::parse(0, 1, 0, "+K", Axis::J),
            Port::parse(1, 0, 0, "+K", Axis::J),
            Port::parse(0, 1, 3, "-K", Axis::J),
            Port::parse(1, 0, 3, "-K", Axis::J),
        ],
        stabilizers: ["Z.Z.", ".ZZZ", "X.XX", ".X.X"]
            .iter()
            .map(|s| s.parse().expect("valid pauli")) // lint:allow(no-panic)
            .collect(),
        forbidden_cubes: vec![Coord::new(0, 0, 0), Coord::new(1, 1, 0)],
        allow_y_cubes: true,
    }
}

/// The solved CNOT design of paper Fig. 8 (structure) and Fig. 10
/// (correlation surfaces), with all four stabilizers' surfaces filled
/// in. Pruning and K-color inference have *not* been run.
pub fn cnot_design() -> LasDesign {
    let spec = cnot_spec();
    let table = VarTable::new(spec.bounds(), spec.nstab());
    let mut values = vec![false; table.num_total()];
    let mut set = |idx: usize| values[idx] = true;

    let c = Coord::new;
    // Structure (Fig. 8): control pillar at (i,j) = (0,1), target pillar
    // at (1,0), ancilla at (1,1) alive for k = 1..2.
    let k_pipes = [
        c(0, 1, 0), // control input port pipe
        c(0, 1, 1),
        c(0, 1, 2), // control output port pipe (exits at k=3)
        c(1, 0, 0), // target input port pipe
        c(1, 0, 1),
        c(1, 0, 2), // target output port pipe
        c(1, 1, 1), // ancilla lifetime
    ];
    let mut idxs: Vec<usize> = k_pipes
        .iter()
        .map(|&p| table.structural(StructVar::Exist(Axis::K, p)))
        .collect();
    idxs.push(table.structural(StructVar::Exist(Axis::I, c(0, 1, 2))));
    idxs.push(table.structural(StructVar::Exist(Axis::J, c(1, 0, 1))));
    // Colors: the J pipe (XX merge) is red toward I (orientation true);
    // the I pipe (ZZ merge) is red toward K (orientation false).
    idxs.push(table.structural(StructVar::Color(Axis::J, c(1, 0, 1))));
    for idx in idxs {
        set(idx);
    }

    // Correlation surfaces. Stabilizer order: 0 = Z.Z., 1 = .ZZZ,
    // 2 = X.XX, 3 = .X.X. Kinds: (pipe axis, plane partner).
    let kj = CorrKind::new(Axis::K, Axis::J);
    let ki = CorrKind::new(Axis::K, Axis::I);
    let ij = CorrKind::new(Axis::I, Axis::J);
    let ik = CorrKind::new(Axis::I, Axis::K);
    let jk = CorrKind::new(Axis::J, Axis::K);
    let ji = CorrKind::new(Axis::J, Axis::I);

    // s0: Z on the control, rides the control pillar's blue faces.
    for p in [c(0, 1, 0), c(0, 1, 1), c(0, 1, 2)] {
        set(table.corr(0, kj, p));
    }
    // s1 (Fig. 10): Z on target input spreads to both outputs.
    for p in [c(1, 0, 0), c(1, 0, 1), c(1, 0, 2), c(1, 1, 1), c(0, 1, 2)] {
        set(table.corr(1, kj, p));
    }
    set(table.corr(1, jk, c(1, 0, 1)));
    set(table.corr(1, ij, c(0, 1, 2)));
    // s2: X on control spreads to both outputs through the ZZ merge.
    for p in [
        c(0, 1, 0),
        c(0, 1, 1),
        c(0, 1, 2),
        c(1, 1, 1),
        c(1, 0, 1),
        c(1, 0, 2),
    ] {
        set(table.corr(2, ki, p));
    }
    set(table.corr(2, ik, c(0, 1, 2)));
    set(table.corr(2, ji, c(1, 0, 1)));
    // s3: X on the target passes straight through.
    for p in [c(1, 0, 0), c(1, 0, 1), c(1, 0, 2)] {
        set(table.corr(3, ki, p));
    }

    LasDesign::new(spec, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_spec_is_valid() {
        assert!(cnot_spec().validate().is_ok());
    }

    #[test]
    fn fixture_dimensions() {
        let d = cnot_design();
        assert_eq!(d.values().len(), 6 * 12 + 4 * 6 * 12);
        assert_eq!(d.pipes().len(), 9);
    }

    #[test]
    fn fig10_values_reproduced() {
        // Spot-check the exact variable values called out in Fig. 10.
        let d = cnot_design();
        let kj = CorrKind::new(Axis::K, Axis::J);
        let ki = CorrKind::new(Axis::K, Axis::I);
        assert!(d.corr(1, kj, Coord::new(1, 0, 0)));
        assert!(!d.corr(1, ki, Coord::new(1, 0, 0)));
        assert!(d.corr(1, kj, Coord::new(0, 1, 2)));
        assert!(!d.corr(1, kj, Coord::new(0, 1, 0)));
        assert!(!d.corr(1, kj, Coord::new(0, 1, 1)));
        assert!(d.corr(1, CorrKind::new(Axis::I, Axis::J), Coord::new(0, 1, 2)));
        assert!(d.corr(1, CorrKind::new(Axis::J, Axis::K), Coord::new(1, 0, 1)));
    }
}
