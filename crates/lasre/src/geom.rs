//! Axes, directions, coordinates and bounds for the 3D spacetime.
//!
//! Following the paper (Sec. III), `I` and `J` are the two spatial axes
//! of the tile grid and `K` is time. One unit of `K` is one layer of
//! operations plus `d` rounds of error correction.

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;

/// One of the three spacetime axes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Axis {
    /// First spatial axis.
    I,
    /// Second spatial axis.
    J,
    /// The time axis.
    K,
}

impl Axis {
    /// All axes, in `I, J, K` order.
    pub const ALL: [Axis; 3] = [Axis::I, Axis::J, Axis::K];

    /// Index 0, 1, 2 for I, J, K.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Axis::I => 0,
            Axis::J => 1,
            Axis::K => 2,
        }
    }

    /// The other two axes, in canonical order.
    ///
    /// ```
    /// use lasre::Axis;
    /// assert_eq!(Axis::J.others(), [Axis::I, Axis::K]);
    /// ```
    pub fn others(self) -> [Axis; 2] {
        match self {
            Axis::I => [Axis::J, Axis::K],
            Axis::J => [Axis::I, Axis::K],
            Axis::K => [Axis::I, Axis::J],
        }
    }

    /// The axis that is neither `self` nor `other`.
    ///
    /// # Panics
    ///
    /// Panics if `self == other`.
    pub fn third(self, other: Axis) -> Axis {
        assert_ne!(self, other, "no third axis for equal axes");
        *Axis::ALL
            .iter()
            .find(|&&a| a != self && a != other)
            .expect("three axes") // lint:allow(no-panic)
    }

    /// Parses `"I"`, `"J"` or `"K"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Axis> {
        match s.trim() {
            "I" | "i" => Some(Axis::I),
            "J" | "j" => Some(Axis::J),
            "K" | "k" => Some(Axis::K),
            _ => None,
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Axis::I => "I",
            Axis::J => "J",
            Axis::K => "K",
        })
    }
}

impl Serialize for Axis {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for Axis {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        Axis::parse(&s).ok_or_else(|| D::Error::custom(format!("invalid axis {s:?}")))
    }
}

/// Orientation along an axis.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sign {
    /// Toward increasing coordinates.
    Plus,
    /// Toward decreasing coordinates.
    Minus,
}

impl Sign {
    /// `+1` or `-1`.
    #[inline]
    pub fn offset(self) -> i32 {
        match self {
            Sign::Plus => 1,
            Sign::Minus => -1,
        }
    }

    /// The opposite sign.
    pub fn flip(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }
}

/// A signed axis direction, e.g. the `-K` of a port that enters its
/// volume downward (paper Fig. 2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Dir {
    /// The axis of the direction.
    pub axis: Axis,
    /// The orientation along that axis.
    pub sign: Sign,
}

impl Dir {
    /// Builds a direction.
    pub fn new(sign: Sign, axis: Axis) -> Dir {
        Dir { axis, sign }
    }

    /// Parses `"+K"`, `"-I"`, … (a bare axis means `+`).
    pub fn parse(s: &str) -> Option<Dir> {
        let s = s.trim();
        let (sign, rest) = if let Some(r) = s.strip_prefix('-') {
            (Sign::Minus, r)
        } else if let Some(r) = s.strip_prefix('+') {
            (Sign::Plus, r)
        } else {
            (Sign::Plus, s)
        };
        Some(Dir {
            axis: Axis::parse(rest)?,
            sign,
        })
    }

    /// The opposite direction.
    pub fn flip(self) -> Dir {
        Dir {
            axis: self.axis,
            sign: self.sign.flip(),
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = match self.sign {
            Sign::Plus => "+",
            Sign::Minus => "-",
        };
        write!(f, "{sign}{}", self.axis)
    }
}

impl Serialize for Dir {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for Dir {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        Dir::parse(&s).ok_or_else(|| D::Error::custom(format!("invalid direction {s:?}")))
    }
}

/// A 3D grid point. Port locations may have coordinates equal to the
/// bounds (just outside the volume); cube coordinates are within bounds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Coord {
    /// I coordinate.
    pub i: i32,
    /// J coordinate.
    pub j: i32,
    /// K (time) coordinate.
    pub k: i32,
}

impl Coord {
    /// Builds a coordinate.
    pub const fn new(i: i32, j: i32, k: i32) -> Coord {
        Coord { i, j, k }
    }

    /// The component along `axis`.
    #[inline]
    pub fn get(self, axis: Axis) -> i32 {
        match axis {
            Axis::I => self.i,
            Axis::J => self.j,
            Axis::K => self.k,
        }
    }

    /// Replaces the component along `axis`.
    pub fn with(mut self, axis: Axis, value: i32) -> Coord {
        match axis {
            Axis::I => self.i = value,
            Axis::J => self.j = value,
            Axis::K => self.k = value,
        }
        self
    }

    /// The neighbor one step along `dir`.
    pub fn shifted(self, dir: Dir) -> Coord {
        let v = self.get(dir.axis) + dir.sign.offset();
        self.with(dir.axis, v)
    }

    /// The neighbor one step toward `+axis`.
    pub fn next(self, axis: Axis) -> Coord {
        self.shifted(Dir::new(Sign::Plus, axis))
    }

    /// The neighbor one step toward `-axis`.
    pub fn prev(self, axis: Axis) -> Coord {
        self.shifted(Dir::new(Sign::Minus, axis))
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.i, self.j, self.k)
    }
}

impl Serialize for Coord {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        [self.i, self.j, self.k].serialize(s)
    }
}

impl<'de> Deserialize<'de> for Coord {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let [i, j, k] = <[i32; 3]>::deserialize(d)?;
        Ok(Coord { i, j, k })
    }
}

/// The allowed variable-array dimensions `(max_i, max_j, max_k)` of a
/// LaS specification.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Bounds {
    /// Extent along I.
    pub max_i: usize,
    /// Extent along J.
    pub max_j: usize,
    /// Extent along K.
    pub max_k: usize,
}

impl Bounds {
    /// Builds bounds.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn new(max_i: usize, max_j: usize, max_k: usize) -> Bounds {
        assert!(
            max_i > 0 && max_j > 0 && max_k > 0,
            "bounds must be positive"
        );
        Bounds {
            max_i,
            max_j,
            max_k,
        }
    }

    /// The extent along `axis`.
    pub fn get(self, axis: Axis) -> usize {
        match axis {
            Axis::I => self.max_i,
            Axis::J => self.max_j,
            Axis::K => self.max_k,
        }
    }

    /// Number of cubes (`max_i · max_j · max_k`).
    pub fn volume(self) -> usize {
        self.max_i * self.max_j * self.max_k
    }

    /// Whether `c` is a cube inside the bounds.
    pub fn contains(self, c: Coord) -> bool {
        (0..self.max_i as i32).contains(&c.i)
            && (0..self.max_j as i32).contains(&c.j)
            && (0..self.max_k as i32).contains(&c.k)
    }

    /// Dense index of a cube, row-major in `(i, j, k)`.
    ///
    /// # Panics
    ///
    /// Panics if the cube is out of bounds.
    pub fn index(self, c: Coord) -> usize {
        assert!(self.contains(c), "coordinate {c} outside bounds {self:?}");
        (c.i as usize * self.max_j + c.j as usize) * self.max_k + c.k as usize
    }

    /// Iterates over all cubes in index order.
    pub fn iter(self) -> impl Iterator<Item = Coord> {
        (0..self.max_i as i32).flat_map(move |i| {
            (0..self.max_j as i32)
                .flat_map(move |j| (0..self.max_k as i32).map(move |k| Coord::new(i, j, k)))
        })
    }
}

/// The axis whose faces are red (X-type) for a pipe along `pipe_axis`
/// with color orientation `orientation`.
///
/// This is the crate's fixed color convention (see DESIGN.md §3):
///
/// | pipe axis | orientation = false | orientation = true |
/// |-----------|---------------------|--------------------|
/// | I         | red faces normal K  | red faces normal J |
/// | J         | red faces normal K  | red faces normal I |
/// | K         | red faces normal I  | red faces normal J |
///
/// The complementary (blue, Z-type) faces are normal to the remaining
/// axis.
pub fn red_normal_axis(pipe_axis: Axis, orientation: bool) -> Axis {
    match (pipe_axis, orientation) {
        (Axis::I, false) => Axis::K,
        (Axis::I, true) => Axis::J,
        (Axis::J, false) => Axis::K,
        (Axis::J, true) => Axis::I,
        (Axis::K, false) => Axis::I,
        (Axis::K, true) => Axis::J,
    }
}

/// The axis whose faces are blue (Z-type); complement of
/// [`red_normal_axis`].
pub fn blue_normal_axis(pipe_axis: Axis, orientation: bool) -> Axis {
    pipe_axis.third(red_normal_axis(pipe_axis, orientation))
}

/// The orientation value for a pipe along `pipe_axis` whose blue faces
/// are normal to `z_axis` (used to pin port pipe colors from
/// `z_basis_direction`).
///
/// # Panics
///
/// Panics if `z_axis == pipe_axis` (a pipe has no faces normal to its
/// own axis).
pub fn orientation_for_blue_normal(pipe_axis: Axis, z_axis: Axis) -> bool {
    assert_ne!(
        z_axis, pipe_axis,
        "z basis direction must be perpendicular to the pipe"
    );
    let o = blue_normal_axis(pipe_axis, false) == z_axis;
    // If blue-normal at orientation=false equals z_axis, orientation is false.
    !o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_others_and_third() {
        assert_eq!(Axis::I.others(), [Axis::J, Axis::K]);
        assert_eq!(Axis::K.third(Axis::I), Axis::J);
        assert_eq!(Axis::I.third(Axis::J), Axis::K);
    }

    #[test]
    fn dir_parse_display_roundtrip() {
        for s in ["+I", "-J", "+K", "-K"] {
            let d = Dir::parse(s).unwrap();
            assert_eq!(d.to_string(), s);
        }
        assert_eq!(Dir::parse("K").unwrap().sign, Sign::Plus);
        assert!(Dir::parse("Q").is_none());
    }

    #[test]
    fn coord_shifting() {
        let c = Coord::new(1, 2, 3);
        assert_eq!(c.shifted(Dir::parse("-K").unwrap()), Coord::new(1, 2, 2));
        assert_eq!(c.next(Axis::I), Coord::new(2, 2, 3));
        assert_eq!(c.prev(Axis::J), Coord::new(1, 1, 3));
    }

    #[test]
    fn bounds_contains_and_index() {
        let b = Bounds::new(2, 3, 4);
        assert_eq!(b.volume(), 24);
        assert!(b.contains(Coord::new(1, 2, 3)));
        assert!(!b.contains(Coord::new(2, 0, 0)));
        assert!(!b.contains(Coord::new(-1, 0, 0)));
        let mut seen = std::collections::HashSet::new();
        for c in b.iter() {
            assert!(seen.insert(b.index(c)));
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn color_convention_consistency() {
        for axis in Axis::ALL {
            for o in [false, true] {
                let red = red_normal_axis(axis, o);
                let blue = blue_normal_axis(axis, o);
                assert_ne!(red, blue);
                assert_ne!(red, axis);
                assert_ne!(blue, axis);
            }
        }
    }

    #[test]
    fn orientation_from_z_dir_roundtrip() {
        for axis in Axis::ALL {
            for z in axis.others() {
                let o = orientation_for_blue_normal(axis, z);
                assert_eq!(blue_normal_axis(axis, o), z);
            }
        }
    }

    #[test]
    fn serde_forms() {
        let c = Coord::new(1, 0, 3);
        assert_eq!(serde_json::to_string(&c).unwrap(), "[1,0,3]");
        let d = Dir::parse("-K").unwrap();
        assert_eq!(serde_json::to_string(&d).unwrap(), "\"-K\"");
        let a: Axis = serde_json::from_str("\"J\"").unwrap();
        assert_eq!(a, Axis::J);
    }

    #[test]
    fn turn_color_matching_example() {
        // An I-pipe with red on K-normal faces (o=false) meeting a J-pipe:
        // the J-pipe must also have red K-normal faces, i.e. o=false.
        assert_eq!(
            red_normal_axis(Axis::I, false),
            red_normal_axis(Axis::J, false)
        );
    }
}
