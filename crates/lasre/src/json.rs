//! The textual `.lasre` format: serialization of solved designs.
//!
//! The paper's synthesizer emits "all the variable assignments
//! [constituting] our textual LaS representation, LaSre" (Sec. IV).
//! Here that is a JSON document bundling the spec, the variable
//! assignment (as a compact bit string), and the post-processing
//! results (K colors and domain walls) so a design can be re-loaded,
//! re-validated and re-verified without re-solving.

use crate::design::LasDesign;
use crate::geom::{Axis, Coord};
use crate::spec::LasSpec;
use crate::vars::VarTable;
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct LasreDoc {
    spec: LasSpec,
    /// One character per variable, `'0'`/`'1'`, in [`VarTable`] order.
    values: String,
    /// `[i, j, k, lower, upper]` per K pipe with inferred colors.
    k_colors: Vec<(i32, i32, i32, bool, bool)>,
    domain_walls: Vec<Coord>,
    verified: bool,
}

/// Error when loading a `.lasre` document.
#[derive(Debug)]
pub enum LasreError {
    /// Underlying JSON problem.
    Json(serde_json::Error),
    /// The value string length does not match the spec's variable count.
    LengthMismatch { expected: usize, got: usize },
    /// The value string contains a character other than `0`/`1`.
    BadBit(char),
    /// The embedded spec fails validation.
    Spec(crate::spec::SpecError),
}

impl std::fmt::Display for LasreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LasreError::Json(e) => write!(f, "lasre json error: {e}"),
            LasreError::LengthMismatch { expected, got } => {
                write!(f, "lasre value string has {got} bits, expected {expected}")
            }
            LasreError::BadBit(c) => write!(f, "lasre value string contains {c:?}"),
            LasreError::Spec(e) => write!(f, "lasre spec invalid: {e}"),
        }
    }
}

impl std::error::Error for LasreError {}

impl From<serde_json::Error> for LasreError {
    fn from(e: serde_json::Error) -> Self {
        LasreError::Json(e)
    }
}

/// Serializes a design to the `.lasre` JSON format.
pub fn to_lasre(design: &LasDesign) -> String {
    let values: String = design
        .values()
        .iter()
        .map(|&b| if b { '1' } else { '0' })
        .collect();
    let mut k_colors: Vec<(i32, i32, i32, bool, bool)> = design
        .pipes()
        .into_iter()
        .filter(|p| p.axis == Axis::K)
        .filter_map(|p| {
            design
                .k_color(p.base)
                .map(|(lo, hi)| (p.base.i, p.base.j, p.base.k, lo, hi))
        })
        .collect();
    k_colors.sort();
    let mut domain_walls: Vec<Coord> = design.domain_walls().iter().copied().collect();
    domain_walls.sort();
    let doc = LasreDoc {
        spec: design.spec().clone(),
        values,
        k_colors,
        domain_walls,
        verified: design.verified(),
    };
    serde_json::to_string_pretty(&doc).expect("lasre serializes") // lint:allow(no-panic)
}

/// Loads a design from the `.lasre` JSON format, re-running the K-color
/// inference (and cross-checking it against the stored one).
///
/// # Errors
///
/// Returns [`LasreError`] on malformed documents.
pub fn from_lasre(text: &str) -> Result<LasDesign, LasreError> {
    let doc: LasreDoc = serde_json::from_str(text)?;
    doc.spec.validate().map_err(LasreError::Spec)?;
    let table = VarTable::new(doc.spec.bounds(), doc.spec.nstab());
    if doc.values.len() != table.num_total() {
        return Err(LasreError::LengthMismatch {
            expected: table.num_total(),
            got: doc.values.len(),
        });
    }
    let mut values = Vec::with_capacity(doc.values.len());
    for c in doc.values.chars() {
        match c {
            '0' => values.push(false),
            '1' => values.push(true),
            other => return Err(LasreError::BadBit(other)),
        }
    }
    let mut design = LasDesign::new(doc.spec, values);
    design.infer_k_colors();
    design.set_verified(doc.verified);
    Ok(design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::cnot_design;

    #[test]
    fn lasre_roundtrip() {
        let mut d = cnot_design();
        d.infer_k_colors();
        d.set_verified(true);
        let text = to_lasre(&d);
        let back = from_lasre(&text).unwrap();
        assert_eq!(back.values(), d.values());
        assert_eq!(back.spec(), d.spec());
        assert_eq!(back.domain_walls(), d.domain_walls());
        assert!(back.verified());
    }

    #[test]
    fn rejects_wrong_length() {
        let mut d = cnot_design();
        d.infer_k_colors();
        let text = to_lasre(&d);
        let broken = text.replace(&"0".repeat(40), &"0".repeat(39));
        assert!(matches!(
            from_lasre(&broken),
            Err(LasreError::LengthMismatch { .. }) | Err(LasreError::Json(_))
        ));
    }

    #[test]
    fn rejects_bad_bits() {
        let mut d = cnot_design();
        d.infer_k_colors();
        let mut text = to_lasre(&d);
        // Corrupt the first bit of the values string.
        let idx = text.find("\"values\": \"").unwrap() + "\"values\": \"".len();
        text.replace_range(idx..idx + 1, "x");
        assert!(matches!(from_lasre(&text), Err(LasreError::BadBit('x'))));
    }

    #[test]
    fn document_is_stable_json() {
        let mut d = cnot_design();
        d.infer_k_colors();
        let a = to_lasre(&d);
        let b = to_lasre(&from_lasre(&a).unwrap());
        assert_eq!(a, b, "serialization must be deterministic");
    }
}
