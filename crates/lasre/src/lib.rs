//! LaSre: the representation of lattice-surgery subroutines (LaS).
//!
//! This crate defines the paper's core data model (Sec. III):
//!
//! * [`geom`] — axes, directions, 3D coordinates and bounds,
//! * [`Port`] and [`LasSpec`] — the LaS specification of paper Fig. 2b
//!   (volume, port layout, stabilizer flows), with JSON (de)serialization,
//! * [`VarTable`] — the dense indexing of the structural variables
//!   (`YCube`, `ExistI/J/K`, `ColorI/J`) and correlation-surface
//!   variables (`CorrIJ/IK/JI/JK/KI/KJ`),
//! * [`LasDesign`] — a solved assignment (the textual `LaSre` output of
//!   the paper), with pipe/junction accessors, domain-wall data,
//!   validity checking and ASCII time-slice rendering.
//!
//! The synthesizer that fills in a `LasDesign` from a `LasSpec` lives in
//! the `lassynth-core` crate; this crate is pure representation.

#![forbid(unsafe_code)]

mod design;
pub mod fixtures;
pub mod geom;
pub mod json;
mod port;
pub mod slices;
mod spec;
mod validate;
mod vars;

pub use design::{CubeKind, LasDesign, PipeRef};
pub use geom::{Axis, Bounds, Coord, Dir, Sign};
pub use json::{from_lasre, to_lasre, LasreError};
pub use port::Port;
pub use slices::{render, render_layer};
pub use spec::{LasSpec, SpecError};
pub use validate::{check_functionality, check_validity, ValidityError};
pub use vars::{CorrKind, StructVar, VarTable};
