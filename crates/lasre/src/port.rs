//! Ports of a lattice-surgery subroutine.

use crate::geom::{orientation_for_blue_normal, Axis, Bounds, Coord, Dir, Sign};
use serde::{Deserialize, Serialize};

/// A port: where a LaS connects to the outside world (paper Fig. 2b).
///
/// * `location` is the grid point just outside the volume that the
///   port's pipe connects to. Because the paper's convention forbids
///   `-1` indices, ports entering along a `+` direction place their
///   `location` on a *padding cube inside* the variable arrays (a
///   "virtual" outside point); ports entering along a `-` direction
///   have `location` one past the array on that axis.
/// * `direction` points from `location` into the volume.
/// * `z_basis_direction` is the axis perpendicular to which the port's
///   blue (Z-type) boundary lies.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Port {
    /// The outside grid point the port connects to.
    pub location: Coord,
    /// Direction from `location` into the volume.
    pub direction: Dir,
    /// Axis normal to the port's blue (Z) boundary faces.
    pub z_basis_direction: Axis,
}

impl Port {
    /// Builds a port.
    pub fn new(location: Coord, direction: Dir, z_basis_direction: Axis) -> Port {
        Port {
            location,
            direction,
            z_basis_direction,
        }
    }

    /// Convenience constructor from raw parts, parsing the direction.
    ///
    /// # Panics
    ///
    /// Panics if `dir` does not parse.
    pub fn parse(i: i32, j: i32, k: i32, dir: &str, z: Axis) -> Port {
        Port::new(
            Coord::new(i, j, k),
            Dir::parse(dir).expect("valid direction"), // lint:allow(no-panic)
            z,
        )
    }

    /// The boundary cube inside the volume that this port attaches to.
    pub fn cube(&self) -> Coord {
        self.location.shifted(self.direction)
    }

    /// The `Exist` pipe variable representing this port's pipe: the
    /// coordinate that indexes `Exist{axis}` (the lower endpoint of the
    /// pipe along its axis) and the axis.
    pub fn pipe(&self) -> (Coord, Axis) {
        let base = match self.direction.sign {
            Sign::Plus => self.location,
            Sign::Minus => self.cube(),
        };
        (base, self.direction.axis)
    }

    /// Whether the port's `location` sits inside the variable arrays
    /// (a padding cube, the paper's bottom-port convention).
    pub fn is_virtual(&self, bounds: Bounds) -> bool {
        bounds.contains(self.location)
    }

    /// The color orientation of the port's pipe implied by
    /// `z_basis_direction` (see [`crate::geom::red_normal_axis`]).
    ///
    /// # Panics
    ///
    /// Panics if `z_basis_direction` is parallel to the pipe.
    pub fn color_orientation(&self) -> bool {
        orientation_for_blue_normal(self.direction.axis, self.z_basis_direction)
    }

    /// The axis normal to the red (X-type) faces of the port's pipe.
    pub fn x_basis_direction(&self) -> Axis {
        self.direction.axis.third(self.z_basis_direction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_port_pipe_is_below_location() {
        // Paper Fig. 2: port at (1,0,3), direction -K, inside a 2×2 volume
        // with arrays max_k = 3.
        let p = Port::parse(1, 0, 3, "-K", Axis::J);
        assert_eq!(p.cube(), Coord::new(1, 0, 2));
        assert_eq!(p.pipe(), (Coord::new(1, 0, 2), Axis::K));
        assert!(!p.is_virtual(Bounds::new(2, 2, 3)));
    }

    #[test]
    fn bottom_port_pipe_is_at_location() {
        // Paper Fig. 10: port 0 at (0,1,0) entering upward; its pipe is
        // ExistK[0,1,0] from the padding cube (0,1,0) to (0,1,1).
        let p = Port::parse(0, 1, 0, "+K", Axis::J);
        assert_eq!(p.cube(), Coord::new(0, 1, 1));
        assert_eq!(p.pipe(), (Coord::new(0, 1, 0), Axis::K));
        assert!(p.is_virtual(Bounds::new(2, 2, 3)));
    }

    #[test]
    fn side_port_pipe() {
        let p = Port::parse(3, 1, 1, "-I", Axis::K);
        assert_eq!(p.cube(), Coord::new(2, 1, 1));
        assert_eq!(p.pipe(), (Coord::new(2, 1, 1), Axis::I));
    }

    #[test]
    fn color_orientation_matches_z_dir() {
        use crate::geom::blue_normal_axis;
        let p = Port::parse(1, 0, 3, "-K", Axis::J);
        let o = p.color_orientation();
        assert_eq!(blue_normal_axis(Axis::K, o), Axis::J);
        assert_eq!(p.x_basis_direction(), Axis::I);
    }

    #[test]
    fn serde_roundtrip() {
        let p = Port::parse(1, 0, 3, "-K", Axis::J);
        let json = serde_json::to_string(&p).unwrap();
        let back: Port = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
