//! ASCII time-slice rendering of solved designs.
//!
//! Before the paper's 3D visualization existed, researchers drew 2D
//! time slices by hand (paper Fig. 5a); this module renders the same
//! view in the terminal for quick inspection and for diffable test
//! expectations. One block of text per `k` layer; within a layer, `i`
//! grows to the right and `j` grows downward.
//!
//! Cell legend: `■` occupied cube, `Y` Y cube, `P` port cube (virtual),
//! `·` empty; `─`/`│` horizontal pipes; `↕` marks are placed on cubes
//! with pipes to the previous/next layer (`˄` up only, `˅` down only).

use crate::design::LasDesign;
use crate::geom::{Axis, Coord};
use std::fmt::Write as _;

/// Renders all time slices of a design.
pub fn render(design: &LasDesign) -> String {
    let bounds = design.bounds();
    let mut out = String::new();
    for k in 0..bounds.max_k as i32 {
        let _ = writeln!(out, "k={k}:");
        out.push_str(&render_layer(design, k));
    }
    out
}

/// Renders a single `k` layer.
pub fn render_layer(design: &LasDesign, k: i32) -> String {
    let bounds = design.bounds();
    // Character grid: cubes at even (column, row), pipes between.
    let cols = 2 * bounds.max_i - 1;
    let rows = 2 * bounds.max_j - 1;
    let mut grid = vec![vec![' '; cols]; rows];
    for c in bounds.iter().filter(|c| c.k == k) {
        let (col, row) = (2 * c.i as usize, 2 * c.j as usize);
        grid[row][col] = cube_char(design, c);
        if design.has_pipe(Axis::I, c) && c.i + 1 < bounds.max_i as i32 {
            grid[row][col + 1] = '─';
        }
        if design.has_pipe(Axis::J, c) && c.j + 1 < bounds.max_j as i32 {
            grid[row + 1][col] = '│';
        }
    }
    let mut out = String::new();
    for row in grid {
        let line: String = row.into_iter().collect();
        let _ = writeln!(out, "  {}", line.trim_end());
    }
    out
}

fn cube_char(design: &LasDesign, c: Coord) -> char {
    use crate::design::CubeKind;
    let up = design.has_pipe(Axis::K, c);
    let down = design.has_pipe(Axis::K, c.prev(Axis::K)) || {
        // Bottom-layer port pipes exiting below are not representable;
        // only in-array pipes are drawn.
        false
    };
    match design.classify(c) {
        CubeKind::Empty => '·',
        CubeKind::Port(_) => 'P',
        CubeKind::Y => 'Y',
        CubeKind::Invalid => '!',
        _ => match (up, down) {
            (true, true) => '■',
            (true, false) => '˄',
            (false, true) => '˅',
            (false, false) => '□',
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::cnot_design;

    #[test]
    fn renders_all_layers() {
        let text = render(&cnot_design());
        assert!(text.contains("k=0:"));
        assert!(text.contains("k=1:"));
        assert!(text.contains("k=2:"));
    }

    #[test]
    fn bottom_layer_shows_ports_and_empties() {
        let d = cnot_design();
        let layer = render_layer(&d, 0);
        // (0,0,0) and (1,1,0) are forbidden/empty; ports at (0,1,0), (1,0,0).
        let lines: Vec<&str> = layer.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('·'), "{layer}");
        assert!(lines[0].contains('P') || lines[2].contains('P'), "{layer}");
    }

    #[test]
    fn middle_layer_shows_j_pipe() {
        let d = cnot_design();
        let layer = render_layer(&d, 1);
        assert!(layer.contains('│'), "expected J pipe in layer 1:\n{layer}");
    }

    #[test]
    fn top_layer_shows_i_pipe() {
        let d = cnot_design();
        let layer = render_layer(&d, 2);
        assert!(layer.contains('─'), "expected I pipe in layer 2:\n{layer}");
    }
}
