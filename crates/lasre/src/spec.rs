//! The LaS specification (paper Fig. 2b).

use crate::geom::{Axis, Bounds, Coord, Sign};
use crate::port::Port;
use pauli::PauliString;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A complete LaS specification: allowed volume, port layout and the
/// stabilizer flows the subroutine must realize.
///
/// This is the synthesizer's *input*; what happens inside the volume is
/// the synthesizer's job to find (paper Sec. I).
///
/// The JSON form matches the paper's input file concept:
///
/// ```
/// use lasre::LasSpec;
/// let spec: LasSpec = serde_json::from_str(r#"{
///     "name": "cnot",
///     "max_i": 2, "max_j": 2, "max_k": 3,
///     "ports": [
///         {"location": [0,1,0], "direction": "+K", "z_basis_direction": "J"},
///         {"location": [1,0,0], "direction": "+K", "z_basis_direction": "J"},
///         {"location": [0,1,3], "direction": "-K", "z_basis_direction": "J"},
///         {"location": [1,0,3], "direction": "-K", "z_basis_direction": "J"}
///     ],
///     "stabilizers": ["Z.Z.", ".ZZZ", "X.XX", ".X.X"],
///     "forbidden_cubes": [[0,0,0],[1,1,0]]
/// }"#).unwrap();
/// assert!(spec.validate().is_ok());
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LasSpec {
    /// Human-readable name, used in reports and output files.
    pub name: String,
    /// Array extent along I.
    pub max_i: usize,
    /// Array extent along J.
    pub max_j: usize,
    /// Array extent along K (time).
    pub max_k: usize,
    /// The ports, in stabilizer-string order.
    pub ports: Vec<Port>,
    /// Stabilizer flows as Pauli strings over the ports.
    pub stabilizers: Vec<PauliString>,
    /// Cubes that must stay empty (footprint shaping, padding layers).
    #[serde(default)]
    pub forbidden_cubes: Vec<Coord>,
    /// Whether the solver may use Y cubes (paper Fig. 4g).
    #[serde(default = "default_true")]
    pub allow_y_cubes: bool,
}

fn default_true() -> bool {
    true
}

/// Error describing why a specification is malformed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// There must be at least one port.
    NoPorts,
    /// A port's boundary cube lies outside the arrays.
    PortCubeOutOfBounds(usize),
    /// A port's location is neither inside the arrays (virtual padding
    /// cube) nor exactly one step past them along its direction axis.
    PortLocationInvalid(usize),
    /// A port's Z basis direction is parallel to its pipe.
    PortZParallel(usize),
    /// Two ports share a pipe or a cube.
    PortOverlap(usize, usize),
    /// A stabilizer string's length differs from the port count.
    StabilizerLength(usize),
    /// Two stabilizer flows anticommute (inconsistent specification).
    StabilizersAnticommute(usize, usize),
    /// A forbidden cube is out of bounds.
    ForbiddenOutOfBounds(Coord),
    /// A forbidden cube collides with a port cube or port pipe.
    ForbiddenPortCollision(Coord),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoPorts => write!(f, "specification has no ports"),
            SpecError::PortCubeOutOfBounds(p) => {
                write!(f, "port {p}'s boundary cube is outside the arrays")
            }
            SpecError::PortLocationInvalid(p) => write!(f, "port {p}'s location is invalid"),
            SpecError::PortZParallel(p) => {
                write!(f, "port {p}'s z basis direction is parallel to its pipe")
            }
            SpecError::PortOverlap(a, b) => write!(f, "ports {a} and {b} overlap"),
            SpecError::StabilizerLength(s) => {
                write!(f, "stabilizer {s} has the wrong number of ports")
            }
            SpecError::StabilizersAnticommute(a, b) => {
                write!(f, "stabilizers {a} and {b} anticommute")
            }
            SpecError::ForbiddenOutOfBounds(c) => write!(f, "forbidden cube {c} out of bounds"),
            SpecError::ForbiddenPortCollision(c) => {
                write!(f, "forbidden cube {c} collides with a port")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl LasSpec {
    /// The variable-array bounds.
    pub fn bounds(&self) -> Bounds {
        Bounds::new(self.max_i, self.max_j, self.max_k)
    }

    /// Number of stabilizers.
    pub fn nstab(&self) -> usize {
        self.stabilizers.len()
    }

    /// The paper's scaling factor `V · nstab` (Table I), where `V` is
    /// the array volume including padding.
    pub fn v_nstab(&self) -> usize {
        self.bounds().volume() * self.nstab()
    }

    /// Map from port pipe `(coord, axis)` to port index.
    pub fn port_pipes(&self) -> HashMap<(Coord, Axis), usize> {
        self.ports
            .iter()
            .enumerate()
            .map(|(idx, p)| (p.pipe(), idx))
            .collect()
    }

    /// The set of virtual port cubes (port locations inside the arrays).
    pub fn virtual_cubes(&self) -> HashSet<Coord> {
        let b = self.bounds();
        self.ports
            .iter()
            .filter(|p| p.is_virtual(b))
            .map(|p| p.location)
            .collect()
    }

    /// Checks the specification for structural and functional
    /// consistency.
    ///
    /// # Errors
    ///
    /// Returns the first problem found; see [`SpecError`].
    pub fn validate(&self) -> Result<(), SpecError> {
        let bounds = self.bounds();
        if self.ports.is_empty() {
            return Err(SpecError::NoPorts);
        }
        for (idx, port) in self.ports.iter().enumerate() {
            if !bounds.contains(port.cube()) {
                return Err(SpecError::PortCubeOutOfBounds(idx));
            }
            if port.z_basis_direction == port.direction.axis {
                return Err(SpecError::PortZParallel(idx));
            }
            if !port.is_virtual(bounds) {
                // Must be exactly one past the array on the direction axis.
                let axis = port.direction.axis;
                let expected = match port.direction.sign {
                    Sign::Minus => bounds.get(axis) as i32,
                    Sign::Plus => -1,
                };
                let mut ok = port.location.get(axis) == expected && expected >= 0;
                // All other coordinates must be in range.
                for other in axis.others() {
                    let v = port.location.get(other);
                    ok &= (0..bounds.get(other) as i32).contains(&v);
                }
                if !ok {
                    return Err(SpecError::PortLocationInvalid(idx));
                }
            }
        }
        // Overlaps: distinct pipes, and virtual cubes distinct from any
        // other port's cube or location.
        let mut pipes = HashMap::new();
        for (idx, port) in self.ports.iter().enumerate() {
            if let Some(prev) = pipes.insert(port.pipe(), idx) {
                return Err(SpecError::PortOverlap(prev, idx));
            }
        }
        // Two ports may share an interior cube (a straight pass-through),
        // but a *virtual* location cube is exclusively the port's own:
        // another port's location or boundary cube there would clash with
        // the padding cube's no-fanout treatment.
        for (a, pa) in self.ports.iter().enumerate() {
            for (bi, pb) in self.ports.iter().enumerate().skip(a + 1) {
                let mut clash = pa.location == pb.location;
                if pa.is_virtual(bounds) {
                    clash |= pa.location == pb.cube();
                }
                if pb.is_virtual(bounds) {
                    clash |= pb.location == pa.cube();
                }
                if clash {
                    return Err(SpecError::PortOverlap(a, bi));
                }
            }
        }
        for (s, stab) in self.stabilizers.iter().enumerate() {
            if stab.len() != self.ports.len() {
                return Err(SpecError::StabilizerLength(s));
            }
        }
        for (a, sa) in self.stabilizers.iter().enumerate() {
            for (b, sb) in self.stabilizers.iter().enumerate().skip(a + 1) {
                if !sa.commutes_with(sb) {
                    return Err(SpecError::StabilizersAnticommute(a, b));
                }
            }
        }
        let port_cells: HashSet<Coord> = self
            .ports
            .iter()
            .flat_map(|p| [p.cube(), p.location])
            .filter(|c| bounds.contains(*c))
            .collect();
        for &c in &self.forbidden_cubes {
            if !bounds.contains(c) {
                return Err(SpecError::ForbiddenOutOfBounds(c));
            }
            if port_cells.contains(&c) {
                return Err(SpecError::ForbiddenPortCollision(c));
            }
        }
        Ok(())
    }

    /// Returns a copy with its time extent changed to `max_k` and all
    /// `-K`-direction port locations moved to the new top. This is the
    /// depth-search primitive of the optimizer (paper Fig. 12b).
    pub fn with_depth(&self, max_k: usize) -> LasSpec {
        let mut out = self.clone();
        let old_top = self.max_k as i32;
        out.max_k = max_k;
        for port in &mut out.ports {
            if port.direction.axis == Axis::K
                && port.direction.sign == Sign::Minus
                && port.location.k == old_top
            {
                port.location.k = max_k as i32;
            }
        }
        out.forbidden_cubes.retain(|c| c.k < max_k as i32);
        out
    }

    /// Returns a copy with ports permuted by `perm` (stabilizer columns
    /// are permuted to match), for the port-order exploration of paper
    /// Sec. IV.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..ports.len()`.
    pub fn with_port_order(&self, perm: &[usize]) -> LasSpec {
        assert_eq!(perm.len(), self.ports.len(), "permutation length mismatch");
        let mut sorted: Vec<usize> = perm.to_vec();
        sorted.sort_unstable();
        assert!(
            sorted.iter().enumerate().all(|(i, &p)| i == p),
            "not a permutation"
        );
        let mut out = self.clone();
        // Port i of the new spec takes the *geometry* of port i but the
        // *stabilizer column* of perm[i]: i.e. we reassign which logical
        // port sits at which physical location.
        out.stabilizers = self
            .stabilizers
            .iter()
            .map(|s| {
                let mut ns = PauliString::identity(s.len()).with_phase(s.phase());
                for (i, &p) in perm.iter().enumerate() {
                    ns.set(i, s.get(p));
                }
                ns
            })
            .collect();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Dir;

    /// The paper's CNOT example: 2×2 footprint, two time steps, ports at
    /// the bottom padding layer and the top face (Figs. 2, 8, 10).
    pub fn cnot() -> LasSpec {
        LasSpec {
            name: "cnot".into(),
            max_i: 2,
            max_j: 2,
            max_k: 3,
            ports: vec![
                Port::parse(0, 1, 0, "+K", Axis::J),
                Port::parse(1, 0, 0, "+K", Axis::J),
                Port::parse(0, 1, 3, "-K", Axis::J),
                Port::parse(1, 0, 3, "-K", Axis::J),
            ],
            stabilizers: ["Z.Z.", ".ZZZ", "X.XX", ".X.X"]
                .iter()
                .map(|s| s.parse().unwrap())
                .collect(),
            forbidden_cubes: vec![Coord::new(0, 0, 0), Coord::new(1, 1, 0)],
            allow_y_cubes: true,
        }
    }

    #[test]
    fn cnot_spec_is_valid() {
        assert_eq!(cnot().validate(), Ok(()));
        assert_eq!(cnot().v_nstab(), 12 * 4);
    }

    #[test]
    fn rejects_empty_ports() {
        let mut s = cnot();
        s.ports.clear();
        s.stabilizers.clear();
        assert_eq!(s.validate(), Err(SpecError::NoPorts));
    }

    #[test]
    fn rejects_bad_stabilizer_length() {
        let mut s = cnot();
        s.stabilizers[1] = "ZZ".parse().unwrap();
        assert_eq!(s.validate(), Err(SpecError::StabilizerLength(1)));
    }

    #[test]
    fn rejects_anticommuting_flows() {
        let mut s = cnot();
        s.stabilizers = vec!["X...".parse().unwrap(), "Z...".parse().unwrap()];
        assert_eq!(s.validate(), Err(SpecError::StabilizersAnticommute(0, 1)));
    }

    #[test]
    fn rejects_parallel_z_dir() {
        let mut s = cnot();
        s.ports[0].z_basis_direction = Axis::K;
        assert_eq!(s.validate(), Err(SpecError::PortZParallel(0)));
    }

    #[test]
    fn rejects_overlapping_ports() {
        let mut s = cnot();
        s.ports[1] = s.ports[0];
        assert!(matches!(s.validate(), Err(SpecError::PortOverlap(0, 1))));
    }

    #[test]
    fn rejects_out_of_range_location() {
        let mut s = cnot();
        s.ports[2] = Port::new(Coord::new(0, 1, 4), Dir::parse("-K").unwrap(), Axis::J);
        assert!(matches!(
            s.validate(),
            Err(SpecError::PortCubeOutOfBounds(2) | SpecError::PortLocationInvalid(2))
        ));
    }

    #[test]
    fn with_depth_moves_top_ports() {
        let deeper = cnot().with_depth(4);
        assert_eq!(deeper.max_k, 4);
        assert_eq!(deeper.ports[2].location.k, 4);
        assert_eq!(deeper.ports[0].location.k, 0);
        assert!(deeper.validate().is_ok());
    }

    #[test]
    fn with_port_order_permutes_stabilizer_columns() {
        let s = cnot();
        let p = s.with_port_order(&[1, 0, 2, 3]);
        assert_eq!(p.stabilizers[0].to_string(), ".ZZ.");
        assert!(p.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn with_port_order_rejects_non_permutation() {
        cnot().with_port_order(&[0, 0, 2, 3]);
    }

    #[test]
    fn json_roundtrip() {
        let s = cnot();
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: LasSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
