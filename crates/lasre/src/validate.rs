//! Independent checking of solved designs against the paper's
//! constraints.
//!
//! The synthesizer's encoder emits the constraints of paper Figs. 9
//! and 11 into CNF; this module re-implements the same rules directly
//! on a [`LasDesign`]. It serves two purposes: testing the encoder
//! (everything the solver returns must pass), and checking designs
//! written by hand or transcribed from other papers — the paper found a
//! bug in a published majority gate exactly this way (Sec. V-C).

use crate::design::LasDesign;
use crate::geom::{red_normal_axis, Axis, Coord};
use crate::vars::CorrKind;
use pauli::Pauli;
use std::collections::HashSet;
use std::fmt;

/// A violated constraint, with enough context to locate it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidityError {
    /// A port's pipe is missing.
    MissingPortPipe(usize),
    /// A port cube has extra pipes (paper Fig. 9a).
    PortFanout(usize),
    /// A pipe exits the volume where no port was declared (Fig. 9b).
    UnexpectedPort(Coord, Axis),
    /// A Y cube has a horizontal pipe (Fig. 9c).
    YWithHorizontalPipe(Coord),
    /// A Y cube is a vertical passthrough (see DESIGN.md §3).
    YPassthrough(Coord),
    /// A cube has pipes along all three axes (Fig. 9d).
    ThreeDCorner(Coord),
    /// A non-Y, non-port cube has exactly one pipe (Fig. 9e).
    DegreeOne(Coord),
    /// Two pipes meeting at a cube have mismatched colors (Fig. 9f–g).
    ColorMismatch(Coord),
    /// A forbidden cube is occupied.
    ForbiddenOccupied(Coord),
    /// A Y cube appears although the spec disallows them.
    YNotAllowed(Coord),
    /// A port's correlation surface contradicts the stabilizer (Fig. 11a).
    PortSurfaceMismatch { stabilizer: usize, port: usize },
    /// A Y cube's surfaces are not both-or-none (Fig. 11d).
    YSurfaceMismatch { stabilizer: usize, cube: Coord },
    /// Odd parity of surfaces parallel to a cube's normal (Fig. 11b).
    ParallelParity {
        stabilizer: usize,
        cube: Coord,
        normal: Axis,
    },
    /// Mixed presence of surfaces orthogonal to a normal (Fig. 11c).
    OrthogonalMixed {
        stabilizer: usize,
        cube: Coord,
        normal: Axis,
    },
}

impl fmt::Display for ValidityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for ValidityError {}

/// Checks every validity and functionality constraint on a design.
///
/// Returns all violations (empty = valid). K-pipe color consistency is
/// checked structurally (horizontal pipes only); K pipes are always
/// legalizable via domain walls and are checked by
/// [`LasDesign::infer_k_colors`]'s internal assertions.
pub fn check_validity(design: &LasDesign) -> Vec<ValidityError> {
    let mut errors = Vec::new();
    let spec = design.spec();
    let bounds = design.bounds();
    let port_pipes = spec.port_pipes();

    // Ports: pipes present, no fanout at virtual cubes, Y flags off.
    for (idx, port) in spec.ports.iter().enumerate() {
        let (base, axis) = port.pipe();
        if !design.has_pipe(axis, base) {
            errors.push(ValidityError::MissingPortPipe(idx));
        }
        if port.is_virtual(bounds) {
            let loc = port.location;
            if design.degree(loc) > 1 || design.is_y(loc) {
                errors.push(ValidityError::PortFanout(idx));
            }
        }
    }

    // Sweep cubes for the structural rules.
    for c in bounds.iter() {
        let axes = design.occupied_axes(c);
        let degree = design.degree(c);
        let is_virtual_port = spec.virtual_cubes().contains(&c);

        if axes.len() == 3 {
            errors.push(ValidityError::ThreeDCorner(c));
        }
        if design.is_y(c) {
            if !spec.allow_y_cubes {
                errors.push(ValidityError::YNotAllowed(c));
            }
            if axes.iter().any(|&a| a != Axis::K) {
                errors.push(ValidityError::YWithHorizontalPipe(c));
            }
            if degree > 1 {
                errors.push(ValidityError::YPassthrough(c));
            }
        } else if degree == 1 && !is_virtual_port {
            // Terminal cubes must be Y cubes or port-pipe endpoints.
            let (pipe, _) = design.incident_pipes(c)[0];
            let is_port_pipe = port_pipes.contains_key(&(pipe.base, pipe.axis));
            if !is_port_pipe {
                errors.push(ValidityError::DegreeOne(c));
            }
        }

        // Boundary exits must be ports.
        for axis in Axis::ALL {
            if design.has_pipe(axis, c)
                && !bounds.contains(c.next(axis))
                && !port_pipes.contains_key(&(c, axis))
            {
                errors.push(ValidityError::UnexpectedPort(c, axis));
            }
        }

        // Color matching between horizontal pipes at this cube: for each
        // shared normal axis, the faces normal to it must agree.
        let incident: Vec<_> = design
            .incident_pipes(c)
            .into_iter()
            .filter(|(p, _)| p.axis != Axis::K)
            .collect();
        let mut mismatch = false;
        for (a, &(pa, _)) in incident.iter().enumerate() {
            for &(pb, _) in &incident[a + 1..] {
                for n in Axis::ALL {
                    if n == pa.axis || n == pb.axis {
                        continue;
                    }
                    let ra = red_normal_axis(pa.axis, design.color(pa.axis, pa.base)) == n;
                    let rb = red_normal_axis(pb.axis, design.color(pb.axis, pb.base)) == n;
                    if ra != rb {
                        mismatch = true;
                    }
                }
            }
        }
        if mismatch {
            errors.push(ValidityError::ColorMismatch(c));
        }
    }

    // Side-port colors: an I/J port pipe's color variable must match the
    // port's declared orientation.
    for (idx, port) in spec.ports.iter().enumerate() {
        let (base, axis) = port.pipe();
        if axis != Axis::K
            && design.has_pipe(axis, base)
            && design.color(axis, base) != port.color_orientation()
        {
            errors.push(ValidityError::PortFanout(idx));
        }
    }

    // Forbidden cubes must stay empty.
    let forbidden: HashSet<Coord> = spec.forbidden_cubes.iter().copied().collect();
    for &c in &forbidden {
        if design.degree(c) > 0 || design.is_y(c) {
            errors.push(ValidityError::ForbiddenOccupied(c));
        }
    }

    errors.extend(check_functionality(design));
    errors
}

/// The two correlation pieces of a pipe relative to a junction normal:
/// (parallel kind, orthogonal kind).
fn pieces_for(pipe_axis: Axis, normal: Axis) -> (CorrKind, CorrKind) {
    let parallel = CorrKind::new(pipe_axis, normal);
    let orthogonal = CorrKind::new(pipe_axis, pipe_axis.third(normal));
    (parallel, orthogonal)
}

/// Checks the correlation-surface rules (paper Fig. 11) for every
/// stabilizer.
pub fn check_functionality(design: &LasDesign) -> Vec<ValidityError> {
    let mut errors = Vec::new();
    let spec = design.spec();
    let bounds = design.bounds();
    let virtual_cubes = spec.virtual_cubes();

    for (s, stab) in spec.stabilizers.iter().enumerate() {
        // (a) Port boundary conditions.
        for (p_idx, port) in spec.ports.iter().enumerate() {
            let (base, axis) = port.pipe();
            let z_kind = CorrKind::new(axis, port.z_basis_direction);
            let x_kind = CorrKind::new(axis, port.x_basis_direction());
            let (want_z, want_x) = match stab.get(p_idx) {
                Pauli::I => (false, false),
                Pauli::Z => (true, false),
                Pauli::X => (false, true),
                Pauli::Y => (true, true),
            };
            if design.corr(s, z_kind, base) != want_z || design.corr(s, x_kind, base) != want_x {
                errors.push(ValidityError::PortSurfaceMismatch {
                    stabilizer: s,
                    port: p_idx,
                });
            }
        }
        for c in bounds.iter() {
            // (d) Both-or-none at Y cubes, for each incident K pipe.
            if design.is_y(c) {
                for (pipe, _) in design.incident_pipes(c) {
                    if pipe.axis == Axis::K {
                        let ki = design.corr(s, CorrKind::new(Axis::K, Axis::I), pipe.base);
                        let kj = design.corr(s, CorrKind::new(Axis::K, Axis::J), pipe.base);
                        if ki != kj {
                            errors.push(ValidityError::YSurfaceMismatch {
                                stabilizer: s,
                                cube: c,
                            });
                        }
                    }
                }
                continue;
            }
            if virtual_cubes.contains(&c) {
                continue;
            }
            // (b)/(c) for every axis with no incident pipes.
            let occupied = design.occupied_axes(c);
            if occupied.is_empty() {
                continue;
            }
            for normal in Axis::ALL {
                if occupied.contains(&normal) {
                    continue;
                }
                let incident = design.incident_pipes(c);
                let mut parity = false;
                let mut orth_present = Vec::new();
                for &(pipe, _) in &incident {
                    let (par, orth) = pieces_for(pipe.axis, normal);
                    parity ^= design.corr(s, par, pipe.base);
                    orth_present.push(design.corr(s, orth, pipe.base));
                }
                if parity {
                    errors.push(ValidityError::ParallelParity {
                        stabilizer: s,
                        cube: c,
                        normal,
                    });
                }
                if orth_present.iter().any(|&x| x) && !orth_present.iter().all(|&x| x) {
                    errors.push(ValidityError::OrthogonalMixed {
                        stabilizer: s,
                        cube: c,
                        normal,
                    });
                }
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{cnot_design, cnot_spec};
    use crate::vars::StructVar;

    #[test]
    fn cnot_fixture_is_fully_valid() {
        let errors = check_validity(&cnot_design());
        assert!(errors.is_empty(), "unexpected violations: {errors:?}");
    }

    #[test]
    fn missing_port_pipe_detected() {
        let spec = cnot_spec();
        let table = crate::vars::VarTable::new(spec.bounds(), spec.nstab());
        let design = LasDesign::new(spec, vec![false; table.num_total()]);
        let errors = check_validity(&design);
        assert!(errors.contains(&ValidityError::MissingPortPipe(0)));
    }

    #[test]
    fn dangling_pipe_detected() {
        let mut d = cnot_design();
        let idx = d
            .table()
            .structural(StructVar::Exist(Axis::K, Coord::new(0, 0, 1)));
        let mut values = d.values().to_vec();
        values[idx] = true;
        let d2 = LasDesign::new(d.spec().clone(), values);
        let errors = check_validity(&d2);
        assert!(
            errors
                .iter()
                .any(|e| matches!(e, ValidityError::DegreeOne(_))),
            "{errors:?}"
        );
        let _ = &mut d;
    }

    #[test]
    fn unexpected_boundary_exit_detected() {
        let mut values = cnot_design().values().to_vec();
        let d = cnot_design();
        // A pipe exiting at the top where no port exists: (0,0,2)→k=3.
        let idx = d
            .table()
            .structural(StructVar::Exist(Axis::K, Coord::new(0, 0, 2)));
        values[idx] = true;
        let d2 = LasDesign::new(d.spec().clone(), values);
        let errors = check_validity(&d2);
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidityError::UnexpectedPort(c, Axis::K) if c.k == 2)));
    }

    #[test]
    fn color_mismatch_detected() {
        let d = cnot_design();
        let mut values = d.values().to_vec();
        // Flip the I pipe's color: the ZZ junction now clashes with the
        // XX junction through the shared ancilla pillar? No — it clashes
        // with nothing at (0,1,2) since only one horizontal pipe meets
        // there. Instead add a second I pipe at (0,0,1)→(1,0,1) with a
        // clashing color against the J pipe at (1,0,1).
        let e = d
            .table()
            .structural(StructVar::Exist(Axis::I, Coord::new(0, 0, 1)));
        values[e] = true;
        // Also anchor its far end so no degree-1 violation hides the color error:
        let e2 = d
            .table()
            .structural(StructVar::Exist(Axis::K, Coord::new(0, 0, 1)));
        values[e2] = true;
        let e3 = d
            .table()
            .structural(StructVar::Exist(Axis::K, Coord::new(0, 0, 2)));
        values[e3] = true;
        // Color of new I pipe: red normal K (false). J pipe at (1,0,1) is
        // red normal I (true): shared normal K: I pipe red-K=true(red on K),
        // J pipe red_normal(J,true)=I ⇒ red-K=false: mismatch at (1,0,1).
        let errors = check_validity(&LasDesign::new(d.spec().clone(), values));
        assert!(
            errors
                .iter()
                .any(|e| matches!(e, ValidityError::ColorMismatch(c) if *c == Coord::new(1,0,1))),
            "{errors:?}"
        );
    }

    #[test]
    fn forbidden_occupation_detected() {
        let d = cnot_design();
        let mut values = d.values().to_vec();
        let idx = d.table().structural(StructVar::YCube(Coord::new(0, 0, 0)));
        values[idx] = true;
        let errors = check_validity(&LasDesign::new(d.spec().clone(), values));
        assert!(errors.contains(&ValidityError::ForbiddenOccupied(Coord::new(0, 0, 0))));
    }

    #[test]
    fn port_surface_mismatch_detected() {
        let d = cnot_design();
        let mut values = d.values().to_vec();
        // Remove the s0 surface at port 0's pipe.
        let idx = d
            .table()
            .corr(0, CorrKind::new(Axis::K, Axis::J), Coord::new(0, 1, 0));
        values[idx] = false;
        let errors = check_functionality(&LasDesign::new(d.spec().clone(), values));
        assert!(errors.iter().any(|e| matches!(
            e,
            ValidityError::PortSurfaceMismatch {
                stabilizer: 0,
                port: 0
            }
        )));
    }

    #[test]
    fn parity_violation_detected() {
        let d = cnot_design();
        let mut values = d.values().to_vec();
        // Drop the IJ piece of s1 at the ZZ junction: parity at (0,1,2)
        // w.r.t. normal J becomes odd.
        let idx = d
            .table()
            .corr(1, CorrKind::new(Axis::I, Axis::J), Coord::new(0, 1, 2));
        values[idx] = false;
        let errors = check_functionality(&LasDesign::new(d.spec().clone(), values));
        assert!(
            errors.iter().any(|e| matches!(
                e,
                ValidityError::ParallelParity {
                    stabilizer: 1,
                    normal: Axis::J,
                    ..
                }
            )),
            "{errors:?}"
        );
    }

    #[test]
    fn orthogonal_mix_detected() {
        let d = cnot_design();
        let mut values = d.values().to_vec();
        // Drop one of the three orthogonal X pieces of s2 at (0,1,2).
        let idx = d
            .table()
            .corr(2, CorrKind::new(Axis::I, Axis::K), Coord::new(0, 1, 2));
        values[idx] = false;
        let errors = check_functionality(&LasDesign::new(d.spec().clone(), values));
        assert!(
            errors
                .iter()
                .any(|e| matches!(e, ValidityError::OrthogonalMixed { stabilizer: 2, .. })),
            "{errors:?}"
        );
    }
}
