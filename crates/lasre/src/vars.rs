//! Dense indexing of the LaSre variables.
//!
//! The paper's representation (Sec. III-A, III-C) uses five structural
//! variable arrays — `YCube`, `ExistI/J/K`, `ColorI/J` — plus six
//! correlation-surface arrays per stabilizer: `CorrIJ/IK` (pieces
//! inside I-pipes), `CorrJI/JK` (J-pipes) and `CorrKI/KJ` (K-pipes).
//! [`VarTable`] lays all of them out contiguously so the encoder, the
//! decoder and serialization agree on variable numbers.

use crate::geom::{Axis, Bounds, Coord};

/// A structural variable of the representation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StructVar {
    /// Whether the cube is a Y-basis initialization/measurement cube.
    YCube(Coord),
    /// Whether a pipe exists from the cube toward `+axis`.
    Exist(Axis, Coord),
    /// Color orientation of a horizontal pipe (`axis` ∈ {I, J}).
    Color(Axis, Coord),
}

/// Identifies one of the two correlation-surface pieces inside a pipe:
/// the piece lies in the plane spanned by the pipe axis and `plane`.
///
/// `CorrIJ` of the paper is `pipe_axis = I, plane = J`, and so on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CorrKind {
    /// The axis of the pipe containing the piece.
    pub pipe_axis: Axis,
    /// The second axis spanning the piece's plane.
    pub plane: Axis,
}

impl CorrKind {
    /// Builds a kind.
    ///
    /// # Panics
    ///
    /// Panics if `plane == pipe_axis`.
    pub fn new(pipe_axis: Axis, plane: Axis) -> CorrKind {
        assert_ne!(
            pipe_axis, plane,
            "correlation plane must differ from pipe axis"
        );
        CorrKind { pipe_axis, plane }
    }

    /// All six kinds in the paper's order: IJ, IK, JI, JK, KI, KJ.
    pub fn all() -> [CorrKind; 6] {
        [
            CorrKind::new(Axis::I, Axis::J),
            CorrKind::new(Axis::I, Axis::K),
            CorrKind::new(Axis::J, Axis::I),
            CorrKind::new(Axis::J, Axis::K),
            CorrKind::new(Axis::K, Axis::I),
            CorrKind::new(Axis::K, Axis::J),
        ]
    }

    /// Dense index 0..6 in the order of [`CorrKind::all`].
    pub fn index(self) -> usize {
        let within = if self.plane == self.pipe_axis.others()[0] {
            0
        } else {
            1
        };
        self.pipe_axis.index() * 2 + within
    }
}

/// Maps every variable of a LaS instance to a dense index.
///
/// Layout: the structural block first (`YCube`, `ExistI`, `ExistJ`,
/// `ExistK`, `ColorI`, `ColorJ`, each of `volume` entries), then one
/// block of `6 · volume` correlation variables per stabilizer.
///
/// ```
/// use lasre::{Bounds, VarTable};
/// let t = VarTable::new(Bounds::new(2, 2, 3), 4);
/// assert_eq!(t.num_struct(), 6 * 12);
/// assert_eq!(t.num_total(), 6 * 12 + 4 * 6 * 12);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarTable {
    bounds: Bounds,
    nstab: usize,
}

impl VarTable {
    /// Builds the table for the given array bounds and stabilizer count.
    pub fn new(bounds: Bounds, nstab: usize) -> VarTable {
        VarTable { bounds, nstab }
    }

    /// The array bounds.
    pub fn bounds(&self) -> Bounds {
        self.bounds
    }

    /// Number of stabilizers.
    pub fn nstab(&self) -> usize {
        self.nstab
    }

    /// Number of structural variables.
    pub fn num_struct(&self) -> usize {
        6 * self.bounds.volume()
    }

    /// Total number of variables.
    pub fn num_total(&self) -> usize {
        self.num_struct() + self.nstab * 6 * self.bounds.volume()
    }

    /// Index of a structural variable.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds, or a `Color`/`Exist`
    /// variable names the wrong axis (`Color` has no K array).
    pub fn structural(&self, v: StructVar) -> usize {
        let vol = self.bounds.volume();
        match v {
            StructVar::YCube(c) => self.bounds.index(c),
            StructVar::Exist(axis, c) => (1 + axis.index()) * vol + self.bounds.index(c),
            StructVar::Color(axis, c) => {
                assert_ne!(axis, Axis::K, "K pipes have no color variable");
                (4 + axis.index()) * vol + self.bounds.index(c)
            }
        }
    }

    /// Index of a correlation-surface variable for stabilizer `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= nstab` or the coordinate is out of bounds.
    pub fn corr(&self, s: usize, kind: CorrKind, c: Coord) -> usize {
        assert!(s < self.nstab, "stabilizer index {s} out of range");
        let vol = self.bounds.volume();
        self.num_struct() + (s * 6 + kind.index()) * vol + self.bounds.index(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corr_kind_indices_are_a_permutation() {
        let idxs: Vec<usize> = CorrKind::all().iter().map(|k| k.index()).collect();
        assert_eq!(idxs, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn all_variables_distinct() {
        let b = Bounds::new(2, 3, 2);
        let t = VarTable::new(b, 2);
        let mut seen = std::collections::HashSet::new();
        for c in b.iter() {
            assert!(seen.insert(t.structural(StructVar::YCube(c))));
            for axis in Axis::ALL {
                assert!(seen.insert(t.structural(StructVar::Exist(axis, c))));
            }
            for axis in [Axis::I, Axis::J] {
                assert!(seen.insert(t.structural(StructVar::Color(axis, c))));
            }
            for s in 0..2 {
                for kind in CorrKind::all() {
                    assert!(seen.insert(t.corr(s, kind, c)));
                }
            }
        }
        assert_eq!(seen.len(), t.num_total());
        assert_eq!(*seen.iter().max().unwrap(), t.num_total() - 1);
    }

    #[test]
    #[should_panic(expected = "no color variable")]
    fn color_k_panics() {
        let t = VarTable::new(Bounds::new(1, 1, 1), 0);
        t.structural(StructVar::Color(Axis::K, Coord::new(0, 0, 0)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stabilizer_range_checked() {
        let t = VarTable::new(Bounds::new(1, 1, 1), 1);
        t.corr(1, CorrKind::new(Axis::I, Axis::J), Coord::new(0, 0, 0));
    }
}
