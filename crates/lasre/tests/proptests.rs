//! Property-based tests for the representation layer.

use lasre::fixtures::{cnot_design, cnot_spec};
use lasre::{check_validity, Axis, Coord, LasDesign, StructVar};
use proptest::prelude::*;

proptest! {
    /// `with_depth` keeps specs valid and is idempotent at a fixed depth.
    #[test]
    fn with_depth_stays_valid(depth in 2usize..8) {
        let spec = cnot_spec().with_depth(depth);
        prop_assert!(spec.validate().is_ok());
        prop_assert_eq!(spec.with_depth(depth), spec.clone());
        // Top ports moved with the lid.
        prop_assert_eq!(spec.ports[2].location.k, depth as i32);
    }

    /// Port permutations keep specs valid and permute stabilizer columns.
    #[test]
    fn port_permutations_stay_valid(seed in 0u64..64) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..4).collect();
        perm.shuffle(&mut rng);
        let spec = cnot_spec().with_port_order(&perm);
        prop_assert!(spec.validate().is_ok());
        for (s, orig) in spec.stabilizers.iter().zip(&cnot_spec().stabilizers) {
            for (i, &p) in perm.iter().enumerate() {
                prop_assert_eq!(s.get(i), orig.get(p));
            }
        }
    }

    /// Flipping random *unused* correlation bits (in non-existent pipes)
    /// never invalidates the fixture: they are genuine don't-cares.
    #[test]
    fn dont_care_corr_bits(bits in proptest::collection::vec((0usize..4, 0usize..6), 1..8)) {
        let d = cnot_design();
        let table = d.table().clone();
        let mut values = d.values().to_vec();
        let kinds = lasre::CorrKind::all();
        for (s, kind_idx) in bits {
            // Pipe (0,0,1) along I does not exist in the CNOT fixture.
            let kind = kinds[kind_idx];
            let c = Coord::new(0, 0, 1);
            if kind.pipe_axis == Axis::I {
                values[table.corr(s, kind, c)] ^= true;
            }
        }
        let d2 = LasDesign::new(d.spec().clone(), values);
        prop_assert!(check_validity(&d2).is_empty());
    }

    /// Pruning is idempotent and never touches port-connected structure.
    #[test]
    fn prune_idempotent(extra in proptest::collection::vec((0i32..2, 0i32..2, 0i32..2), 0..4)) {
        let d = cnot_design();
        let mut values = d.values().to_vec();
        // Sprinkle disconnected K pipes in the unused (0,0) column only
        // (the (1,1) column hosts the CNOT's real ancilla).
        for (i, j, k) in extra {
            let _ = (i, j);
            let c = Coord::new(0, 0, k + 1);
            if c.k < 2 {
                values[d.table().structural(StructVar::Exist(Axis::K, c))] = true;
            }
        }
        let mut d2 = LasDesign::new(d.spec().clone(), values);
        d2.prune();
        let after_once = d2.values().to_vec();
        d2.prune();
        prop_assert_eq!(d2.values().to_vec(), after_once);
        // Core structure intact.
        prop_assert!(d2.has_pipe(Axis::I, Coord::new(0, 1, 2)));
        prop_assert!(d2.has_pipe(Axis::J, Coord::new(1, 0, 1)));
        // Disconnected additions removed; the real ancilla pipe stays.
        prop_assert!(!d2.has_pipe(Axis::K, Coord::new(0, 0, 1)));
        prop_assert!(d2.has_pipe(Axis::K, Coord::new(1, 1, 1)));
    }
}
