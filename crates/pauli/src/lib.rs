//! Pauli operators, Pauli strings, and stabilizer-flow utilities.
//!
//! A lattice-surgery subroutine (LaS) is specified functionally by a set
//! of *stabilizer flows* written as Pauli strings over its ports (paper
//! Fig. 2b). This crate provides the string algebra those specs and the
//! verification substrates (`las-tableau`, `las-zx`) are built from:
//! bit-packed [`PauliString`]s with phase tracking, commutation via the
//! symplectic form, parsing/printing in the paper's `.XYZ` notation, and
//! consistency checks for flow sets.
//!
//! # Examples
//!
//! ```
//! use pauli::PauliString;
//!
//! let xx: PauliString = "XX".parse()?;
//! let zz: PauliString = "ZZ".parse()?;
//! assert!(xx.commutes_with(&zz));
//! let yy = xx.mul(&zz);
//! assert_eq!(yy.to_string(), "-YY");
//! # Ok::<(), pauli::ParsePauliError>(())
//! ```

#![forbid(unsafe_code)]

mod phase;
mod string;

pub use phase::Phase;
pub use string::{ParsePauliError, PauliString};

use std::fmt;

/// A single-qubit Pauli operator.
///
/// ```
/// use pauli::Pauli;
/// let (p, phase) = Pauli::X.mul(Pauli::Z);
/// assert_eq!(p, Pauli::Y);
/// assert_eq!(phase.exponent(), 3); // XZ = -iY
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Pauli {
    /// Identity.
    #[default]
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl Pauli {
    /// The (x, z) symplectic bits of this Pauli.
    #[inline]
    pub fn xz(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Reconstructs a Pauli from its (x, z) bits.
    #[inline]
    pub fn from_xz(x: bool, z: bool) -> Self {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Whether this Pauli commutes with `other`.
    #[inline]
    pub fn commutes_with(self, other: Pauli) -> bool {
        let (x1, z1) = self.xz();
        let (x2, z2) = other.xz();
        !((x1 & z2) ^ (z1 & x2))
    }

    /// Multiplies two Paulis, returning the resulting Pauli and the
    /// phase `i^k` such that `self * other = i^k * result` with `result`
    /// Hermitian (I, X, Y or Z).
    #[allow(clippy::should_implement_trait)] // returns (Pauli, Phase), not Self
    pub fn mul(self, other: Pauli) -> (Pauli, Phase) {
        let (x1, z1) = self.xz();
        let (x2, z2) = other.xz();
        let result = Pauli::from_xz(x1 ^ x2, z1 ^ z2);
        let k = match (self, other) {
            (Pauli::X, Pauli::Y) | (Pauli::Y, Pauli::Z) | (Pauli::Z, Pauli::X) => 1,
            (Pauli::Y, Pauli::X) | (Pauli::Z, Pauli::Y) | (Pauli::X, Pauli::Z) => 3,
            _ => 0,
        };
        (result, Phase::new(k))
    }

    /// Parses one character: `.`, `_` or `I` for identity, `X`/`Y`/`Z`
    /// (case-insensitive).
    pub fn from_char(c: char) -> Option<Pauli> {
        match c {
            '.' | '_' | 'I' | 'i' => Some(Pauli::I),
            'X' | 'x' => Some(Pauli::X),
            'Y' | 'y' => Some(Pauli::Y),
            'Z' | 'z' => Some(Pauli::Z),
            _ => None,
        }
    }

    /// The paper's display character (`.` for identity).
    pub fn to_char(self) -> char {
        match self {
            Pauli::I => '.',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// Checks that every pair of strings in `set` commutes (under the flat
/// symplectic form over ports).
///
/// For a valid LaS specification this must hold: a flow `P → Q` written
/// flat as `P ⊗ Q` commutes with `P' ⊗ Q'` exactly when the commutation
/// structure is preserved by the subroutine (see DESIGN.md §3).
///
/// ```
/// use pauli::{all_commute, PauliString};
/// let flows: Vec<PauliString> = ["Z.Z.", ".ZZZ", "X.XX", ".X.X"]
///     .iter().map(|s| s.parse().unwrap()).collect();
/// assert!(all_commute(&flows)); // the CNOT's four flows
/// ```
pub fn all_commute(set: &[PauliString]) -> bool {
    for (i, a) in set.iter().enumerate() {
        for b in &set[i + 1..] {
            if !a.commutes_with(b) {
                return false;
            }
        }
    }
    true
}

/// Returns the number of independent strings in `set` (rank of the
/// symplectic bit matrix, ignoring phases).
pub fn independent_count(set: &[PauliString]) -> usize {
    if set.is_empty() {
        return 0;
    }
    let n = set[0].len();
    let mut m = gf2::BitMat::zeros(set.len(), 2 * n);
    for (r, p) in set.iter().enumerate() {
        for c in p.xs().iter_ones() {
            m.set(r, c, true);
        }
        for c in p.zs().iter_ones() {
            m.set(r, n + c, true);
        }
    }
    m.rank()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_mul_table() {
        use Pauli::*;
        assert_eq!(X.mul(X), (I, Phase::new(0)));
        assert_eq!(X.mul(Y).0, Z);
        assert_eq!(Y.mul(Z).0, X);
        assert_eq!(Z.mul(X).0, Y);
        assert_eq!(X.mul(Y).1, Phase::new(1)); // XY = iZ
        assert_eq!(Y.mul(X).1, Phase::new(3)); // YX = -iZ
        assert_eq!(I.mul(Z), (Z, Phase::new(0)));
    }

    #[test]
    fn commutation_table() {
        use Pauli::*;
        assert!(X.commutes_with(X));
        assert!(!X.commutes_with(Z));
        assert!(!Y.commutes_with(Z));
        assert!(I.commutes_with(Y));
    }

    #[test]
    fn xz_roundtrip() {
        for p in [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z] {
            let (x, z) = p.xz();
            assert_eq!(Pauli::from_xz(x, z), p);
        }
    }

    #[test]
    fn char_roundtrip() {
        for p in [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z] {
            assert_eq!(Pauli::from_char(p.to_char()), Some(p));
        }
        assert_eq!(Pauli::from_char('q'), None);
    }

    #[test]
    fn cnot_flows_commute() {
        let flows: Vec<PauliString> = ["Z.Z.", ".ZZZ", "X.XX", ".X.X"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        assert!(all_commute(&flows));
        assert_eq!(independent_count(&flows), 4);
    }

    #[test]
    fn anticommuting_pair_detected() {
        let set: Vec<PauliString> = vec!["XI".parse().unwrap(), "ZI".parse().unwrap()];
        assert!(!all_commute(&set));
    }

    #[test]
    fn dependent_set_has_lower_rank() {
        let a: PauliString = "XX".parse().unwrap();
        let b: PauliString = "ZZ".parse().unwrap();
        let c = a.mul(&b);
        assert_eq!(independent_count(&[a, b, c]), 2);
    }
}
