//! Quarter-turn phases `i^k`.

use std::fmt;
use std::ops::{Add, AddAssign, Neg};

/// A power of the imaginary unit, `i^k` with `k ∈ {0, 1, 2, 3}`.
///
/// Pauli-string products only ever pick up such phases, so this small
/// group is all the phase tracking the workspace needs.
///
/// ```
/// use pauli::Phase;
/// assert_eq!(Phase::MINUS_ONE + Phase::MINUS_ONE, Phase::ONE);
/// assert_eq!((Phase::I + Phase::I), Phase::MINUS_ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Phase(u8);

impl Phase {
    /// `i^0 = 1`.
    pub const ONE: Phase = Phase(0);
    /// `i^1 = i`.
    pub const I: Phase = Phase(1);
    /// `i^2 = -1`.
    pub const MINUS_ONE: Phase = Phase(2);
    /// `i^3 = -i`.
    pub const MINUS_I: Phase = Phase(3);

    /// Creates `i^k` (reduced modulo 4).
    #[inline]
    pub fn new(k: u8) -> Phase {
        Phase(k % 4)
    }

    /// The exponent `k` of `i^k`, in `0..4`.
    #[inline]
    pub fn exponent(self) -> u8 {
        self.0
    }

    /// Whether the phase is real (`±1`).
    #[inline]
    pub fn is_real(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// Multiplicative inverse (`i^-k`).
    #[inline]
    pub fn inverse(self) -> Phase {
        Phase((4 - self.0) % 4)
    }
}

impl Add for Phase {
    type Output = Phase;

    /// Multiplies the phases (adds exponents).
    #[inline]
    fn add(self, rhs: Phase) -> Phase {
        Phase((self.0 + rhs.0) % 4)
    }
}

impl AddAssign for Phase {
    #[inline]
    fn add_assign(&mut self, rhs: Phase) {
        *self = *self + rhs;
    }
}

impl Neg for Phase {
    type Output = Phase;

    /// Multiplies by `-1` (adds 2 to the exponent).
    #[inline]
    fn neg(self) -> Phase {
        Phase((self.0 + 2) % 4)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self.0 {
            0 => "+",
            1 => "+i",
            2 => "-",
            _ => "-i",
        })
    }
}

impl fmt::Debug for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Phase(i^{})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_law() {
        assert_eq!(Phase::I + Phase::I, Phase::MINUS_ONE);
        assert_eq!(Phase::I + Phase::MINUS_I, Phase::ONE);
        assert_eq!(Phase::new(7), Phase::MINUS_I);
    }

    #[test]
    fn inverse_cancels() {
        for k in 0..4 {
            let p = Phase::new(k);
            assert_eq!(p + p.inverse(), Phase::ONE);
        }
    }

    #[test]
    fn neg_is_times_minus_one() {
        assert_eq!(-Phase::ONE, Phase::MINUS_ONE);
        assert_eq!(-Phase::I, Phase::MINUS_I);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Phase::ONE.to_string(), "+");
        assert_eq!(Phase::MINUS_ONE.to_string(), "-");
        assert_eq!(Phase::I.to_string(), "+i");
        assert_eq!(Phase::MINUS_I.to_string(), "-i");
    }

    #[test]
    fn realness() {
        assert!(Phase::ONE.is_real());
        assert!(Phase::MINUS_ONE.is_real());
        assert!(!Phase::I.is_real());
    }
}
