//! Bit-packed multi-qubit Pauli strings.

use crate::{Pauli, Phase};
use gf2::BitVec;
use std::fmt;
use std::str::FromStr;

/// A Pauli string: a phase times a tensor product of single-qubit
/// Paulis, stored as bit-packed X/Z support vectors.
///
/// The represented operator is `i^phase · ⊗_q W_q` where each `W_q` is
/// the Hermitian Pauli determined by the bits `(xs[q], zs[q])`.
///
/// Strings parse and print in the paper's notation: `.` (or `I`) for
/// identity, with an optional leading sign (`-`, `+`, `i`, `-i`):
///
/// ```
/// use pauli::PauliString;
/// let p: PauliString = "-X.ZY".parse()?;
/// assert_eq!(p.len(), 4);
/// assert_eq!(p.weight(), 3);
/// assert_eq!(p.to_string(), "-X.ZY");
/// # Ok::<(), pauli::ParsePauliError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PauliString {
    xs: BitVec,
    zs: BitVec,
    phase: Phase,
}

/// Error returned when parsing a [`PauliString`] fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePauliError {
    offending: String,
}

impl fmt::Display for ParsePauliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pauli string syntax: {:?}", self.offending)
    }
}

impl std::error::Error for ParsePauliError {}

impl PauliString {
    /// The identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            xs: BitVec::zeros(n),
            zs: BitVec::zeros(n),
            phase: Phase::ONE,
        }
    }

    /// A string with a single non-identity Pauli at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= n`.
    pub fn single(n: usize, idx: usize, p: Pauli) -> Self {
        let mut s = PauliString::identity(n);
        s.set(idx, p);
        s
    }

    /// Builds a string from raw X/Z support vectors and a phase.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn from_parts(xs: BitVec, zs: BitVec, phase: Phase) -> Self {
        assert_eq!(xs.len(), zs.len(), "x/z support length mismatch");
        PauliString { xs, zs, phase }
    }

    /// Number of qubits.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the string acts on zero qubits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The Pauli at position `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[inline]
    pub fn get(&self, idx: usize) -> Pauli {
        Pauli::from_xz(self.xs.get(idx), self.zs.get(idx))
    }

    /// Sets the Pauli at position `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[inline]
    pub fn set(&mut self, idx: usize, p: Pauli) {
        let (x, z) = p.xz();
        self.xs.set(idx, x);
        self.zs.set(idx, z);
    }

    /// The global phase `i^k`.
    #[inline]
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Replaces the global phase.
    pub fn with_phase(mut self, phase: Phase) -> Self {
        self.phase = phase;
        self
    }

    /// Overwrites the global phase in place.
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    /// Multiplies the string by `-1` in place.
    ///
    /// ```
    /// use pauli::PauliString;
    /// let mut p: PauliString = "XZ".parse().unwrap();
    /// p.negate();
    /// assert_eq!(p.to_string(), "-XZ");
    /// ```
    pub fn negate(&mut self) {
        self.phase = -self.phase;
    }

    /// The X support bits.
    pub fn xs(&self) -> &BitVec {
        &self.xs
    }

    /// The Z support bits.
    pub fn zs(&self) -> &BitVec {
        &self.zs
    }

    /// Number of non-identity positions.
    pub fn weight(&self) -> usize {
        let mut support = self.xs.clone();
        support ^= &self.zs;
        let mut both = self.xs.clone();
        both &= &self.zs;
        support.count_ones() + both.count_ones()
    }

    /// Whether every position is identity (phase ignored).
    pub fn is_identity(&self) -> bool {
        self.xs.is_zero() && self.zs.is_zero()
    }

    /// Indices of non-identity positions, in increasing order.
    pub fn support(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&q| self.get(q) != Pauli::I)
            .collect()
    }

    /// Whether this string commutes with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        !(self.xs.dot(&other.zs) ^ self.zs.dot(&other.xs))
    }

    /// Multiplies two strings, tracking the phase.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn mul(&self, other: &PauliString) -> PauliString {
        assert_eq!(self.len(), other.len(), "length mismatch in mul");
        let mut phase = self.phase + other.phase;
        for q in 0..self.len() {
            let (_, k) = self.get(q).mul(other.get(q));
            phase += k;
        }
        let mut xs = self.xs.clone();
        xs ^= &other.xs;
        let mut zs = self.zs.clone();
        zs ^= &other.zs;
        PauliString { xs, zs, phase }
    }

    /// Tensor product `self ⊗ other`.
    pub fn tensor(&self, other: &PauliString) -> PauliString {
        let n = self.len() + other.len();
        let mut out = PauliString::identity(n).with_phase(self.phase + other.phase);
        for q in 0..self.len() {
            out.set(q, self.get(q));
        }
        for q in 0..other.len() {
            out.set(self.len() + q, other.get(q));
        }
        out
    }

    /// Restriction of the string to the given positions (phase kept).
    ///
    /// # Panics
    ///
    /// Panics if a position is out of range.
    pub fn restrict(&self, positions: &[usize]) -> PauliString {
        let mut out = PauliString::identity(positions.len()).with_phase(self.phase);
        for (new_q, &old_q) in positions.iter().enumerate() {
            out.set(new_q, self.get(old_q));
        }
        out
    }

    /// Embeds this string into `n` qubits, sending position `q` to
    /// `mapping[q]`.
    ///
    /// # Panics
    ///
    /// Panics if `mapping.len() != len` or a target index is out of range.
    pub fn embed(&self, n: usize, mapping: &[usize]) -> PauliString {
        assert_eq!(mapping.len(), self.len(), "mapping length mismatch");
        let mut out = PauliString::identity(n).with_phase(self.phase);
        for (q, &target) in mapping.iter().enumerate() {
            out.set(target, self.get(q));
        }
        out
    }

    /// Whether the X/Z supports equal `other`'s (phases ignored).
    pub fn same_letters(&self, other: &PauliString) -> bool {
        self.xs == other.xs && self.zs == other.zs
    }

    /// Iterates over the per-position Paulis.
    pub fn iter(&self) -> impl Iterator<Item = Pauli> + '_ {
        (0..self.len()).map(|q| self.get(q))
    }
}

impl FromStr for PauliString {
    type Err = ParsePauliError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParsePauliError {
            offending: s.to_string(),
        };
        let (phase, body) = if let Some(rest) = s.strip_prefix("-i") {
            (Phase::MINUS_I, rest)
        } else if let Some(rest) = s.strip_prefix("+i") {
            (Phase::I, rest)
        } else if let Some(rest) = s.strip_prefix('-') {
            (Phase::MINUS_ONE, rest)
        } else if let Some(rest) = s.strip_prefix('+') {
            (Phase::ONE, rest)
        } else {
            (Phase::ONE, s)
        };
        if body.is_empty() {
            return Err(err());
        }
        let mut paulis = Vec::with_capacity(body.len());
        for c in body.chars() {
            paulis.push(Pauli::from_char(c).ok_or_else(err)?);
        }
        let mut out = PauliString::identity(paulis.len()).with_phase(phase);
        for (q, p) in paulis.into_iter().enumerate() {
            out.set(q, p);
        }
        Ok(out)
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.phase {
            Phase::ONE => {}
            p => write!(f, "{p}")?,
        }
        for q in 0..self.len() {
            write!(f, "{}", self.get(q))?;
        }
        Ok(())
    }
}

impl fmt::Debug for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PauliString({self})")
    }
}

impl serde::Serialize for PauliString {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> serde::Deserialize<'de> for PauliString {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["XYZ.", "-ZZ", "+iX.", "-iYYY", "...."] {
            let p = ps(s);
            let expected = s
                .strip_prefix('+')
                .filter(|r| !r.starts_with('i'))
                .unwrap_or(s);
            assert_eq!(p.to_string(), expected);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("XQZ".parse::<PauliString>().is_err());
        assert!("".parse::<PauliString>().is_err());
        assert!("-".parse::<PauliString>().is_err());
    }

    #[test]
    fn weight_counts_non_identity() {
        assert_eq!(ps(".X.YZ").weight(), 3);
        assert_eq!(ps("....").weight(), 0);
        assert_eq!(ps("YYYY").weight(), 4);
    }

    #[test]
    fn support_positions() {
        assert_eq!(ps(".X.Z").support(), vec![1, 3]);
    }

    #[test]
    fn mul_xx_zz_gives_minus_yy() {
        let r = ps("XX").mul(&ps("ZZ"));
        assert_eq!(r.to_string(), "-YY");
    }

    #[test]
    fn mul_is_associative_on_samples() {
        let a = ps("XZY.");
        let b = ps(".YXZ");
        let c = ps("ZZXX");
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn self_product_is_identity() {
        let a = ps("XYZY");
        let sq = a.mul(&a);
        assert!(sq.is_identity());
        assert_eq!(sq.phase(), Phase::ONE);
    }

    #[test]
    fn commutation_via_symplectic() {
        assert!(ps("XX").commutes_with(&ps("ZZ")));
        assert!(!ps("X.").commutes_with(&ps("Z.")));
        assert!(ps("XZ").commutes_with(&ps("ZX")));
    }

    #[test]
    fn tensor_concatenates() {
        let t = ps("-X").tensor(&ps("Z."));
        assert_eq!(t.to_string(), "-XZ.");
    }

    #[test]
    fn restrict_and_embed() {
        let p = ps("XYZ");
        assert_eq!(p.restrict(&[2, 0]).to_string(), "ZX");
        assert_eq!(p.embed(5, &[4, 2, 0]).to_string(), "Z.Y.X");
    }

    #[test]
    fn anticommuting_products_differ_by_sign() {
        let x = ps("X");
        let z = ps("Z");
        let xz = x.mul(&z);
        let zx = z.mul(&x);
        assert!(xz.same_letters(&zx));
        assert_eq!(xz.phase() + zx.phase().inverse(), Phase::MINUS_ONE);
    }

    #[test]
    fn single_constructor() {
        let p = PauliString::single(4, 2, Pauli::Y);
        assert_eq!(p.to_string(), "..Y.");
    }

    #[test]
    fn serde_roundtrip() {
        let p = ps("-XZ.Y");
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(json, "\"-XZ.Y\"");
        let back: PauliString = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
