//! Property-based tests for Pauli-string algebra.

use pauli::{Pauli, PauliString, Phase};
use proptest::prelude::*;

fn arb_pauli() -> impl Strategy<Value = Pauli> {
    prop_oneof![
        Just(Pauli::I),
        Just(Pauli::X),
        Just(Pauli::Y),
        Just(Pauli::Z)
    ]
}

fn arb_string(n: usize) -> impl Strategy<Value = PauliString> {
    (proptest::collection::vec(arb_pauli(), n), 0u8..4).prop_map(|(ps, phase)| {
        let mut s = PauliString::identity(ps.len()).with_phase(Phase::new(phase));
        for (i, p) in ps.into_iter().enumerate() {
            s.set(i, p);
        }
        s
    })
}

proptest! {
    #[test]
    fn mul_is_associative(a in arb_string(10), b in arb_string(10), c in arb_string(10)) {
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn squares_are_scalar(a in arb_string(12)) {
        let sq = a.mul(&a);
        prop_assert!(sq.is_identity());
        // (i^k P)² = i^{2k} P² = ±1: real phase.
        prop_assert!(sq.phase().is_real());
    }

    #[test]
    fn commutation_matches_product_order(a in arb_string(8), b in arb_string(8)) {
        let ab = a.mul(&b);
        let ba = b.mul(&a);
        prop_assert!(ab.same_letters(&ba));
        let same_sign = ab.phase() == ba.phase();
        prop_assert_eq!(same_sign, a.commutes_with(&b));
    }

    #[test]
    fn parse_display_roundtrip(a in arb_string(9)) {
        let text = a.to_string();
        let back: PauliString = text.parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn weight_bounds(a in arb_string(16)) {
        prop_assert!(a.weight() <= 16);
        prop_assert_eq!(a.weight(), a.support().len());
    }

    #[test]
    fn tensor_then_restrict_recovers(a in arb_string(5), b in arb_string(4)) {
        let t = a.tensor(&b);
        let left = t.restrict(&[0, 1, 2, 3, 4]);
        // Phases concatenate onto the left factor under restrict.
        prop_assert!(left.same_letters(&a));
    }

    #[test]
    fn serde_roundtrip(a in arb_string(7)) {
        let json = serde_json::to_string(&a).unwrap();
        let back: PauliString = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, a);
    }
}
