//! CNF structural analyzer — the encoder lint.
//!
//! The encoder (`synth::encode`) emits through a simplifying builder,
//! which makes a whole class of bugs *silent*: a variable whose every
//! clause simplified away solves as unconstrained garbage, a
//! contradictory pair of root units turns the instance trivially UNSAT
//! with no hint of why, and an activation literal that gates nothing
//! makes a depth probe equisatisfiable with the wrong depth. This
//! module flags those shapes statically, before any solving, as named
//! lints with counts — cheap (one pass over the formula plus a
//! union-find) and solver-independent.
//!
//! Driven by `lassynth lint-cnf` and the `--audit-cnf` flag of the
//! `synth`/`depth` subcommands; `Encoding::lint` / `LayeredEncoding::lint`
//! in `synth::encode` are the library entry points.

use crate::{Cnf, Lit, Var};
use std::collections::HashMap;
use std::fmt;

/// A variable that occurs in no clause: the solver may assign it
/// anything, which is almost always an encoder simplification bug.
pub const LINT_UNCONSTRAINED_VAR: &str = "unconstrained-var";
/// Two clauses with identical literal sets (after sorting).
pub const LINT_DUPLICATE_CLAUSE: &str = "duplicate-clause";
/// A clause containing a literal and its negation — always true,
/// pure encoder noise.
pub const LINT_TAUTOLOGICAL_CLAUSE: &str = "tautological-clause";
/// Unit clauses `(l)` and `(¬l)` both present — the instance is
/// trivially UNSAT before any search.
pub const LINT_CONTRADICTORY_UNITS: &str = "contradictory-root-units";
/// A clause with no literals — trivially UNSAT.
pub const LINT_EMPTY_CLAUSE: &str = "empty-clause";
/// An activation literal of a layered encoding that gates no payload
/// clause: assuming it can never change the instance.
pub const LINT_UNGATED_ACTIVATION: &str = "ungated-activation";

/// How many offending examples each lint records.
const MAX_EXAMPLES: usize = 4;

/// One named lint with its hit count and a few rendered examples.
#[derive(Clone, Debug)]
pub struct CnfLint {
    /// The lint's stable name (one of the `LINT_*` constants).
    pub rule: &'static str,
    /// Number of offending sites.
    pub count: usize,
    /// Up to [`MAX_EXAMPLES`] rendered offenders (variables, clause
    /// indices, …).
    pub examples: Vec<String>,
}

impl fmt::Display for CnfLint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint {}: {}", self.rule, self.count)?;
        if !self.examples.is_empty() {
            let more = if self.count > self.examples.len() {
                ", …"
            } else {
                ""
            };
            write!(f, " ({}{})", self.examples.join(", "), more)?;
        }
        Ok(())
    }
}

/// The analyzer's verdict: size, connectivity, and the lints that fired.
#[derive(Clone, Debug)]
pub struct CnfReport {
    /// Variables in the formula.
    pub num_vars: usize,
    /// Clauses in the formula.
    pub num_clauses: usize,
    /// Variable-dependency connected components (variables co-occurring
    /// in a clause are connected; unconstrained variables are not
    /// counted). A synthesis instance should be dominated by one
    /// component — many small islands usually mean the functionality
    /// constraints never linked up with the structural ones.
    pub components: usize,
    /// Size (in variables) of the largest component.
    pub largest_component: usize,
    /// The lints that fired, in declaration order.
    pub lints: Vec<CnfLint>,
}

impl CnfReport {
    /// Whether no lint fired.
    pub fn is_clean(&self) -> bool {
        self.lints.is_empty()
    }

    /// The hit count of `rule` (0 when it did not fire).
    pub fn count(&self, rule: &str) -> usize {
        self.lints
            .iter()
            .find(|l| l.rule == rule)
            .map_or(0, |l| l.count)
    }

    /// Appends a lint if it has any hits (keeps reports example-bounded
    /// and free of zero-count noise).
    pub fn push(&mut self, lint: CnfLint) {
        if lint.count > 0 {
            self.lints.push(lint);
        }
    }
}

impl fmt::Display for CnfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cnf: {} vars, {} clauses, {} component{} (largest {})",
            self.num_vars,
            self.num_clauses,
            self.components,
            if self.components == 1 { "" } else { "s" },
            self.largest_component
        )?;
        if self.is_clean() {
            write!(f, "clean: no encoder lints fired")
        } else {
            let mut first = true;
            for l in &self.lints {
                if !first {
                    writeln!(f)?;
                }
                write!(f, "{l}")?;
                first = false;
            }
            Ok(())
        }
    }
}

/// Union-find over variable indices (path halving + union by size).
struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut v: u32) -> u32 {
        while self.parent[v as usize] != v {
            self.parent[v as usize] = self.parent[self.parent[v as usize] as usize];
            v = self.parent[v as usize];
        }
        v
    }

    fn union(&mut self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
    }
}

/// Analyzes a formula, returning every structural lint that fires.
pub fn analyze(cnf: &Cnf) -> CnfReport {
    let n = cnf.num_vars();
    let mut occurs = vec![false; n];
    let mut dsu = Dsu::new(n);
    let mut units: HashMap<usize, bool> = HashMap::new(); // var -> polarity seen
    let mut contradictory: Vec<String> = Vec::new();
    let mut contradictory_count = 0usize;
    let mut seen_clauses: HashMap<Vec<usize>, usize> = HashMap::new();
    let mut dups = CnfLint {
        rule: LINT_DUPLICATE_CLAUSE,
        count: 0,
        examples: Vec::new(),
    };
    let mut tauts = CnfLint {
        rule: LINT_TAUTOLOGICAL_CLAUSE,
        count: 0,
        examples: Vec::new(),
    };
    let mut empties = CnfLint {
        rule: LINT_EMPTY_CLAUSE,
        count: 0,
        examples: Vec::new(),
    };
    for (idx, clause) in cnf.iter().enumerate() {
        if clause.is_empty() {
            empties.count += 1;
            if empties.examples.len() < MAX_EXAMPLES {
                empties.examples.push(format!("clause #{idx}"));
            }
            continue;
        }
        let first = clause[0].var();
        for &l in clause {
            occurs[l.var().index()] = true;
            dsu.union(first.0, l.var().0);
        }
        let mut key: Vec<usize> = clause.iter().map(|l| l.code()).collect();
        key.sort_unstable();
        key.dedup();
        if key.windows(2).any(|w| w[1] == w[0] | 1 && w[0] & 1 == 0) {
            tauts.count += 1;
            if tauts.examples.len() < MAX_EXAMPLES {
                tauts.examples.push(format!("clause #{idx}"));
            }
            // A tautology carries no constraint; keep it out of the
            // duplicate and unit bookkeeping.
            continue;
        }
        if let [code] = key[..] {
            let l = Lit::from_code(code);
            let v = l.var().index();
            match units.insert(v, l.is_neg()) {
                Some(prev) if prev != l.is_neg() => {
                    contradictory_count += 1;
                    if contradictory.len() < MAX_EXAMPLES {
                        contradictory.push(format!("{}", l.var()));
                    }
                }
                _ => {}
            }
        }
        if let Some(&prev) = seen_clauses.get(&key) {
            dups.count += 1;
            if dups.examples.len() < MAX_EXAMPLES {
                dups.examples.push(format!("clause #{idx} = #{prev}"));
            }
        } else {
            seen_clauses.insert(key, idx);
        }
    }
    let mut unconstrained = CnfLint {
        rule: LINT_UNCONSTRAINED_VAR,
        count: 0,
        examples: Vec::new(),
    };
    for (v, &occ) in occurs.iter().enumerate() {
        if !occ {
            unconstrained.count += 1;
            if unconstrained.examples.len() < MAX_EXAMPLES {
                unconstrained.examples.push(format!("{}", Var(v as u32)));
            }
        }
    }
    let mut component_size: HashMap<u32, usize> = HashMap::new();
    for v in 0..n as u32 {
        if occurs[v as usize] {
            *component_size.entry(dsu.find(v)).or_insert(0) += 1;
        }
    }
    let mut report = CnfReport {
        num_vars: n,
        num_clauses: cnf.num_clauses(),
        components: component_size.len(),
        largest_component: component_size.values().copied().max().unwrap_or(0),
        lints: Vec::new(),
    };
    report.push(unconstrained);
    report.push(dups);
    report.push(tauts);
    report.push(CnfLint {
        rule: LINT_CONTRADICTORY_UNITS,
        count: contradictory_count,
        examples: contradictory,
    });
    report.push(empties);
    report
}

/// The layered-encoding check: an activation literal must gate at least
/// one *payload* clause — one mentioning a non-activation variable.
/// Clauses built purely from activation literals (the upward-closed
/// deactivation chain `(act[m] ∨ ¬act[m+1])`) only order the layers;
/// an activation variable appearing in nothing else can be assumed
/// either way without changing the instance, so the depth it is
/// supposed to select collapses onto its neighbour. Returns the
/// (possibly zero-count) lint for [`CnfReport::push`].
pub fn ungated_activation(cnf: &Cnf, activation: &[Lit]) -> CnfLint {
    let n = cnf.num_vars();
    let mut is_activation = vec![false; n];
    for a in activation {
        is_activation[a.var().index()] = true;
    }
    let mut gates = vec![false; n];
    for clause in cnf.iter() {
        if clause.iter().all(|l| is_activation[l.var().index()]) {
            continue; // pure chain clause: orders layers, gates nothing
        }
        for &l in clause {
            gates[l.var().index()] = true;
        }
    }
    let mut lint = CnfLint {
        rule: LINT_UNGATED_ACTIVATION,
        count: 0,
        examples: Vec::new(),
    };
    for (i, a) in activation.iter().enumerate() {
        if !gates[a.var().index()] {
            lint.count += 1;
            if lint.examples.len() < MAX_EXAMPLES {
                lint.examples.push(format!("layer {i} ({})", a.var()));
            }
        }
    }
    lint
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i64) -> Lit {
        Lit::from_dimacs(i)
    }

    fn cnf(clauses: &[&[i64]]) -> Cnf {
        let mut c = Cnf::new(0);
        for cl in clauses {
            c.add_clause(cl.iter().map(|&d| lit(d)));
        }
        c
    }

    #[test]
    fn clean_formula_reports_clean() {
        let r = analyze(&cnf(&[&[1, 2], &[-1, 3], &[-2, -3]]));
        assert!(r.is_clean(), "unexpected lints: {r}");
        assert_eq!(r.components, 1);
        assert_eq!(r.largest_component, 3);
    }

    #[test]
    fn unconstrained_variable_fires() {
        let mut c = cnf(&[&[1, 2]]);
        c.ensure_vars(5); // vars 2..=4 never occur
        let r = analyze(&c);
        assert_eq!(r.count(LINT_UNCONSTRAINED_VAR), 3);
    }

    #[test]
    fn duplicate_and_tautology_fire() {
        let r = analyze(&cnf(&[&[1, 2], &[2, 1], &[1, -1, 3]]));
        assert_eq!(r.count(LINT_DUPLICATE_CLAUSE), 1);
        assert_eq!(r.count(LINT_TAUTOLOGICAL_CLAUSE), 1);
    }

    #[test]
    fn contradictory_units_fire() {
        let r = analyze(&cnf(&[&[4], &[-4], &[1, 2]]));
        assert_eq!(r.count(LINT_CONTRADICTORY_UNITS), 1);
    }

    #[test]
    fn empty_clause_fires() {
        let mut c = cnf(&[&[1, 2]]);
        c.add_clause([]);
        assert_eq!(analyze(&c).count(LINT_EMPTY_CLAUSE), 1);
    }

    #[test]
    fn components_split() {
        let r = analyze(&cnf(&[&[1, 2], &[3, 4], &[-3, 4]]));
        assert_eq!(r.components, 2);
        assert_eq!(r.largest_component, 2);
    }

    #[test]
    fn ungated_activation_fires_only_for_chain_only_literals() {
        // act vars 5 and 6; var 6 gates a payload clause, var 5 only
        // appears in the chain clause (5 ∨ ¬6).
        let c = cnf(&[&[1, 2], &[5, -6], &[-6, 1]]);
        let lint = ungated_activation(&c, &[lit(5), lit(6)]);
        assert_eq!(lint.count, 1);
        assert!(lint.examples[0].contains("layer 0"));
    }

    #[test]
    fn report_renders_counts() {
        let r = analyze(&cnf(&[&[1, 2], &[2, 1]]));
        let text = format!("{r}");
        assert!(text.contains("duplicate-clause: 1"), "{text}");
    }
}
