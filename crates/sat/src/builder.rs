//! CNF construction with emission-time simplification.
//!
//! The paper routes its model through Z3's `simplify` and
//! `propagate-values` tactics before SAT solving; [`CnfBuilder`] plays
//! that role here. Ports and forbidden cubes fix a large fraction of
//! the structural variables, so clauses are simplified against a
//! root-level constant store as they are emitted, and Tseitin AND gates
//! are structurally hashed so repeated subterms share one definition.

use crate::{Cnf, Lit, Var};
use std::collections::HashMap;

/// A CNF builder with constant propagation and gate sharing.
///
/// Variable 0 is reserved as the constant `true` (asserted by a unit
/// clause), so constants are ordinary literals and every emission
/// helper accepts them transparently.
///
/// ```
/// use sat::CnfBuilder;
/// let mut b = CnfBuilder::new();
/// let x = b.new_lit();
/// let y = b.new_lit();
/// b.fix(x, true);
/// // Clause (¬x ∨ y) simplifies to the unit (y).
/// b.clause([!x, y]);
/// assert_eq!(b.value(y), Some(true));
/// ```
#[derive(Debug)]
pub struct CnfBuilder {
    cnf: Cnf,
    /// Root-level constants discovered so far (indexed by variable).
    fixed: Vec<Option<bool>>,
    /// Structural hash of AND gates: (a, b) → output literal.
    and_cache: HashMap<(Lit, Lit), Lit>,
    /// Clauses dropped or shrunk by constant propagation (statistics).
    simplified_away: usize,
}

impl Default for CnfBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CnfBuilder {
    /// Creates a builder with the constant-`true` variable asserted.
    pub fn new() -> CnfBuilder {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([Lit::pos(Var(0))]);
        CnfBuilder {
            cnf,
            fixed: vec![Some(true)],
            and_cache: HashMap::new(),
            simplified_away: 0,
        }
    }

    /// The constant `true` literal.
    pub fn true_lit(&self) -> Lit {
        Lit::pos(Var(0))
    }

    /// The constant `false` literal.
    pub fn false_lit(&self) -> Lit {
        Lit::neg(Var(0))
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.cnf.add_var();
        self.fixed.push(None);
        v
    }

    /// Allocates a fresh variable and returns its positive literal.
    pub fn new_lit(&mut self) -> Lit {
        Lit::pos(self.new_var())
    }

    /// Allocates `n` fresh positive literals.
    pub fn new_lits(&mut self, n: usize) -> Vec<Lit> {
        (0..n).map(|_| self.new_lit()).collect()
    }

    /// The value of `lit` if it is a root-level constant.
    pub fn value(&self, lit: Lit) -> Option<bool> {
        self.fixed[lit.var().index()].map(|v| v ^ lit.is_neg())
    }

    /// Fixes `lit` to `value` (emits a unit clause and records the
    /// constant for future simplification).
    ///
    /// # Panics
    ///
    /// Panics if the literal is already fixed to the opposite value —
    /// the encoder never does this; it indicates an inconsistent spec
    /// that should have been rejected earlier.
    pub fn fix(&mut self, lit: Lit, value: bool) {
        let var = lit.var();
        let v = value ^ lit.is_neg();
        match self.fixed[var.index()] {
            Some(existing) => assert_eq!(
                existing, v,
                "contradictory fix of {var} (the spec is inconsistent)"
            ),
            None => {
                self.fixed[var.index()] = Some(v);
                self.cnf.add_clause([Lit::new(var, !v)]);
            }
        }
    }

    /// Emits a clause, simplifying against known constants: true
    /// literals satisfy the clause (dropped), false literals are
    /// removed, duplicates are merged, tautologies are dropped.
    ///
    /// An empty simplified clause is recorded by fixing the constant
    /// `true` to false — i.e. it makes the formula trivially UNSAT via
    /// the clause `(¬true)`.
    pub fn clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        let mut out: Vec<Lit> = Vec::new();
        for lit in lits {
            match self.value(lit) {
                Some(true) => {
                    self.simplified_away += 1;
                    return;
                }
                Some(false) => continue,
                None => {
                    if out.contains(&!lit) {
                        self.simplified_away += 1;
                        return; // tautology
                    }
                    if !out.contains(&lit) {
                        out.push(lit);
                    }
                }
            }
        }
        match out.len() {
            0 => self.cnf.add_clause([self.false_lit()]),
            1 => self.fix(out[0], true),
            _ => self.cnf.add_clause(out),
        }
    }

    /// Emits `(g₁ ∧ g₂ ∧ …) ⇒ (l₁ ∨ l₂ ∨ …)`.
    pub fn implies_clause(&mut self, guards: &[Lit], conclusion: &[Lit]) {
        let lits: Vec<Lit> = guards
            .iter()
            .map(|&g| !g)
            .chain(conclusion.iter().copied())
            .collect();
        self.clause(lits);
    }

    /// Emits `guards ⇒ (a = b)`.
    pub fn equal_under(&mut self, guards: &[Lit], a: Lit, b: Lit) {
        self.implies_clause(guards, &[!a, b]);
        self.implies_clause(guards, &[a, !b]);
    }

    /// Emits `guards ⇒ (a ≠ b)`.
    pub fn not_equal_under(&mut self, guards: &[Lit], a: Lit, b: Lit) {
        self.implies_clause(guards, &[a, b]);
        self.implies_clause(guards, &[!a, !b]);
    }

    /// Returns a literal equivalent to `a ∧ b`, creating (or reusing) a
    /// Tseitin definition. Constants fold away without new variables.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        match (self.value(a), self.value(b)) {
            (Some(false), _) | (_, Some(false)) => return self.false_lit(),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if a == !b {
            return self.false_lit();
        }
        let key = if a.code() <= b.code() { (a, b) } else { (b, a) };
        if let Some(&t) = self.and_cache.get(&key) {
            return t;
        }
        let t = self.new_lit();
        // t ⇔ a ∧ b
        self.clause([!t, a]);
        self.clause([!t, b]);
        self.clause([t, !a, !b]);
        self.and_cache.insert(key, t);
        t
    }

    /// Returns a literal equivalent to the conjunction of `lits`.
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = self.true_lit();
        for &l in lits {
            acc = self.and(acc, l);
        }
        acc
    }

    /// Returns a literal equivalent to the disjunction of `lits`
    /// (via De Morgan on [`CnfBuilder::and_many`]).
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        let negs: Vec<Lit> = lits.iter().map(|&l| !l).collect();
        !self.and_many(&negs)
    }

    /// Emits `guards ⇒ (t₁ ⊕ t₂ ⊕ … = parity)` by direct expansion.
    ///
    /// Constant terms are folded into `parity`. Intended for the small
    /// parities of the functionality constraints (≤ 4 terms, paper
    /// Sec. III-D: "we are only dealing with three or four terms, so
    /// the translation is simple").
    ///
    /// # Panics
    ///
    /// Panics if more than 8 non-constant terms remain (2⁷ clauses) —
    /// the encoder never emits such parities.
    pub fn xor_under(&mut self, guards: &[Lit], terms: &[Lit], parity: bool) {
        let mut free: Vec<Lit> = Vec::new();
        let mut target = parity;
        for &t in terms {
            match self.value(t) {
                Some(v) => target ^= v,
                None => free.push(t),
            }
        }
        assert!(
            free.len() <= 8,
            "xor expansion too large ({} terms)",
            free.len()
        );
        if free.is_empty() {
            if target {
                // Constraint reduces to guards ⇒ false.
                self.implies_clause(guards, &[]);
            }
            return;
        }
        // Forbid every assignment of the free terms with the wrong parity.
        for mask in 0u32..(1 << free.len()) {
            let ones = mask.count_ones() & 1 == 1;
            if ones == target {
                continue; // this assignment has the correct parity
            }
            // The assignment sets term i true iff bit i of mask; forbid it.
            let clause: Vec<Lit> = free
                .iter()
                .enumerate()
                .map(|(i, &t)| if mask >> i & 1 == 1 { !t } else { t })
                .collect();
            self.implies_clause(guards, &clause);
        }
    }

    /// Emits `guards ⇒ all terms equal` (pairwise).
    ///
    /// This encodes the paper's "all or no orthogonal surfaces" rule
    /// (Fig. 11c): among the correlation pieces of *existing* pipes,
    /// either all are present or none is. Callers pass one term per
    /// existing pipe; pipes whose existence is itself a variable are
    /// handled by extending `guards` per pair.
    pub fn all_equal_under(&mut self, guards: &[Lit], terms: &[(Lit, Lit)]) {
        // terms: (exists, value). For each pair, under both exists: equal.
        for (i, &(ea, va)) in terms.iter().enumerate() {
            for &(eb, vb) in &terms[i + 1..] {
                let mut g: Vec<Lit> = guards.to_vec();
                g.push(ea);
                g.push(eb);
                self.equal_under(&g, va, vb);
            }
        }
    }

    /// Number of clauses dropped by constant propagation so far.
    pub fn simplified_away(&self) -> usize {
        self.simplified_away
    }

    /// The formula built so far.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// Consumes the builder, returning the formula.
    pub fn into_cnf(self) -> Cnf {
        self.cnf
    }

    /// Number of variables allocated (including the constant).
    pub fn num_vars(&self) -> usize {
        self.cnf.num_vars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, Budget, CdclSolver, SolveOutcome};

    fn solve(b: &CnfBuilder) -> SolveOutcome {
        CdclSolver::default().solve_with(b.cnf(), &[], &Budget::default())
    }

    #[test]
    fn constant_true_is_fixed() {
        let b = CnfBuilder::new();
        assert_eq!(b.value(b.true_lit()), Some(true));
        assert_eq!(b.value(b.false_lit()), Some(false));
    }

    #[test]
    fn unit_clause_fixes() {
        let mut b = CnfBuilder::new();
        let x = b.new_lit();
        b.clause([!x]);
        assert_eq!(b.value(x), Some(false));
    }

    #[test]
    fn satisfied_clause_dropped() {
        let mut b = CnfBuilder::new();
        let x = b.new_lit();
        let before = b.cnf().num_clauses();
        b.clause([b.true_lit(), x]);
        assert_eq!(b.cnf().num_clauses(), before);
        assert_eq!(b.simplified_away(), 1);
    }

    #[test]
    fn tautology_dropped() {
        let mut b = CnfBuilder::new();
        let x = b.new_lit();
        let y = b.new_lit();
        let before = b.cnf().num_clauses();
        b.clause([x, y, !x]);
        assert_eq!(b.cnf().num_clauses(), before);
    }

    #[test]
    fn empty_clause_makes_unsat() {
        let mut b = CnfBuilder::new();
        let x = b.new_lit();
        b.fix(x, false);
        b.clause([x]);
        assert!(solve(&b).is_unsat());
    }

    #[test]
    #[should_panic(expected = "contradictory")]
    fn contradictory_fix_panics() {
        let mut b = CnfBuilder::new();
        let x = b.new_lit();
        b.fix(x, true);
        b.fix(x, false);
    }

    #[test]
    fn and_gate_semantics() {
        let mut b = CnfBuilder::new();
        let x = b.new_lit();
        let y = b.new_lit();
        let t = b.and(x, y);
        b.fix(t, true);
        let model = solve(&b).expect_sat();
        assert!(model.lit_true(x) && model.lit_true(y));
    }

    #[test]
    fn and_gate_shared() {
        let mut b = CnfBuilder::new();
        let x = b.new_lit();
        let y = b.new_lit();
        let t1 = b.and(x, y);
        let t2 = b.and(y, x);
        assert_eq!(t1, t2);
    }

    #[test]
    fn and_constant_folding() {
        let mut b = CnfBuilder::new();
        let x = b.new_lit();
        let t = b.and(b.true_lit(), x);
        assert_eq!(t, x);
        let f = b.and(x, b.false_lit());
        assert_eq!(b.value(f), Some(false));
        assert_eq!(b.and(x, !x), b.false_lit());
        assert_eq!(b.and(x, x), x);
    }

    #[test]
    fn or_many_semantics() {
        let mut b = CnfBuilder::new();
        let xs = b.new_lits(3);
        let o = b.or_many(&xs);
        b.fix(o, true);
        for &x in &xs[..2] {
            b.fix(x, false);
        }
        let model = solve(&b).expect_sat();
        assert!(model.lit_true(xs[2]));
    }

    #[test]
    fn xor_constraint_even() {
        let mut b = CnfBuilder::new();
        let xs = b.new_lits(3);
        b.xor_under(&[], &xs, false);
        b.fix(xs[0], true);
        b.fix(xs[1], false);
        let model = solve(&b).expect_sat();
        assert!(model.lit_true(xs[2])); // parity must be even
    }

    #[test]
    fn xor_constraint_with_constants() {
        let mut b = CnfBuilder::new();
        let x = b.new_lit();
        let t = b.true_lit();
        b.xor_under(&[], &[x, t], true); // x ⊕ 1 = 1 → x = 0
        assert_eq!(b.value(x), Some(false));
    }

    #[test]
    fn xor_guarded_is_vacuous_when_guard_false() {
        let mut b = CnfBuilder::new();
        let g = b.new_lit();
        let xs = b.new_lits(2);
        b.xor_under(&[g], &xs, true);
        b.fix(g, false);
        b.fix(xs[0], false);
        b.fix(xs[1], false);
        assert!(solve(&b).is_sat());
    }

    #[test]
    fn all_equal_under_links_terms() {
        let mut b = CnfBuilder::new();
        let e = b.true_lit();
        let vs = b.new_lits(3);
        let terms: Vec<(Lit, Lit)> = vs.iter().map(|&v| (e, v)).collect();
        b.all_equal_under(&[], &terms);
        b.fix(vs[0], true);
        let model = solve(&b).expect_sat();
        assert!(model.lit_true(vs[1]) && model.lit_true(vs[2]));
    }

    #[test]
    fn equal_and_not_equal() {
        let mut b = CnfBuilder::new();
        let x = b.new_lit();
        let y = b.new_lit();
        let z = b.new_lit();
        b.equal_under(&[], x, y);
        b.not_equal_under(&[], y, z);
        b.fix(x, true);
        let model = solve(&b).expect_sat();
        assert!(model.lit_true(y));
        assert!(!model.lit_true(z));
    }
}
