//! CNF formulas.

use crate::{Lit, Var};

/// A formula in conjunctive normal form.
///
/// Clauses are stored verbatim (the [`crate::CnfBuilder`] performs
/// simplification at emission time; the solver performs its own
/// root-level propagation).
///
/// ```
/// use sat::{Cnf, Lit, Var};
/// let mut cnf = Cnf::new(2);
/// cnf.add_clause([Lit::pos(Var(0)), Lit::neg(Var(1))]);
/// assert_eq!(cnf.num_clauses(), 1);
/// assert_eq!(cnf.num_vars(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula over `num_vars` variables.
    pub fn new(num_vars: usize) -> Cnf {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total number of literal occurrences.
    pub fn num_lits(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }

    /// Allocates a fresh variable.
    pub fn add_var(&mut self) -> Var {
        let v = Var(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn ensure_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Adds a clause. Variables are grown on demand.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            self.ensure_vars(l.var().index() + 1);
        }
        self.clauses.push(clause);
    }

    /// Iterates over clauses.
    pub fn iter(&self) -> std::slice::Iter<'_, Vec<Lit>> {
        self.clauses.iter()
    }

    /// The clause list.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Evaluates the formula under a complete assignment.
    ///
    /// Used by tests and by debug assertions to check models.
    pub fn eval(&self, model: &crate::Model) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|&l| model.lit_true(l)))
    }
}

impl<'a> IntoIterator for &'a Cnf {
    type Item = &'a Vec<Lit>;
    type IntoIter = std::slice::Iter<'a, Vec<Lit>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;

    #[test]
    fn grows_vars_on_demand() {
        let mut cnf = Cnf::new(0);
        cnf.add_clause([Lit::pos(Var(4))]);
        assert_eq!(cnf.num_vars(), 5);
    }

    #[test]
    fn eval_checks_all_clauses() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([Lit::pos(Var(0))]);
        cnf.add_clause([Lit::neg(Var(1))]);
        assert!(cnf.eval(&Model::new(vec![true, false])));
        assert!(!cnf.eval(&Model::new(vec![true, true])));
    }

    #[test]
    fn counts() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([Lit::pos(Var(0)), Lit::pos(Var(1))]);
        cnf.add_clause([Lit::neg(Var(2))]);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.num_lits(), 3);
    }
}
