//! DIMACS CNF reading and writing.
//!
//! The paper stores simplified instances as `*.dimacs` so any SAT
//! solver can be swapped in; this module provides the same interchange
//! point.

use crate::{Cnf, Lit};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Error produced when parsing malformed DIMACS input.
#[derive(Debug)]
pub enum DimacsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Syntax problem, with a human-readable description.
    Syntax(String),
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimacsError::Io(e) => write!(f, "dimacs io error: {e}"),
            DimacsError::Syntax(s) => write!(f, "dimacs syntax error: {s}"),
        }
    }
}

impl std::error::Error for DimacsError {}

impl From<io::Error> for DimacsError {
    fn from(e: io::Error) -> Self {
        DimacsError::Io(e)
    }
}

/// Writes `cnf` in DIMACS format.
///
/// # Errors
///
/// Returns any I/O error from `out`.
pub fn write<W: Write>(cnf: &Cnf, out: &mut W) -> io::Result<()> {
    writeln!(out, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses())?;
    for clause in cnf {
        for lit in clause {
            write!(out, "{} ", lit.to_dimacs())?;
        }
        writeln!(out, "0")?;
    }
    Ok(())
}

/// Renders `cnf` as a DIMACS string.
pub fn to_string(cnf: &Cnf) -> String {
    let mut buf = Vec::new();
    write(cnf, &mut buf).expect("writing to Vec cannot fail"); // lint:allow(no-panic)
    String::from_utf8(buf).expect("dimacs output is ascii") // lint:allow(no-panic)
}

/// Parses a DIMACS CNF.
///
/// Comment lines (`c ...`) and the problem line are accepted; literals
/// may span lines; each clause ends with `0`.
///
/// # Errors
///
/// Returns [`DimacsError`] on I/O failure or malformed input.
pub fn parse<R: BufRead>(input: R) -> Result<Cnf, DimacsError> {
    let mut cnf = Cnf::new(0);
    let mut declared_vars = 0usize;
    let mut seen_header = false;
    let mut current: Vec<Lit> = Vec::new();
    for line in input.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if seen_header {
                return Err(DimacsError::Syntax("duplicate problem line".into()));
            }
            seen_header = true;
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") {
                return Err(DimacsError::Syntax("expected 'p cnf'".into()));
            }
            declared_vars = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| DimacsError::Syntax("bad variable count".into()))?;
            // The clause count is not used for parsing (clauses are
            // `0`-terminated) but a malformed one means the header was
            // not written by a DIMACS emitter — reject it.
            let _: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| DimacsError::Syntax("bad clause count".into()))?;
            if let Some(extra) = parts.next() {
                return Err(DimacsError::Syntax(format!(
                    "trailing token {extra:?} after problem line"
                )));
            }
            continue;
        }
        for tok in line.split_whitespace() {
            let d: i64 = tok
                .parse()
                .map_err(|_| DimacsError::Syntax(format!("bad literal {tok:?}")))?;
            if d == 0 {
                cnf.add_clause(current.drain(..));
            } else {
                current.push(Lit::from_dimacs(d));
            }
        }
    }
    if !current.is_empty() {
        return Err(DimacsError::Syntax("unterminated clause".into()));
    }
    cnf.ensure_vars(declared_vars);
    Ok(cnf)
}

/// Parses a DIMACS CNF from a string.
///
/// # Errors
///
/// Returns [`DimacsError`] on malformed input.
pub fn parse_str(s: &str) -> Result<Cnf, DimacsError> {
    parse(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    #[test]
    fn roundtrip() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([Lit::pos(Var(0)), Lit::neg(Var(2))]);
        cnf.add_clause([Lit::neg(Var(1))]);
        let text = to_string(&cnf);
        let back = parse_str(&text).unwrap();
        assert_eq!(back, cnf);
    }

    #[test]
    fn parses_comments_and_multiline_clauses() {
        let text = "c hello\np cnf 3 2\n1 -3\n0\n-2 0\n";
        let cnf = parse_str(text).unwrap();
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clauses()[0], vec![Lit::pos(Var(0)), Lit::neg(Var(2))]);
    }

    #[test]
    fn rejects_unterminated() {
        assert!(parse_str("p cnf 1 1\n1").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_str("p cnf 1 1\nxyz 0").is_err());
        assert!(parse_str("p dnf 1 1\n").is_err());
    }

    #[test]
    fn rejects_malformed_headers() {
        assert!(parse_str("p cnf x 1\n1 0\n").is_err(), "bad variable count");
        assert!(parse_str("p cnf 1\n1 0\n").is_err(), "missing clause count");
        assert!(parse_str("p cnf 1 y\n1 0\n").is_err(), "bad clause count");
        assert!(
            parse_str("p cnf 1 1 extra\n1 0\n").is_err(),
            "trailing token"
        );
        assert!(
            parse_str("p cnf 1 1\n1 0\np cnf 1 1\n").is_err(),
            "duplicate problem line"
        );
    }

    #[test]
    fn declared_vars_respected() {
        let cnf = parse_str("p cnf 10 1\n1 0\n").unwrap();
        assert_eq!(cnf.num_vars(), 10);
    }
}
