//! Deterministic bounded clause exchange between portfolio workers.
//!
//! The paper's seed portfolio (Sec. V-E, "random seed: more is
//! different") runs identical searches that never talk to each other.
//! This module is the HordeSat-style upgrade: each worker exports its
//! good learnt clauses (low LBD, short) into the other workers'
//! bounded inboxes and imports whatever arrived, so one worker's
//! refutation work prunes everyone else's search.
//!
//! Determinism is the design constraint (the target box has a single
//! vCPU, so parallelism buys nothing by itself — reproducibility
//! does). Three properties make a sharing run replayable:
//!
//! * **seed-ordered fan-out** — [`ClauseExchange::publish`] writes to
//!   the per-worker inboxes in ascending worker index, and a full inbox
//!   drops the clause for exactly that worker (bounded memory, no
//!   blocking, deterministic victim);
//! * **deterministic import points** — the solver drains its inbox only
//!   at restart boundaries and at `solve_assuming` entry, never
//!   mid-search (see `import_shared_clauses` in the solver);
//! * **lockstep scheduling** — the portfolio driver in
//!   `synth::optimize` runs the workers round-robin under fixed
//!   conflict quanta on one thread, so inbox contents at every drain
//!   are a pure function of the seeds.
//!
//! Every imported clause is re-verified by the importer with a
//! reverse-unit-propagation (RUP) test before it is attached, and
//! logged as a derived step, so `--certify` keeps working on
//! import-enabled sessions.
//!
//! That RUP re-check doubles as the exchange's *fault barrier*: a
//! worker publishing a corrupted clause — a flipped literal from a
//! buggy learner or a torn write, exercised deterministically by the
//! `corrupt-clause` injection of [`crate::FaultPlan`] — cannot poison
//! its peers. Whatever arrives is either RUP-derivable from the
//! importer's own database (hence a sound consequence no matter what
//! the exporter intended) or silently skipped; nothing unverified is
//! ever attached or logged.

use crate::types::Lit;
use crossbeam::queue::ArrayQueue;
use std::sync::atomic::{AtomicU64, Ordering};

/// Admission limits for exporting a learnt clause to the exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShareLimits {
    /// Export only clauses with LBD at or below this (units always
    /// qualify — they are root facts).
    pub max_lbd: u32,
    /// Export only clauses at or below this many literals.
    pub max_len: usize,
}

impl Default for ShareLimits {
    fn default() -> ShareLimits {
        // HordeSat exports aggressively and filters at the receiver;
        // we filter at both ends. LBD ≤ 6 matches the solver's tier2
        // admission bound, so everything exported would be considered
        // worth keeping by the exporter itself.
        ShareLimits {
            max_lbd: 6,
            max_len: 30,
        }
    }
}

/// One clause in flight between workers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedClause {
    /// Index of the exporting worker.
    pub source: usize,
    /// The clause literals (slot order as learnt; importers
    /// re-simplify against their own root state).
    pub lits: Vec<Lit>,
    /// The exporter's LBD for the clause (import keeps
    /// `min(lbd, len)`).
    pub lbd: u32,
}

/// The exchange hub: one bounded FIFO inbox per worker.
///
/// Shared via `Arc` between the portfolio driver and every connected
/// solver. All methods take `&self`; the counters are atomics and the
/// inboxes are [`ArrayQueue`]s, so the hub is `Sync` without any
/// locking visible to callers.
#[derive(Debug)]
pub struct ClauseExchange {
    inboxes: Vec<ArrayQueue<SharedClause>>,
    published: AtomicU64,
    dropped: AtomicU64,
}

impl ClauseExchange {
    /// A hub for `workers` participants whose inboxes hold at most
    /// `capacity` clauses each.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `capacity` is zero.
    pub fn new(workers: usize, capacity: usize) -> ClauseExchange {
        assert!(workers > 0, "exchange needs at least one worker");
        ClauseExchange {
            inboxes: (0..workers).map(|_| ArrayQueue::new(capacity)).collect(),
            published: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of participating workers.
    pub fn num_workers(&self) -> usize {
        self.inboxes.len()
    }

    /// Fans a clause out to every worker except `source`, in ascending
    /// worker order. A full inbox drops the clause for that worker
    /// only. Returns how many inboxes accepted it.
    pub fn publish(&self, source: usize, lits: &[Lit], lbd: u32) -> usize {
        let mut accepted = 0;
        for (worker, inbox) in self.inboxes.iter().enumerate() {
            if worker == source {
                continue;
            }
            let clause = SharedClause {
                source,
                lits: lits.to_vec(),
                lbd,
            };
            match inbox.push(clause) {
                Ok(()) => accepted += 1,
                Err(_) => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.published.fetch_add(1, Ordering::Relaxed);
        accepted
    }

    /// Empties `worker`'s inbox, returning the clauses in arrival
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn drain(&self, worker: usize) -> Vec<SharedClause> {
        let inbox = &self.inboxes[worker];
        let mut batch = Vec::with_capacity(inbox.len());
        while let Some(clause) = inbox.pop() {
            batch.push(clause);
        }
        batch
    }

    /// Clauses published so far (each counted once, not per fan-out).
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Fan-out copies dropped because the receiving inbox was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(ds: &[i64]) -> Vec<Lit> {
        ds.iter().map(|&d| Lit::from_dimacs(d)).collect()
    }

    #[test]
    fn publish_fans_out_to_all_but_source() {
        let hub = ClauseExchange::new(3, 8);
        assert_eq!(hub.publish(1, &lits(&[1, -2]), 2), 2);
        assert_eq!(hub.drain(1), vec![]);
        let got0 = hub.drain(0);
        let got2 = hub.drain(2);
        assert_eq!(got0, got2);
        assert_eq!(got0.len(), 1);
        assert_eq!(got0[0].source, 1);
        assert_eq!(got0[0].lits, lits(&[1, -2]));
        assert_eq!(got0[0].lbd, 2);
        assert_eq!(hub.published(), 1);
        assert_eq!(hub.dropped(), 0);
    }

    #[test]
    fn drain_preserves_arrival_order() {
        let hub = ClauseExchange::new(2, 8);
        hub.publish(0, &lits(&[1]), 1);
        hub.publish(0, &lits(&[2]), 1);
        hub.publish(0, &lits(&[3]), 1);
        let got: Vec<Vec<Lit>> = hub.drain(1).into_iter().map(|c| c.lits).collect();
        assert_eq!(got, vec![lits(&[1]), lits(&[2]), lits(&[3])]);
        assert!(hub.drain(1).is_empty());
    }

    #[test]
    fn full_inbox_drops_deterministically() {
        let hub = ClauseExchange::new(2, 2);
        assert_eq!(hub.publish(0, &lits(&[1]), 1), 1);
        assert_eq!(hub.publish(0, &lits(&[2]), 1), 1);
        // Inbox 1 is full: the third publish is dropped for worker 1.
        assert_eq!(hub.publish(0, &lits(&[3]), 1), 0);
        assert_eq!(hub.dropped(), 1);
        let kept: Vec<Vec<Lit>> = hub.drain(1).into_iter().map(|c| c.lits).collect();
        assert_eq!(kept, vec![lits(&[1]), lits(&[2])]);
    }

    #[test]
    fn default_limits_match_tier2_bound() {
        let limits = ShareLimits::default();
        assert_eq!(limits.max_lbd, 6);
        assert!(limits.max_len >= 2);
    }

    #[test]
    fn share_limits_are_value_types() {
        let a = ShareLimits {
            max_lbd: 3,
            max_len: 10,
        };
        assert_eq!(a, a);
        assert_ne!(a, ShareLimits::default());
    }
}
