//! SAT solving substrate: CNF construction, simplification, CDCL.
//!
//! The paper's toolchain is `Z3 (encode + simplify) → DIMACS → Kissat`.
//! This crate replaces all three stages with from-scratch Rust:
//!
//! * [`CnfBuilder`] — clause emission with root-level constant
//!   propagation and structural hashing of Tseitin gates (the role of
//!   Z3's `simplify`/`propagate-values` tactics),
//! * [`Cnf`] and [`dimacs`] — the standard interchange format,
//! * [`CdclSolver`] — a conflict-driven clause-learning solver over a
//!   flat clause arena (contiguous `u32` buffer with packed headers and
//!   a compacting garbage collector), with blocker-aware two-watched
//!   literals, an allocation-free 1UIP analysis with recursive
//!   minimization, VSIDS, phase saving, Luby restarts, LBD-based
//!   clause-database reduction, seeded randomization and time/conflict
//!   budgets (see the [`solver`-module docs](CdclSolver) for the arena
//!   layout and GC protocol),
//! * [`VarisatBackend`] — an adapter to the `varisat` crate used for
//!   cross-checking and portfolio runs.
//!
//! # Examples
//!
//! ```
//! use sat::{Cnf, Lit, CdclSolver, Backend, Budget, SolveOutcome};
//!
//! let mut cnf = Cnf::new(2);
//! let a = Lit::pos(sat::Var(0));
//! let b = Lit::pos(sat::Var(1));
//! cnf.add_clause([a, b]);
//! cnf.add_clause([!a, b]);
//! match CdclSolver::default().solve_with(&cnf, &[], &Budget::default()) {
//!     SolveOutcome::Sat(model) => assert!(model.value(sat::Var(1))),
//!     _ => unreachable!(),
//! }
//! ```

#![forbid(unsafe_code)]

pub mod analyze;
mod builder;
mod cnf;
pub mod dimacs;
pub mod exchange;
pub mod proof;
mod solver;
mod types;
#[cfg(feature = "varisat")]
mod varisat_backend;

pub use analyze::{CnfLint, CnfReport};
pub use builder::CnfBuilder;
pub use cnf::Cnf;
pub use exchange::{ClauseExchange, ShareLimits, SharedClause};
pub use proof::{certify_unsat, CheckReport, ProofLog};
pub use solver::{CdclConfig, CdclSolver, FaultKind, FaultPlan, RestartPolicy, SolverStats};
pub use types::{Backend, Budget, ExhaustionReason, Lit, Model, SolveOutcome, Var};
#[cfg(feature = "varisat")]
pub use varisat_backend::VarisatBackend;
