//! DRAT proof logging and forward checking.
//!
//! The solver (when proof logging is enabled) records every clause it
//! ever holds as one of three step kinds:
//!
//! * [`StepKind::AddInput`] — a clause the caller asserted
//!   (`add_clause`/`load_cnf`). Inputs are axioms: the checker admits
//!   them without justification.
//! * [`StepKind::AddDerived`] — a clause the solver claims follows
//!   from the clauses currently live: 1UIP learnts, root units from
//!   failed-literal probing, strengthened/vivified replacements, BVE
//!   resolvents, eliminated-clause restorations, and the terminal
//!   empty clause (root UNSAT) or negated-assumption core
//!   (UNSAT under assumptions). The checker verifies each one by
//!   RUP — assume the negation, unit-propagate, demand a conflict —
//!   falling back to RAT on the first literal (the `drat-trim`
//!   convention), which is what justifies re-adding clauses whose
//!   pivot variable was eliminated by BVE.
//! * [`StepKind::Delete`] — a clause removed from the live set
//!   (`reduce_db`, subsumption, strengthening/vivification originals,
//!   BVE occurrence deletion). Deletions matter for soundness of the
//!   RAT checks, so the in-tree checker applies them strictly: a
//!   deletion that names a clause not currently live is rejected.
//!
//! The in-memory log is self-contained (inputs interleaved with
//! derivations, so an incremental session's growing formula is
//! captured exactly). For interop with external `drat-trim`, the
//! derivation/deletion steps alone serialize to standard text or
//! binary DRAT ([`ProofLog::write_drat`]) to be checked against a
//! DIMACS file holding the inputs.

use crate::{Cnf, Lit};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Write};

/// The role of one proof step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepKind {
    /// Caller-asserted clause; admitted without checking.
    AddInput,
    /// Solver-derived clause; must pass RUP or first-literal RAT.
    AddDerived,
    /// Removal of a live clause.
    Delete,
}

/// An append-only clause-level proof trace.
///
/// Stored flat (one literal pool plus per-step bounds) so logging a
/// step is two `Vec` appends and no per-step allocation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProofLog {
    kinds: Vec<StepKind>,
    /// `ends[i]` = one past the last literal of step `i` in `lits`.
    ends: Vec<u32>,
    lits: Vec<Lit>,
    /// A frozen log silently drops every later step — the
    /// truncated-proof fault (a crashed writer, a full disk). The
    /// checker must then reject the log for lacking a refutation;
    /// nothing downstream may trust a frozen log.
    frozen: bool,
}

impl ProofLog {
    /// An empty proof.
    pub fn new() -> ProofLog {
        ProofLog::default()
    }

    fn push(&mut self, kind: StepKind, lits: &[Lit]) {
        if self.frozen {
            return;
        }
        self.lits.extend_from_slice(lits);
        self.ends.push(self.lits.len() as u32);
        self.kinds.push(kind);
    }

    /// Freezes the log: every later `add_input`/`add_derived`/`delete`
    /// is dropped, simulating a truncated proof. Irreversible.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Whether the log was frozen (truncated) mid-run.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Records a caller-asserted clause.
    pub fn add_input(&mut self, lits: &[Lit]) {
        self.push(StepKind::AddInput, lits);
    }

    /// Records a solver-derived clause (RUP/RAT obligation).
    pub fn add_derived(&mut self, lits: &[Lit]) {
        self.push(StepKind::AddDerived, lits);
    }

    /// Records the removal of a live clause.
    pub fn delete(&mut self, lits: &[Lit]) {
        self.push(StepKind::Delete, lits);
    }

    /// Number of steps recorded.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the proof is empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The `i`-th step.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn step(&self, i: usize) -> (StepKind, &[Lit]) {
        let lo = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        let hi = self.ends[i] as usize;
        (self.kinds[i], &self.lits[lo..hi])
    }

    /// Iterates over `(kind, clause)` steps in order.
    pub fn iter(&self) -> impl Iterator<Item = (StepKind, &[Lit])> + '_ {
        (0..self.len()).map(move |i| self.step(i))
    }

    /// The most recent `AddDerived` clause, if any.
    pub fn last_derived(&self) -> Option<&[Lit]> {
        (0..self.len())
            .rev()
            .map(|i| self.step(i))
            .find(|(k, _)| *k == StepKind::AddDerived)
            .map(|(_, c)| c)
    }

    /// The multiset of clauses currently live in the proof, keyed by
    /// sorted literal list, with a (possibly zero or negative, if the
    /// log is inconsistent) occurrence count. Used by the audit layer
    /// to cross-check the solver's live arena against the log.
    pub fn live_multiset(&self) -> HashMap<Vec<Lit>, i64> {
        let mut live: HashMap<Vec<Lit>, i64> = HashMap::new();
        for (kind, lits) in self.iter() {
            let mut key = lits.to_vec();
            key.sort_unstable();
            let delta = match kind {
                StepKind::AddInput | StepKind::AddDerived => 1,
                StepKind::Delete => -1,
            };
            *live.entry(key).or_insert(0) += delta;
        }
        live
    }

    /// Builds a self-contained log from a CNF (the inputs) followed by
    /// a DRAT proof in text or binary format (auto-detected).
    pub fn from_cnf_and_drat(cnf: &Cnf, drat: &[u8]) -> Result<ProofLog, ParseError> {
        let mut log = ProofLog::new();
        for clause in cnf.iter() {
            log.add_input(clause);
        }
        parse_drat(drat, &mut log)?;
        Ok(log)
    }

    /// Serializes the derivation and deletion steps (inputs belong to
    /// the DIMACS file, not the proof) as DRAT, binary or text.
    pub fn write_drat<W: Write>(&self, out: &mut W, binary: bool) -> io::Result<()> {
        for (kind, lits) in self.iter() {
            match kind {
                StepKind::AddInput => continue,
                StepKind::AddDerived => {
                    if binary {
                        out.write_all(b"a")?;
                    }
                }
                StepKind::Delete => {
                    if binary {
                        out.write_all(b"d")?;
                    } else {
                        out.write_all(b"d ")?;
                    }
                }
            }
            if binary {
                for &l in lits {
                    write_vbyte(out, binary_code(l))?;
                }
                out.write_all(&[0])?;
            } else {
                let mut line = String::new();
                for &l in lits {
                    line.push_str(&l.to_dimacs().to_string());
                    line.push(' ');
                }
                line.push_str("0\n");
                out.write_all(line.as_bytes())?;
            }
        }
        Ok(())
    }
}

/// Binary-DRAT literal code: `2|l|` for positive, `2|l|+1` for
/// negative, on the DIMACS numbering.
fn binary_code(l: Lit) -> u64 {
    let d = l.to_dimacs();
    (d.unsigned_abs() << 1) | u64::from(d < 0)
}

fn write_vbyte<W: Write>(out: &mut W, mut x: u64) -> io::Result<()> {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.write_all(&[byte])?;
            return Ok(());
        }
        out.write_all(&[byte | 0x80])?;
    }
}

/// A malformed DRAT file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed DRAT proof: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parses a DRAT proof (text or binary, auto-detected) into `log`.
fn parse_drat(bytes: &[u8], log: &mut ProofLog) -> Result<(), ParseError> {
    // Text DRAT only ever contains digits, signs, whitespace, and the
    // 'd'/'c' markers; binary DRAT always contains a 0x00 terminator.
    let is_text = bytes
        .iter()
        .all(|&b| b.is_ascii_digit() || b" \t\r\n-dc".contains(&b));
    if is_text {
        parse_drat_text(bytes, log)
    } else {
        parse_drat_binary(bytes, log)
    }
}

fn parse_drat_text(bytes: &[u8], log: &mut ProofLog) -> Result<(), ParseError> {
    let text = std::str::from_utf8(bytes).map_err(|e| ParseError(e.to_string()))?;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let (delete, rest) = match line.strip_prefix('d') {
            Some(rest) => (true, rest),
            None => (false, line),
        };
        let mut lits = Vec::new();
        let mut terminated = false;
        for tok in rest.split_whitespace() {
            let d: i64 = tok
                .parse()
                .map_err(|_| ParseError(format!("line {}: bad literal {tok:?}", lineno + 1)))?;
            if d == 0 {
                terminated = true;
                break;
            }
            lits.push(Lit::from_dimacs(d));
        }
        if !terminated {
            return Err(ParseError(format!(
                "line {}: missing 0 terminator",
                lineno + 1
            )));
        }
        if delete {
            log.delete(&lits);
        } else {
            log.add_derived(&lits);
        }
    }
    Ok(())
}

fn parse_drat_binary(bytes: &[u8], log: &mut ProofLog) -> Result<(), ParseError> {
    let mut pos = 0usize;
    while pos < bytes.len() {
        let marker = bytes[pos];
        pos += 1;
        let delete = match marker {
            b'a' => false,
            b'd' => true,
            _ => {
                return Err(ParseError(format!(
                    "byte {}: expected 'a' or 'd' marker, got 0x{marker:02x}",
                    pos - 1
                )))
            }
        };
        let mut lits = Vec::new();
        loop {
            let (code, next) = read_vbyte(bytes, pos)?;
            pos = next;
            if code == 0 {
                break;
            }
            let var = code >> 1;
            if var == 0 || var > i64::MAX as u64 {
                return Err(ParseError(format!("byte {pos}: bad literal code {code}")));
            }
            let d = if code & 1 == 1 {
                -(var as i64)
            } else {
                var as i64
            };
            lits.push(Lit::from_dimacs(d));
        }
        if delete {
            log.delete(&lits);
        } else {
            log.add_derived(&lits);
        }
    }
    Ok(())
}

fn read_vbyte(bytes: &[u8], mut pos: usize) -> Result<(u64, usize), ParseError> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&b) = bytes.get(pos) else {
            return Err(ParseError("truncated variable-byte literal".into()));
        };
        pos += 1;
        if shift >= 63 {
            return Err(ParseError("variable-byte literal overflows u64".into()));
        }
        x |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok((x, pos));
        }
        shift += 7;
    }
}

/// A proof step the checker rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckError {
    /// Index of the offending step, when attributable to one.
    pub step: Option<usize>,
    /// Human-readable rejection reason.
    pub reason: String,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.step {
            Some(i) => write!(f, "proof rejected at step {i}: {}", self.reason),
            None => write!(f, "proof rejected: {}", self.reason),
        }
    }
}

impl std::error::Error for CheckError {}

/// Summary of a successful forward check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Total steps processed.
    pub steps: usize,
    /// Derived steps whose RUP/RAT obligation was actually checked
    /// (checking stops early once the formula is refuted).
    pub derived_checked: usize,
    /// Whether an explicit empty clause was derived.
    pub derived_empty: bool,
    /// Whether unit propagation over the live clauses refuted the
    /// formula outright (every later derivation is then vacuous).
    pub root_conflict: bool,
}

impl CheckReport {
    /// Whether the checked proof establishes unsatisfiability of the
    /// accumulated input set (no assumptions involved).
    pub fn refuted(&self) -> bool {
        self.derived_empty || self.root_conflict
    }
}

/// Forward-checks a self-contained proof: inputs are admitted,
/// derived clauses must pass RUP or first-literal RAT against the
/// live clause set, deletions must name a live clause.
pub fn check(log: &ProofLog) -> Result<CheckReport, CheckError> {
    Checker::new().run(log)
}

/// Certifies one UNSAT answer: forward-checks the whole log, then
/// confirms the log actually ends in the claimed refutation —
/// the empty clause for a root-level UNSAT (`failed_assumptions`
/// empty), or a final derived clause equal to the negation of the
/// failing assumption set for UNSAT under assumptions.
pub fn certify_unsat(
    log: &ProofLog,
    failed_assumptions: &[Lit],
) -> Result<CheckReport, CheckError> {
    if log.is_frozen() {
        return Err(CheckError {
            step: None,
            reason: "proof log was truncated mid-run (frozen); later steps are missing".into(),
        });
    }
    let report = check(log)?;
    let last = log.last_derived();
    if failed_assumptions.is_empty() {
        if !report.refuted() {
            return Err(CheckError {
                step: None,
                reason: "proof checks but never derives the empty clause".into(),
            });
        }
    } else {
        let Some(core) = last else {
            return Err(CheckError {
                step: None,
                reason: "no derived clause to certify the assumption core".into(),
            });
        };
        // A root conflict mid-probe certifies any assumption set.
        if !core.is_empty() && !report.root_conflict {
            let mut want: Vec<Lit> = failed_assumptions.iter().map(|&a| !a).collect();
            want.sort_unstable();
            want.dedup();
            let mut got: Vec<Lit> = core.to_vec();
            got.sort_unstable();
            got.dedup();
            if got != want {
                return Err(CheckError {
                    step: None,
                    reason: format!(
                        "final derived clause {got:?} does not match the negated \
                         assumption core {want:?}"
                    ),
                });
            }
        }
    }
    Ok(report)
}

/// One clause in the checker's live set. The first two literals are
/// the watched ones (clauses of length ≥ 2).
struct CClause {
    lits: Vec<Lit>,
    live: bool,
}

/// Forward RUP/RAT checker over a growing clause database with
/// two-watched-literal propagation and a persistent root trail.
struct Checker {
    clauses: Vec<CClause>,
    /// Sorted-literals key → live clause ids (deletion lookup).
    index: HashMap<Vec<Lit>, Vec<usize>>,
    /// Assignment per literal code: 1 true, -1 false, 0 unassigned.
    val: Vec<i8>,
    trail: Vec<Lit>,
    qhead: usize,
    /// Clause ids watching each literal code.
    watches: Vec<Vec<usize>>,
    root_conflict: bool,
}

impl Checker {
    fn new() -> Checker {
        Checker {
            clauses: Vec::new(),
            index: HashMap::new(),
            val: Vec::new(),
            trail: Vec::new(),
            qhead: 0,
            watches: Vec::new(),
            root_conflict: false,
        }
    }

    fn ensure_lit(&mut self, l: Lit) {
        let need = l.code().max((!l).code()) + 1;
        if self.val.len() < need {
            self.val.resize(need, 0);
            self.watches.resize(need, Vec::new());
        }
    }

    fn value(&self, l: Lit) -> i8 {
        self.val[l.code()]
    }

    /// Assigns `l` true. Returns `false` on conflict (already false).
    fn enqueue(&mut self, l: Lit) -> bool {
        match self.value(l) {
            1 => true,
            -1 => false,
            _ => {
                self.val[l.code()] = 1;
                self.val[(!l).code()] = -1;
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit-propagates from `qhead`. Returns `false` on conflict.
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let falsified = !p;
            let mut ws = std::mem::take(&mut self.watches[falsified.code()]);
            let mut keep = 0usize;
            let mut conflict = false;
            let mut i = 0usize;
            while i < ws.len() {
                let ci = ws[i];
                i += 1;
                if !self.clauses[ci].live {
                    continue; // lazily dropped watcher
                }
                // Normalize: watched slot 0 is the falsified literal.
                if self.clauses[ci].lits[0] == falsified {
                    self.clauses[ci].lits.swap(0, 1);
                }
                let other = self.clauses[ci].lits[1];
                debug_assert_eq!(other, falsified);
                let first = self.clauses[ci].lits[0];
                if self.value(first) == 1 {
                    ws[keep] = ci;
                    keep += 1;
                    continue;
                }
                // Find a replacement watch.
                let mut moved = false;
                for k in 2..self.clauses[ci].lits.len() {
                    if self.value(self.clauses[ci].lits[k]) != -1 {
                        self.clauses[ci].lits.swap(1, k);
                        let new_watch = self.clauses[ci].lits[1];
                        self.watches[new_watch.code()].push(ci);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflicting.
                ws[keep] = ci;
                keep += 1;
                if !self.enqueue(first) {
                    conflict = true;
                    break;
                }
            }
            // Keep any watchers not yet scanned (conflict exit).
            while i < ws.len() {
                ws[keep] = ws[i];
                keep += 1;
                i += 1;
            }
            ws.truncate(keep);
            // Re-merge with watchers added for this code mid-scan
            // (replacement watches never target the falsified literal,
            // but enqueue-driven recursion is absent so this is just
            // whatever the take left behind).
            let added = std::mem::replace(&mut self.watches[falsified.code()], ws);
            self.watches[falsified.code()].extend(added);
            if conflict {
                self.qhead = self.trail.len();
                return false;
            }
        }
        true
    }

    /// Checks RUP of `clause`: assume every literal false, propagate,
    /// demand a conflict. Leaves the trail as it found it.
    fn is_rup(&mut self, clause: &[Lit]) -> bool {
        // The clause may mention variables no input ever did (e.g. an
        // assumption-core clause over an otherwise-unused variable).
        for &l in clause {
            self.ensure_lit(l);
        }
        let mark = self.trail.len();
        let saved_qhead = self.qhead;
        let mut conflict = false;
        for &l in clause {
            if !self.enqueue(!l) {
                conflict = true;
                break;
            }
        }
        if !conflict {
            conflict = !self.propagate();
        }
        for &l in self.trail.iter().skip(mark) {
            self.val[l.code()] = 0;
            self.val[(!l).code()] = 0;
        }
        self.trail.truncate(mark);
        self.qhead = saved_qhead;
        conflict
    }

    /// Checks first-literal RAT of `clause`: every resolvent with a
    /// live clause containing the negated pivot must be RUP.
    fn is_rat(&mut self, clause: &[Lit]) -> bool {
        let Some(&pivot) = clause.first() else {
            return false;
        };
        let neg = !pivot;
        // Occurrences are computed by scan: RAT steps are rare
        // (only BVE restorations in solver-emitted proofs). Partners
        // that also contain the pivot are skipped: flipping the pivot
        // true keeps them satisfied, so they never constrain the step.
        let partners: Vec<usize> = (0..self.clauses.len())
            .filter(|&ci| {
                let c = &self.clauses[ci];
                c.live && c.lits.contains(&neg) && !c.lits.contains(&pivot)
            })
            .collect();
        let mut resolvent: Vec<Lit> = Vec::new();
        for ci in partners {
            resolvent.clear();
            resolvent.extend_from_slice(clause);
            resolvent.extend(self.clauses[ci].lits.iter().copied().filter(|&l| l != neg));
            if !self.is_rup(&resolvent) {
                return false;
            }
        }
        true
    }

    /// Installs a clause into the live set and performs persistent
    /// root propagation of any unit it implies.
    fn add_clause(&mut self, lits: &[Lit]) {
        for &l in lits {
            self.ensure_lit(l);
        }
        let mut key = lits.to_vec();
        key.sort_unstable();
        let ci = self.clauses.len();
        let mut stored = lits.to_vec();
        // Prefer non-false literals in the watched slots.
        let mut w = 0usize;
        for i in 0..stored.len() {
            if w >= 2 {
                break;
            }
            if self.value(stored[i]) != -1 {
                stored.swap(w, i);
                w += 1;
            }
        }
        self.clauses.push(CClause {
            lits: stored,
            live: true,
        });
        self.index.entry(key).or_default().push(ci);
        let len = self.clauses[ci].lits.len();
        if len == 0 {
            self.root_conflict = true;
            return;
        }
        if len >= 2 {
            let (w0, w1) = (self.clauses[ci].lits[0], self.clauses[ci].lits[1]);
            self.watches[w0.code()].push(ci);
            self.watches[w1.code()].push(ci);
        }
        if w == 0 {
            // Every literal false: the live set is refuted outright.
            self.root_conflict = true;
        } else if w == 1 || len == 1 {
            // Unit (or already-satisfied single-watch) clause: make the
            // surviving literal a persistent root assignment.
            let unit = self.clauses[ci].lits[0];
            if self.value(unit) != 1 && (!self.enqueue(unit) || !self.propagate()) {
                self.root_conflict = true;
            }
        }
    }

    /// Removes one live clause matching `lits` (as a multiset).
    /// Root assignments are never retracted (drat-trim semantics).
    fn delete_clause(&mut self, lits: &[Lit]) -> bool {
        let mut key = lits.to_vec();
        key.sort_unstable();
        let Some(ids) = self.index.get_mut(&key) else {
            return false;
        };
        let Some(ci) = ids.pop() else {
            return false;
        };
        if ids.is_empty() {
            self.index.remove(&key);
        }
        self.clauses[ci].live = false; // watchers dropped lazily
        true
    }

    fn run(&mut self, log: &ProofLog) -> Result<CheckReport, CheckError> {
        let mut report = CheckReport::default();
        for (i, (kind, lits)) in log.iter().enumerate() {
            report.steps += 1;
            match kind {
                StepKind::AddInput => self.add_clause(lits),
                StepKind::AddDerived => {
                    if !self.root_conflict {
                        report.derived_checked += 1;
                        if !self.is_rup(lits) && !self.is_rat(lits) {
                            return Err(CheckError {
                                step: Some(i),
                                reason: format!(
                                    "derived clause {:?} is neither RUP nor RAT",
                                    lits.iter().map(|l| l.to_dimacs()).collect::<Vec<_>>()
                                ),
                            });
                        }
                    }
                    if lits.is_empty() {
                        report.derived_empty = true;
                    }
                    self.add_clause(lits);
                }
                StepKind::Delete => {
                    if !self.delete_clause(lits) {
                        return Err(CheckError {
                            step: Some(i),
                            reason: format!(
                                "deletion of clause {:?} not in the live set",
                                lits.iter().map(|l| l.to_dimacs()).collect::<Vec<_>>()
                            ),
                        });
                    }
                }
            }
        }
        report.root_conflict = self.root_conflict;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    fn clause(ds: &[i64]) -> Vec<Lit> {
        ds.iter().map(|&d| lit(d)).collect()
    }

    /// The smallest UNSAT core: (a)(¬a) with an explicit refutation.
    #[test]
    fn accepts_trivial_refutation() {
        let mut log = ProofLog::new();
        log.add_input(&clause(&[1]));
        log.add_input(&clause(&[-1]));
        log.add_derived(&[]);
        let report = check(&log).expect("valid proof");
        assert!(report.derived_empty);
        assert!(report.root_conflict);
        assert!(report.refuted());
    }

    /// (a∨b)(a∨¬b)(¬a∨b)(¬a∨¬b): classic 2-variable refutation via
    /// the resolvents (a) and the empty clause.
    #[test]
    fn accepts_resolution_refutation() {
        let mut log = ProofLog::new();
        log.add_input(&clause(&[1, 2]));
        log.add_input(&clause(&[1, -2]));
        log.add_input(&clause(&[-1, 2]));
        log.add_input(&clause(&[-1, -2]));
        log.add_derived(&clause(&[1]));
        log.add_derived(&[]);
        assert!(check(&log).expect("valid proof").refuted());
    }

    /// With (1 2) alone, (1) would be a *blocked* clause (no resolution
    /// partner on the pivot) and DRAT accepts it; (¬1 ¬2) provides the
    /// partner whose resolvent (1 ¬2) is not RUP, so both the RUP and
    /// the RAT check must fail.
    #[test]
    fn rejects_non_rup_derivation() {
        let mut log = ProofLog::new();
        log.add_input(&clause(&[1, 2]));
        log.add_input(&clause(&[-1, -2]));
        log.add_derived(&clause(&[1])); // neither RUP nor RAT
        let err = check(&log).expect_err("must reject");
        assert_eq!(err.step, Some(2));
    }

    #[test]
    fn rejects_deleting_absent_clause() {
        let mut log = ProofLog::new();
        log.add_input(&clause(&[1, 2]));
        log.delete(&clause(&[1, 3]));
        let err = check(&log).expect_err("must reject");
        assert_eq!(err.step, Some(1));
    }

    /// Deletion is multiset-keyed, so literal order does not matter.
    #[test]
    fn deletion_is_order_insensitive() {
        let mut log = ProofLog::new();
        log.add_input(&clause(&[1, 2, -3]));
        log.delete(&clause(&[-3, 1, 2]));
        assert!(check(&log).is_ok());
    }

    /// RAT on the first literal: after deleting every clause that
    /// mentions x, re-adding (x∨a) is vacuously RAT on x even though
    /// it is not RUP — the BVE-restoration shape.
    #[test]
    fn accepts_vacuous_rat_readdition() {
        let mut log = ProofLog::new();
        log.add_input(&clause(&[1, 2]));
        log.add_input(&clause(&[-1, 3]));
        log.add_input(&clause(&[2, 3, 4]));
        // BVE on x1: resolvent (2∨3) is RUP, then both occurrences go.
        log.add_derived(&clause(&[2, 3]));
        log.delete(&clause(&[1, 2]));
        log.delete(&clause(&[-1, 3]));
        // Restore (1∨2): RAT on literal 1 with no ¬1 partner left.
        log.add_derived(&clause(&[1, 2]));
        assert!(check(&log).is_ok());
        // The same clause with the pivot second is not RAT (pivot 2
        // resolves against (2∨3∨4)... which still yields RUP checks
        // that pass here, so use a genuinely non-RAT pivot: ¬3).
        let mut bad = ProofLog::new();
        bad.add_input(&clause(&[1, 2]));
        bad.add_input(&clause(&[-1, 3]));
        bad.add_derived(&clause(&[-3, -1]));
        assert!(check(&bad).is_err());
    }

    #[test]
    fn certify_requires_matching_core() {
        let mut log = ProofLog::new();
        log.add_input(&clause(&[-1, -2]));
        // Probe assumptions a1, a2 fail; core clause is (¬1 ∨ ¬2).
        log.add_derived(&clause(&[-1, -2]));
        let failed = [Lit::pos(Var(0)), Lit::pos(Var(1))];
        assert!(certify_unsat(&log, &failed).is_ok());
        let wrong = [Lit::pos(Var(0))];
        assert!(certify_unsat(&log, &wrong).is_err());
        // Root-level certification needs the empty clause.
        assert!(certify_unsat(&log, &[]).is_err());
    }

    #[test]
    fn drat_text_round_trip() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(clause(&[1, 2]));
        cnf.add_clause(clause(&[-1, 3]));
        let mut log = ProofLog::from_cnf_and_drat(&cnf, b"").expect("inputs only");
        log.add_derived(&clause(&[2, 3]));
        log.delete(&clause(&[1, 2]));
        let mut out = Vec::new();
        log.write_drat(&mut out, false).expect("write");
        assert_eq!(
            std::str::from_utf8(&out).expect("ascii"),
            "2 3 0\nd 1 2 0\n"
        );
        let back = ProofLog::from_cnf_and_drat(&cnf, &out).expect("parse");
        assert_eq!(back, log);
    }

    #[test]
    fn drat_binary_round_trip() {
        let mut cnf = Cnf::new(200);
        cnf.add_clause(clause(&[1, -200]));
        let mut log = ProofLog::from_cnf_and_drat(&cnf, b"").expect("inputs only");
        log.add_derived(&clause(&[63, -64, 129]));
        log.delete(&clause(&[1, -200]));
        log.add_derived(&[]);
        let mut out = Vec::new();
        log.write_drat(&mut out, true).expect("write");
        // Binary marker of the first step is 'a' followed by vbyte
        // literals; 63 → 126, -64 → 129 (two bytes).
        assert_eq!(out[0], b'a');
        let back = ProofLog::from_cnf_and_drat(&cnf, &out).expect("parse");
        assert_eq!(back, log);
    }

    #[test]
    fn live_multiset_tracks_deletions() {
        let mut log = ProofLog::new();
        log.add_input(&clause(&[2, 1]));
        log.add_input(&clause(&[1, 2]));
        log.delete(&clause(&[1, 2]));
        let live = log.live_multiset();
        assert_eq!(live.get(&clause(&[1, 2])).copied(), Some(1));
    }
}
