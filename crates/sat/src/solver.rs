//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! This is the workspace's substitute for Kissat: a MiniSat-family
//! solver with two-watched-literal propagation, first-UIP conflict
//! analysis with clause minimization, VSIDS decision ordering, phase
//! saving, Luby restarts and LBD/activity-based learnt-clause deletion.
//! Every heuristic can be disabled through [`CdclConfig`] — the
//! ablation benches exercise exactly those switches — and the seed
//! randomizes initial activities and polarities, reproducing the
//! paper's "random seed: more is different" observation.

use crate::{Backend, Budget, Cnf, Lit, Model, SolveOutcome, Var};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Tuning knobs and feature switches for [`CdclSolver`].
#[derive(Clone, Debug)]
pub struct CdclConfig {
    /// Seed for initial activities and random polarities.
    pub seed: u64,
    /// Multiplicative VSIDS decay applied after each conflict.
    pub var_decay: f64,
    /// Learnt-clause activity decay.
    pub clause_decay: f64,
    /// Luby restart unit, in conflicts.
    pub restart_base: u64,
    /// Enable restarts.
    pub use_restarts: bool,
    /// Enable phase saving (otherwise polarities default to `false`).
    pub use_phase_saving: bool,
    /// Enable learnt-clause database reduction.
    pub use_clause_deletion: bool,
    /// Enable learnt-clause minimization.
    pub use_minimization: bool,
    /// Probability of choosing a random decision variable.
    pub random_var_freq: f64,
    /// Probability of flipping the saved polarity on a decision.
    pub random_polarity_freq: f64,
}

impl Default for CdclConfig {
    fn default() -> Self {
        CdclConfig {
            seed: 0,
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_base: 100,
            use_restarts: true,
            use_phase_saving: true,
            use_clause_deletion: true,
            use_minimization: true,
            random_var_freq: 0.02,
            random_polarity_freq: 0.0,
        }
    }
}

impl CdclConfig {
    /// A configuration differing only in seed — used for portfolios.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Counters reported after each solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of literal propagations.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of clauses learnt.
    pub learned: u64,
    /// Number of learnt clauses deleted by DB reduction.
    pub deleted: u64,
    /// Literals removed by learnt-clause minimization.
    pub minimized_lits: u64,
}

/// The CDCL solver. See the [module docs](self) for the feature list.
///
/// ```
/// use sat::{Backend, Budget, CdclSolver, Cnf, Lit, Var};
/// let mut cnf = Cnf::new(1);
/// cnf.add_clause([Lit::pos(Var(0))]);
/// let out = CdclSolver::default().solve_with(&cnf, &[], &Budget::default());
/// assert!(out.is_sat());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CdclSolver {
    /// Configuration used for subsequent solves.
    pub config: CdclConfig,
    /// Statistics of the most recent solve.
    pub stats: SolverStats,
}

impl CdclSolver {
    /// Creates a solver with the given configuration.
    pub fn with_config(config: CdclConfig) -> Self {
        CdclSolver {
            config,
            stats: SolverStats::default(),
        }
    }
}

impl Backend for CdclSolver {
    fn name(&self) -> &str {
        "cdcl"
    }

    fn solve_with(&mut self, cnf: &Cnf, assumptions: &[Lit], budget: &Budget) -> SolveOutcome {
        let mut state = State::new(cnf, self.config.clone());
        let outcome = state.solve(assumptions, budget);
        self.stats = state.stats;
        outcome
    }
}

const NO_REASON: u32 = u32::MAX;

#[derive(Clone)]
struct Clause {
    lits: Vec<Lit>,
    activity: f64,
    lbd: u32,
    learnt: bool,
    deleted: bool,
}

#[derive(Clone, Copy)]
struct Watcher {
    cref: u32,
    blocker: Lit,
}

/// Indexed max-heap ordered by VSIDS activity.
struct VarOrder {
    heap: Vec<u32>,
    pos: Vec<i64>,
    activity: Vec<f64>,
}

impl VarOrder {
    fn new(n: usize) -> Self {
        VarOrder {
            heap: Vec::with_capacity(n),
            pos: vec![-1; n],
            activity: vec![0.0; n],
        }
    }

    fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] >= 0
    }

    fn insert(&mut self, v: u32) {
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len() as i64;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1);
    }

    fn pop_max(&mut self) -> Option<u32> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0);
        }
        Some(top)
    }

    fn bumped(&mut self, v: u32) {
        if self.contains(v) {
            self.sift_up(self.pos[v as usize] as usize);
        }
    }

    fn better(&self, a: u32, b: u32) -> bool {
        self.activity[a as usize] > self.activity[b as usize]
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.better(self.heap[i], self.heap[parent]) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.better(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.better(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a as i64;
        self.pos[self.heap[b] as usize] = b as i64;
    }
}

/// The i-th element (0-based) of the Luby sequence (1, 1, 2, 1, 1, 2, 4, …).
fn luby(mut x: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

struct State {
    config: CdclConfig,
    stats: SolverStats,
    rng: SmallRng,
    num_vars: usize,
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    order: VarOrder,
    polarity: Vec<bool>,
    var_inc: f64,
    cla_inc: f64,
    max_learnts: f64,
    learnt_count: usize,
    seen: Vec<bool>,
    root_unsat: bool,
}

impl State {
    fn new(cnf: &Cnf, config: CdclConfig) -> State {
        let n = cnf.num_vars();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut order = VarOrder::new(n);
        for v in 0..n {
            // Tiny random jitter diversifies runs across seeds.
            order.activity[v] = rng.random_range(0.0..1e-6);
        }
        for v in 0..n as u32 {
            order.insert(v);
        }
        let mut st = State {
            config,
            stats: SolverStats::default(),
            rng,
            num_vars: n,
            clauses: Vec::with_capacity(cnf.num_clauses()),
            watches: vec![Vec::new(); 2 * n],
            assigns: vec![0; n],
            level: vec![0; n],
            reason: vec![NO_REASON; n],
            trail: Vec::with_capacity(n),
            trail_lim: Vec::new(),
            qhead: 0,
            order,
            polarity: vec![false; n],
            var_inc: 1.0,
            cla_inc: 1.0,
            max_learnts: (cnf.num_clauses() as f64 / 3.0).max(1000.0),
            learnt_count: 0,
            seen: vec![false; n],
            root_unsat: false,
        };
        for clause in cnf {
            if !st.add_original_clause(clause) {
                st.root_unsat = true;
                break;
            }
        }
        st
    }

    #[inline]
    fn value(&self, lit: Lit) -> i8 {
        let v = self.assigns[lit.var().index()];
        if lit.is_neg() {
            -v
        } else {
            v
        }
    }

    fn add_original_clause(&mut self, lits: &[Lit]) -> bool {
        // Root-level simplification: dedup, drop false lits, detect
        // tautologies and satisfied clauses.
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            if self.value(l) == 1 {
                return true; // already satisfied at root
            }
            if self.value(l) == -1 {
                continue;
            }
            if c.contains(&!l) {
                return true; // tautology
            }
            if !c.contains(&l) {
                c.push(l);
            }
        }
        match c.len() {
            0 => false,
            1 => {
                if self.value(c[0]) == -1 {
                    return false;
                }
                if self.value(c[0]) == 0 {
                    self.enqueue(c[0], NO_REASON);
                    // Propagate eagerly so later clauses simplify more.
                    if self.propagate().is_some() {
                        return false;
                    }
                }
                true
            }
            _ => {
                self.attach_clause(c, false, 0);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as u32;
        // watches[l.code()] holds the clauses currently watching literal l;
        // they are visited when l becomes false.
        self.watches[lits[0].code()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[lits[1].code()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        self.clauses.push(Clause {
            lits,
            activity: 0.0,
            lbd,
            learnt,
            deleted: false,
        });
        if learnt {
            self.learnt_count += 1;
            self.stats.learned += 1;
        }
        cref
    }

    fn enqueue(&mut self, lit: Lit, reason: u32) {
        debug_assert_eq!(self.value(lit), 0);
        let v = lit.var().index();
        self.assigns[v] = if lit.is_neg() { -1 } else { 1 };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            let mut j = 0;
            let mut conflict = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.value(w.blocker) == 1 {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref as usize;
                if self.clauses[cref].deleted {
                    continue; // drop watcher of deleted clause
                }
                // Make sure the false literal is at position 1.
                {
                    let lits = &mut self.clauses[cref].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                }
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.value(first) == 1 {
                    ws[j] = Watcher {
                        cref: w.cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cref].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref].lits[k];
                    if self.value(lk) != -1 {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[lk.code()].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // Unit or conflict.
                ws[j] = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                j += 1;
                if self.value(first) == -1 {
                    conflict = Some(w.cref);
                    // Copy remaining watchers back and stop.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                } else {
                    self.enqueue(first, w.cref);
                }
            }
            ws.truncate(j);
            debug_assert!(self.watches[false_lit.code()].is_empty());
            self.watches[false_lit.code()] = ws;
            if let Some(c) = conflict {
                return Some(c);
            }
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.order.activity[v] += self.var_inc;
        if self.order.activity[v] > 1e100 {
            for a in &mut self.order.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v as u32);
    }

    fn bump_clause(&mut self, cref: u32) {
        let c = &mut self.clauses[cref as usize];
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis; returns (learnt clause, backtrack level, lbd).
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var(0))]; // slot 0 = asserting lit
        let mut counter = 0usize;
        let mut to_clear: Vec<usize> = Vec::new();
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        loop {
            self.bump_clause(confl);
            let lits = self.clauses[confl as usize].lits.clone();
            let start = usize::from(p.is_some());
            for &q in &lits[start..] {
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to resolve on.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let pl = self.trail[idx];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !pl;
                break;
            }
            p = Some(pl);
            confl = self.reason[pl.var().index()];
            debug_assert_ne!(confl, NO_REASON);
        }
        // Minimize: drop literals whose reasons are covered by the clause.
        if self.config.use_minimization {
            let before = learnt.len();
            let keep: Vec<bool> = learnt
                .iter()
                .enumerate()
                .map(|(i, &l)| i == 0 || !self.lit_redundant(l))
                .collect();
            let mut k = 0;
            learnt.retain(|_| {
                let keep_it = keep[k];
                k += 1;
                keep_it
            });
            self.stats.minimized_lits += (before - learnt.len()) as u64;
        }
        // Compute backtrack level and move that literal to slot 1.
        let mut bt = 0;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            bt = self.level[learnt[1].var().index()];
        }
        // LBD: number of distinct decision levels in the clause.
        let mut levels: Vec<u32> = learnt.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32;
        // Clear every seen flag marked during this analysis (including
        // literals dropped by minimization).
        for v in to_clear {
            self.seen[v] = false;
        }
        (learnt, bt, lbd)
    }

    /// A literal is redundant in the learnt clause if its reason's
    /// literals are all already seen (or at level 0).
    fn lit_redundant(&self, l: Lit) -> bool {
        let r = self.reason[l.var().index()];
        if r == NO_REASON {
            return false;
        }
        self.clauses[r as usize].lits.iter().all(|&q| {
            q.var() == l.var() || self.seen[q.var().index()] || self.level[q.var().index()] == 0
        })
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        while self.trail.len() > bound {
            let l = self.trail.pop().expect("trail non-empty");
            let v = l.var().index();
            if self.config.use_phase_saving {
                self.polarity[v] = !l.is_neg();
            }
            self.assigns[v] = 0;
            self.reason[v] = NO_REASON;
            self.order.insert(v as u32);
        }
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        // Occasional random decisions diversify seeds.
        if self.config.random_var_freq > 0.0 && self.rng.random_bool(self.config.random_var_freq) {
            let v = self.rng.random_range(0..self.num_vars);
            if self.assigns[v] == 0 {
                return Some(self.choose_polarity(v));
            }
        }
        while let Some(v) = self.order.pop_max() {
            if self.assigns[v as usize] == 0 {
                return Some(self.choose_polarity(v as usize));
            }
        }
        None
    }

    fn choose_polarity(&mut self, v: usize) -> Lit {
        let mut pol = self.polarity[v];
        if self.config.random_polarity_freq > 0.0
            && self.rng.random_bool(self.config.random_polarity_freq)
        {
            pol = !pol;
        }
        Lit::new(Var(v as u32), !pol)
    }

    fn reduce_db(&mut self) {
        let locked: Vec<u32> = self
            .trail
            .iter()
            .filter_map(|l| {
                let r = self.reason[l.var().index()];
                (r != NO_REASON).then_some(r)
            })
            .collect();
        let locked: std::collections::HashSet<u32> = locked.into_iter().collect();
        let mut candidates: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                c.learnt && !c.deleted && c.lits.len() > 2 && c.lbd > 3 && !locked.contains(&i)
            })
            .collect();
        candidates.sort_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a as usize], &self.clauses[b as usize]);
            cb.lbd.cmp(&ca.lbd).then(
                ca.activity
                    .partial_cmp(&cb.activity)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let remove = candidates.len() / 2;
        for &i in &candidates[..remove] {
            self.clauses[i as usize].deleted = true;
            self.learnt_count -= 1;
            self.stats.deleted += 1;
        }
        self.max_learnts *= 1.1;
    }

    fn solve(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveOutcome {
        if self.root_unsat {
            return SolveOutcome::Unsat;
        }
        if self.propagate().is_some() {
            return SolveOutcome::Unsat;
        }
        let start = Instant::now();
        let mut conflicts_since_restart = 0u64;
        let mut restart_budget = self.config.restart_base * luby(self.stats.restarts);
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    return SolveOutcome::Unsat;
                }
                let (learnt, bt, lbd) = self.analyze(confl);
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], NO_REASON);
                } else {
                    let first = learnt[0];
                    let cref = self.attach_clause(learnt, true, lbd);
                    self.bump_clause(cref);
                    self.enqueue(first, cref);
                }
                self.var_inc /= self.config.var_decay;
                self.cla_inc /= self.config.clause_decay;
                // Budget checks: conflicts every time (cheap), clock and
                // stop flag amortized.
                if let Some(max) = budget.max_conflicts {
                    if self.stats.conflicts >= max {
                        return SolveOutcome::Unknown;
                    }
                }
                if self.stats.conflicts.is_multiple_of(256) {
                    if let Some(max) = budget.max_time {
                        if start.elapsed() >= max {
                            return SolveOutcome::Unknown;
                        }
                    }
                    if let Some(stop) = &budget.stop {
                        if stop.load(Ordering::Relaxed) {
                            return SolveOutcome::Unknown;
                        }
                    }
                }
            } else {
                if self.config.use_restarts && conflicts_since_restart >= restart_budget {
                    self.stats.restarts += 1;
                    conflicts_since_restart = 0;
                    restart_budget = self.config.restart_base * luby(self.stats.restarts);
                    self.cancel_until(0);
                }
                if self.config.use_clause_deletion && self.learnt_count as f64 >= self.max_learnts {
                    self.reduce_db();
                }
                // Re-apply assumptions as pseudo-decisions.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.value(a) {
                        1 => {
                            // Already satisfied: still open a level so the
                            // indexing into `assumptions` stays aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        -1 => return SolveOutcome::Unsat,
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, NO_REASON);
                        }
                    }
                    continue;
                }
                match self.decide() {
                    Some(lit) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(lit, NO_REASON);
                    }
                    None => {
                        let values = (0..self.num_vars).map(|v| self.assigns[v] == 1).collect();
                        return SolveOutcome::Sat(Model::new(values));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i64) -> Lit {
        Lit::from_dimacs(i)
    }

    fn cnf(clauses: &[&[i64]]) -> Cnf {
        let mut c = Cnf::new(0);
        for cl in clauses {
            c.add_clause(cl.iter().map(|&d| lit(d)));
        }
        c
    }

    fn solve(c: &Cnf) -> SolveOutcome {
        CdclSolver::default().solve_with(c, &[], &Budget::default())
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn trivial_sat() {
        let c = cnf(&[&[1], &[-2]]);
        let m = solve(&c).expect_sat();
        assert!(m.value(Var(0)));
        assert!(!m.value(Var(1)));
        assert!(c.eval(&m));
    }

    #[test]
    fn trivial_unsat() {
        let c = cnf(&[&[1], &[-1]]);
        assert!(solve(&c).is_unsat());
    }

    #[test]
    fn empty_formula_is_sat() {
        assert!(solve(&Cnf::new(0)).is_sat());
        assert!(solve(&Cnf::new(5)).is_sat());
    }

    #[test]
    fn chain_implication_unsat() {
        // x1 ∧ (x1→x2) ∧ … ∧ (x9→x10) ∧ ¬x10
        let mut clauses: Vec<Vec<i64>> = vec![vec![1]];
        for i in 1..10 {
            clauses.push(vec![-i, i + 1]);
        }
        clauses.push(vec![-10]);
        let refs: Vec<&[i64]> = clauses.iter().map(|v| v.as_slice()).collect();
        assert!(solve(&cnf(&refs)).is_unsat());
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_{i,j}: pigeon i in hole j; vars 1..=6 as (i-1)*2 + j.
        let p = |i: i64, j: i64| (i - 1) * 2 + j;
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for i in 1..=3 {
            clauses.push(vec![p(i, 1), p(i, 2)]);
        }
        for j in 1..=2 {
            for a in 1..=3 {
                for b in (a + 1)..=3 {
                    clauses.push(vec![-p(a, j), -p(b, j)]);
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(|v| v.as_slice()).collect();
        assert!(solve(&cnf(&refs)).is_unsat());
    }

    #[test]
    fn random_3sat_models_check_out() {
        use rand::rngs::SmallRng;
        let mut rng = SmallRng::seed_from_u64(42);
        for round in 0..20 {
            let n = 30;
            let m = 100; // below threshold → usually SAT
            let mut c = Cnf::new(n);
            for _ in 0..m {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    let v = rng.random_range(0..n as u32);
                    cl.push(Lit::new(Var(v), rng.random_bool(0.5)));
                }
                c.add_clause(cl);
            }
            if let SolveOutcome::Sat(model) = solve(&c) {
                assert!(c.eval(&model), "bogus model in round {round}");
            }
        }
    }

    #[test]
    fn assumptions_restrict_models() {
        let c = cnf(&[&[1, 2]]);
        let m = CdclSolver::default()
            .solve_with(&c, &[lit(-1)], &Budget::default())
            .expect_sat();
        assert!(!m.value(Var(0)));
        assert!(m.value(Var(1)));
    }

    #[test]
    fn assumptions_can_make_unsat() {
        let c = cnf(&[&[1, 2], &[-1, 2]]);
        let out = CdclSolver::default().solve_with(&c, &[lit(-2)], &Budget::default());
        assert!(out.is_unsat());
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        // A hard instance: pigeonhole 6 into 5.
        let holes = 5i64;
        let p = |i: i64, j: i64| (i - 1) * holes + j;
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for i in 1..=6 {
            clauses.push((1..=holes).map(|j| p(i, j)).collect());
        }
        for j in 1..=holes {
            for a in 1..=6 {
                for b in (a + 1)..=6 {
                    clauses.push(vec![-p(a, j), -p(b, j)]);
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(|v| v.as_slice()).collect();
        let c = cnf(&refs);
        let out = CdclSolver::default().solve_with(&c, &[], &Budget::conflict_limit(10));
        assert!(matches!(out, SolveOutcome::Unknown));
    }

    #[test]
    fn stats_populated() {
        let c = cnf(&[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2, 3]]);
        let mut s = CdclSolver::default();
        let out = s.solve_with(&c, &[], &Budget::default());
        assert!(out.is_sat());
        assert!(s.stats.propagations > 0);
    }

    #[test]
    fn seeds_yield_same_verdict() {
        let c = cnf(&[&[1, 2, 3], &[-1, -2], &[-2, -3], &[-1, -3], &[2, 3]]);
        let mut verdicts = Vec::new();
        for seed in 0..5 {
            let mut s = CdclSolver::with_config(CdclConfig::default().with_seed(seed));
            verdicts.push(s.solve_with(&c, &[], &Budget::default()).is_sat());
        }
        assert!(verdicts.iter().all(|&v| v == verdicts[0]));
    }

    #[test]
    fn ablated_configs_still_correct() {
        let configs = [
            CdclConfig {
                use_restarts: false,
                ..CdclConfig::default()
            },
            CdclConfig {
                use_phase_saving: false,
                ..CdclConfig::default()
            },
            CdclConfig {
                use_clause_deletion: false,
                ..CdclConfig::default()
            },
            CdclConfig {
                use_minimization: false,
                ..CdclConfig::default()
            },
            CdclConfig {
                random_var_freq: 0.0,
                ..CdclConfig::default()
            },
        ];
        let sat = cnf(&[&[1, 2], &[-1, 2], &[1, -2]]);
        let unsat = cnf(&[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        for cfg in configs {
            let mut s = CdclSolver::with_config(cfg.clone());
            assert!(
                s.solve_with(&sat, &[], &Budget::default()).is_sat(),
                "{cfg:?}"
            );
            let mut s = CdclSolver::with_config(cfg);
            assert!(s.solve_with(&unsat, &[], &Budget::default()).is_unsat());
        }
    }

    #[test]
    fn duplicate_and_satisfied_clauses_handled() {
        let c = cnf(&[&[1, 1, 2], &[1, -1], &[2]]);
        let m = solve(&c).expect_sat();
        assert!(m.value(Var(1)));
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;

    #[test]
    fn php65_unsat() {
        let holes = 5i64;
        let p = |i: i64, j: i64| (i - 1) * holes + j;
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for i in 1..=6 {
            clauses.push((1..=holes).map(|j| p(i, j)).collect());
        }
        for j in 1..=holes {
            for a in 1..=6 {
                for b in (a + 1)..=6 {
                    clauses.push(vec![-p(a, j), -p(b, j)]);
                }
            }
        }
        let mut c = Cnf::new(0);
        for cl in &clauses {
            c.add_clause(cl.iter().map(|&d| Lit::from_dimacs(d)));
        }
        let out = CdclSolver::default().solve_with(&c, &[], &Budget::default());
        assert!(out.is_unsat());
    }
}
