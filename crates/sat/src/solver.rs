//! A conflict-driven clause-learning (CDCL) SAT solver over a flat
//! clause arena.
//!
//! This is the workspace's substitute for Kissat: a MiniSat-family
//! solver with two-watched-literal propagation, first-UIP conflict
//! analysis with clause minimization, VSIDS decision ordering, phase
//! saving with target-phase rephasing, Luby or adaptive LBD-EMA
//! restarts (see [`restart`]), out-of-order chronological backtracking,
//! inprocessing (see [`inprocess`]) and LBD/activity-based
//! learnt-clause deletion. Every heuristic can be disabled through
//! [`CdclConfig`] — the ablation benches exercise exactly those
//! switches — and the seed randomizes initial activities and
//! polarities, reproducing the paper's "random seed: more is
//! different" observation.
//!
//! # The relaxed trail invariant (out-of-order C-bt)
//!
//! Classically the trail is sorted by decision level. Chronological
//! backtracking (Nadel–Ryvchin) relaxes this: a conflict whose
//! backjump would discard many levels backs up a *single* level
//! instead, and literals may be enqueued *below* the current decision
//! level — unit learnts at level 0 without abandoning the kept levels,
//! implications discovered while re-propagating a surviving
//! out-of-order literal at that literal's own level. (Non-unit
//! asserting literals deliberately assert at the backtrack level, not
//! at the distant true assertion level `bt`: keeping their
//! implications local preserves the cheap conflict cascade that makes
//! C-bt pay — see the chrono step in `solve`.) The consequences, all
//! handled here:
//!
//! * the trail is ordered by assignment time, not level; a reason's
//!   literals still always precede the implied literal;
//! * `cancel_until` removes exactly the literals *above* the target
//!   level, compacting surviving out-of-order assignments down and
//!   re-queuing the ones this propagation pass never reached;
//! * a falsified clause conflicts at the maximum level among its
//!   literals, which can lie below the current decision level —
//!   `solve` backs down to it before analysis, and conflict analysis
//!   resolves only on literals *at* that level (lower-level literals
//!   go into the learnt clause, exactly as in an ordinary backjump);
//! * a falsified clause with a single literal at its conflict level is
//!   a *missed lower implication*: it is repaired (pop one level,
//!   re-propagate the literal from the clause) instead of analyzed —
//!   re-learning the clause would add nothing;
//! * `propagate` keeps out-of-order implications local: a clause unit
//!   under an out-of-order literal but containing a false literal from
//!   a higher level is re-watched on that literal and re-examined only
//!   when a backtrack wakes it.
//!
//! # Clause arena layout
//!
//! All clauses live in one contiguous `Vec<u32>` ([`ClauseArena`]), the
//! layout industrial solvers use to keep propagation cache-friendly. A
//! clause is addressed by a [`ClauseRef`]: the word offset of its
//! header. Each clause occupies `HEADER_WORDS + len` words:
//!
//! ```text
//! word 0   len << 6 | tier << 4 | used << 2 | deleted << 1 | learnt
//! word 1   LBD (literal block distance)
//! word 2   activity (f32 bit pattern)
//! word 3…  literal codes (Lit::code), the two watched lits in slots 0/1
//! ```
//!
//! # Three-tier learnt-clause database
//!
//! Past [`CdclConfig::simplify_activation_conflicts`] the learnt
//! clauses split into the three retention tiers of
//! COMiniSatPS/MapleSAT (Oh's scheme): **core** (LBD ≤ 3, kept
//! forever), **tier2** (LBD ≤ 6, demoted to local when unused for two
//! `reduce_db` intervals — the 2-bit `used` counter in the header is
//! reset on every conflict-analysis participation and counted down by
//! the tier-maintenance sweep), and **local** (everything else,
//! activity-sorted, halved by `reduce_db`). Clauses promote when their
//! LBD improves: conflict analysis recomputes the LBD of every clause
//! it resolves on and keeps the minimum, and the sweep re-files each
//! clause by its current header LBD. Before activation all learnts
//! live in the local tier and `reduce_db` applies the classic
//! single-list policy, so small lucky-trajectory instances keep their
//! exact conflict trajectories (same rationale as
//! [`CdclConfig::chrono_activation_conflicts`]).
//!
//! # Garbage collection protocol
//!
//! `reduce_db` first *marks* the doomed half of the learnt clauses
//! (high LBD, low activity, not locked as a reason) by setting the
//! `deleted` header bit, then immediately runs a compacting GC:
//!
//! 1. every live clause is copied front-to-back into a spare buffer and
//!    its old header is overwritten with a forwarding address
//!    (`RELOCATED` sentinel in word 0, new offset in word 1);
//! 2. the `clauses` ref list, the three learnt tier lists, every
//!    watcher list, and every trail `reason` are rewritten through the
//!    forwarding addresses — watchers of collected clauses are dropped
//!    here, so tombstones never survive into `propagate`;
//! 3. the buffers are swapped (the old arena becomes the next GC's
//!    spare buffer, so steady-state GC allocates nothing).
//!
//! After GC the arena length equals the sum of live clause sizes —
//! deleted clauses' memory is actually reclaimed, not tombstoned.
//!
//! # Watcher invariants
//!
//! * `watches[l.code()]` holds one [`Watcher`] per clause currently
//!   watching `l`; it is visited when `l` becomes false.
//! * The two watched literals of a clause are always in slots 0 and 1.
//! * Every attached clause has exactly two watchers, and a clause that
//!   is the reason for a trail literal keeps that asserting literal in
//!   a watched slot (slot 0 for longer clauses, either slot for binary
//!   ones), which is what lets `reduce_db` detect locked clauses
//!   without a side table.
//! * Watchers of binary clauses carry a tag bit and the other literal
//!   as their blocker, so propagation over binary clauses never reads
//!   the arena at all.
//! * Watchers are updated *in place* by index compaction — `propagate`
//!   never `mem::take`s or reallocates a watch list on the hot path.
//!
//! # Allocation discipline
//!
//! The steady-state search loop (propagate → analyze → backtrack) is
//! heap-allocation-free: conflict analysis resolves directly over arena
//! indices (no clause is ever cloned), the learnt-clause scratch buffer
//! and the `seen`/`to_clear` marks are reused across conflicts, and the
//! LBD of a learnt clause is computed with a generation-stamped level
//! array instead of sort+dedup. Allocations happen only when a buffer's
//! high-water mark grows (new deepest clause, widest watch list) and in
//! the rare `reduce_db` pass.
//!
//! # Incremental solving
//!
//! [`CdclSolver`] doubles as a MiniSat-style incremental session:
//! [`CdclSolver::new_var`] and [`CdclSolver::add_clause`] may be called
//! before *and between* solves, and repeated
//! [`CdclSolver::solve_assuming`] calls share one persistent solver
//! state. Everything the search learns is retained across calls — the
//! clause arena (original and learnt clauses), VSIDS activities, saved
//! phases and the restart schedule — which is what makes closely
//! related queries (the depth probes of
//! `synth::optimize::find_min_depth`) far cheaper than re-solving from
//! scratch. The invariants:
//!
//! * between calls the solver sits at decision level 0; `add_clause`
//!   backtracks there itself, so clauses may be added right after a
//!   SAT answer;
//! * learnt clauses never embed assumptions as facts (assumptions are
//!   pseudo-decisions, so they appear *negated inside* learnt clauses),
//!   hence every retained clause is a consequence of the added clauses
//!   alone and stays sound when the assumptions change;
//! * facts derived at level 0 (including a root-level conflict, which
//!   latches `root_unsat`) are permanent;
//! * [`Budget`] limits are per *call*, not per session.
//!
//! After an UNSAT answer, [`CdclSolver::final_assumption_conflict`]
//! returns the subset of the assumptions the refutation actually used
//! (MiniSat's `analyzeFinal`), empty when the clauses are contradictory
//! on their own.
//!
//! Inprocessing-time bounded variable elimination (see [`elim`])
//! removes variables from the live formula; a session that will
//! mention a variable in *future* clauses or assumptions must declare
//! it via [`CdclSolver::freeze`] (and may [`CdclSolver::melt`] it
//! later). Variables of the current call's assumptions are protected
//! automatically, and a clause or assumption arriving over an already
//! eliminated variable reintroduces it from the elimination stack
//! before solving.

use crate::exchange::{ClauseExchange, ShareLimits};
use crate::proof::ProofLog;
use crate::{Backend, Budget, Cnf, ExhaustionReason, Lit, Model, SolveOutcome, Var};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

mod audit;
mod elim;
mod fault;
mod inprocess;
mod restart;

use audit::AuditPoint;
use elim::ElimFrame;
pub use fault::{FaultKind, FaultPlan};

/// Multiply-shift hasher for clause-keyed side tables: the keys are
/// arena offsets (already well spread), and SipHash is a measurable
/// slice of every inprocessing index build at eager pass cadence.
#[derive(Default)]
pub(crate) struct OffsetHash(u64);

impl std::hash::Hasher for OffsetHash {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    fn write_u32(&mut self, v: u32) {
        self.0 = u64::from(v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }
}

/// Clause signature map (arena offset → 64-bit variable signature),
/// rebuilt by each subsumption pass.
pub(crate) type SigMap =
    std::collections::HashMap<u32, u64, std::hash::BuildHasherDefault<OffsetHash>>; // lint:allow(no-std-hashmap): cold, one transient map per inprocessing pass

pub use restart::RestartPolicy;
use restart::{RephaseKind, RephaseSched, RestartDecision, RestartSched};

/// Tuning knobs and feature switches for [`CdclSolver`].
#[derive(Clone, Debug)]
pub struct CdclConfig {
    /// Seed for initial activities and random polarities.
    pub seed: u64,
    /// Multiplicative VSIDS decay applied after each conflict.
    pub var_decay: f64,
    /// Learnt-clause activity decay.
    pub clause_decay: f64,
    /// Luby restart unit, in conflicts.
    pub restart_base: u64,
    /// Enable restarts.
    pub use_restarts: bool,
    /// Which restart schedule drives the search: the Luby sequence or
    /// Glucose-style LBD-EMA adaptive restarts with trail blocking.
    /// See [`restart`](self) module docs; the EMA policy falls back to
    /// Luby until [`CdclConfig::restart_activation_conflicts`].
    pub restart_policy: RestartPolicy,
    /// Session conflicts before the EMA restart policy takes over from
    /// the Luby schedule. Adaptive restarts are long-run steering:
    /// gating them keeps small lucky-trajectory instances on their
    /// exact Luby trajectories (same rationale as
    /// [`CdclConfig::chrono_activation_conflicts`]).
    pub restart_activation_conflicts: u64,
    /// Minimum conflicts between EMA-triggered restarts (and the
    /// postponement applied when a restart is blocked).
    pub ema_min_interval: u64,
    /// EMA restart trigger: restart when the fast LBD average exceeds
    /// this multiple of the slow one.
    pub ema_restart_margin: f64,
    /// EMA restart blocking: postpone when the trail at the latest
    /// conflict exceeds this multiple of the trail average.
    pub ema_block_margin: f64,
    /// Enable target-phase rephasing at restart boundaries.
    pub use_rephasing: bool,
    /// Conflicts between rephase passes (stretched geometrically per
    /// pass). Small instances finish before the first pass.
    pub rephase_interval: u64,
    /// Enable phase saving (otherwise polarities default to `false`).
    pub use_phase_saving: bool,
    /// Enable learnt-clause database reduction.
    pub use_clause_deletion: bool,
    /// Enable learnt-clause minimization.
    pub use_minimization: bool,
    /// Probability of choosing a random decision variable. Defaults to
    /// 0: seeded jitter in the initial activities already diversifies
    /// runs, and portfolio members that want a true random walk opt in
    /// via [`CdclConfig::diversified`]. (Non-zero rates are now honest:
    /// `decide` retries assigned picks instead of silently falling
    /// through to VSIDS, which used to erode the effective rate as the
    /// trail filled.)
    pub random_var_freq: f64,
    /// Probability of flipping the saved polarity on a decision.
    pub random_polarity_freq: f64,
    /// Lower bound on the learnt-clause budget before the first DB
    /// reduction. The budget starts at `max(num_clauses / 3, floor)`;
    /// tests lower the floor to force frequent GC passes.
    pub max_learnts_floor: f64,
    /// Enable clause vivification (distillation) during inprocessing
    /// passes: candidate clauses are re-derived literal by literal under
    /// unit propagation and shortened when a prefix already implies
    /// them. See [`solver::inprocess`](self).
    pub use_vivification: bool,
    /// Enable subsumption and self-subsuming resolution during
    /// inprocessing passes.
    pub use_subsumption: bool,
    /// Restrict backward subsumption to clauses touched (learnt,
    /// strengthened, vivified, added) since the previous pass instead
    /// of sweeping the whole database; every
    /// [`CdclConfig::subsumption_full_sweep_interval`]-th pass still
    /// sweeps everything as a fallback.
    pub subsumption_touched_only: bool,
    /// With [`CdclConfig::subsumption_touched_only`]: every n-th
    /// subsumption pass processes the full clause database (`0` never
    /// does).
    pub subsumption_full_sweep_interval: u64,
    /// Enable chronological backtracking (Nadel–Ryvchin C-bt): when a
    /// conflict's backjump would discard more than
    /// [`CdclConfig::chrono_threshold`] levels, back up a single level
    /// instead, keeping the intermediate assignments; unit learnts and
    /// recovered missed implications are enqueued out-of-order below
    /// the current decision level (see the module docs on the relaxed
    /// trail invariant).
    pub use_chrono: bool,
    /// Minimum backjump distance (in decision levels) before
    /// chronological backtracking kicks in. `0` backtracks
    /// chronologically on every eligible conflict.
    pub chrono_threshold: u32,
    /// Session conflicts before chronological backtracking activates.
    /// Chronological backtracking is a *long-run* optimization: on the
    /// T-factory instances it nearly triples conflict throughput, but
    /// on small lucky-trajectory instances (the majority gate solves in
    /// ~164 conflicts) a single chronological backtrack can forfeit the
    /// lucky path and cost 10× the conflicts. Gating activation on the
    /// conflict count gives big instances the win without perturbing
    /// small ones. `0` activates immediately.
    pub chrono_activation_conflicts: u64,
    /// Conflicts between inprocessing passes (vivification +
    /// subsumption run at the first restart boundary past the
    /// threshold). The interval stretches geometrically with each pass
    /// so inprocessing cost stays a bounded fraction of the search.
    pub inprocess_interval: u64,
    /// Unit-propagation budget of one vivification pass.
    pub vivify_propagation_budget: u64,
    /// Literal-comparison budget of one subsumption pass.
    pub subsumption_check_budget: u64,
    /// Minimum conflicts between two subsumption runs. Inprocessing
    /// passes arriving earlier skip the subsumption stage (but still
    /// run the cheaper dirty-tracked stages), so an eager
    /// [`CdclConfig::inprocess_interval`] tuned for variable
    /// elimination does not multiply the cost of the full-database
    /// sweeps. `0` runs subsumption on every pass.
    pub subsume_conflict_gap: u64,
    /// Minimum conflicts between two vivification runs, like
    /// [`CdclConfig::subsume_conflict_gap`]. `0` vivifies on every
    /// pass.
    pub vivify_conflict_gap: u64,
    /// Enable the three-tier learnt-clause database (core / tier2 /
    /// local) past [`CdclConfig::simplify_activation_conflicts`]. See
    /// the [module docs](self).
    pub use_tiers: bool,
    /// Enable inprocessing-time bounded variable elimination (the
    /// resolution half of SatELite; see [`elim`]).
    pub use_elim: bool,
    /// Enable level-0 failed-literal probing on the roots of the
    /// binary implication graph during inprocessing (see [`elim`]).
    pub use_probing: bool,
    /// Session conflicts before the tier database, variable
    /// elimination and failed-literal probing activate. Like
    /// [`CdclConfig::chrono_activation_conflicts`], these are long-run
    /// optimizations: gating them keeps small lucky-trajectory
    /// instances on their exact legacy trajectories. `0` activates
    /// immediately.
    pub simplify_activation_conflicts: u64,
    /// Variable elimination only considers variables with at most this
    /// many positive and this many negative occurrences.
    pub elim_occurrence_cap: usize,
    /// Variable elimination skips variables occurring in any clause
    /// longer than this (long resolvents are rarely worth the growth).
    pub elim_clause_size_cap: usize,
    /// Literal-comparison budget of one variable-elimination pass.
    pub elim_check_budget: u64,
    /// Allowed clause-count growth per eliminated variable: a
    /// variable is eliminated when its non-tautological resolvents
    /// number at most the clauses they replace *plus this margin*
    /// (`0` is the classic never-grow rule).
    pub elim_grow: usize,
    /// Elimination rounds per inprocessing pass: each round's
    /// resolvents can turn their variables into fresh candidates, so
    /// extra rounds reach variables the occurrence index marked stale
    /// mid-round. The dirty-set makes repeat rounds cheap (they only
    /// index candidate variables); each round gets its own
    /// [`CdclConfig::elim_check_budget`].
    pub elim_rounds: usize,
    /// Unit-propagation budget of one failed-literal probing pass.
    pub probe_propagation_budget: u64,
    /// Enable the deep solver-state auditor (see [`solver::audit`](self)):
    /// after propagation, conflict analysis, backtracking, garbage
    /// collection and every inprocessing pass the full state is checked
    /// against the watcher/trail/reason/arena/heap invariants, and SAT
    /// answers are model-checked against the clause database. Off by
    /// default (the checkpoints then cost one predictable branch);
    /// `LASSYNTH_AUDIT=1` in the environment turns the auditor on for
    /// every solver regardless of this flag.
    pub audit: bool,
    /// Throttle for the hot audit checkpoints (propagate / analyze /
    /// backtrack): only every n-th such checkpoint runs the full check,
    /// so the differential torture matrix can keep the auditor on
    /// without quadratic slowdown. Structural checkpoints (GC,
    /// inprocessing, SAT answers) always run. `0` is treated as `1`.
    pub audit_interval: u64,
    /// Deterministic one-shot fault to inject (see [`fault`](self)):
    /// a forced panic, a corrupted exported clause, a frozen proof
    /// log, or a simulated arena-growth failure, each at a fixed
    /// trigger point. `None` (the default) costs one branch per
    /// conflict; `LASSYNTH_FAULT` in the environment arms a plan for
    /// every solver whose seed it matches, regardless of this field.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for CdclConfig {
    fn default() -> Self {
        CdclConfig {
            seed: 0,
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_base: 100,
            use_restarts: true,
            restart_policy: RestartPolicy::Ema,
            restart_activation_conflicts: 2000,
            ema_min_interval: 50,
            ema_restart_margin: 1.25,
            ema_block_margin: 1.4,
            use_rephasing: true,
            rephase_interval: 10_000,
            use_phase_saving: true,
            use_clause_deletion: true,
            use_minimization: true,
            random_var_freq: 0.0,
            random_polarity_freq: 0.0,
            max_learnts_floor: 1000.0,
            // The reference inprocessing mix is A/B-tuned on the
            // budgeted Fig. 17 probe: eager, wide-margin variable
            // elimination under the tier database wins ~1.4x in
            // propagations per conflict, subsumption on every pass
            // protects that trajectory, while vivification and
            // probing (kept for the portfolio and the torture matrix)
            // cost more than they return there and sit off in the
            // reference configuration.
            use_vivification: false,
            use_subsumption: true,
            subsumption_touched_only: true,
            subsumption_full_sweep_interval: 5,
            use_chrono: true,
            chrono_threshold: 0,
            chrono_activation_conflicts: 2000,
            inprocess_interval: 3_000,
            vivify_propagation_budget: 100_000,
            subsumption_check_budget: 500_000,
            subsume_conflict_gap: 0,
            vivify_conflict_gap: 0,
            use_tiers: true,
            use_elim: true,
            use_probing: false,
            simplify_activation_conflicts: 2000,
            elim_occurrence_cap: 30,
            elim_clause_size_cap: 24,
            elim_check_budget: 16_000_000,
            elim_grow: 12,
            elim_rounds: 1,
            probe_propagation_budget: 100_000,
            audit: false,
            audit_interval: 1,
            fault_plan: None,
        }
    }
}

impl CdclConfig {
    /// A configuration differing only in seed — used for portfolios.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A diversified portfolio member: besides the activity seed, the
    /// restart cadence *and policy*, VSIDS decay, polarity
    /// randomization, rephasing and the inprocessing switches
    /// (vivification, subsumption, chronological backtracking) vary per
    /// seed, so portfolio workers explore genuinely different search
    /// trajectories (not just different tie-breaking).
    pub fn diversified(seed: u64) -> Self {
        let mut config = CdclConfig::default().with_seed(seed);
        match seed % 4 {
            0 => {} // the reference configuration (inprocessing defaults)
            1 => {
                // Adaptive restarts and fully chronological
                // backtracking from the first conflict, with aggressive
                // activity decay.
                config.var_decay = 0.85;
                config.chrono_threshold = 0;
                config.chrono_activation_conflicts = 0;
                config.restart_policy = RestartPolicy::Ema;
                config.restart_activation_conflicts = 0;
            }
            2 => {
                // Long Luby runs between restarts, occasionally flipped
                // phases, no inprocessing, no adaptive machinery at all
                // (the pre-inprocessing solver, as a hedge against
                // pathological passes).
                config.restart_base = 400;
                config.restart_policy = RestartPolicy::Luby;
                config.random_polarity_freq = 0.02;
                config.use_vivification = false;
                config.use_subsumption = false;
                config.use_chrono = false;
                config.use_rephasing = false;
                config.use_tiers = false;
                config.use_elim = false;
                config.use_probing = false;
            }
            _ => {
                // Slow decay with a strong random-walk component, eager
                // rephasing and eager, bigger-budget full-database
                // inprocessing with every pass enabled (vivification
                // and probing are off in the reference configuration;
                // this arm keeps them in the portfolio).
                config.var_decay = 0.99;
                config.random_var_freq = 0.1;
                config.inprocess_interval = 500;
                config.use_vivification = true;
                config.use_probing = true;
                config.vivify_propagation_budget = 400_000;
                config.subsumption_check_budget = 4_000_000;
                config.elim_check_budget = 4_000_000;
                config.probe_propagation_budget = 400_000;
                config.simplify_activation_conflicts = 0;
                config.subsumption_touched_only = false;
                config.use_chrono = false;
                config.rephase_interval = 2_000;
            }
        }
        config
    }
}

/// Counters reported after each solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of literal propagations.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of clauses learnt.
    pub learned: u64,
    /// Number of learnt clauses deleted by DB reduction.
    pub deleted: u64,
    /// Literals removed by learnt-clause minimization.
    pub minimized_lits: u64,
    /// Number of clause-database garbage-collection passes.
    pub gc_passes: u64,
    /// Arena words reclaimed by garbage collection.
    pub gc_reclaimed_words: u64,
    /// Literals removed from clauses by vivification.
    pub vivified_lits: u64,
    /// Clauses deleted because another clause subsumes them.
    pub subsumed_clauses: u64,
    /// Clauses shortened by self-subsuming resolution.
    pub strengthened_clauses: u64,
    /// Conflicts resolved by a chronological (one-level) backtrack
    /// instead of the full backjump.
    pub chrono_backtracks: u64,
    /// Literals enqueued *below* the current decision level (the
    /// out-of-order assignments chronological backtracking introduces:
    /// asserting literals at their true assertion level, units whose
    /// reasons live entirely at lower levels).
    pub oob_enqueues: u64,
    /// Conflicts that were really missed lower-level implications: the
    /// falsified clause had a single literal at its conflict level, so
    /// the solver undid that literal and propagated it at the level the
    /// clause implied it all along, instead of analyzing.
    pub missed_implications: u64,
    /// EMA-triggered restarts postponed because the trail was unusually
    /// deep (Glucose-style restart blocking).
    pub restarts_blocked: u64,
    /// Rephase passes applied (saved phases reset to the best-trail
    /// snapshot / inverted / random).
    pub rephases: u64,
    /// Variables removed by bounded variable elimination (net of
    /// reintroductions forced by later clauses or assumptions).
    pub eliminated_vars: u64,
    /// Resolvent clauses added by variable elimination.
    pub elim_resolvents: u64,
    /// Literals probed by failed-literal probing.
    pub probed_literals: u64,
    /// Probed literals whose propagation conflicted — each one learns
    /// a root-level unit (the literal's negation).
    pub failed_literals: u64,
    /// Learnt clauses exported to the clause exchange (counted once
    /// per clause, not per receiving worker).
    pub exported_clauses: u64,
    /// Clauses received from the clause exchange (before the import
    /// filter).
    pub imported_clauses: u64,
    /// Received clauses that passed the importer's RUP re-check and
    /// were attached (or asserted, for units).
    pub imported_kept: u64,
    /// Solves that gave up because the conflict budget expired.
    pub exhausted_conflicts: u64,
    /// Solves that gave up because the propagation budget expired.
    pub exhausted_propagations: u64,
    /// Solves that gave up because the wall-clock deadline passed.
    pub exhausted_deadline: u64,
    /// Solves that gave up at the memory ceiling (or on a simulated
    /// arena-growth failure).
    pub exhausted_memory: u64,
    /// Solves that gave up because the cooperative stop flag was
    /// raised.
    pub exhausted_cancelled: u64,
}

impl SolverStats {
    /// The counters accumulated since an earlier snapshot — the
    /// per-call view of an incremental session, whose `stats` field
    /// otherwise grows monotonically across `solve_assuming` calls.
    pub fn since(self, earlier: SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions.saturating_sub(earlier.decisions),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            learned: self.learned.saturating_sub(earlier.learned),
            deleted: self.deleted.saturating_sub(earlier.deleted),
            minimized_lits: self.minimized_lits.saturating_sub(earlier.minimized_lits),
            gc_passes: self.gc_passes.saturating_sub(earlier.gc_passes),
            gc_reclaimed_words: self
                .gc_reclaimed_words
                .saturating_sub(earlier.gc_reclaimed_words),
            vivified_lits: self.vivified_lits.saturating_sub(earlier.vivified_lits),
            subsumed_clauses: self
                .subsumed_clauses
                .saturating_sub(earlier.subsumed_clauses),
            strengthened_clauses: self
                .strengthened_clauses
                .saturating_sub(earlier.strengthened_clauses),
            chrono_backtracks: self
                .chrono_backtracks
                .saturating_sub(earlier.chrono_backtracks),
            oob_enqueues: self.oob_enqueues.saturating_sub(earlier.oob_enqueues),
            missed_implications: self
                .missed_implications
                .saturating_sub(earlier.missed_implications),
            restarts_blocked: self
                .restarts_blocked
                .saturating_sub(earlier.restarts_blocked),
            rephases: self.rephases.saturating_sub(earlier.rephases),
            eliminated_vars: self.eliminated_vars.saturating_sub(earlier.eliminated_vars),
            elim_resolvents: self.elim_resolvents.saturating_sub(earlier.elim_resolvents),
            probed_literals: self.probed_literals.saturating_sub(earlier.probed_literals),
            failed_literals: self.failed_literals.saturating_sub(earlier.failed_literals),
            exported_clauses: self
                .exported_clauses
                .saturating_sub(earlier.exported_clauses),
            imported_clauses: self
                .imported_clauses
                .saturating_sub(earlier.imported_clauses),
            imported_kept: self.imported_kept.saturating_sub(earlier.imported_kept),
            exhausted_conflicts: self
                .exhausted_conflicts
                .saturating_sub(earlier.exhausted_conflicts),
            exhausted_propagations: self
                .exhausted_propagations
                .saturating_sub(earlier.exhausted_propagations),
            exhausted_deadline: self
                .exhausted_deadline
                .saturating_sub(earlier.exhausted_deadline),
            exhausted_memory: self
                .exhausted_memory
                .saturating_sub(earlier.exhausted_memory),
            exhausted_cancelled: self
                .exhausted_cancelled
                .saturating_sub(earlier.exhausted_cancelled),
        }
    }

    /// Element-wise sum of two snapshots — the portfolio's "total work"
    /// aggregate across workers.
    pub fn merged(self, other: SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions + other.decisions,
            conflicts: self.conflicts + other.conflicts,
            propagations: self.propagations + other.propagations,
            restarts: self.restarts + other.restarts,
            learned: self.learned + other.learned,
            deleted: self.deleted + other.deleted,
            minimized_lits: self.minimized_lits + other.minimized_lits,
            gc_passes: self.gc_passes + other.gc_passes,
            gc_reclaimed_words: self.gc_reclaimed_words + other.gc_reclaimed_words,
            vivified_lits: self.vivified_lits + other.vivified_lits,
            subsumed_clauses: self.subsumed_clauses + other.subsumed_clauses,
            strengthened_clauses: self.strengthened_clauses + other.strengthened_clauses,
            chrono_backtracks: self.chrono_backtracks + other.chrono_backtracks,
            oob_enqueues: self.oob_enqueues + other.oob_enqueues,
            missed_implications: self.missed_implications + other.missed_implications,
            restarts_blocked: self.restarts_blocked + other.restarts_blocked,
            rephases: self.rephases + other.rephases,
            eliminated_vars: self.eliminated_vars + other.eliminated_vars,
            elim_resolvents: self.elim_resolvents + other.elim_resolvents,
            probed_literals: self.probed_literals + other.probed_literals,
            failed_literals: self.failed_literals + other.failed_literals,
            exported_clauses: self.exported_clauses + other.exported_clauses,
            imported_clauses: self.imported_clauses + other.imported_clauses,
            imported_kept: self.imported_kept + other.imported_kept,
            exhausted_conflicts: self.exhausted_conflicts + other.exhausted_conflicts,
            exhausted_propagations: self.exhausted_propagations + other.exhausted_propagations,
            exhausted_deadline: self.exhausted_deadline + other.exhausted_deadline,
            exhausted_memory: self.exhausted_memory + other.exhausted_memory,
            exhausted_cancelled: self.exhausted_cancelled + other.exhausted_cancelled,
        }
    }

    /// The exhaustion reason of the most recent give-up recorded in
    /// this snapshot view, preferring the per-call [`SolverStats::since`]
    /// delta: with at most one give-up per solve call, exactly one
    /// counter is non-zero in a per-call delta. On merged/aggregate
    /// snapshots this reports the dominant (highest-count) reason.
    pub fn exhaustion_reason(&self) -> Option<crate::ExhaustionReason> {
        use crate::ExhaustionReason as R;
        [
            (self.exhausted_conflicts, R::Conflicts),
            (self.exhausted_propagations, R::Propagations),
            (self.exhausted_deadline, R::Deadline),
            (self.exhausted_memory, R::Memory),
            (self.exhausted_cancelled, R::Cancelled),
        ]
        .into_iter()
        .filter(|&(n, _)| n > 0)
        .max_by_key(|&(n, _)| n)
        .map(|(_, r)| r)
    }
}

/// The CDCL solver. See the [module docs](self) for the feature list.
///
/// ```
/// use sat::{Backend, Budget, CdclSolver, Cnf, Lit, Var};
/// let mut cnf = Cnf::new(1);
/// cnf.add_clause([Lit::pos(Var(0))]);
/// let out = CdclSolver::default().solve_with(&cnf, &[], &Budget::default());
/// assert!(out.is_sat());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CdclSolver {
    /// Configuration used for subsequent solves. For the incremental
    /// API the configuration is captured when the session starts (the
    /// first `new_var`/`add_clause`/`solve_assuming` call).
    pub config: CdclConfig,
    /// Statistics of the most recent *one-shot* solve
    /// ([`Backend::solve_with`]) only. Incremental
    /// ([`CdclSolver::solve_assuming`]) counters live in the session
    /// and are read via [`CdclSolver::session_stats`] — the two never
    /// mix, so interleaving one-shot and session solves cannot corrupt
    /// either side's deltas.
    pub stats: SolverStats,
    /// The persistent incremental session, created lazily. One-shot
    /// [`Backend::solve_with`] calls use a throwaway state and leave
    /// the session untouched.
    session: Option<State>,
}

impl CdclSolver {
    /// Creates a solver with the given configuration.
    pub fn with_config(config: CdclConfig) -> Self {
        CdclSolver {
            config,
            stats: SolverStats::default(),
            session: None,
        }
    }

    fn session_mut(&mut self) -> &mut State {
        if self.session.is_none() {
            self.session = Some(State::empty(self.config.clone()));
        }
        self.session.as_mut().expect("session just created") // lint:allow(no-panic)
    }

    /// Number of variables in the incremental session (0 before the
    /// session starts).
    pub fn num_vars(&self) -> usize {
        self.session.as_ref().map_or(0, |s| s.num_vars)
    }

    /// Allocates a fresh variable in the incremental session. May be
    /// called between solves; all per-variable solver state grows in
    /// step.
    pub fn new_var(&mut self) -> Var {
        self.session_mut().new_var()
    }

    /// Adds a clause to the incremental session. Callable before and
    /// between solves: the solver first backtracks to decision level 0,
    /// then simplifies the clause against the root-level assignment.
    /// Variables are grown on demand.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        let lits: Vec<Lit> = lits.into_iter().collect();
        let state = self.session_mut();
        let needed = lits.iter().map(|l| l.var().index() + 1).max().unwrap_or(0);
        state.ensure_vars(needed);
        state.add_clause_checked(&lits);
    }

    /// Bulk-loads a formula into the incremental session (variables
    /// first, then every clause).
    pub fn add_cnf(&mut self, cnf: &Cnf) {
        self.session_mut().load_cnf(cnf);
    }

    /// Solves the incremental session under `assumptions` within
    /// `budget` (budget limits are per call). The clause database,
    /// learnt clauses, activities and phases persist to the next call.
    ///
    /// # Panics
    ///
    /// Panics if an assumption names a variable the session does not
    /// have (call [`CdclSolver::new_var`]/[`CdclSolver::add_clause`]
    /// first).
    pub fn solve_assuming(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveOutcome {
        self.session_mut().solve(assumptions, budget)
    }

    /// Cumulative statistics of the incremental session (zero before
    /// it starts, monotone across `solve_assuming` calls). The
    /// [`CdclSolver::stats`] field mirrors one-shot
    /// [`Backend::solve_with`] calls only, so the two sources never
    /// mix; this accessor is the baseline for
    /// [`SolverStats::since`] per-call deltas.
    pub fn session_stats(&self) -> SolverStats {
        self.session
            .as_ref()
            .map_or_else(SolverStats::default, |s| s.stats)
    }

    /// After [`CdclSolver::solve_assuming`] returned
    /// [`SolveOutcome::Unsat`]: the subset of the assumptions the
    /// refutation used — the session's clauses are unsatisfiable under
    /// these assumptions alone. Empty when the clauses are
    /// contradictory without any assumption. Cleared by the next solve.
    pub fn final_assumption_conflict(&self) -> &[Lit] {
        self.session
            .as_ref()
            .map_or(&[], |s| s.assumption_conflict.as_slice())
    }

    /// Declares that `v` must survive inprocessing: bounded variable
    /// elimination will never resolve it away. Callers that will
    /// mention a variable in *future* `add_clause`/`solve_assuming`
    /// calls (activation literals of a layered encoding, selector
    /// variables) must freeze it up front; variables of the current
    /// call's assumptions are protected automatically. Freezing an
    /// already eliminated variable reintroduces it first. Grows the
    /// variable space on demand.
    pub fn freeze(&mut self, v: Var) {
        let state = self.session_mut();
        state.ensure_vars(v.index() + 1);
        state.freeze_var(v);
    }

    /// Releases a [`CdclSolver::freeze`] declaration: `v` becomes
    /// eligible for elimination again at the next inprocessing pass.
    ///
    /// # Panics
    ///
    /// Panics if the session does not have `v`.
    pub fn melt(&mut self, v: Var) {
        let state = self.session_mut();
        assert!(v.index() < state.num_vars, "melt of unknown variable {v}");
        state.frozen[v.index()] = false;
    }

    /// Enables DRAT proof logging on the incremental session. Must be
    /// called *before* any clause is added — the log must capture every
    /// clause the solver ever holds to be checkable. Logging is purely
    /// observational: it never changes a search decision, so enabling
    /// it leaves conflict/propagation trajectories bit-identical.
    pub fn enable_proof(&mut self) {
        let state = self.session_mut();
        assert!(
            state.num_added_clauses == 0,
            "enable_proof must precede the session's first add_clause"
        );
        state.proof = Some(Box::default());
    }

    /// The session's proof log (`None` unless
    /// [`CdclSolver::enable_proof`] was called). After an UNSAT
    /// answer the log ends in the refutation: the empty clause for a
    /// root-level conflict, or the negation of
    /// [`CdclSolver::final_assumption_conflict`] for UNSAT under
    /// assumptions — [`crate::proof::certify_unsat`] checks both.
    pub fn proof(&self) -> Option<&ProofLog> {
        self.session.as_ref().and_then(|s| s.proof.as_deref())
    }

    /// Connects the incremental session to a clause-exchange hub as
    /// worker `worker` (its inbox index; it never publishes to itself).
    ///
    /// Exports happen as clauses are learnt — every learnt unit, and
    /// every learnt clause within `limits` — and are counted in
    /// [`SolverStats::exported_clauses`]. Imports happen only at
    /// deterministic points (entry to
    /// [`CdclSolver::solve_assuming`] and restart boundaries, both at
    /// decision level 0): each drained clause is re-verified by
    /// reverse unit propagation against the session's own database
    /// before it is attached, and logged as a derived proof step, so
    /// sharing composes with [`CdclSolver::enable_proof`] and
    /// incremental solving. A clause that fails the re-check (already
    /// satisfied at root, or not RUP here yet) is skipped —
    /// [`SolverStats::imported_kept`] vs
    /// [`SolverStats::imported_clauses`] reports the ratio.
    ///
    /// Exchange applies to the incremental session only; one-shot
    /// [`Backend::solve_with`] calls use a throwaway state and never
    /// share.
    pub fn connect_exchange(
        &mut self,
        hub: Arc<ClauseExchange>,
        worker: usize,
        limits: ShareLimits,
    ) {
        assert!(
            worker < hub.num_workers(),
            "worker index {worker} out of range for a {}-worker exchange",
            hub.num_workers()
        );
        self.session_mut().exchange = Some(ExchangeLink {
            hub,
            worker,
            limits,
        });
    }
}

impl Backend for CdclSolver {
    fn name(&self) -> &str {
        "cdcl"
    }

    fn solve_with(&mut self, cnf: &Cnf, assumptions: &[Lit], budget: &Budget) -> SolveOutcome {
        let mut state = State::new(cnf, self.config.clone());
        let outcome = state.solve(assumptions, budget);
        self.stats = state.stats;
        outcome
    }
}

/// Offset of a clause header in the arena. `ClauseRef::NONE` doubles as
/// the "no reason" marker on the trail.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct ClauseRef(u32);

impl ClauseRef {
    const NONE: ClauseRef = ClauseRef(u32::MAX);
}

/// Words of metadata preceding a clause's literals: packed
/// `len/tier/used/deleted/learnt`, LBD, and activity (f32 bits).
const HEADER_WORDS: usize = 3;
const LEARNT_BIT: u32 = 1;
const DELETED_BIT: u32 = 2;
/// 2-bit saturating `used` counter: reset to 2 when conflict analysis
/// resolves on the clause, counted down by the tier-maintenance sweep
/// of `reduce_db` — a tier2 clause reaching 0 demotes to local.
const USED_SHIFT: u32 = 2;
const USED_MASK: u32 = 0b11 << USED_SHIFT;
/// 2-bit retention tier ([`TIER_CORE`]/[`TIER_TIER2`]/[`TIER_LOCAL`]),
/// meaningful for learnt clauses only. The tier bits always agree with
/// the ref list holding the clause (an audited invariant).
const TIER_SHIFT: u32 = 4;
const TIER_MASK: u32 = 0b11 << TIER_SHIFT;
const LEN_SHIFT: u32 = 6;
/// Learnt-clause retention tiers, indexing `State::learnts`.
const TIER_CORE: usize = 0;
const TIER_TIER2: usize = 1;
const TIER_LOCAL: usize = 2;
/// Conflict interval between tiered `reduce_db` sweeps (Glucose's
/// schedule), used instead of the `max_learnts` size trigger while the
/// tier database is active.
const TIER_REDUCE_BASE: u64 = 2000;
/// Per-sweep stretch of the tiered reduce interval.
const TIER_REDUCE_STEP: u64 = 300;
/// Written into header word 0 during GC once a clause has been copied
/// out; word 1 then holds the new offset. Unreachable as a real header
/// (`alloc` caps clause length below the 26-bit field, so a real
/// header never has all length bits set).
const RELOCATED: u32 = u32::MAX;

/// The flat clause store. See the [module docs](self) for the layout.
#[derive(Clone, Debug, Default)]
struct ClauseArena {
    data: Vec<u32>,
}

impl ClauseArena {
    /// Appends a clause, returning its reference.
    fn alloc(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        let off = self.data.len();
        // 31-bit confinement leaves the top bit free for BINARY_FLAG.
        assert!(
            off + HEADER_WORDS + lits.len() < (1usize << 31),
            "clause arena exceeds 31-bit addressing"
        );
        // The length field is 26 bits wide; keeping the all-ones value
        // unreachable is what makes RELOCATED unambiguous.
        assert!(
            lits.len() < (1 << 26) - 1,
            "clause exceeds the header length field"
        );
        let header = ((lits.len() as u32) << LEN_SHIFT) | (learnt as u32 * LEARNT_BIT);
        self.data.push(header);
        self.data.push(lbd);
        self.data.push(0f32.to_bits());
        self.data.extend(lits.iter().map(|l| l.code() as u32));
        ClauseRef(off as u32)
    }

    #[inline]
    fn len(&self, c: ClauseRef) -> usize {
        (self.data[c.0 as usize] >> LEN_SHIFT) as usize
    }

    #[inline]
    fn is_learnt(&self, c: ClauseRef) -> bool {
        self.data[c.0 as usize] & LEARNT_BIT != 0
    }

    #[inline]
    fn is_deleted(&self, c: ClauseRef) -> bool {
        self.data[c.0 as usize] & DELETED_BIT != 0
    }

    fn mark_deleted(&mut self, c: ClauseRef) {
        self.data[c.0 as usize] |= DELETED_BIT;
    }

    /// Retention tier of a learnt clause (meaningless for originals).
    #[inline]
    fn tier(&self, c: ClauseRef) -> usize {
        ((self.data[c.0 as usize] & TIER_MASK) >> TIER_SHIFT) as usize
    }

    fn set_tier(&mut self, c: ClauseRef, tier: usize) {
        let h = &mut self.data[c.0 as usize];
        *h = (*h & !TIER_MASK) | ((tier as u32) << TIER_SHIFT);
    }

    /// The 2-bit `used` counter (conflict-analysis participation since
    /// the last tier-maintenance sweeps).
    #[inline]
    fn used(&self, c: ClauseRef) -> u32 {
        (self.data[c.0 as usize] & USED_MASK) >> USED_SHIFT
    }

    fn set_used(&mut self, c: ClauseRef, used: u32) {
        debug_assert!(used <= 3);
        let h = &mut self.data[c.0 as usize];
        *h = (*h & !USED_MASK) | (used << USED_SHIFT);
    }

    #[inline]
    fn lbd(&self, c: ClauseRef) -> u32 {
        self.data[c.0 as usize + 1]
    }

    fn set_lbd(&mut self, c: ClauseRef, lbd: u32) {
        self.data[c.0 as usize + 1] = lbd;
    }

    #[inline]
    fn activity(&self, c: ClauseRef) -> f32 {
        f32::from_bits(self.data[c.0 as usize + 2])
    }

    fn set_activity(&mut self, c: ClauseRef, a: f32) {
        self.data[c.0 as usize + 2] = a.to_bits();
    }

    #[inline]
    fn lit(&self, c: ClauseRef, i: usize) -> Lit {
        Lit::from_code(self.data[c.0 as usize + HEADER_WORDS + i] as usize)
    }

    #[inline]
    fn swap_lits(&mut self, c: ClauseRef, i: usize, j: usize) {
        let base = c.0 as usize + HEADER_WORDS;
        self.data.swap(base + i, base + j);
    }

    /// Copies a live clause into `dst` and leaves a forwarding address
    /// in the old slot. Part of the GC protocol (see module docs).
    fn relocate(&mut self, c: ClauseRef, dst: &mut Vec<u32>) -> ClauseRef {
        debug_assert!(!self.is_deleted(c));
        debug_assert_ne!(self.data[c.0 as usize], RELOCATED);
        let new_off = dst.len() as u32;
        let start = c.0 as usize;
        let words = HEADER_WORDS + self.len(c);
        dst.extend_from_slice(&self.data[start..start + words]);
        self.data[start] = RELOCATED;
        self.data[start + 1] = new_off;
        ClauseRef(new_off)
    }

    /// The forwarding address of `c` after relocation, or `None` if the
    /// clause was collected.
    fn forwarded(&self, c: ClauseRef) -> Option<ClauseRef> {
        if self.data[c.0 as usize] == RELOCATED {
            Some(ClauseRef(self.data[c.0 as usize + 1]))
        } else {
            None
        }
    }
}

/// Tag bit marking a watcher of a binary clause (arena offsets are
/// confined to 31 bits by `ClauseArena::alloc`). Binary clauses are
/// resolved entirely from the watcher — blocker true ⇒ satisfied,
/// blocker false ⇒ conflict, otherwise the blocker is the unit — so
/// propagation over them never touches the arena at all.
const BINARY_FLAG: u32 = 1 << 31;

#[derive(Clone, Copy, Debug)]
struct Watcher {
    /// Clause offset, with [`BINARY_FLAG`] folded into the top bit.
    tagged: u32,
    blocker: Lit,
}

impl Watcher {
    fn new(cref: ClauseRef, blocker: Lit, binary: bool) -> Watcher {
        Watcher {
            tagged: cref.0 | if binary { BINARY_FLAG } else { 0 },
            blocker,
        }
    }

    #[inline]
    fn cref(self) -> ClauseRef {
        ClauseRef(self.tagged & !BINARY_FLAG)
    }

    #[inline]
    fn is_binary(self) -> bool {
        self.tagged & BINARY_FLAG != 0
    }
}

/// Indexed max-heap ordered by VSIDS activity.
#[derive(Clone, Debug)]
struct VarOrder {
    heap: Vec<u32>,
    pos: Vec<i64>,
    activity: Vec<f64>,
}

impl VarOrder {
    fn new(n: usize) -> Self {
        VarOrder {
            heap: Vec::with_capacity(n),
            pos: vec![-1; n],
            activity: vec![0.0; n],
        }
    }

    fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] >= 0
    }

    fn insert(&mut self, v: u32) {
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len() as i64;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1);
    }

    fn pop_max(&mut self) -> Option<u32> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty"); // lint:allow(no-panic)
        self.pos[top as usize] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0);
        }
        Some(top)
    }

    fn bumped(&mut self, v: u32) {
        if self.contains(v) {
            self.sift_up(self.pos[v as usize] as usize);
        }
    }

    fn better(&self, a: u32, b: u32) -> bool {
        self.activity[a as usize] > self.activity[b as usize]
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.better(self.heap[i], self.heap[parent]) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.better(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.better(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a as i64;
        self.pos[self.heap[b] as usize] = b as i64;
    }
}

/// Whether a cooperative cancellation flag is raised. Shared by the
/// search loop's budget poll, the restart-boundary prompt exit, and
/// the inprocessing pass-boundary checks.
fn stop_requested(stop: Option<&AtomicBool>) -> bool {
    stop.is_some_and(|s| s.load(Ordering::Relaxed))
}

/// The governor's pass-boundary halt test: the stop flag or the wall
/// deadline, whichever trips first. Used between inprocessing passes,
/// elimination rounds and probing batches, so a solve that has run out
/// of time stops starting new simplification work. With neither limit
/// set this is two `Option` tests — zero-cost off.
fn governor_halt(stop: Option<&AtomicBool>, deadline: Option<Instant>) -> bool {
    stop_requested(stop) || deadline.is_some_and(|d| Instant::now() >= d)
}

/// A session's connection to a [`ClauseExchange`] hub
/// ([`CdclSolver::connect_exchange`]).
#[derive(Clone, Debug)]
struct ExchangeLink {
    hub: Arc<ClauseExchange>,
    /// This session's worker index (owns inbox `worker`, never
    /// publishes to it).
    worker: usize,
    /// Export admission bounds; import accepts everything that passes
    /// the RUP re-check.
    limits: ShareLimits,
}

#[derive(Clone, Debug)]
struct State {
    config: CdclConfig,
    stats: SolverStats,
    rng: SmallRng,
    num_vars: usize,
    arena: ClauseArena,
    /// Refs of the original (problem) clauses, in attach order.
    clauses: Vec<ClauseRef>,
    /// Refs of the live learnt clauses, split into the three retention
    /// tiers (core / tier2 / local — see the module docs). Until
    /// `tiers_active` flips, every learnt clause lives in
    /// [`TIER_LOCAL`] and the other two lists stay empty.
    learnts: [Vec<ClauseRef>; 3],
    watches: Vec<Vec<Watcher>>,
    /// Assignment value per *literal* code (`1` true, `-1` false,
    /// `0` unassigned): the blocker test in `propagate` is the hottest
    /// load in the solver, and indexing by literal makes it a single
    /// unconditional read with no sign fix-up.
    lit_val: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<ClauseRef>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    order: VarOrder,
    polarity: Vec<bool>,
    var_inc: f64,
    cla_inc: f64,
    max_learnts: f64,
    seen: Vec<bool>,
    /// Variables whose `seen` flag is set during the current analysis.
    to_clear: Vec<u32>,
    /// DFS stack for the recursive redundancy check, reused.
    analyze_stack: Vec<Lit>,
    /// Learnt-clause scratch, reused across conflicts.
    learnt_buf: Vec<Lit>,
    /// Scratch for the literals a partial backtrack keeps (out-of-order
    /// assignments at or below the target level), reused.
    trail_keep: Vec<Lit>,
    /// Whether out-of-order machinery is live: chronological
    /// backtracking enabled *and* past its activation-conflict gate.
    /// Until this flips, the trail is level-sorted and `propagate`
    /// skips all assertion-level bookkeeping.
    oob_active: bool,
    /// Whether the three-tier learnt database is live: `use_tiers`
    /// enabled *and* past `simplify_activation_conflicts`. Until this
    /// flips, attach/analyze/reduce keep the exact legacy single-list
    /// behavior.
    tiers_active: bool,
    /// Per-variable polarity snapshot of the deepest trail seen since
    /// the last rephase (the *target phases*).
    target_phase: Vec<bool>,
    /// Rephasing schedule (interval, kind rotation, best-trail gate).
    rephase: RephaseSched,
    /// Per-level generation stamps for LBD computation.
    lbd_stamp: Vec<u32>,
    lbd_gen: u32,
    /// Spare arena buffer swapped in by each GC pass.
    gc_buf: Vec<u32>,
    /// Conflict count that triggers the next inprocessing pass (checked
    /// at restart boundaries, where the solver sits at level 0).
    next_inprocess: u64,
    /// Inprocessing passes run so far — stretches the interval.
    inprocess_passes: u64,
    /// Conflict count that re-arms the subsumption stage
    /// ([`CdclConfig::subsume_conflict_gap`]).
    next_subsume: u64,
    /// Conflict count that re-arms the vivification stage
    /// ([`CdclConfig::vivify_conflict_gap`]).
    next_vivify: u64,
    /// Conflict count that triggers the next tier maintenance +
    /// local-tier halving while the tier database is active (0 until
    /// the first post-activation check seeds it).
    next_reduce: u64,
    /// Tiered `reduce_db` sweeps run so far — stretches the interval.
    reductions: u64,
    /// Rotation cursor into the vivification candidate order, persisted
    /// across passes so budget-limited passes cover the whole database
    /// over time instead of re-probing the same head clauses.
    vivify_cursor: usize,
    /// Clauses attached since the last subsumption pass (learnt,
    /// strengthened, vivified, user-added) — the work list of
    /// touched-only subsumption. Rewritten through forwarding
    /// addresses by GC like every other ref list.
    touched: Vec<ClauseRef>,
    /// Subsumption passes run so far — schedules the periodic full
    /// sweep under `subsumption_touched_only`.
    subsumption_passes: u64,
    /// True while vivification probes decisions it will immediately
    /// undo; suppresses phase saving so probing cannot pollute the
    /// search's saved polarities.
    phase_probing: bool,
    root_unsat: bool,
    /// Per-variable freeze marks ([`CdclSolver::freeze`]): frozen
    /// variables are never eliminated.
    frozen: Vec<bool>,
    /// Per-variable elimination marks: an eliminated variable has no
    /// live clause mentioning it, is never decided on, and stays
    /// unassigned until reconstruction (or reintroduction) — all
    /// audited invariants.
    eliminated: Vec<bool>,
    /// Transient per-solve marks of the current call's assumption
    /// variables — protected from elimination like frozen ones, but
    /// cleared (via `last_assumed`) when the next call starts, so a
    /// variable assumed once is not fenced off forever.
    assumed: Vec<bool>,
    /// The variables marked in `assumed`, for O(assumptions) clearing.
    last_assumed: Vec<u32>,
    /// Elimination stack for model reconstruction: one frame per
    /// eliminated variable holding every original clause that
    /// mentioned it, in elimination order. SAT models are completed by
    /// walking the stack in reverse (see [`elim`]); reintroduction
    /// pops frames LIFO.
    elim_stack: Vec<ElimFrame>,
    /// Per-variable retry marks for bounded variable elimination:
    /// `true` means the variable's *original* occurrences changed since
    /// its last elimination attempt, so the next pass should retry it.
    /// Every site that adds, deletes, strengthens, or promotes an
    /// original clause marks its variables — steady-state passes then
    /// skip the (vast) quiesced majority instead of re-running the
    /// quadratic resolve-and-check on every variable.
    elim_dirty: Vec<bool>,
    /// Rotation cursor into the probe candidate order, persisted across
    /// passes like `vivify_cursor`.
    probe_cursor: usize,
    /// Clauses added so far (before root simplification) — sizes the
    /// learnt-clause budget at each solve.
    num_added_clauses: usize,
    /// The failing assumption subset of the last UNSAT solve.
    assumption_conflict: Vec<Lit>,
    /// DRAT proof trace ([`CdclSolver::enable_proof`]): every clause
    /// the solver holds, derives or deletes, in order. `None` (the
    /// default) makes every hook a single branch; logging never
    /// influences the search.
    proof: Option<Box<ProofLog>>,
    /// Clause-exchange connection, if this session participates in a
    /// sharing portfolio. `None` (the default) keeps every hook a
    /// single branch, exactly like proof logging.
    exchange: Option<ExchangeLink>,
    /// Whether the deep state auditor is active (`CdclConfig::audit` or
    /// `LASSYNTH_AUDIT=1`); sampled once at construction.
    audit_on: bool,
    /// Count of throttled audit checkpoints reached, compared against
    /// `CdclConfig::audit_interval`.
    audit_tick: u64,
    /// Armed fault-injection plan (`CdclConfig::fault_plan` or
    /// `LASSYNTH_FAULT`, filtered by seed); sampled once at
    /// construction, exactly like the auditor switch.
    fault: Option<FaultPlan>,
    /// One-shot latch: a fired fault never fires again in the session
    /// (so e.g. a simulated arena-growth failure leaves the session
    /// sound for a re-solve).
    fault_fired: bool,
}

impl State {
    /// An empty incremental session: no variables, no clauses. Grown by
    /// [`State::new_var`]/[`State::add_clause_checked`].
    fn empty(config: CdclConfig) -> State {
        let rng = SmallRng::seed_from_u64(config.seed);
        let max_learnts = config.max_learnts_floor;
        let next_inprocess = config.inprocess_interval;
        let rephase = RephaseSched::new(&config);
        let audit_on = config.audit || audit::env_enabled();
        let fault = config
            .fault_plan
            .or_else(FaultPlan::from_env)
            .filter(|plan| plan.applies_to(config.seed));
        State {
            config,
            stats: SolverStats::default(),
            rng,
            num_vars: 0,
            arena: ClauseArena::default(),
            clauses: Vec::new(),
            learnts: [Vec::new(), Vec::new(), Vec::new()],
            watches: Vec::new(),
            lit_val: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            order: VarOrder::new(0),
            polarity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            max_learnts,
            seen: Vec::new(),
            to_clear: Vec::new(),
            analyze_stack: Vec::new(),
            learnt_buf: Vec::new(),
            trail_keep: Vec::new(),
            oob_active: false,
            tiers_active: false,
            target_phase: Vec::new(),
            rephase,
            lbd_stamp: vec![0],
            lbd_gen: 0,
            gc_buf: Vec::new(),
            next_inprocess,
            inprocess_passes: 0,
            next_subsume: 0,
            next_vivify: 0,
            next_reduce: 0,
            reductions: 0,
            vivify_cursor: 0,
            touched: Vec::new(),
            subsumption_passes: 0,
            phase_probing: false,
            root_unsat: false,
            frozen: Vec::new(),
            eliminated: Vec::new(),
            assumed: Vec::new(),
            last_assumed: Vec::new(),
            elim_stack: Vec::new(),
            elim_dirty: Vec::new(),
            probe_cursor: 0,
            num_added_clauses: 0,
            assumption_conflict: Vec::new(),
            proof: None,
            exchange: None,
            audit_on,
            audit_tick: 0,
            fault,
            fault_fired: false,
        }
    }

    fn new(cnf: &Cnf, config: CdclConfig) -> State {
        let mut st = State::empty(config);
        st.load_cnf(cnf);
        st
    }

    fn load_cnf(&mut self, cnf: &Cnf) {
        self.ensure_vars(cnf.num_vars());
        let arena_estimate: usize = cnf.iter().map(|c| c.len() + HEADER_WORDS).sum();
        self.arena.data.reserve(arena_estimate);
        self.clauses.reserve(cnf.num_clauses());
        for clause in cnf {
            self.add_clause_checked(clause);
            if self.root_unsat {
                break;
            }
        }
    }

    /// Allocates a fresh variable, growing every per-variable structure
    /// (callable between solves).
    fn new_var(&mut self) -> Var {
        let v = self.num_vars;
        self.num_vars += 1;
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.lit_val.push(0);
        self.lit_val.push(0);
        self.level.push(0);
        self.reason.push(ClauseRef::NONE);
        self.polarity.push(false);
        self.target_phase.push(false);
        self.seen.push(false);
        self.frozen.push(false);
        self.eliminated.push(false);
        self.assumed.push(false);
        self.elim_dirty.push(true);
        // One stamp per possible decision level (0..=num_vars).
        self.lbd_stamp.push(0);
        self.order.pos.push(-1);
        // Tiny random jitter diversifies runs across seeds.
        let jitter = self.rng.random_range(0.0..1e-6);
        self.order.activity.push(jitter);
        self.order.insert(v as u32);
        Var(v as u32)
    }

    fn ensure_vars(&mut self, n: usize) {
        while self.num_vars < n {
            self.new_var();
        }
    }

    /// Adds a clause between solves: backtracks to level 0 first, then
    /// root-simplifies and attaches. A clause mentioning an eliminated
    /// variable reintroduces it (and, LIFO, everything eliminated
    /// after it) before the clause attaches. A root-level
    /// contradiction latches `root_unsat` permanently.
    fn add_clause_checked(&mut self, lits: &[Lit]) {
        if self.root_unsat {
            // A root-level contradiction is permanent, but a clause
            // arriving after it is still a well-defined part of the
            // session's formula: count it and log it as an input
            // (conjoining a clause to an unsatisfiable set keeps it
            // unsatisfiable), without simplifying it against the
            // contradictory trail or touching eliminated variables.
            self.num_added_clauses += 1;
            self.proof_add_input(lits);
            return;
        }
        self.cancel_until(0);
        for &l in lits {
            if self.eliminated[l.var().index()] {
                self.restore_var(l.var().index());
                if self.root_unsat {
                    self.num_added_clauses += 1;
                    self.proof_add_input(lits);
                    return;
                }
            }
        }
        self.num_added_clauses += 1;
        // Restorations above must hit the log before the new input
        // does: re-adding an eliminated clause is a RAT step whose
        // pivot must have no live resolution partner yet.
        self.proof_add_input(lits);
        if !self.add_original_clause(lits) {
            self.root_unsat = true;
        }
    }

    #[inline]
    fn value(&self, lit: Lit) -> i8 {
        self.lit_val[lit.code()]
    }

    #[inline]
    fn is_unassigned(&self, v: usize) -> bool {
        self.lit_val[2 * v] == 0
    }

    // Proof-logging hooks. Each is a single branch when logging is off
    // and never touches search state, so trajectories are identical
    // with and without a log.

    #[inline]
    fn proof_add_input(&mut self, lits: &[Lit]) {
        if let Some(p) = &mut self.proof {
            p.add_input(lits);
        }
    }

    #[inline]
    fn proof_add_derived(&mut self, lits: &[Lit]) {
        if let Some(p) = &mut self.proof {
            p.add_derived(lits);
        }
    }

    #[inline]
    fn proof_add_empty(&mut self) {
        if let Some(p) = &mut self.proof {
            p.add_derived(&[]);
        }
    }

    /// Logs the deletion of an attached clause by its current arena
    /// literals. Valid until the next GC pass compacts the arena, so
    /// every `mark_deleted` site calls this alongside the mark.
    fn proof_delete_cref(&mut self, cref: ClauseRef) {
        if self.proof.is_some() {
            let lits: Vec<Lit> = (0..self.arena.len(cref))
                .map(|k| self.arena.lit(cref, k))
                .collect();
            if let Some(p) = &mut self.proof {
                p.delete(&lits);
            }
        }
    }

    fn add_original_clause(&mut self, lits: &[Lit]) -> bool {
        // Root-level simplification: dedup, drop false lits, detect
        // tautologies and satisfied clauses.
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            if self.value(l) == 1 {
                return true; // already satisfied at root
            }
            if self.value(l) == -1 {
                continue;
            }
            if c.contains(&!l) {
                return true; // tautology
            }
            if !c.contains(&l) {
                c.push(l);
            }
        }
        match c.len() {
            0 => {
                // Every literal was false at root: the live clauses
                // refute the formula by propagation alone.
                self.proof_add_empty();
                false
            }
            1 => {
                // The root-simplified unit is RUP (the as-given clause
                // minus root-falsified literals); log it when
                // simplification actually changed something.
                if c.as_slice() != lits {
                    self.proof_add_derived(&c);
                }
                if self.value(c[0]) == -1 {
                    self.proof_add_empty();
                    return false;
                }
                if self.value(c[0]) == 0 {
                    self.enqueue(c[0], ClauseRef::NONE);
                    // Propagate eagerly so later clauses simplify more.
                    if self.propagate().is_some() {
                        self.proof_add_empty();
                        return false;
                    }
                }
                true
            }
            _ => {
                if c.as_slice() != lits {
                    self.proof_add_derived(&c);
                }
                // A new original changes its variables' resolution
                // partner sets: queue them for the next BVE pass.
                for &l in &c {
                    self.elim_dirty[l.var().index()] = true;
                }
                self.attach_clause(&c, false, 0);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        if learnt {
            self.stats.learned += 1;
        }
        self.attach_clause_quiet(lits, learnt, lbd)
    }

    /// [`State::attach_clause`] without the `learned` counter bump —
    /// inprocessing uses it to attach *replacements* of existing
    /// clauses, which are rewrites, not new derivations.
    fn attach_clause_quiet(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.arena.alloc(lits, learnt, lbd);
        let binary = lits.len() == 2;
        self.watches[lits[0].code()].push(Watcher::new(cref, lits[1], binary));
        self.watches[lits[1].code()].push(Watcher::new(cref, lits[0], binary));
        if learnt {
            // Route by LBD once the tier database is live; until then
            // everything goes to local (the legacy single list). A
            // fresh learnt starts with a full `used` countdown — it
            // just participated in the conflict that derived it.
            let tier = if self.tiers_active {
                Self::tier_for_lbd(lbd)
            } else {
                TIER_LOCAL
            };
            self.arena.set_tier(cref, tier);
            if self.tiers_active {
                self.arena.set_used(cref, 2);
            }
            self.learnts[tier].push(cref);
        } else {
            self.clauses.push(cref);
        }
        // Every freshly attached clause (learnt, strengthened, vivified
        // or user-added) is new subsumption evidence: queue it for the
        // next touched-only pass.
        self.touched.push(cref);
        cref
    }

    /// Removes the two watchers of an attached clause. Inprocessing
    /// detaches a clause before probing it (vivification must not let a
    /// clause propagate on itself) and immediately when marking one
    /// deleted, so `propagate` never visits a tombstone between a
    /// deletion and the GC pass that reclaims it.
    fn detach_clause(&mut self, cref: ClauseRef) {
        for k in 0..2 {
            let l = self.arena.lit(cref, k);
            let list = &mut self.watches[l.code()];
            let pos = list
                .iter()
                .position(|w| w.cref() == cref)
                .expect("attached clause has a watcher on each watched literal"); // lint:allow(no-panic)
            list.swap_remove(pos);
        }
    }

    fn enqueue(&mut self, lit: Lit, reason: ClauseRef) {
        self.enqueue_at(lit, reason, self.decision_level());
    }

    /// Assigns `lit` at an explicit assertion `level`, which may lie
    /// *below* the current decision level (an out-of-order assignment:
    /// every literal of `reason` other than `lit` must be false at
    /// levels ≤ `level`). The literal still goes to the *end* of the
    /// trail — the trail is ordered by assignment time, not by level —
    /// and a partial backtrack to any level ≥ `level` keeps it.
    fn enqueue_at(&mut self, lit: Lit, reason: ClauseRef, level: u32) {
        debug_assert_eq!(self.value(lit), 0);
        debug_assert!(level <= self.decision_level());
        if level < self.decision_level() {
            self.stats.oob_enqueues += 1;
        }
        let v = lit.var().index();
        self.lit_val[lit.code()] = 1;
        self.lit_val[(!lit).code()] = -1;
        self.level[v] = level;
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    // lint:hot-path — propagate/analyze/backtrack are the inner loop of
    // the search; every scratch buffer is preallocated and reused
    // (`std::mem::take` round-trips), so an allocation call appearing
    // below is a performance bug. `cargo run -p xtask -- lint` enforces
    // this until the matching `lint:hot-path-end` marker.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let dl = self.decision_level();
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Assertion level of implications derived from `p`. With a
            // level-sorted trail this is the decision level; once
            // out-of-order assignments exist, implications of a
            // lower-level literal assert at the maximum level of the
            // reason clause's false literals — `p`'s own level for
            // binary clauses, a clause scan for longer ones (only when
            // `p` itself is out-of-order; otherwise `p`'s literal in
            // the clause already attains the maximum).
            let p_level = self.level[p.var().index()];
            let false_lit = !p;
            let wl = false_lit.code();
            // In-place compaction: surviving watchers slide down to `j`.
            // Watchers migrating to a new literal are pushed onto that
            // literal's list, which is never `wl` (the new watch is
            // non-false while `false_lit` is false), so `n` is stable.
            let n = self.watches[wl].len();
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < n {
                let w = self.watches[wl][i];
                i += 1;
                let blocker_val = self.value(w.blocker);
                if blocker_val == 1 {
                    self.watches[wl][j] = w;
                    j += 1;
                    continue;
                }
                // Binary fast path: the blocker IS the other literal, so
                // the clause resolves without touching the arena.
                if w.is_binary() {
                    self.watches[wl][j] = w;
                    j += 1;
                    if blocker_val == -1 {
                        // Conflict: keep the remaining watchers and
                        // stop. `qhead` stays where it is — conflict
                        // handling always backtracks, and cancel_until
                        // re-queues exactly the surviving literals this
                        // propagation pass never reached.
                        while i < n {
                            let rest = self.watches[wl][i];
                            self.watches[wl][j] = rest;
                            j += 1;
                            i += 1;
                        }
                        self.watches[wl].truncate(j);
                        return Some(w.cref());
                    }
                    // The clause is {blocker, ¬p}: its only false
                    // literal is ¬p, so the blocker asserts at `p`'s
                    // level exactly.
                    self.enqueue_at(w.blocker, w.cref(), p_level);
                    continue;
                }
                let cref = w.cref();
                debug_assert!(!self.arena.is_deleted(cref), "tombstone survived GC");
                // Make sure the false literal is at position 1.
                if self.arena.lit(cref, 0) == false_lit {
                    self.arena.swap_lits(cref, 0, 1);
                }
                let first = self.arena.lit(cref, 0);
                let w_new = Watcher::new(cref, first, false);
                if first != w.blocker && self.value(first) == 1 {
                    self.watches[wl][j] = w_new;
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.arena.len(cref);
                for k in 2..len {
                    let lk = self.arena.lit(cref, k);
                    if self.value(lk) != -1 {
                        self.arena.swap_lits(cref, 1, k);
                        self.watches[lk.code()].push(w_new);
                        continue 'watchers;
                    }
                }
                // Unit or conflict.
                if self.value(first) == -1 {
                    // Conflict: keep this and the remaining watchers
                    // and stop (see the binary conflict path for why
                    // `qhead` is left alone).
                    self.watches[wl][j] = w_new;
                    j += 1;
                    while i < n {
                        let rest = self.watches[wl][i];
                        self.watches[wl][j] = rest;
                        j += 1;
                        i += 1;
                    }
                    self.watches[wl].truncate(j);
                    return Some(cref);
                }
                // Every literal but `first` is false. When `p` sits at
                // the current decision level its own literal attains
                // the maximum false level, and `first` asserts here and
                // now. When `p` is *out-of-order*, the clause implies
                // `first` at the maximum false level — if that maximum
                // lies above `p`'s level, defer the implication: watch
                // the highest-level false literal instead (its
                // falsification already had its watcher round, so the
                // clause sleeps until a backtrack unassigns it). The
                // deferral keeps out-of-order propagation *local* —
                // implications only fire at `p`'s own level — which is
                // what stops exact assertion levels from flooding low
                // levels and forcing deep conflict-level backtracks.
                if p_level != dl {
                    let mut max_k = 1;
                    let mut max_level = p_level;
                    for k in 2..len {
                        let lv = self.level[self.arena.lit(cref, k).var().index()];
                        if lv > max_level {
                            max_level = lv;
                            max_k = k;
                        }
                    }
                    if max_level > p_level {
                        self.arena.swap_lits(cref, 1, max_k);
                        let new_watch = self.arena.lit(cref, 1);
                        self.watches[new_watch.code()].push(w_new);
                        continue 'watchers;
                    }
                }
                self.watches[wl][j] = w_new;
                j += 1;
                self.enqueue_at(first, cref, p_level);
            }
            self.watches[wl].truncate(j);
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.order.activity[v] += self.var_inc;
        if self.order.activity[v] > 1e100 {
            for a in &mut self.order.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v as u32);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        if !self.arena.is_learnt(cref) {
            return;
        }
        let a = self.arena.activity(cref) + self.cla_inc as f32;
        self.arena.set_activity(cref, a);
        if a > 1e20 {
            for t in 0..self.learnts.len() {
                for i in 0..self.learnts[t].len() {
                    let c = self.learnts[t][i];
                    let scaled = self.arena.activity(c) * 1e-20;
                    self.arena.set_activity(c, scaled);
                }
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Tier bookkeeping at conflict-analysis participation (the tier
    /// database's `bump`): reset the `used` countdown and recompute the
    /// clause's LBD from the current levels, keeping the minimum —
    /// LBD improvements are what promote clauses at the next
    /// tier-maintenance sweep. Every literal of `cref` is assigned
    /// here (conflict and reason clauses both are), so the level read
    /// is total.
    fn mark_used(&mut self, cref: ClauseRef) {
        if !self.arena.is_learnt(cref) {
            return;
        }
        self.arena.set_used(cref, 2);
        self.lbd_gen = self.lbd_gen.wrapping_add(1);
        if self.lbd_gen == 0 {
            self.lbd_stamp.fill(0);
            self.lbd_gen = 1;
        }
        let mut lbd = 0u32;
        for k in 0..self.arena.len(cref) {
            let lev = self.level[self.arena.lit(cref, k).var().index()] as usize;
            if self.lbd_stamp[lev] != self.lbd_gen {
                self.lbd_stamp[lev] = self.lbd_gen;
                lbd += 1;
            }
        }
        if lbd < self.arena.lbd(cref) {
            self.arena.set_lbd(cref, lbd);
        }
    }

    /// First-UIP conflict analysis. The learnt clause is left in
    /// `self.learnt_buf` (slot 0 = asserting literal); returns
    /// (backtrack level, LBD). Resolution walks the arena by index —
    /// no clause literals are copied, and all scratch is reused.
    fn analyze(&mut self, mut confl: ClauseRef) -> (u32, u32) {
        let mut learnt = std::mem::take(&mut self.learnt_buf);
        learnt.clear();
        learnt.push(Lit::pos(Var(0))); // slot 0 = asserting lit
        self.to_clear.clear();
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        loop {
            self.bump_clause(confl);
            if self.tiers_active {
                self.mark_used(confl);
            }
            let len = self.arena.len(confl);
            for k in 0..len {
                let q = self.arena.lit(confl, k);
                // Skip the pivot when resolving on a reason clause (its
                // slot is not fixed: binary units assert from either
                // watched position).
                if p.is_some_and(|pl| q.var() == pl.var()) {
                    continue;
                }
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.to_clear.push(v as u32);
                    self.bump_var(v);
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to resolve on: the deepest *seen*
            // trail literal at the conflict level. Out-of-order
            // assignments interleave lower-level literals above
            // conflict-level ones, and those may be marked seen as
            // learnt-clause members — resolving on one would be
            // unsound, so the walk filters by level, not just by mark.
            loop {
                idx -= 1;
                let tv = self.trail[idx].var().index();
                if self.seen[tv] && self.level[tv] >= self.decision_level() {
                    break;
                }
            }
            let pl = self.trail[idx];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !pl;
                break;
            }
            p = Some(pl);
            confl = self.reason[pl.var().index()];
            debug_assert_ne!(confl, ClauseRef::NONE);
        }
        // Minimize in place: drop literals recursively implied by the
        // rest of the clause (MiniSat-style, with the abstract-level
        // filter to cut hopeless DFS walks short).
        if self.config.use_minimization {
            let abstract_levels = learnt[1..].iter().fold(0u32, |acc, l| {
                acc | (1 << (self.level[l.var().index()] & 31))
            });
            let before = learnt.len();
            let mut j = 1;
            for i in 1..learnt.len() {
                let l = learnt[i];
                if self.reason[l.var().index()] == ClauseRef::NONE
                    || !self.lit_redundant(l, abstract_levels)
                {
                    learnt[j] = l;
                    j += 1;
                }
            }
            learnt.truncate(j);
            self.stats.minimized_lits += (before - learnt.len()) as u64;
        }
        // Compute backtrack level and move that literal to slot 1.
        let mut bt = 0;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            bt = self.level[learnt[1].var().index()];
        }
        // LBD: distinct decision levels, counted with generation stamps.
        self.lbd_gen = self.lbd_gen.wrapping_add(1);
        if self.lbd_gen == 0 {
            self.lbd_stamp.fill(0);
            self.lbd_gen = 1;
        }
        let mut lbd = 0u32;
        for &l in &learnt {
            let lev = self.level[l.var().index()] as usize;
            if self.lbd_stamp[lev] != self.lbd_gen {
                self.lbd_stamp[lev] = self.lbd_gen;
                lbd += 1;
            }
        }
        // Clear every seen flag marked during this analysis (including
        // literals dropped by minimization).
        while let Some(v) = self.to_clear.pop() {
            self.seen[v as usize] = false;
        }
        self.learnt_buf = learnt;
        (bt, lbd)
    }

    /// A literal is redundant in the learnt clause if, transitively,
    /// every literal of its reason is seen, at level 0, or redundant
    /// itself (iterative DFS over reasons). `abstract_levels` is a
    /// 32-bit Bloom filter of the clause's decision levels: a reason
    /// literal whose level is not even possibly in the clause ends the
    /// search immediately. Marks made along a failed branch are rolled
    /// back; marks on a successful branch stay (those literals are
    /// implied, so later checks may treat them as seen).
    fn lit_redundant(&mut self, l: Lit, abstract_levels: u32) -> bool {
        debug_assert!(self.analyze_stack.is_empty());
        self.analyze_stack.push(l);
        let top = self.to_clear.len();
        while let Some(pl) = self.analyze_stack.pop() {
            let r = self.reason[pl.var().index()];
            debug_assert_ne!(r, ClauseRef::NONE);
            for k in 0..self.arena.len(r) {
                let q = self.arena.lit(r, k);
                if q.var() == pl.var() {
                    continue;
                }
                let v = q.var().index();
                if self.seen[v] || self.level[v] == 0 {
                    continue;
                }
                if self.reason[v] != ClauseRef::NONE
                    && (1u32 << (self.level[v] & 31)) & abstract_levels != 0
                {
                    self.seen[v] = true;
                    self.to_clear.push(v as u32);
                    self.analyze_stack.push(q);
                } else {
                    // Dead end: undo the marks of this check only.
                    while self.to_clear.len() > top {
                        let v = self.to_clear.pop().expect("non-empty") as usize; // lint:allow(no-panic)
                        self.seen[v] = false;
                    }
                    self.analyze_stack.clear();
                    return false;
                }
            }
        }
        true
    }

    /// Backtracks to `target`, unassigning every literal whose level
    /// exceeds it. Out-of-order assignments at or below `target` that
    /// sit above the cut survive: they are compacted down (preserving
    /// assignment order, so reasons always precede their implications
    /// on the trail) and re-queued for propagation — a conflict may
    /// have interrupted the propagation queue before reaching them,
    /// and re-examining their watchers is what recovers implications
    /// the backtracked levels were masking.
    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        debug_assert!(
            self.qhead >= bound,
            "queue never rewinds past a level bound"
        );
        let mut kept = std::mem::take(&mut self.trail_keep);
        kept.clear();
        // Kept literals with an original position below `qhead` were
        // fully propagated (and with exact assertion levels, every
        // implication of theirs that survives this backtrack was
        // enqueued then too); only the suffix this propagation pass
        // never reached — it may have been cut short by a conflict —
        // re-enters the queue. By position order the propagated kept
        // literals form a prefix of the compacted segment.
        let mut kept_propagated = 0usize;
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            if self.level[v] > target {
                if self.config.use_phase_saving && !self.phase_probing {
                    self.polarity[v] = !l.is_neg();
                }
                self.lit_val[l.code()] = 0;
                self.lit_val[(!l).code()] = 0;
                self.reason[v] = ClauseRef::NONE;
                self.order.insert(v as u32);
            } else {
                kept.push(l);
                if i < self.qhead {
                    kept_propagated += 1;
                }
            }
        }
        self.trail.truncate(bound);
        self.trail.extend(kept.iter().rev().copied());
        self.trail_lim.truncate(target as usize);
        self.qhead = bound + kept_propagated;
        self.trail_keep = kept;
    }
    // lint:hot-path-end

    /// MiniSat's `analyzeFinal`: the assumption `p` came back false
    /// while being applied, so the current trail (all pseudo-decision
    /// levels, no real decisions yet) implies `¬p`. Walk the
    /// implication graph backwards from `¬p`; the pseudo-decisions
    /// reached are exactly the assumptions the refutation used. Stores
    /// the subset (including `p` itself, as the caller passed them)
    /// into `assumption_conflict`.
    fn analyze_final(&mut self, p: Lit) {
        self.assumption_conflict.clear();
        self.assumption_conflict.push(p);
        let pv = p.var().index();
        if self.decision_level() == 0 || self.level[pv] == 0 {
            // `¬p` is a root-level fact: the formula alone refutes `p`.
            // (Out-of-order root units mean this can happen even while
            // earlier assumptions hold decision levels open.)
            return;
        }
        self.seen[pv] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            if !self.seen[v] {
                continue;
            }
            let r = self.reason[v];
            if r == ClauseRef::NONE {
                // A pseudo-decision: one of the caller's assumptions
                // (decisions cannot exist yet — assumptions are applied
                // before the first `decide`). With contradictory
                // assumptions this picks up `¬p` itself, yielding the
                // two-element subset `{p, ¬p}`.
                debug_assert!(self.level[v] > 0);
                self.assumption_conflict.push(l);
            } else {
                for k in 0..self.arena.len(r) {
                    let q = self.arena.lit(r, k);
                    let qv = q.var().index();
                    // Skip the pivot; reasons assert from either
                    // watched slot (binary clauses), so match by var.
                    if qv != v && self.level[qv] > 0 {
                        self.seen[qv] = true;
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[pv] = false;
    }

    fn decide(&mut self) -> Option<Lit> {
        // Occasional random decisions diversify seeds. Retry a bounded
        // number of times over assigned picks so the effective random
        // rate stays near `random_var_freq` even on a deep trail
        // (a single sample would silently fall through to VSIDS). The
        // `num_vars > 0` guard keeps the empty sample range of a
        // variable-free formula away from the rng.
        if self.num_vars > 0
            && self.config.random_var_freq > 0.0
            && self.rng.random_bool(self.config.random_var_freq)
        {
            for _ in 0..8 {
                let v = self.rng.random_range(0..self.num_vars);
                if self.is_unassigned(v) && !self.eliminated[v] {
                    return Some(self.choose_polarity(v));
                }
            }
        }
        while let Some(v) = self.order.pop_max() {
            if self.is_unassigned(v as usize) && !self.eliminated[v as usize] {
                return Some(self.choose_polarity(v as usize));
            }
        }
        None
    }

    /// Applies a scheduled rephase pass (restart boundaries only, so
    /// the reset never fights a partial assignment): saved phases are
    /// overwritten with the best-trail snapshot, their inversion, or
    /// random values, per the [`RephaseSched`] rotation.
    fn maybe_rephase(&mut self) {
        if !self.config.use_rephasing {
            return;
        }
        let Some(kind) = self.rephase.fire(&self.config, self.stats.conflicts) else {
            return;
        };
        self.stats.rephases += 1;
        match kind {
            RephaseKind::Best => self.polarity.copy_from_slice(&self.target_phase),
            RephaseKind::Invert => {
                for p in &mut self.polarity {
                    *p = !*p;
                }
            }
            RephaseKind::Random => {
                for v in 0..self.polarity.len() {
                    self.polarity[v] = self.rng.random_bool(0.5);
                }
            }
        }
    }

    fn choose_polarity(&mut self, v: usize) -> Lit {
        let mut pol = self.polarity[v];
        if self.config.random_polarity_freq > 0.0
            && self.rng.random_bool(self.config.random_polarity_freq)
        {
            pol = !pol;
        }
        Lit::new(Var(v as u32), !pol)
    }

    /// Highest decision level among a clause's literals — the level a
    /// falsified clause actually conflicts at, which can lie below the
    /// current decision level once out-of-order assignments exist.
    fn max_level_in(&self, cref: ClauseRef) -> u32 {
        (0..self.arena.len(cref))
            .map(|k| self.level[self.arena.lit(cref, k).var().index()])
            .max()
            .expect("clauses are non-empty") // lint:allow(no-panic)
    }

    /// If exactly one literal of the falsified clause sits at `level`,
    /// returns it. Such a "conflict" is really a missed lower-level
    /// implication: below `level` the clause is unit on that literal.
    fn lone_literal_at(&self, cref: ClauseRef, level: u32) -> Option<Lit> {
        let mut lone = None;
        for k in 0..self.arena.len(cref) {
            let l = self.arena.lit(cref, k);
            if self.level[l.var().index()] == level {
                if lone.is_some() {
                    return None;
                }
                lone = Some(l);
            }
        }
        lone
    }

    /// Moves `l` into watched slot 0 of `cref` so the clause can serve
    /// as the reason of `l` (the lock-detection invariant; binary
    /// clauses may assert from either slot). Rewires the watcher lists
    /// when `l` was not watched at all.
    fn ensure_watched_first(&mut self, cref: ClauseRef, l: Lit) {
        if self.arena.lit(cref, 0) == l {
            return;
        }
        if self.arena.lit(cref, 1) == l {
            if self.arena.len(cref) > 2 {
                // Swapping the two watched slots leaves the watched set
                // (and hence both watcher lists) unchanged.
                self.arena.swap_lits(cref, 0, 1);
            }
            return;
        }
        let old = self.arena.lit(cref, 0);
        let list = &mut self.watches[old.code()];
        let pos = list
            .iter()
            .position(|w| w.cref() == cref)
            .expect("attached clause has a watcher on each watched literal"); // lint:allow(no-panic)
        list.swap_remove(pos);
        let k = (2..self.arena.len(cref))
            .find(|&k| self.arena.lit(cref, k) == l)
            .expect("literal is in the clause"); // lint:allow(no-panic)
        self.arena.swap_lits(cref, 0, k);
        let blocker = self.arena.lit(cref, 1);
        self.watches[l.code()].push(Watcher::new(cref, blocker, false));
    }

    /// A clause is locked while it is the reason of a trail literal.
    /// The asserting literal of a reason clause is always one of the
    /// two watched slots (binary clauses assert from either), so no
    /// side table is needed.
    fn is_locked(&self, cref: ClauseRef) -> bool {
        (0..2).any(|k| {
            let l = self.arena.lit(cref, k);
            self.value(l) == 1 && self.reason[l.var().index()] == cref
        })
    }

    /// Total live learnt clauses across the three tiers.
    fn num_learnts(&self) -> usize {
        self.learnts.iter().map(Vec::len).sum()
    }

    /// The retention tier a learnt clause's LBD assigns it to.
    fn tier_for_lbd(lbd: u32) -> usize {
        match lbd {
            0..=3 => TIER_CORE,
            4..=6 => TIER_TIER2,
            _ => TIER_LOCAL,
        }
    }

    /// Tier-maintenance sweep, run at each `reduce_db` while the tier
    /// database is live: re-files every learnt clause from its header
    /// LBD (promotion on improvement — core is never left again) and
    /// counts down the `used` countdown of tier2 clauses, demoting
    /// those that sat out two consecutive sweeps to local.
    fn tier_maintenance(&mut self) {
        let all: Vec<ClauseRef> = self.learnts.iter().flatten().copied().collect();
        for list in &mut self.learnts {
            list.clear();
        }
        for c in all {
            let by_lbd = Self::tier_for_lbd(self.arena.lbd(c));
            // `min` promotes (LBD only improves) and keeps core sticky.
            let mut tier = self.arena.tier(c).min(by_lbd);
            if tier == TIER_TIER2 {
                let used = self.arena.used(c);
                if used == 0 {
                    tier = TIER_LOCAL;
                } else {
                    self.arena.set_used(c, used - 1);
                }
            }
            self.arena.set_tier(c, tier);
            self.learnts[tier].push(c);
        }
    }

    /// Halves the deletable learnt clauses and immediately
    /// garbage-collects the arena. With the tier database live, a
    /// maintenance sweep re-files the tiers first and only the local
    /// tier is halved, lowest activity first; before activation the
    /// classic single-list policy applies (worst LBD, then lowest
    /// activity, sparing everything with LBD ≤ 3).
    fn reduce_db(&mut self) {
        if self.tiers_active {
            self.tier_maintenance();
        }
        let tiers_active = self.tiers_active;
        let mut candidates: Vec<ClauseRef> = self.learnts[TIER_LOCAL]
            .iter()
            .copied()
            .filter(|&c| {
                self.arena.len(c) > 2
                    && (tiers_active || self.arena.lbd(c) > 3)
                    && !self.is_locked(c)
            })
            .collect();
        candidates.sort_by(|&a, &b| {
            let by_activity = self
                .arena
                .activity(a)
                .partial_cmp(&self.arena.activity(b))
                .unwrap_or(std::cmp::Ordering::Equal);
            if tiers_active {
                by_activity
            } else {
                self.arena.lbd(b).cmp(&self.arena.lbd(a)).then(by_activity)
            }
        });
        let remove = candidates.len() / 2;
        for &c in candidates.iter().take(remove) {
            self.proof_delete_cref(c);
            self.arena.mark_deleted(c);
            self.stats.deleted += 1;
        }
        self.max_learnts *= 1.1;
        self.collect_garbage();
    }

    /// Compacts the arena, dropping marked clauses and rewriting every
    /// clause reference (ref lists, watchers, trail reasons) through
    /// forwarding addresses. See the GC protocol in the module docs.
    fn collect_garbage(&mut self) {
        let old_words = self.arena.data.len();
        let mut dst = std::mem::take(&mut self.gc_buf);
        dst.clear();
        dst.reserve(old_words);
        // 1. Copy live clauses, leaving forwarding addresses behind.
        //    Originals are never marked, but the check keeps the pass
        //    uniform (future preprocessing may delete originals too).
        let mut clauses = std::mem::take(&mut self.clauses);
        clauses.retain_mut(|c| {
            if self.arena.is_deleted(*c) {
                return false;
            }
            *c = self.arena.relocate(*c, &mut dst);
            true
        });
        self.clauses = clauses;
        // Tier order (core, tier2, local) keeps the pre-activation
        // layout identical to the legacy single list: the first two
        // tiers are empty until the tier database activates.
        let mut learnts = std::mem::take(&mut self.learnts);
        for list in &mut learnts {
            list.retain_mut(|c| {
                if self.arena.is_deleted(*c) {
                    return false;
                }
                *c = self.arena.relocate(*c, &mut dst);
                true
            });
        }
        self.learnts = learnts;
        // The touched work list forwards like the ref lists (its
        // entries were relocated above); collected clauses drop out.
        let mut touched = std::mem::take(&mut self.touched);
        touched.retain_mut(|c| match self.arena.forwarded(*c) {
            Some(nc) => {
                *c = nc;
                true
            }
            None => false,
        });
        self.touched = touched;
        // 2a. Rewrite watchers; watchers of collected clauses drop here.
        for list in &mut self.watches {
            list.retain_mut(|w| match self.arena.forwarded(w.cref()) {
                Some(nc) => {
                    *w = Watcher::new(nc, w.blocker, w.is_binary());
                    true
                }
                None => false,
            });
        }
        // 2b. Rewrite trail reasons (always locked, hence always live).
        for &l in &self.trail {
            let r = &mut self.reason[l.var().index()];
            if *r != ClauseRef::NONE {
                *r = self
                    .arena
                    .forwarded(*r)
                    .expect("reason clause collected by GC"); // lint:allow(no-panic)
            }
        }
        // 3. Swap buffers; the old arena becomes the next spare.
        self.gc_buf = std::mem::replace(&mut self.arena.data, dst);
        self.stats.gc_passes += 1;
        self.stats.gc_reclaimed_words += (old_words - self.arena.data.len()) as u64;
        self.audit_checkpoint(AuditPoint::Gc);
        #[cfg(debug_assertions)]
        self.check_watcher_integrity();
    }

    /// Asserts the watcher invariants: every watcher references a live
    /// clause that watches that literal in slot 0/1, and every attached
    /// clause has exactly two watchers.
    #[cfg(any(debug_assertions, test))]
    fn check_watcher_integrity(&self) {
        let live_words: usize = self
            .clauses
            .iter()
            .chain(self.learnts.iter().flatten())
            .map(|&c| HEADER_WORDS + self.arena.len(c))
            .sum();
        assert_eq!(
            self.arena.data.len(),
            live_words,
            "arena holds exactly the live clauses"
        );
        let mut watcher_count = 0usize;
        for (code, list) in self.watches.iter().enumerate() {
            let lit = Lit::from_code(code);
            for w in list {
                watcher_count += 1;
                let c = w.cref();
                assert!(
                    (c.0 as usize) < self.arena.data.len(),
                    "watcher points into the arena"
                );
                assert!(!self.arena.is_deleted(c), "watcher on deleted clause");
                assert_eq!(
                    w.is_binary(),
                    self.arena.len(c) == 2,
                    "binary tag matches clause length"
                );
                assert!(
                    self.arena.lit(c, 0) == lit || self.arena.lit(c, 1) == lit,
                    "watched literal in slot 0/1"
                );
            }
        }
        assert_eq!(
            watcher_count,
            2 * (self.clauses.len() + self.num_learnts()),
            "every attached clause has exactly two watchers"
        );
    }

    /// Exports a freshly learnt clause to the exchange when it passes
    /// the admission limits. Learnt units always qualify — they are
    /// root facts, the cheapest and strongest thing to share.
    fn export_learnt(&mut self, lits: &[Lit], lbd: u32) {
        let Some(link) = &self.exchange else { return };
        if lits.len() > 1 && (lbd > link.limits.max_lbd || lits.len() > link.limits.max_len) {
            return;
        }
        let (hub, worker) = (Arc::clone(&link.hub), link.worker);
        // Corrupt-exchange fault: the first admitted export at or past
        // the trigger conflict is published with its first literal
        // flipped. Only the in-flight copy is corrupted — the exporter
        // keeps its own (sound) learnt, so the containment on trial is
        // the *importer's* RUP filter.
        let corrupt = self.fault.is_some_and(|plan| {
            !self.fault_fired
                && plan.kind == FaultKind::CorruptExchange
                && self.stats.conflicts >= plan.at
        });
        if corrupt {
            self.fault_fired = true;
            let mut bad = lits.to_vec();
            bad[0] = !bad[0];
            hub.publish(worker, &bad, lbd);
        } else {
            hub.publish(worker, lits, lbd);
        }
        self.stats.exported_clauses += 1;
    }

    /// Drains this worker's exchange inbox and attaches every clause
    /// that passes a local RUP re-check. Called only at decision
    /// level 0 — `solve` entry and restart boundaries — so unit
    /// imports assert as root facts, inbox contents are a
    /// deterministic function of the portfolio schedule, and the
    /// incremental invariants (everything retained is a consequence
    /// of the added clauses alone) are preserved.
    fn import_shared_clauses(&mut self) {
        if self.exchange.is_none() || self.root_unsat {
            return;
        }
        debug_assert_eq!(self.decision_level(), 0);
        let (hub, worker) = {
            let link = self.exchange.as_ref().expect("checked above"); // lint:allow(no-panic)
            (Arc::clone(&link.hub), link.worker)
        };
        for shared in hub.drain(worker) {
            if self.root_unsat {
                break;
            }
            self.stats.imported_clauses += 1;
            if self.try_import_clause(&shared.lits, shared.lbd) {
                self.stats.imported_kept += 1;
            }
        }
    }

    /// Re-verifies one imported clause by reverse unit propagation
    /// and attaches it on success; returns whether it was kept.
    ///
    /// An imported clause is entailed by the shared formula but not
    /// necessarily derivable by unit propagation from *this* session's
    /// current database, and the DRAT checker verifies each derived
    /// step against the importer's own log — so the importer replays
    /// the RUP test itself and simply skips clauses that do not pass
    /// (the exporter keeps them; nothing is lost but the shortcut).
    /// The filter runs whether or not proof logging is enabled, so
    /// certified and uncertified runs keep bit-identical trajectories.
    fn try_import_clause(&mut self, lits: &[Lit], lbd: u32) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        // Clauses cross the exchange only between workers on the same
        // formula; reject unknown variables anyway (defensive, and
        // deterministic either way).
        if lits.iter().any(|l| l.var().index() >= self.num_vars) {
            return false;
        }
        // A clause mentioning an eliminated variable reintroduces it
        // (and, LIFO, everything eliminated after it) first, exactly
        // as `add_clause_checked` does.
        for &l in lits {
            if self.eliminated[l.var().index()] {
                self.restore_var(l.var().index());
                if self.root_unsat {
                    return false;
                }
            }
        }
        // Root-level simplification, as for original clauses.
        let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.value(l) {
                1 => return false, // satisfied at root: nothing to gain
                -1 => {}
                _ => {
                    if kept.contains(&!l) {
                        return false; // tautology
                    }
                    if !kept.contains(&l) {
                        kept.push(l);
                    }
                }
            }
        }
        if kept.is_empty() {
            // Every literal is false at the root. The clause may well
            // witness unsatisfiability, but the *empty* clause is not
            // RUP here (our own root propagation has not conflicted),
            // so it cannot enter the proof log; skip it and let the
            // search refute locally.
            return false;
        }
        // RUP re-check at a pseudo-level — the vivification probe
        // pattern: assume the negation of every literal; the clause
        // is RUP iff a literal turns true (enqueueing its negation
        // would conflict) or propagation conflicts. Phase saving is
        // suspended so probing cannot pollute the search's saved
        // polarities.
        self.phase_probing = true;
        self.trail_lim.push(self.trail.len());
        let mut rup = false;
        for &l in &kept {
            match self.value(l) {
                1 => {
                    rup = true;
                    break;
                }
                -1 => {}
                _ => {
                    self.enqueue(!l, ClauseRef::NONE);
                    if self.propagate().is_some() {
                        rup = true;
                        break;
                    }
                }
            }
        }
        self.cancel_until(0);
        self.phase_probing = false;
        if !rup {
            return false;
        }
        // RUP against our database: log it, then keep it. Units
        // assert at the root (propagating to fixpoint; a contradiction
        // latches `root_unsat` with the empty clause logged). Longer
        // clauses attach as learnt — `reduce_db` may drop them later
        // like any other learnt — without bumping the `learned`
        // counter, which reports local derivations only.
        self.proof_add_derived(&kept);
        if kept.len() == 1 {
            self.assert_root_unit(kept[0]);
        } else {
            let lbd = lbd.clamp(1, kept.len() as u32);
            self.attach_clause_quiet(&kept, true, lbd);
        }
        true
    }

    /// Which budget axis (if any) has run out: conflicts, propagations
    /// and the arena memory ceiling checked on every conflict (each is
    /// one `u64` compare behind an `Option` test), wall clock and stop
    /// flag amortized to every 256th conflict. Used identically by the
    /// analysis and repair paths.
    fn budget_exhausted(
        &self,
        budget: &Budget,
        start: &Instant,
        conflicts_at_start: u64,
        propagations_at_start: u64,
    ) -> Option<ExhaustionReason> {
        if let Some(max) = budget.max_conflicts {
            if self.stats.conflicts - conflicts_at_start >= max {
                return Some(ExhaustionReason::Conflicts);
            }
        }
        if let Some(max) = budget.max_propagations {
            if self.stats.propagations - propagations_at_start >= max {
                return Some(ExhaustionReason::Propagations);
            }
        }
        if let Some(max) = budget.max_memory_words {
            if self.arena.data.len() as u64 >= max {
                return Some(ExhaustionReason::Memory);
            }
        }
        if self.stats.conflicts.is_multiple_of(256) {
            if let Some(max) = budget.max_time {
                if start.elapsed() >= max {
                    return Some(ExhaustionReason::Deadline);
                }
            }
            if let Some(stop) = &budget.stop {
                if stop.load(Ordering::Relaxed) {
                    return Some(ExhaustionReason::Cancelled);
                }
            }
        }
        None
    }

    /// Books an exhausted solve under its reason (for `--stats` and
    /// portfolio totals) and returns the matching outcome.
    fn record_exhaustion(&mut self, reason: ExhaustionReason) -> SolveOutcome {
        match reason {
            ExhaustionReason::Conflicts => self.stats.exhausted_conflicts += 1,
            ExhaustionReason::Propagations => self.stats.exhausted_propagations += 1,
            ExhaustionReason::Deadline => self.stats.exhausted_deadline += 1,
            ExhaustionReason::Memory => self.stats.exhausted_memory += 1,
            ExhaustionReason::Cancelled => self.stats.exhausted_cancelled += 1,
        }
        SolveOutcome::Unknown(reason)
    }

    /// One-shot fault triggers, checked once per conflict (a single
    /// `Option` test when no plan is armed — the off state changes no
    /// trajectory). The panic fault unwinds from here; the truncated
    /// proof freezes silently; a simulated arena-growth failure
    /// surfaces as a memory exhaustion for the caller to return. The
    /// corrupt-exchange fault fires in `export_learnt` instead.
    fn fault_tick(&mut self) -> Option<ExhaustionReason> {
        let plan = self.fault?;
        if self.fault_fired {
            return None;
        }
        match plan.kind {
            FaultKind::Panic => {
                if self.stats.conflicts >= plan.at {
                    self.fault_fired = true;
                    // lint:allow(no-panic): the panic *is* the injected fault
                    panic!(
                        "injected fault: forced panic at conflict {}",
                        self.stats.conflicts
                    );
                }
            }
            FaultKind::TruncateProof => {
                if self.stats.conflicts >= plan.at {
                    self.fault_fired = true;
                    if let Some(p) = &mut self.proof {
                        p.freeze();
                    }
                }
            }
            FaultKind::ArenaOom => {
                if self.arena.data.len() as u64 >= plan.at {
                    self.fault_fired = true;
                    return Some(ExhaustionReason::Memory);
                }
            }
            FaultKind::CorruptExchange => {}
        }
        None
    }

    fn solve(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveOutcome {
        self.assumption_conflict.clear();
        if self.root_unsat {
            return SolveOutcome::Unsat;
        }
        for a in assumptions {
            assert!(
                a.var().index() < self.num_vars,
                "assumption over unknown variable {}",
                a.var()
            );
        }
        // Incremental sessions return from `solve` at an arbitrary
        // decision level (and leave the trail fully assigned on SAT);
        // every call starts back at the root.
        self.cancel_until(0);
        // Re-mark this call's assumption variables (protecting them
        // from mid-solve elimination) and reintroduce any that a
        // previous call's inprocessing eliminated.
        while let Some(v) = self.last_assumed.pop() {
            self.assumed[v as usize] = false;
        }
        for a in assumptions {
            let v = a.var().index();
            if !self.assumed[v] {
                self.assumed[v] = true;
                self.last_assumed.push(v as u32);
            }
            if self.eliminated[v] {
                self.restore_var(v);
                if self.root_unsat {
                    return SolveOutcome::Unsat;
                }
            }
        }
        // Size the learnt budget to the clauses added so far, without
        // undoing growth from previous `reduce_db` passes.
        self.max_learnts = self
            .max_learnts
            .max((self.num_added_clauses as f64 / 3.0).max(self.config.max_learnts_floor));
        if self.propagate().is_some() {
            self.root_unsat = true;
            self.proof_add_empty();
            return SolveOutcome::Unsat;
        }
        // Deterministic import point: drain the exchange inbox before
        // the search starts (level 0, assumptions not yet applied).
        self.import_shared_clauses();
        if self.root_unsat {
            return SolveOutcome::Unsat;
        }
        let start = Instant::now();
        let conflicts_at_start = self.stats.conflicts;
        let propagations_at_start = self.stats.propagations;
        // Governor view of the wall deadline, passed into inprocessing
        // so a pass boundary can honor it like the stop flag.
        let deadline = budget.max_time.map(|t| start + t);
        let mut sched = RestartSched::new(&self.config, self.stats.restarts);
        self.oob_active = self.config.use_chrono
            && self.stats.conflicts >= self.config.chrono_activation_conflicts;
        self.tiers_active = self.config.use_tiers
            && self.stats.conflicts >= self.config.simplify_activation_conflicts;
        loop {
            if let Some(confl) = self.propagate() {
                self.audit_checkpoint(AuditPoint::Propagate);
                self.stats.conflicts += 1;
                if let Some(reason) = self.fault_tick() {
                    return self.record_exhaustion(reason);
                }
                self.oob_active = self.config.use_chrono
                    && self.stats.conflicts >= self.config.chrono_activation_conflicts;
                self.tiers_active = self.config.use_tiers
                    && self.stats.conflicts >= self.config.simplify_activation_conflicts;
                // Target-phase snapshot: remember the polarities of the
                // deepest trail seen (growth-gated so the copies stay
                // logarithmic per rephase epoch).
                if self.config.use_rephasing && self.rephase.improves(self.trail.len()) {
                    self.rephase.record(self.trail.len());
                    for &l in &self.trail {
                        self.target_phase[l.var().index()] = !l.is_neg();
                    }
                }
                let trail_at_conflict = self.trail.len();
                // With a level-sorted trail a falsified clause always
                // conflicts at the current decision level; out-of-order
                // assignments can produce conflicts whose literals all
                // live below it. Analysis must run at the true conflict
                // level, so back down to it first (the clause stays
                // falsified there).
                let conflict_level = if self.oob_active {
                    self.max_level_in(confl)
                } else {
                    self.decision_level()
                };
                if conflict_level == 0 {
                    self.root_unsat = true;
                    self.proof_add_empty();
                    return SolveOutcome::Unsat;
                }
                if self.oob_active {
                    if conflict_level < self.decision_level() {
                        self.cancel_until(conflict_level);
                        self.audit_checkpoint(AuditPoint::Backtrack);
                    }
                    // A falsified clause with a single literal at the
                    // conflict level is a *missed lower implication*:
                    // below that level the clause is unit, so there is
                    // nothing to resolve at the conflict level and the
                    // 1UIP analysis would only re-learn (a weakening
                    // of) the falsified clause itself. Resolve the
                    // conflict chronologically without that useless
                    // learning: pop just the conflict level to free the
                    // lone literal and re-propagate it from the clause
                    // that implied it all along — the recovery that
                    // makes out-of-order C-bt lose nothing (the
                    // conservative variant's lost-implications
                    // problem). The conflict still counts against the
                    // budget like any other (it is one — the repair is
                    // merely the cheapest sound way to resolve it) and
                    // is reported separately in `missed_implications`.
                    // Repairs cannot loop: each one either strictly
                    // lowers the level the next falsified clause
                    // conflicts at or yields to a real analysis.
                    if let Some(lone) = self.lone_literal_at(confl, conflict_level) {
                        self.stats.missed_implications += 1;
                        self.ensure_watched_first(confl, lone);
                        self.cancel_until(conflict_level - 1);
                        self.enqueue(lone, confl);
                        self.audit_checkpoint(AuditPoint::Backtrack);
                        if let Some(reason) = self.budget_exhausted(
                            budget,
                            &start,
                            conflicts_at_start,
                            propagations_at_start,
                        ) {
                            return self.record_exhaustion(reason);
                        }
                        continue;
                    }
                }
                let (bt, lbd) = self.analyze(confl);
                self.audit_checkpoint(AuditPoint::Analyze);
                sched.on_conflict(lbd, trail_at_conflict);
                // Chronological backtracking: when the backjump would
                // discard more than `chrono_threshold` levels, back up
                // a single level instead and keep the intermediate
                // assignments. The asserting literal asserts at the
                // backtrack level (the chronological choice: keeping
                // its implications local is what preserves the cheap
                // conflict cascade; enqueueing at the distant true
                // assertion level `bt` measured 2.5× slower on the
                // T-factory probe). Unit learnts are the exception —
                // they are root facts and assert at level 0, possibly
                // out-of-order below the kept levels.
                let dl = self.decision_level();
                let target = if self.oob_active && dl - bt > self.config.chrono_threshold.max(1) {
                    self.stats.chrono_backtracks += 1;
                    dl - 1
                } else {
                    bt
                };
                self.cancel_until(target);
                let learnt = std::mem::take(&mut self.learnt_buf);
                self.proof_add_derived(&learnt);
                self.export_learnt(&learnt, lbd);
                if learnt.len() == 1 {
                    self.enqueue_at(learnt[0], ClauseRef::NONE, 0);
                } else {
                    let cref = self.attach_clause(&learnt, true, lbd);
                    self.bump_clause(cref);
                    self.enqueue_at(learnt[0], cref, target.min(self.decision_level()));
                }
                self.learnt_buf = learnt; // hand the scratch back
                self.audit_checkpoint(AuditPoint::Backtrack);
                self.var_inc /= self.config.var_decay;
                self.cla_inc /= self.config.clause_decay;
                if let Some(reason) =
                    self.budget_exhausted(budget, &start, conflicts_at_start, propagations_at_start)
                {
                    return self.record_exhaustion(reason);
                }
            } else {
                self.audit_checkpoint(AuditPoint::Propagate);
                let decision = if self.config.use_restarts {
                    sched.decide(&self.config, self.stats.conflicts)
                } else {
                    RestartDecision::Continue
                };
                match decision {
                    RestartDecision::Restart => {
                        self.stats.restarts += 1;
                        sched.on_restart(&self.config, self.stats.restarts);
                        self.cancel_until(0);
                        self.audit_checkpoint(AuditPoint::Backtrack);
                        // Inprocessing runs at restart boundaries: the
                        // solver sits at level 0 with no assumptions
                        // applied, so everything it derives is a
                        // consequence of the clauses alone and stays
                        // sound across the incremental session.
                        self.maybe_inprocess(budget.stop.as_deref(), deadline);
                        if self.root_unsat {
                            return SolveOutcome::Unsat;
                        }
                        // The other deterministic import point: clause
                        // exchange joins inprocessing at the restart
                        // boundary, after the passes have settled the
                        // database the RUP re-check runs against.
                        self.import_shared_clauses();
                        if self.root_unsat {
                            return SolveOutcome::Unsat;
                        }
                        // A cancelled or out-of-time worker leaves
                        // promptly at the boundary instead of waiting
                        // for the 256-conflict amortized poll (it just
                        // paid for inprocessing pass-boundary checks
                        // too).
                        if stop_requested(budget.stop.as_deref()) {
                            return self.record_exhaustion(ExhaustionReason::Cancelled);
                        }
                        if deadline.is_some_and(|d| Instant::now() >= d) {
                            return self.record_exhaustion(ExhaustionReason::Deadline);
                        }
                        self.maybe_rephase();
                        // Root-level out-of-order assignments survive
                        // the backtrack with their watchers pending:
                        // reach the propagation fixpoint before
                        // deciding.
                        if self.qhead < self.trail.len() {
                            continue;
                        }
                    }
                    RestartDecision::Block => {
                        self.stats.restarts_blocked += 1;
                        sched.on_block();
                    }
                    RestartDecision::Continue => {}
                }
                // With the tier database live, reduction runs on a
                // Glucose-style conflict-interval schedule (stretching
                // by `TIER_REDUCE_STEP` per sweep) rather than waiting
                // for the size trigger: the budgeted T-factory run
                // never reaches `max_learnts` (seeded at added/3) and
                // would otherwise drag tens of thousands of stale
                // local clauses through every propagation. Core and
                // tier2 are bounded by their LBD admission instead.
                if self.config.use_clause_deletion {
                    if self.tiers_active {
                        if self.next_reduce == 0 {
                            self.next_reduce = self.stats.conflicts + TIER_REDUCE_BASE;
                        } else if self.stats.conflicts >= self.next_reduce {
                            self.reduce_db();
                            self.reductions += 1;
                            self.next_reduce = self.stats.conflicts
                                + TIER_REDUCE_BASE
                                + TIER_REDUCE_STEP * self.reductions;
                        }
                    } else if self.num_learnts() as f64 >= self.max_learnts {
                        self.reduce_db();
                    }
                }
                // Re-apply assumptions as pseudo-decisions.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.value(a) {
                        1 => {
                            // Already satisfied: still open a level so the
                            // indexing into `assumptions` stays aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        -1 => {
                            self.analyze_final(a);
                            // The probe's certificate: the negation of
                            // the failing assumption subset is RUP
                            // (propagating the core reproduces the
                            // refutation's implication cone).
                            if self.proof.is_some() {
                                let core: Vec<Lit> =
                                    self.assumption_conflict.iter().map(|&l| !l).collect();
                                self.proof_add_derived(&core);
                            }
                            return SolveOutcome::Unsat;
                        }
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, ClauseRef::NONE);
                        }
                    }
                    continue;
                }
                match self.decide() {
                    Some(lit) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(lit, ClauseRef::NONE);
                    }
                    None => {
                        self.audit_checkpoint(AuditPoint::Sat);
                        let mut values: Vec<bool> = (0..self.num_vars)
                            .map(|v| self.lit_val[2 * v] == 1)
                            .collect();
                        // Complete the model over the eliminated
                        // variables from the elimination stack (and,
                        // audited, re-check every stacked clause).
                        self.reconstruct_model(&mut values);
                        if self.audit_on {
                            self.audit_reconstruction(&values);
                        }
                        return SolveOutcome::Sat(Model::new(values));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i64) -> Lit {
        Lit::from_dimacs(i)
    }

    fn cnf(clauses: &[&[i64]]) -> Cnf {
        let mut c = Cnf::new(0);
        for cl in clauses {
            c.add_clause(cl.iter().map(|&d| lit(d)));
        }
        c
    }

    fn solve(c: &Cnf) -> SolveOutcome {
        CdclSolver::default().solve_with(c, &[], &Budget::default())
    }

    /// Pigeonhole principle: `pigeons` into `pigeons - 1` holes, UNSAT.
    fn pigeonhole(pigeons: i64) -> Cnf {
        let holes = pigeons - 1;
        let p = |i: i64, j: i64| (i - 1) * holes + j;
        let mut c = Cnf::new(0);
        for i in 1..=pigeons {
            c.add_clause((1..=holes).map(|j| lit(p(i, j))));
        }
        for j in 1..=holes {
            for a in 1..=pigeons {
                for b in (a + 1)..=pigeons {
                    c.add_clause([lit(-p(a, j)), lit(-p(b, j))]);
                }
            }
        }
        c
    }

    #[test]
    fn arena_roundtrips_clause_metadata() {
        let mut arena = ClauseArena::default();
        let a = arena.alloc(&[lit(1), lit(-2), lit(3)], false, 0);
        let b = arena.alloc(&[lit(-1), lit(2)], true, 2);
        assert_eq!(arena.len(a), 3);
        assert_eq!(arena.len(b), 2);
        assert!(!arena.is_learnt(a));
        assert!(arena.is_learnt(b));
        assert_eq!(arena.lbd(b), 2);
        assert_eq!(arena.lit(a, 1), lit(-2));
        arena.swap_lits(a, 0, 2);
        assert_eq!(arena.lit(a, 0), lit(3));
        assert_eq!(arena.lit(a, 2), lit(1));
        arena.set_activity(b, 1.5);
        assert_eq!(arena.activity(b), 1.5);
        assert!(!arena.is_deleted(b));
        arena.mark_deleted(b);
        assert!(arena.is_deleted(b));
        // Deletion does not disturb the neighbouring clause.
        assert_eq!(arena.len(a), 3);
        assert_eq!(arena.lit(b, 0), lit(-1));
    }

    #[test]
    fn arena_relocation_forwards() {
        let mut arena = ClauseArena::default();
        let a = arena.alloc(&[lit(1), lit(2), lit(3)], false, 0);
        let b = arena.alloc(&[lit(-1), lit(-2)], true, 1);
        let mut dst = Vec::new();
        // Collect `a`, keep `b`.
        arena.mark_deleted(a);
        let nb = arena.relocate(b, &mut dst);
        assert_eq!(arena.forwarded(b), Some(nb));
        assert_eq!(arena.forwarded(a), None);
        arena.data = dst;
        assert_eq!(nb.0, 0);
        assert_eq!(arena.len(nb), 2);
        assert!(arena.is_learnt(nb));
        assert_eq!(arena.lit(nb, 0), lit(-1));
        assert_eq!(arena.lit(nb, 1), lit(-2));
    }

    #[test]
    fn arena_roundtrips_tier_and_used_bits() {
        let mut arena = ClauseArena::default();
        let c = arena.alloc(&[lit(1), lit(-2)], true, 5);
        assert_eq!(arena.tier(c), TIER_CORE); // alloc zeroes the tier bits
        assert_eq!(arena.used(c), 0);
        arena.set_tier(c, TIER_TIER2);
        arena.set_used(c, 2);
        assert_eq!(arena.tier(c), TIER_TIER2);
        assert_eq!(arena.used(c), 2);
        // Neither field bleeds into its header neighbours.
        assert_eq!(arena.len(c), 2);
        assert_eq!(arena.lbd(c), 5);
        assert!(arena.is_learnt(c));
        assert!(!arena.is_deleted(c));
        arena.set_used(c, 1);
        assert_eq!(arena.used(c), 1);
        assert_eq!(arena.tier(c), TIER_TIER2);
        // Both survive relocation verbatim.
        let mut dst = Vec::new();
        let nc = arena.relocate(c, &mut dst);
        arena.data = dst;
        assert_eq!(arena.tier(nc), TIER_TIER2);
        assert_eq!(arena.used(nc), 1);
        assert_eq!(arena.lbd(nc), 5);
        assert!(arena.is_learnt(nc));
    }

    #[test]
    fn tier_for_lbd_arithmetic() {
        for (lbd, tier) in [
            (0, TIER_CORE),
            (1, TIER_CORE),
            (3, TIER_CORE),
            (4, TIER_TIER2),
            (6, TIER_TIER2),
            (7, TIER_LOCAL),
            (30, TIER_LOCAL),
        ] {
            assert_eq!(State::tier_for_lbd(lbd), tier, "lbd {lbd}");
        }
    }

    #[test]
    fn tier_maintenance_promotes_and_demotes() {
        let c = cnf(&[&[1, 2, 3]]);
        let mut st = State::new(&c, CdclConfig::default());
        st.tiers_active = true;
        let core = st.attach_clause_quiet(&[lit(1), lit(2)], true, 2);
        let t2 = st.attach_clause_quiet(&[lit(1), lit(3)], true, 5);
        let local = st.attach_clause_quiet(&[lit(2), lit(3)], true, 9);
        assert_eq!(st.arena.tier(core), TIER_CORE);
        assert_eq!(st.arena.tier(t2), TIER_TIER2);
        assert_eq!(st.arena.tier(local), TIER_LOCAL);
        assert!(st.learnts[TIER_TIER2].contains(&t2));
        // An LBD improvement (recorded by `mark_used` during analysis)
        // promotes at the next sweep.
        st.arena.set_lbd(local, 4);
        st.tier_maintenance();
        assert_eq!(st.arena.tier(local), TIER_TIER2);
        assert!(st.learnts[TIER_TIER2].contains(&local));
        // Fresh clauses carry a used countdown of 2 and survive exactly
        // two sweeps without participation; the third demotes.
        assert_eq!(st.arena.used(t2), 1);
        st.tier_maintenance();
        assert_eq!(st.arena.used(t2), 0);
        assert_eq!(st.arena.tier(t2), TIER_TIER2);
        st.tier_maintenance();
        assert_eq!(st.arena.tier(t2), TIER_LOCAL);
        assert!(st.learnts[TIER_LOCAL].contains(&t2));
        // `mark_used` resets the countdown and keeps the minimum LBD.
        st.mark_used(core);
        assert_eq!(st.arena.used(core), 2);
        assert_eq!(st.arena.lbd(core), 1); // all literals at level 0
                                           // Core is sticky: sweeps never move it.
        for _ in 0..3 {
            st.tier_maintenance();
        }
        assert_eq!(st.arena.tier(core), TIER_CORE);
        assert!(st.learnts[TIER_CORE].contains(&core));
    }

    #[test]
    fn used_bits_and_tier_lists_survive_gc() {
        let c = cnf(&[&[1, 2, 3]]);
        let mut st = State::new(&c, CdclConfig::default());
        st.tiers_active = true;
        let t2 = st.attach_clause_quiet(&[lit(1), lit(3)], true, 5);
        st.attach_clause_quiet(&[lit(1), lit(2)], true, 2);
        let doomed = st.attach_clause_quiet(&[lit(2), lit(3)], true, 9);
        st.arena.set_used(t2, 1);
        st.arena.mark_deleted(doomed);
        st.detach_clause(doomed);
        st.collect_garbage();
        assert_eq!(st.learnts[TIER_CORE].len(), 1);
        assert_eq!(st.learnts[TIER_TIER2].len(), 1);
        assert!(st.learnts[TIER_LOCAL].is_empty());
        let core = st.learnts[TIER_CORE][0];
        let t2 = st.learnts[TIER_TIER2][0];
        assert_eq!(st.arena.tier(core), TIER_CORE);
        assert_eq!(st.arena.used(core), 2);
        assert_eq!(st.arena.tier(t2), TIER_TIER2);
        assert_eq!(st.arena.used(t2), 1);
    }

    #[test]
    fn trivial_sat() {
        let c = cnf(&[&[1], &[-2]]);
        let m = solve(&c).expect_sat();
        assert!(m.value(Var(0)));
        assert!(!m.value(Var(1)));
        assert!(c.eval(&m));
    }

    #[test]
    fn trivial_unsat() {
        let c = cnf(&[&[1], &[-1]]);
        assert!(solve(&c).is_unsat());
    }

    #[test]
    fn empty_formula_is_sat() {
        assert!(solve(&Cnf::new(0)).is_sat());
        assert!(solve(&Cnf::new(5)).is_sat());
        // Also with a random-walk config: the zero-variable formula
        // must not feed an empty range to the rng (regression).
        for seed in 0..4 {
            let mut s = CdclSolver::with_config(CdclConfig::diversified(seed));
            assert!(s.solve_with(&Cnf::new(0), &[], &Budget::default()).is_sat());
        }
    }

    #[test]
    fn chain_implication_unsat() {
        // x1 ∧ (x1→x2) ∧ … ∧ (x9→x10) ∧ ¬x10
        let mut clauses: Vec<Vec<i64>> = vec![vec![1]];
        for i in 1..10 {
            clauses.push(vec![-i, i + 1]);
        }
        clauses.push(vec![-10]);
        let refs: Vec<&[i64]> = clauses.iter().map(|v| v.as_slice()).collect();
        assert!(solve(&cnf(&refs)).is_unsat());
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        assert!(solve(&pigeonhole(3)).is_unsat());
    }

    #[test]
    fn random_3sat_models_check_out() {
        use rand::rngs::SmallRng;
        let mut rng = SmallRng::seed_from_u64(42);
        for round in 0..20 {
            let n = 30;
            let m = 100; // below threshold → usually SAT
            let mut c = Cnf::new(n);
            for _ in 0..m {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    let v = rng.random_range(0..n as u32);
                    cl.push(Lit::new(Var(v), rng.random_bool(0.5)));
                }
                c.add_clause(cl);
            }
            if let SolveOutcome::Sat(model) = solve(&c) {
                assert!(c.eval(&model), "bogus model in round {round}");
            }
        }
    }

    #[test]
    fn assumptions_restrict_models() {
        let c = cnf(&[&[1, 2]]);
        let m = CdclSolver::default()
            .solve_with(&c, &[lit(-1)], &Budget::default())
            .expect_sat();
        assert!(!m.value(Var(0)));
        assert!(m.value(Var(1)));
    }

    #[test]
    fn assumptions_can_make_unsat() {
        let c = cnf(&[&[1, 2], &[-1, 2]]);
        let out = CdclSolver::default().solve_with(&c, &[lit(-2)], &Budget::default());
        assert!(out.is_unsat());
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        let c = pigeonhole(6);
        let out = CdclSolver::default().solve_with(&c, &[], &Budget::conflict_limit(10));
        assert!(matches!(out, SolveOutcome::Unknown(_)));
    }

    /// Every governor axis names itself in the verdict and in the
    /// per-reason stats counters (what `--stats` prints).
    #[test]
    fn exhaustion_reasons_are_attributed_per_axis() {
        let c = pigeonhole(6);
        let mut s = CdclSolver::default();
        let out = s.solve_with(&c, &[], &Budget::conflict_limit(10));
        assert!(matches!(
            out,
            SolveOutcome::Unknown(ExhaustionReason::Conflicts)
        ));
        assert_eq!(s.stats.exhausted_conflicts, 1);
        assert_eq!(
            s.stats.exhaustion_reason(),
            Some(ExhaustionReason::Conflicts)
        );

        let mut s = CdclSolver::default();
        let out = s.solve_with(&c, &[], &Budget::propagation_limit(20));
        assert!(matches!(
            out,
            SolveOutcome::Unknown(ExhaustionReason::Propagations)
        ));
        assert_eq!(s.stats.exhausted_propagations, 1);

        // A one-word ceiling is below any non-empty arena: the solve
        // halts on its first conflict with a memory verdict.
        let mut s = CdclSolver::default();
        let out = s.solve_with(&c, &[], &Budget::memory_limit_words(1));
        assert!(matches!(
            out,
            SolveOutcome::Unknown(ExhaustionReason::Memory)
        ));
        assert_eq!(s.stats.exhausted_memory, 1);

        let mut s = CdclSolver::default();
        let out = s.solve_with(&c, &[], &Budget::time_limit(std::time::Duration::ZERO));
        assert!(matches!(
            out,
            SolveOutcome::Unknown(ExhaustionReason::Deadline)
        ));
        assert_eq!(s.stats.exhausted_deadline, 1);
    }

    /// A memory verdict is anytime: lifting the ceiling and re-solving
    /// the same session still reaches the real verdict.
    #[test]
    fn memory_exhausted_session_recovers_on_resolve() {
        let c = pigeonhole(4);
        let mut s = CdclSolver::default();
        s.add_cnf(&c);
        let out = s.solve_assuming(&[], &Budget::memory_limit_words(1));
        assert!(matches!(
            out,
            SolveOutcome::Unknown(ExhaustionReason::Memory)
        ));
        assert!(s.solve_assuming(&[], &Budget::default()).is_unsat());
    }

    #[test]
    fn stats_populated() {
        let c = cnf(&[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2, 3]]);
        let mut s = CdclSolver::default();
        let out = s.solve_with(&c, &[], &Budget::default());
        assert!(out.is_sat());
        assert!(s.stats.propagations > 0);
    }

    #[test]
    fn seeds_yield_same_verdict() {
        let c = cnf(&[&[1, 2, 3], &[-1, -2], &[-2, -3], &[-1, -3], &[2, 3]]);
        let mut verdicts = Vec::new();
        for seed in 0..5 {
            let mut s = CdclSolver::with_config(CdclConfig::default().with_seed(seed));
            verdicts.push(s.solve_with(&c, &[], &Budget::default()).is_sat());
        }
        assert!(verdicts.iter().all(|&v| v == verdicts[0]));
    }

    #[test]
    fn diversified_configs_differ_and_stay_correct() {
        let configs: Vec<CdclConfig> = (0..4).map(CdclConfig::diversified).collect();
        // The ablated knobs genuinely differ across portfolio members.
        assert!(configs
            .iter()
            .any(|c| c.restart_base != configs[0].restart_base));
        assert!(configs.iter().any(|c| c.var_decay != configs[0].var_decay));
        let unsat = pigeonhole(4);
        let sat = cnf(&[&[1, 2], &[-1, 2], &[1, -2]]);
        for config in configs {
            let mut s = CdclSolver::with_config(config.clone());
            assert!(
                s.solve_with(&unsat, &[], &Budget::default()).is_unsat(),
                "{config:?}"
            );
            let mut s = CdclSolver::with_config(config);
            assert!(s.solve_with(&sat, &[], &Budget::default()).is_sat());
        }
    }

    #[test]
    fn ablated_configs_still_correct() {
        let configs = [
            CdclConfig {
                use_restarts: false,
                ..CdclConfig::default()
            },
            CdclConfig {
                use_phase_saving: false,
                ..CdclConfig::default()
            },
            CdclConfig {
                use_clause_deletion: false,
                ..CdclConfig::default()
            },
            CdclConfig {
                use_minimization: false,
                ..CdclConfig::default()
            },
            CdclConfig {
                random_var_freq: 0.0,
                ..CdclConfig::default()
            },
        ];
        let sat = cnf(&[&[1, 2], &[-1, 2], &[1, -2]]);
        let unsat = cnf(&[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        for cfg in configs {
            let mut s = CdclSolver::with_config(cfg.clone());
            assert!(
                s.solve_with(&sat, &[], &Budget::default()).is_sat(),
                "{cfg:?}"
            );
            let mut s = CdclSolver::with_config(cfg);
            assert!(s.solve_with(&unsat, &[], &Budget::default()).is_unsat());
        }
    }

    #[test]
    fn duplicate_and_satisfied_clauses_handled() {
        let c = cnf(&[&[1, 1, 2], &[1, -1], &[2]]);
        let m = solve(&c).expect_sat();
        assert!(m.value(Var(1)));
    }

    #[test]
    fn php65_unsat() {
        assert!(solve(&pigeonhole(6)).is_unsat());
    }

    /// A solve that triggers multiple GC passes still returns the right
    /// verdict, actually reclaims arena memory, and leaves no watcher
    /// pointing at a collected clause.
    #[test]
    fn gc_compacts_arena_and_keeps_watchers_valid() {
        let c = pigeonhole(7);
        // A tiny learnt budget forces reduce_db (and hence GC) early
        // and often.
        let config = CdclConfig {
            max_learnts_floor: 20.0,
            ..CdclConfig::default()
        };
        let mut st = State::new(&c, config);
        let out = st.solve(&[], &Budget::default());
        assert!(out.is_unsat());
        assert!(
            st.stats.gc_passes >= 2,
            "expected ≥2 GC passes, got {}",
            st.stats.gc_passes
        );
        assert!(
            st.stats.gc_reclaimed_words > 0,
            "GC reclaimed no arena memory"
        );
        // The arena holds exactly the live clauses and every watcher
        // references one of them (panics otherwise).
        st.check_watcher_integrity();
    }

    /// Builds an incremental session holding `cnf`.
    fn incremental(c: &Cnf) -> CdclSolver {
        let mut s = CdclSolver::default();
        s.add_cnf(c);
        s
    }

    #[test]
    fn incremental_clause_addition_between_solves() {
        let mut s = CdclSolver::default();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        s.add_clause([a, b]);
        let m = s.solve_assuming(&[], &Budget::default()).expect_sat();
        assert!(m.lit_true(a) || m.lit_true(b));
        // Constrain further after the solve: force ¬a, then ¬b → UNSAT.
        s.add_clause([!a]);
        let m = s.solve_assuming(&[], &Budget::default()).expect_sat();
        assert!(!m.lit_true(a) && m.lit_true(b));
        s.add_clause([!b]);
        assert!(s.solve_assuming(&[], &Budget::default()).is_unsat());
        // Root-level UNSAT is permanent and independent of assumptions.
        assert!(s.final_assumption_conflict().is_empty());
        assert!(s.solve_assuming(&[a], &Budget::default()).is_unsat());
    }

    #[test]
    fn incremental_new_vars_after_solve() {
        let mut s = CdclSolver::default();
        let a = Lit::pos(s.new_var());
        s.add_clause([a]);
        assert!(s.solve_assuming(&[], &Budget::default()).is_sat());
        let b = Lit::pos(s.new_var());
        s.add_clause([!a, b]);
        let m = s.solve_assuming(&[], &Budget::default()).expect_sat();
        assert!(m.lit_true(a) && m.lit_true(b));
        assert_eq!(s.num_vars(), 2);
    }

    #[test]
    fn incremental_assumptions_flip_per_call() {
        let c = cnf(&[&[1, 2], &[-1, 2]]);
        let mut s = incremental(&c);
        assert!(s.solve_assuming(&[lit(-2)], &Budget::default()).is_unsat());
        // The same session answers SAT once the assumption flips.
        let m = s.solve_assuming(&[lit(2)], &Budget::default()).expect_sat();
        assert!(m.lit_true(lit(2)));
        assert!(s.final_assumption_conflict().is_empty());
        // And UNSAT again, with the failing assumption reported.
        assert!(s.solve_assuming(&[lit(-2)], &Budget::default()).is_unsat());
        assert_eq!(s.final_assumption_conflict(), &[lit(-2)]);
    }

    #[test]
    fn final_conflict_on_contradictory_assumptions() {
        let c = cnf(&[&[1, 2]]);
        let mut s = incremental(&c);
        s.new_var(); // the free variable 3 the assumptions contradict on
        let out = s.solve_assuming(&[lit(3), lit(-3)], &Budget::default());
        assert!(out.is_unsat());
        let mut core = s.final_assumption_conflict().to_vec();
        core.sort();
        let mut want = vec![lit(3), lit(-3)];
        want.sort();
        assert_eq!(core, want);
    }

    #[test]
    fn final_conflict_is_a_refuting_subset() {
        // php(4,3) with one selector literal per pigeon clause: assuming
        // all selectors off restores the UNSAT pigeonhole; the reported
        // subset must itself refute.
        let holes = 3i64;
        let pigeons = 4i64;
        let p = |i: i64, j: i64| (i - 1) * holes + j;
        let sel = |i: i64| holes * pigeons + i; // selector var per pigeon
        let mut c = Cnf::new(0);
        for i in 1..=pigeons {
            let mut clause: Vec<Lit> = (1..=holes).map(|j| lit(p(i, j))).collect();
            clause.push(lit(sel(i)));
            c.add_clause(clause);
        }
        for j in 1..=holes {
            for a in 1..=pigeons {
                for b in (a + 1)..=pigeons {
                    c.add_clause([lit(-p(a, j)), lit(-p(b, j))]);
                }
            }
        }
        let assumptions: Vec<Lit> = (1..=pigeons).map(|i| lit(-sel(i))).collect();
        let mut s = incremental(&c);
        assert!(s
            .solve_assuming(&assumptions, &Budget::default())
            .is_unsat());
        let core = s.final_assumption_conflict().to_vec();
        assert!(!core.is_empty());
        assert!(core.iter().all(|l| assumptions.contains(l)), "{core:?}");
        // The subset alone refutes on a fresh solver.
        let again = CdclSolver::default().solve_with(&c, &core, &Budget::default());
        assert!(again.is_unsat());
        // Relaxing one selector makes the session SAT again.
        let relaxed: Vec<Lit> = assumptions[1..].to_vec();
        assert!(s.solve_assuming(&relaxed, &Budget::default()).is_sat());
    }

    /// Clause retention: re-solving the same hard query in one session
    /// costs (far) fewer conflicts than the first solve.
    #[test]
    fn incremental_retains_learnt_clauses() {
        let holes = 5i64;
        let p = |i: i64, j: i64| (i - 1) * holes + j;
        let sel = 31i64; // one selector guarding the last pigeon clause
        let mut c = Cnf::new(0);
        for i in 1..=6 {
            let mut clause: Vec<Lit> = (1..=holes).map(|j| lit(p(i, j))).collect();
            if i == 6 {
                clause.push(lit(sel));
            }
            c.add_clause(clause);
        }
        for j in 1..=holes {
            for a in 1..=6i64 {
                for b in (a + 1)..=6 {
                    c.add_clause([lit(-p(a, j)), lit(-p(b, j))]);
                }
            }
        }
        let mut s = incremental(&c);
        assert!(s
            .solve_assuming(&[lit(-sel)], &Budget::default())
            .is_unsat());
        let first = s.session_stats();
        assert!(s
            .solve_assuming(&[lit(-sel)], &Budget::default())
            .is_unsat());
        let second = s.session_stats().since(first);
        assert!(
            second.conflicts < first.conflicts / 2,
            "retained clauses should cut the re-solve cost: first {} vs second {}",
            first.conflicts,
            second.conflicts
        );
        // The relaxed query is SAT in the same session.
        assert!(s.solve_assuming(&[lit(sel)], &Budget::default()).is_sat());
    }

    /// One-shot `Backend::solve_with` calls overwrite the `stats`
    /// mirror but never the session's cumulative counters.
    #[test]
    fn one_shot_solves_leave_session_stats_alone() {
        let c = cnf(&[&[1, 2]]);
        let mut s = incremental(&c);
        assert!(s.solve_assuming(&[], &Budget::default()).is_sat());
        let session = s.session_stats();
        assert!(session.propagations > 0);
        let other = cnf(&[&[1], &[-1]]);
        assert!(s.solve_with(&other, &[], &Budget::default()).is_unsat());
        assert_eq!(s.session_stats(), session, "one-shot left session alone");
        // The session keeps solving (and counting) correctly after.
        assert!(s.solve_assuming(&[lit(1)], &Budget::default()).is_sat());
        assert!(s.session_stats().propagations >= session.propagations);
    }

    /// The mirror-image direction of the stats separation: session
    /// solves must never touch the one-shot `stats` snapshot either.
    #[test]
    fn session_solves_leave_one_shot_stats_alone() {
        let c = cnf(&[&[1, 2]]);
        let other = cnf(&[&[1], &[-1]]);
        let mut s = incremental(&c);
        assert!(s.solve_with(&other, &[], &Budget::default()).is_unsat());
        let one_shot = s.stats;
        assert!(s.solve_assuming(&[], &Budget::default()).is_sat());
        assert!(s.session_stats().propagations > 0);
        assert_eq!(
            s.stats, one_shot,
            "session solve must not clobber the one-shot stats mirror"
        );
    }

    /// Clauses added after the session latched a root conflict are
    /// recorded and proof-logged; the session stays UNSAT instead of
    /// simplifying against the contradictory trail.
    #[test]
    fn add_clause_after_root_conflict_is_well_defined() {
        let mut s = CdclSolver::default();
        s.enable_proof();
        let a = Lit::pos(s.new_var());
        s.add_clause([a]);
        s.add_clause([!a]);
        assert!(s.solve_assuming(&[], &Budget::default()).is_unsat());
        let logged = s.proof().unwrap().len();
        let b = Lit::pos(s.new_var());
        s.add_clause([a, b]);
        s.add_clause([!b]);
        assert!(s.solve_assuming(&[], &Budget::default()).is_unsat());
        assert!(s.solve_assuming(&[b], &Budget::default()).is_unsat());
        assert!(s.final_assumption_conflict().is_empty());
        let proof = s.proof().expect("proof enabled");
        assert_eq!(
            proof.len(),
            logged + 2,
            "post-conflict additions must be logged"
        );
        crate::proof::certify_unsat(proof, &[]).expect("root refutation certifies");
        crate::proof::certify_unsat(proof, &[b]).expect("root refutation covers any core");
    }

    /// `final_assumption_conflict` is cleared by SAT and Unknown
    /// outcomes, not just overwritten by the next UNSAT.
    #[test]
    fn assumption_conflict_clears_on_sat_and_unknown() {
        // (1 2) plus a selector-gated UNSAT pigeonhole block (7 pigeons
        // into 6 holes): assuming the selector off restores the hard
        // refutation, which cannot finish within a one-conflict budget.
        let mut c = Cnf::new(0);
        c.add_clause([lit(1), lit(2)]);
        let p = |i: i64, j: i64| 2 + (i - 1) * 6 + j;
        let sel = 2 + 7 * 6;
        for i in 1..=7 {
            c.add_clause((1..=6).map(|j| lit(p(i, j))).chain([lit(sel)]));
        }
        for j in 1..=6 {
            for a in 1..=7i64 {
                for b in (a + 1)..=7 {
                    c.add_clause([lit(-p(a, j)), lit(-p(b, j))]);
                }
            }
        }
        let mut s = incremental(&c);
        assert!(s
            .solve_assuming(&[lit(-1), lit(-2)], &Budget::default())
            .is_unsat());
        assert!(!s.final_assumption_conflict().is_empty());
        let out = s.solve_assuming(&[lit(-sel)], &Budget::conflict_limit(1));
        assert!(matches!(out, SolveOutcome::Unknown(_)), "got {out:?}");
        assert!(
            s.final_assumption_conflict().is_empty(),
            "Unknown must clear the previous core"
        );
        assert!(s
            .solve_assuming(&[lit(-1), lit(-2)], &Budget::default())
            .is_unsat());
        assert!(!s.final_assumption_conflict().is_empty());
        assert!(s.solve_assuming(&[lit(1)], &Budget::default()).is_sat());
        assert!(
            s.final_assumption_conflict().is_empty(),
            "SAT must clear the previous core"
        );
    }

    /// End-to-end certification: proof logging through search plus the
    /// full inprocessing stack on a root refutation, validated by the
    /// in-tree DRAT checker.
    #[test]
    fn proof_certifies_pigeonhole_with_aggressive_inprocessing() {
        let c = pigeonhole(6);
        let mut s = CdclSolver::with_config(aggressive_inprocessing());
        s.enable_proof();
        s.add_cnf(&c);
        assert!(s.solve_assuming(&[], &Budget::default()).is_unsat());
        let report = crate::proof::certify_unsat(
            s.proof().expect("proof on"),
            s.final_assumption_conflict(),
        )
        .expect("proof checks");
        assert!(report.refuted());
    }

    /// Certification of an assumption-level UNSAT: the proof ends in
    /// the negated failed-assumption core, and the session keeps
    /// solving (and logging) afterwards.
    #[test]
    fn proof_certifies_assumption_core() {
        let mut s = CdclSolver::default();
        s.enable_proof();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        s.add_clause([a, b]);
        assert!(s.solve_assuming(&[!a, !b], &Budget::default()).is_unsat());
        crate::proof::certify_unsat(s.proof().expect("proof on"), s.final_assumption_conflict())
            .expect("assumption core certifies");
        assert!(s.solve_assuming(&[a], &Budget::default()).is_sat());
    }

    /// Conflict budgets are per call, so a fresh budget applies to every
    /// probe of a session.
    #[test]
    fn incremental_budget_is_per_call() {
        let c = pigeonhole(7);
        let mut s = incremental(&c);
        let budget = Budget::conflict_limit(5);
        for _ in 0..3 {
            assert!(matches!(
                s.solve_assuming(&[], &budget),
                SolveOutcome::Unknown(_)
            ));
        }
        // Cumulative conflicts exceed a single call's budget.
        assert!(s.session_stats().conflicts > 5);
    }

    /// GC during an incremental session keeps every retained structure
    /// (watchers, trail reasons, clause refs) valid across subsequent
    /// solves with changing assumptions.
    #[test]
    fn incremental_gc_survives_across_calls() {
        // php(7,6) with one selector per pigeon clause: all selectors
        // off is the hard UNSAT query, relaxing one selector is SAT.
        let holes = 6i64;
        let pigeons = 7i64;
        let p = |i: i64, j: i64| (i - 1) * holes + j;
        let sel = |i: i64| holes * pigeons + i;
        let mut c = Cnf::new(0);
        for i in 1..=pigeons {
            let mut clause: Vec<Lit> = (1..=holes).map(|j| lit(p(i, j))).collect();
            clause.push(lit(sel(i)));
            c.add_clause(clause);
        }
        for j in 1..=holes {
            for a in 1..=pigeons {
                for b in (a + 1)..=pigeons {
                    c.add_clause([lit(-p(a, j)), lit(-p(b, j))]);
                }
            }
        }
        let config = CdclConfig {
            max_learnts_floor: 20.0,
            ..CdclConfig::default()
        };
        let strict: Vec<Lit> = (1..=pigeons).map(|i| lit(-sel(i))).collect();
        let mut st = State::new(&c, config);
        for round in 0..3 {
            assert!(
                st.solve(&strict, &Budget::default()).is_unsat(),
                "round {round}"
            );
            st.cancel_until(0);
            st.check_watcher_integrity();
            let relaxed: Vec<Lit> = strict[1..].to_vec();
            assert!(
                st.solve(&relaxed, &Budget::default()).is_sat(),
                "round {round}"
            );
            st.cancel_until(0);
            st.check_watcher_integrity();
        }
        assert!(st.stats.gc_passes >= 1, "GC exercised across the session");
        assert!(!st.root_unsat, "assumption UNSAT must not latch root_unsat");
    }

    /// A configuration that inprocesses at every restart boundary and
    /// restarts every other conflict — tiny instances still exercise
    /// vivification, subsumption and (with `chrono_threshold` 0)
    /// chronological backtracking.
    fn aggressive_inprocessing() -> CdclConfig {
        CdclConfig {
            inprocess_interval: 0,
            restart_base: 2,
            chrono_threshold: 0,
            chrono_activation_conflicts: 0,
            max_learnts_floor: 8.0,
            // Every pass on, including the two the reference
            // configuration leaves off.
            use_vivification: true,
            use_probing: true,
            ..CdclConfig::default()
        }
    }

    #[test]
    fn subsumption_deletes_redundant_clauses() {
        // (1 2) subsumes (1 2 3) and (1 2 4); forcing conflicts via the
        // pigeonhole part triggers the inprocessing pass.
        let mut c = pigeonhole(5);
        c.add_clause([lit(21), lit(22)]);
        c.add_clause([lit(21), lit(22), lit(23)]);
        c.add_clause([lit(21), lit(22), lit(24)]);
        let config = CdclConfig {
            use_vivification: false,
            use_chrono: false,
            ..aggressive_inprocessing()
        };
        let mut st = State::new(&c, config);
        assert!(st.solve(&[], &Budget::default()).is_unsat());
        assert!(
            st.stats.subsumed_clauses >= 2,
            "the two supersets should be subsumed: {:?}",
            st.stats
        );
        st.check_watcher_integrity();
    }

    #[test]
    fn self_subsumption_strengthens_to_unit() {
        // (¬1 2) and (1 2) resolve to the unit (2); (¬2 3) then forces 3.
        let mut c = pigeonhole(5);
        c.add_clause([lit(-21), lit(22)]);
        c.add_clause([lit(21), lit(22)]);
        c.add_clause([lit(-22), lit(23)]);
        let config = CdclConfig {
            use_vivification: false,
            use_chrono: false,
            ..aggressive_inprocessing()
        };
        let mut st = State::new(&c, config);
        assert!(st.solve(&[], &Budget::default()).is_unsat());
        assert!(
            st.stats.strengthened_clauses >= 1,
            "self-subsuming resolution should fire: {:?}",
            st.stats
        );
        st.check_watcher_integrity();
    }

    #[test]
    fn vivification_shortens_implied_clauses() {
        // (21 22) makes the tail of (21 22 23 24) unreachable: probing
        // ¬21, ¬22 conflicts, so vivification truncates the long clause.
        let mut c = pigeonhole(5);
        c.add_clause([lit(21), lit(22)]);
        c.add_clause([lit(21), lit(22), lit(23), lit(24)]);
        let config = CdclConfig {
            use_subsumption: false,
            use_chrono: false,
            ..aggressive_inprocessing()
        };
        let mut st = State::new(&c, config);
        assert!(st.solve(&[], &Budget::default()).is_unsat());
        assert!(
            st.stats.vivified_lits >= 2,
            "vivification should strip the implied tail: {:?}",
            st.stats
        );
        st.check_watcher_integrity();
    }

    /// Out-of-order enqueue below the current decision level: the
    /// literal records its assertion level, survives a partial
    /// backtrack to that level (compacted down the trail), and is
    /// re-queued for propagation exactly when this pass never reached
    /// it.
    #[test]
    fn enqueue_below_level_survives_partial_backtrack() {
        let c = cnf(&[&[1, 2, 3, 4, 5]]); // keeps vars 0..5 alive
        let mut st = State::new(&c, CdclConfig::default());
        st.propagate();
        let (a, b, u) = (lit(1), lit(2), lit(3));
        st.trail_lim.push(st.trail.len());
        st.enqueue(a, ClauseRef::NONE); // decision @1
        st.propagate();
        st.trail_lim.push(st.trail.len());
        st.enqueue(b, ClauseRef::NONE); // decision @2
        st.propagate();
        st.enqueue_at(u, ClauseRef::NONE, 1); // out-of-order @1
        assert_eq!(st.level[u.var().index()], 1);
        assert_eq!(st.stats.oob_enqueues, 1);
        let bound = st.trail_lim[1];
        st.cancel_until(1);
        // `b` (level 2) is gone, `u` (level 1) survives, compacted to
        // the old bound, and — never propagated — re-queued there.
        assert_eq!(st.value(b), 0);
        assert_eq!(st.value(u), 1);
        assert_eq!(st.decision_level(), 1);
        assert_eq!(*st.trail.last().expect("non-empty"), u);
        assert_eq!(st.qhead, bound, "unpropagated kept literal re-queued");
        // A second backtrack to the root drops it too.
        st.cancel_until(0);
        assert_eq!(st.value(u), 0);
        assert_eq!(st.qhead, st.trail.len());
    }

    /// `analyze` resolves only on conflict-level literals even when an
    /// out-of-order assignment is interleaved *above* them on the
    /// trail: the lower-level literal goes into the learnt clause (it
    /// has no reason to resolve through) and the backtrack level is its
    /// level.
    #[test]
    fn analyze_picks_true_levels_through_out_of_order_trail() {
        // R = (¬c ∨ d), K = (¬c ∨ ¬d ∨ ¬u): deciding c propagates d,
        // falsifying K once u is true out-of-order at level 1.
        let (a, b, cc, u) = (lit(1), lit(2), lit(3), lit(4));
        let c = cnf(&[&[-3, 5], &[-3, -5, -4], &[1, 2, 3, 4, 5]]);
        let mut st = State::new(&c, CdclConfig::default());
        st.propagate();
        st.trail_lim.push(st.trail.len());
        st.enqueue(a, ClauseRef::NONE); // decision @1
        st.propagate();
        st.trail_lim.push(st.trail.len());
        st.enqueue(b, ClauseRef::NONE); // decision @2
        st.propagate();
        st.trail_lim.push(st.trail.len());
        st.enqueue(cc, ClauseRef::NONE); // decision @3
                                         // Out-of-order: u asserts at level 1 but sits on the trail
                                         // *above* the level-3 decision (and above it, once c
                                         // propagates, the level-3 implication d).
        st.enqueue_at(u, ClauseRef::NONE, 1);
        let confl = st.propagate().expect("K is falsified");
        assert_eq!(st.max_level_in(confl), 3, "conflict at the true level");
        assert_eq!(
            st.lone_literal_at(confl, 3),
            None,
            "two literals at the conflict level: a real conflict"
        );
        let (bt, lbd) = st.analyze(confl);
        // 1UIP is ¬c; the other learnt literal is ¬u at its true
        // out-of-order level 1 — which is the backtrack level.
        assert_eq!(st.learnt_buf[0], !cc);
        assert_eq!(st.learnt_buf.len(), 2);
        assert_eq!(st.learnt_buf[1], !u);
        assert_eq!(bt, 1);
        assert_eq!(lbd, 2);
    }

    /// A falsified clause whose literals all sit below the current
    /// decision level is repaired as a missed implication (when unit
    /// below) rather than analyzed — and the search stays sound.
    #[test]
    fn out_of_order_solves_remain_sound_and_exercise_repairs() {
        let config = CdclConfig {
            chrono_threshold: 0,
            chrono_activation_conflicts: 0,
            restart_policy: RestartPolicy::Ema,
            restart_activation_conflicts: 0,
            ema_min_interval: 2,
            restart_base: 2,
            max_learnts_floor: 8.0,
            ..CdclConfig::default()
        };
        let mut st = State::new(&pigeonhole(7), config.clone());
        assert!(st.solve(&[], &Budget::default()).is_unsat());
        assert!(st.stats.chrono_backtracks > 0, "{:?}", st.stats);
        assert!(
            st.stats.oob_enqueues + st.stats.missed_implications > 0,
            "out-of-order machinery must fire: {:?}",
            st.stats
        );
        st.check_watcher_integrity();
        // SAT side: models stay valid under the same aggressive config.
        let sat_cnf = cnf(&[&[1, 2, 3], &[-1, -2], &[-2, -3], &[-1, -3], &[2, 3]]);
        let mut s = CdclSolver::with_config(config);
        let m = s.solve_with(&sat_cnf, &[], &Budget::default()).expect_sat();
        assert!(sat_cnf.eval(&m));
    }

    #[test]
    fn chronological_backtracking_stays_correct() {
        let config = CdclConfig {
            chrono_threshold: 0,
            chrono_activation_conflicts: 0,
            ..CdclConfig::default()
        };
        let mut st = State::new(&pigeonhole(6), config.clone());
        assert!(st.solve(&[], &Budget::default()).is_unsat());
        assert!(
            st.stats.chrono_backtracks > 0,
            "php(6,5) must trigger chronological backtracks: {:?}",
            st.stats
        );
        // And a SAT instance keeps producing valid models.
        let sat_cnf = cnf(&[&[1, 2, 3], &[-1, -2], &[-2, -3], &[-1, -3], &[2, 3]]);
        let mut s = CdclSolver::with_config(config);
        let m = s.solve_with(&sat_cnf, &[], &Budget::default()).expect_sat();
        assert!(sat_cnf.eval(&m));
    }

    /// All inprocessing features together, across an incremental
    /// session with flipping assumptions and mid-session clause
    /// additions — the invariants GC/watchers/reasons must survive.
    #[test]
    fn inprocessing_survives_incremental_sessions() {
        let holes = 5i64;
        let pigeons = 6i64;
        let p = |i: i64, j: i64| (i - 1) * holes + j;
        let sel = |i: i64| holes * pigeons + i;
        let mut c = Cnf::new(0);
        for i in 1..=pigeons {
            let mut clause: Vec<Lit> = (1..=holes).map(|j| lit(p(i, j))).collect();
            clause.push(lit(sel(i)));
            c.add_clause(clause);
        }
        for j in 1..=holes {
            for a in 1..=pigeons {
                for b in (a + 1)..=pigeons {
                    c.add_clause([lit(-p(a, j)), lit(-p(b, j))]);
                }
            }
        }
        let strict: Vec<Lit> = (1..=pigeons).map(|i| lit(-sel(i))).collect();
        let mut st = State::new(&c, aggressive_inprocessing());
        for round in 0..3 {
            assert!(
                st.solve(&strict, &Budget::default()).is_unsat(),
                "round {round}"
            );
            st.cancel_until(0);
            st.check_watcher_integrity();
            let relaxed: Vec<Lit> = strict[1..].to_vec();
            match st.solve(&relaxed, &Budget::default()) {
                SolveOutcome::Sat(m) => {
                    assert!(c.eval(&m), "round {round} model");
                    for &a in &relaxed {
                        assert!(m.lit_true(a), "round {round} assumption {a}");
                    }
                }
                other => panic!("round {round}: expected SAT, got {other:?}"),
            }
            st.cancel_until(0);
            st.check_watcher_integrity();
        }
        assert!(
            st.stats.subsumed_clauses + st.stats.strengthened_clauses + st.stats.vivified_lits > 0,
            "inprocessing should have fired: {:?}",
            st.stats
        );
        assert!(!st.root_unsat, "assumption UNSAT must not latch root_unsat");
    }

    /// Inprocessing runs between `solve_assuming` calls of the public
    /// API too, and `final_assumption_conflict` keeps refuting.
    #[test]
    fn inprocessing_preserves_assumption_cores() {
        let c = cnf(&[
            &[1, 2],
            &[-1, 2],
            &[1, -2],
            &[-1, -2, 3],
            &[-3, 4],
            &[-4, 1],
        ]);
        let mut s = CdclSolver::with_config(aggressive_inprocessing());
        s.add_cnf(&c);
        for _ in 0..4 {
            let out = s.solve_assuming(&[lit(-2)], &Budget::default());
            assert!(out.is_unsat());
            let core = s.final_assumption_conflict().to_vec();
            assert!(core.iter().all(|l| *l == lit(-2)), "{core:?}");
            let recheck = CdclSolver::default().solve_with(&c, &core, &Budget::default());
            assert!(recheck.is_unsat(), "core fails to refute");
            assert!(s.solve_assuming(&[lit(2)], &Budget::default()).is_sat());
        }
    }

    /// SAT verdicts (with model validation) survive repeated GC too.
    #[test]
    fn gc_preserves_sat_models() {
        use rand::rngs::SmallRng;
        let mut rng = SmallRng::seed_from_u64(3);
        for round in 0..5 {
            let n = 40;
            let mut c = Cnf::new(n);
            for _ in 0..150 {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    let v = rng.random_range(0..n as u32);
                    cl.push(Lit::new(Var(v), rng.random_bool(0.5)));
                }
                c.add_clause(cl);
            }
            let config = CdclConfig {
                max_learnts_floor: 10.0,
                ..CdclConfig::default()
            };
            let mut st = State::new(&c, config.clone());
            match st.solve(&[], &Budget::default()) {
                SolveOutcome::Sat(m) => assert!(c.eval(&m), "bogus model in round {round}"),
                SolveOutcome::Unsat => {
                    // Cross-check against the default configuration.
                    assert!(solve(&c).is_unsat(), "verdict flipped in round {round}");
                }
                SolveOutcome::Unknown(_) => panic!("unbounded solve returned unknown"),
            }
            st.check_watcher_integrity();
        }
    }

    /// Drives `seeds.len()` exchange-connected incremental sessions in
    /// deterministic lockstep (round-robin, fixed conflict quanta) on
    /// one thread until a worker returns a definitive verdict. The
    /// returned trace records every turn's cumulative per-worker
    /// conflict and import counters — two runs must produce it
    /// identically for the sharing design to count as deterministic.
    #[allow(clippy::type_complexity)]
    fn drive_lockstep(
        c: &Cnf,
        seeds: &[u64],
        quantum: u64,
        certify: bool,
    ) -> (
        usize,
        SolveOutcome,
        Vec<SolverStats>,
        Vec<(usize, u64, u64)>,
    ) {
        let hub = Arc::new(ClauseExchange::new(seeds.len(), 256));
        let mut workers: Vec<CdclSolver> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| {
                let mut s = CdclSolver::with_config(CdclConfig::diversified(seed));
                if certify {
                    s.enable_proof();
                }
                s.add_cnf(c);
                s.connect_exchange(Arc::clone(&hub), i, ShareLimits::default());
                s
            })
            .collect();
        let mut trace = Vec::new();
        loop {
            for i in 0..workers.len() {
                let outcome = workers[i].solve_assuming(&[], &Budget::conflict_limit(quantum));
                let stats = workers[i].session_stats();
                trace.push((i, stats.conflicts, stats.imported_clauses));
                if !matches!(outcome, SolveOutcome::Unknown(_)) {
                    if certify && outcome.is_unsat() {
                        let log = workers[i].proof().expect("proof enabled");
                        crate::proof::certify_unsat(log, workers[i].final_assumption_conflict())
                            .expect("imported-clause refutation certifies");
                    }
                    let finals = workers.iter().map(|w| w.session_stats()).collect();
                    return (i, outcome, finals, trace);
                }
            }
        }
    }

    /// Two identical lockstep sharing runs replay bit-identically:
    /// same winner, same per-turn conflict/import trace, same final
    /// stats — the determinism contract of the sharing portfolio.
    #[test]
    fn exchange_lockstep_runs_are_deterministic() {
        let c = pigeonhole(7);
        let run1 = drive_lockstep(&c, &[0, 1, 2], 200, false);
        let run2 = drive_lockstep(&c, &[0, 1, 2], 200, false);
        assert_eq!(run1.0, run2.0, "winner differs between runs");
        assert!(run1.1.is_unsat() && run2.1.is_unsat());
        assert_eq!(run1.2, run2.2, "final stats differ between runs");
        assert_eq!(run1.3, run2.3, "import/conflict trace differs");
        // Sharing actually happened: someone exported, someone
        // imported, and at least one import survived the RUP check.
        let total: SolverStats = run1
            .2
            .iter()
            .copied()
            .fold(SolverStats::default(), SolverStats::merged);
        assert!(total.exported_clauses > 0, "no clauses exported");
        assert!(total.imported_clauses > 0, "no clauses imported");
        assert!(total.imported_kept > 0, "no import survived the re-check");
    }

    /// An import-enabled session's UNSAT answer still certifies: every
    /// imported clause entered the log as a RUP step the forward
    /// checker accepts.
    #[test]
    fn exchange_unsat_with_imports_certifies() {
        let c = pigeonhole(6);
        let (_, outcome, finals, _) = drive_lockstep(&c, &[0, 1], 100, true);
        assert!(outcome.is_unsat());
        let total = finals
            .iter()
            .copied()
            .fold(SolverStats::default(), SolverStats::merged);
        assert!(
            total.imported_clauses > 0,
            "the certified run never exercised an import"
        );
    }

    fn faulted_config(kind: FaultKind, at: u64) -> CdclConfig {
        CdclConfig {
            fault_plan: Some(FaultPlan {
                kind,
                at,
                only_seed: None,
            }),
            ..CdclConfig::default()
        }
    }

    /// The injected panic fires at its trigger conflict and unwinds
    /// out of `solve` (portfolio drivers catch it at the quantum
    /// boundary).
    #[test]
    fn injected_panic_fires_at_trigger() {
        let c = pigeonhole(6);
        let result = std::panic::catch_unwind(|| {
            CdclSolver::with_config(faulted_config(FaultKind::Panic, 5)).solve_with(
                &c,
                &[],
                &Budget::default(),
            )
        });
        let payload = result.expect_err("the injected panic must fire");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("injected fault"), "unexpected payload {msg:?}");
    }

    /// A simulated arena-growth failure surfaces as a memory verdict,
    /// fires exactly once, and leaves the session sound: the re-solve
    /// reaches the true verdict.
    #[test]
    fn injected_arena_oom_is_one_shot_and_sound() {
        let c = pigeonhole(4);
        let mut s = CdclSolver::with_config(faulted_config(FaultKind::ArenaOom, 1));
        s.add_cnf(&c);
        let out = s.solve_assuming(&[], &Budget::default());
        assert!(matches!(
            out,
            SolveOutcome::Unknown(ExhaustionReason::Memory)
        ));
        assert!(s.solve_assuming(&[], &Budget::default()).is_unsat());
    }

    /// The truncated-proof fault freezes the log mid-run; the forward
    /// checker must refuse the incomplete refutation rather than
    /// certify it.
    #[test]
    fn injected_proof_truncation_is_rejected_by_the_checker() {
        let c = pigeonhole(4);
        let mut s = CdclSolver::with_config(faulted_config(FaultKind::TruncateProof, 1));
        s.enable_proof();
        s.add_cnf(&c);
        assert!(s.solve_assuming(&[], &Budget::default()).is_unsat());
        let log = s.proof().expect("proof enabled");
        assert!(log.is_frozen(), "the fault never froze the log");
        let err = crate::proof::certify_unsat(log, s.final_assumption_conflict())
            .expect_err("a truncated proof must not certify");
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    /// Corrupt-clause containment: worker 0 publishes one exported
    /// clause with a flipped literal; the importers' RUP re-check is
    /// the only line of defense. The fleet must still reach the right
    /// verdict and its UNSAT proof must still certify — which it could
    /// not if the corrupt clause had been admitted and logged.
    #[test]
    fn corrupted_exchange_clause_is_contained_by_the_import_filter() {
        let c = pigeonhole(6);
        let hub = Arc::new(ClauseExchange::new(2, 256));
        let mut workers: Vec<CdclSolver> = (0..2u64)
            .map(|seed| {
                let mut config = CdclConfig::diversified(seed);
                if seed == 0 {
                    config.fault_plan = Some(FaultPlan {
                        kind: FaultKind::CorruptExchange,
                        at: 1,
                        only_seed: Some(config.seed),
                    });
                }
                let mut s = CdclSolver::with_config(config);
                s.enable_proof();
                s.add_cnf(&c);
                s.connect_exchange(Arc::clone(&hub), seed as usize, ShareLimits::default());
                s
            })
            .collect();
        'driver: loop {
            for worker in &mut workers {
                let outcome = worker.solve_assuming(&[], &Budget::conflict_limit(100));
                if !matches!(outcome, SolveOutcome::Unknown(_)) {
                    assert!(outcome.is_unsat(), "fleet verdict flipped");
                    let log = worker.proof().expect("proof enabled");
                    crate::proof::certify_unsat(log, worker.final_assumption_conflict())
                        .expect("refutation must certify despite the corrupt clause");
                    break 'driver;
                }
            }
        }
        // The fault actually fired: worker 0 exported something after
        // its first conflict, so the flipped clause was in flight.
        assert!(
            workers[0].session_stats().exported_clauses > 0,
            "worker 0 never exported — the corruption never happened"
        );
    }

    /// The import filter: satisfied clauses are rejected, clauses not
    /// yet RUP locally are rejected, RUP units are asserted at the
    /// root.
    #[test]
    fn import_filter_keeps_only_rup_clauses() {
        let c = cnf(&[&[1, 2], &[-1, 2], &[3, 4]]);
        let mut st = State::new(&c, CdclConfig::default());
        let hub = Arc::new(ClauseExchange::new(2, 8));
        st.exchange = Some(ExchangeLink {
            hub: Arc::clone(&hub),
            worker: 0,
            limits: ShareLimits::default(),
        });
        // (2) is RUP: assuming ¬2 makes both binary clauses unit on
        // 1 and ¬1. (3 4) duplicates a present clause, whose live copy
        // propagates under the probe — duplicates pass the re-check
        // (sound, mildly wasteful). (1 3) is not implied by unit
        // propagation: assuming ¬1 ¬3 propagates 4 and conflicts
        // nowhere, so it is rejected. (8 9) is over unknown
        // variables, rejected outright.
        hub.publish(1, &[lit(2)], 1);
        hub.publish(1, &[lit(3), lit(4)], 2);
        hub.publish(1, &[lit(1), lit(3)], 2);
        hub.publish(1, &[lit(8), lit(9)], 2);
        st.import_shared_clauses();
        assert_eq!(st.stats.imported_clauses, 4);
        assert_eq!(st.stats.imported_kept, 2);
        assert_eq!(st.value(lit(2)), 1, "RUP unit asserted at root");
        // A clause satisfied at the root is rejected on arrival.
        hub.publish(1, &[lit(2), lit(4)], 2);
        st.import_shared_clauses();
        assert_eq!(st.stats.imported_clauses, 5);
        assert_eq!(st.stats.imported_kept, 2);
        st.check_watcher_integrity();
    }

    /// Export honors the admission limits: units always, longer
    /// clauses only within the LBD/length bounds.
    #[test]
    fn export_respects_share_limits() {
        let c = cnf(&[&[1, 2], &[-1, 2], &[3, 4]]);
        let mut st = State::new(&c, CdclConfig::default());
        let hub = Arc::new(ClauseExchange::new(2, 8));
        st.exchange = Some(ExchangeLink {
            hub: Arc::clone(&hub),
            worker: 0,
            limits: ShareLimits {
                max_lbd: 2,
                max_len: 3,
            },
        });
        st.export_learnt(&[lit(2)], 9); // unit: always exported
        st.export_learnt(&[lit(1), lit(3)], 2); // within limits
        st.export_learnt(&[lit(1), lit(3)], 3); // LBD too high
        st.export_learnt(&[lit(1), lit(2), lit(3), lit(4)], 2); // too long
        assert_eq!(st.stats.exported_clauses, 2);
        assert_eq!(hub.drain(1).len(), 2);
    }

    /// Satellite regression: a raised stop flag is honored at
    /// inprocessing pass boundaries — a cancelled worker must not burn
    /// a full subsumption/elimination pass after the winner finished.
    #[test]
    fn stop_flag_skips_inprocessing_passes() {
        use std::sync::atomic::AtomicBool;
        let build = || {
            let mut st = State::new(
                &cnf(&[&[1, 2], &[1, 2, 3], &[-1, 4], &[-2, -3], &[3, 4, 5]]),
                CdclConfig {
                    simplify_activation_conflicts: 0,
                    ..CdclConfig::default()
                },
            );
            // Pretend the schedule is due.
            st.stats.conflicts = st.next_inprocess;
            st
        };
        let stopped = AtomicBool::new(true);
        let mut st = build();
        st.maybe_inprocess(Some(&stopped), None);
        assert_eq!(st.stats.subsumed_clauses, 0, "subsumption ran despite stop");
        assert_eq!(st.stats.eliminated_vars, 0, "elimination ran despite stop");
        let mut st = build();
        st.maybe_inprocess(None, None);
        assert!(
            st.stats.subsumed_clauses > 0 || st.stats.eliminated_vars > 0,
            "control run was expected to simplify something"
        );
    }

    /// Satellite regression: a raised stop flag exits at the *restart
    /// boundary*, well before the 256-conflict amortized budget poll.
    #[test]
    fn stop_flag_exits_at_restart_boundary() {
        use std::sync::atomic::AtomicBool;
        let config = CdclConfig {
            restart_policy: RestartPolicy::Luby,
            restart_base: 10,
            restart_activation_conflicts: 0,
            ..CdclConfig::default()
        };
        let mut solver = CdclSolver::with_config(config);
        solver.add_cnf(&pigeonhole(7));
        let stop = Arc::new(AtomicBool::new(true));
        let outcome = solver.solve_assuming(&[], &Budget::default().with_stop(Arc::clone(&stop)));
        assert!(matches!(outcome, SolveOutcome::Unknown(_)));
        assert!(
            solver.session_stats().conflicts < 256,
            "stop was only honored by the amortized poll, got {} conflicts",
            solver.session_stats().conflicts
        );
    }
}
