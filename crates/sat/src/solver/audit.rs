//! Deep solver-state auditor.
//!
//! The differential torture matrix only sees final answers; this module
//! checks the *intermediate* state the relaxed out-of-order machinery
//! (PR 5) and arena-mutating inprocessing (PR 4) must preserve. It is
//! enabled by [`CdclConfig::audit`] or `LASSYNTH_AUDIT=1` in the
//! environment and costs one predictable branch per checkpoint when
//! off — the solver never reads any audit result, so search behaviour
//! (conflicts, decisions, learnt clauses) is bit-identical either way.
//!
//! Checkpoints fire after propagation, conflict analysis, every
//! backtrack in the search loop, garbage collection, each inprocessing
//! pass, and on every SAT answer. The hot checkpoints (propagate /
//! analyze / backtrack) are throttled by [`CdclConfig::audit_interval`];
//! the structural ones always run. Each checkpoint audits:
//!
//! * **Arena liveness** — clause sizes tile the arena exactly, no
//!   forwarding address ([`RELOCATED`]) survives a GC pass, and every
//!   `ClauseRef` held by the ref lists, the touched work list, the
//!   watcher lists, and the trail reasons points at a clause start.
//! * **Watch lists** — every live non-unit clause is watched on exactly
//!   its first two literals, binary tags match clause length, binary
//!   blockers are the other watched literal, and long-clause blockers
//!   are literals of their clause.
//! * **Relaxed trail invariant** — the trail is a permutation of the
//!   assigned variables, `trail_lim` is monotone, every literal's
//!   recorded level is bounded by the level of the trail segment it
//!   sits in (out-of-order compaction must never leave a literal
//!   *above* its recorded level), and real decisions sit exactly at
//!   their level boundary.
//! * **Reason soundness** — each implied literal's reason clause
//!   contains it in a watched slot, every other literal is false,
//!   assigned *earlier* on the trail, and at a level no higher than the
//!   implication's — i.e. the reason is unit under the trail prefix at
//!   the recorded assertion level.
//! * **VSIDS heap shape** — the position index inverts the heap, the
//!   max-heap ordering holds, and every unassigned variable is present
//!   (so `decide` can never go blind). Eliminated variables are exempt:
//!   `decide` skips them whether or not they sit in the heap.
//! * **Elimination discipline** — the elimination stack carries exactly
//!   one frame per eliminated variable, eliminated variables are
//!   unassigned, reason-free, unfrozen, and appear in no live clause.
//! * **Model soundness** — on SAT, every non-eliminated variable is
//!   assigned and every original (and learnt) clause is satisfied. The
//!   *reconstructed* model (extended over the eliminated variables) is
//!   checked separately by `audit_reconstruction` against the clauses
//!   stored on the elimination stack.
//!
//! During an inprocessing pass clauses are marked deleted (and
//! detached) before the closing GC reclaims them, so the `Inprocess`
//! checkpoint tolerates tombstones in the ref lists — but still rejects
//! them in watch lists and trail reasons, where a tombstone would be a
//! live bug. The occurrence-index/signature agreement check is called
//! from `subsume` itself, right after the index is built.

use super::*;
// Audited, not hot: the occurrence-index check mirrors `subsume`'s own
// map type. lint:allow(no-std-hashmap)

/// Which search event triggered a checkpoint. Controls throttling and
/// the tombstone tolerance of the `Inprocess` point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum AuditPoint {
    /// Propagation reached a fixpoint or returned a conflict.
    Propagate,
    /// Conflict analysis produced a learnt clause (not yet attached).
    Analyze,
    /// A `cancel_until` in the search loop completed (including the
    /// repair and backjump paths, after their re-enqueue).
    Backtrack,
    /// A compacting GC pass rewrote every clause reference.
    Gc,
    /// An inprocessing pass (subsumption, variable elimination,
    /// vivification or probing) finished, *before* the closing GC
    /// reclaims its tombstones.
    Inprocess,
    /// The solver is about to answer SAT.
    Sat,
}

impl AuditPoint {
    /// Hot-loop points honour `audit_interval`; structural points
    /// always run.
    fn throttled(self) -> bool {
        matches!(
            self,
            AuditPoint::Propagate | AuditPoint::Analyze | AuditPoint::Backtrack
        )
    }
}

/// Whether `LASSYNTH_AUDIT` requests auditing (any value but `0`).
pub(super) fn env_enabled() -> bool {
    std::env::var_os("LASSYNTH_AUDIT").is_some_and(|v| v != "0")
}

impl State {
    /// The checkpoint hook: a single predictable branch when auditing
    /// is off.
    #[inline]
    pub(super) fn audit_checkpoint(&mut self, point: AuditPoint) {
        if self.audit_on {
            self.audit_checkpoint_slow(point);
        }
    }

    #[cold]
    fn audit_checkpoint_slow(&mut self, point: AuditPoint) {
        if point.throttled() {
            self.audit_tick += 1;
            if !self
                .audit_tick
                .is_multiple_of(self.config.audit_interval.max(1))
            {
                return;
            }
        }
        self.audit_now(point);
    }

    /// Runs every audit check unconditionally (the mutation tests call
    /// this directly, bypassing the enable flag and the throttle).
    fn audit_now(&self, point: AuditPoint) {
        let allow_tombstones = point == AuditPoint::Inprocess;
        let starts = self.audit_arena(point);
        self.audit_refs(point, &starts, allow_tombstones);
        self.audit_watches(point, allow_tombstones);
        self.audit_trail(point);
        self.audit_reasons(point);
        self.audit_heap(point);
        self.audit_elim(point);
        self.audit_proof(point);
        if point == AuditPoint::Sat {
            self.audit_model(point);
        }
    }

    /// Proof-log integrity: every live clause in the database must also
    /// be live in the proof log, with at least the arena's multiplicity
    /// — otherwise a later deletion would emit a `d` step the checker
    /// rejects. The converse direction is intentionally loose: the log
    /// may keep extra clauses alive (a root-simplified original leaves
    /// its input form in the log; restored BVE resolvents stay).
    fn audit_proof(&self, point: AuditPoint) {
        let Some(proof) = &self.proof else {
            return;
        };
        let live = proof.live_multiset();
        // Mirrors the proof log's own key map. lint:allow(no-std-hashmap)
        let mut arena_counts: std::collections::HashMap<Vec<Lit>, i64> =
            std::collections::HashMap::new(); // lint:allow(no-std-hashmap)
        for &c in self.clauses.iter().chain(self.learnts.iter().flatten()) {
            if self.arena.is_deleted(c) {
                continue;
            }
            let mut key: Vec<Lit> = (0..self.arena.len(c))
                .map(|i| self.arena.lit(c, i))
                .collect();
            key.sort_unstable();
            *arena_counts.entry(key).or_insert(0) += 1;
        }
        for (key, n) in arena_counts {
            let logged = live.get(&key).copied().unwrap_or(0);
            assert!(
                logged >= n,
                "audit({point:?}): clause {key:?} is live {n}× in the arena but \
                 only {logged}× in the proof log"
            );
        }
    }

    /// Walks the arena front to back, returning every valid clause
    /// start. Rejects forwarding addresses and misaligned tails.
    fn audit_arena(&self, point: AuditPoint) -> Vec<u32> {
        let mut starts = Vec::new();
        let mut off = 0usize;
        while off < self.arena.data.len() {
            let header = self.arena.data[off];
            assert_ne!(
                header, RELOCATED,
                "audit({point:?}): GC forwarding address survives at arena word {off}"
            );
            let len = (header >> LEN_SHIFT) as usize;
            assert!(
                len >= 2,
                "audit({point:?}): stored clause of length {len} at arena word {off} \
                 (units live on the trail, never in the arena)"
            );
            starts.push(off as u32);
            off += HEADER_WORDS + len;
        }
        assert_eq!(
            off,
            self.arena.data.len(),
            "audit({point:?}): clause sizes do not tile the arena"
        );
        starts
    }

    /// Every `ClauseRef` the solver holds must point at a clause start;
    /// ref lists must agree with the learnt bit. Tombstones are allowed
    /// in ref lists only mid-inprocessing.
    fn audit_refs(&self, point: AuditPoint, starts: &[u32], allow_tombstones: bool) {
        let valid = |c: ClauseRef| starts.binary_search(&c.0).is_ok();
        for (what, refs, learnt, tier) in [
            ("original ref list", &self.clauses, false, None),
            (
                "core learnt list",
                &self.learnts[TIER_CORE],
                true,
                Some(TIER_CORE),
            ),
            (
                "tier2 learnt list",
                &self.learnts[TIER_TIER2],
                true,
                Some(TIER_TIER2),
            ),
            (
                "local learnt list",
                &self.learnts[TIER_LOCAL],
                true,
                Some(TIER_LOCAL),
            ),
        ] {
            for &c in refs {
                assert!(
                    valid(c),
                    "audit({point:?}): dangling ClauseRef {} in {what}",
                    c.0
                );
                if self.arena.is_deleted(c) {
                    assert!(
                        allow_tombstones,
                        "audit({point:?}): tombstone {} in {what} outside inprocessing",
                        c.0
                    );
                } else {
                    assert_eq!(
                        self.arena.is_learnt(c),
                        learnt,
                        "audit({point:?}): clause {} has the wrong learnt bit for {what}",
                        c.0
                    );
                    if let Some(t) = tier {
                        assert_eq!(
                            self.arena.tier(c),
                            t,
                            "audit({point:?}): clause {} has the wrong header tier for {what}",
                            c.0
                        );
                    }
                }
            }
        }
        for &c in &self.touched {
            assert!(
                valid(c),
                "audit({point:?}): dangling ClauseRef {} in touched list",
                c.0
            );
        }
        for list in &self.watches {
            for w in list {
                assert!(
                    valid(w.cref()),
                    "audit({point:?}): dangling ClauseRef {} in a watch list",
                    w.cref().0
                );
            }
        }
        for &l in &self.trail {
            let r = self.reason[l.var().index()];
            assert!(
                r == ClauseRef::NONE || valid(r),
                "audit({point:?}): dangling reason ClauseRef {} for {l}",
                r.0
            );
        }
    }

    /// Watch-list integrity: exactly the first two literals of every
    /// live attached clause are watched, tags and blockers agree.
    fn audit_watches(&self, point: AuditPoint, allow_tombstones: bool) {
        let mut watcher_count = 0usize;
        for (code, list) in self.watches.iter().enumerate() {
            let lit = Lit::from_code(code);
            for w in list {
                watcher_count += 1;
                let c = w.cref();
                assert!(
                    !self.arena.is_deleted(c),
                    "audit({point:?}): watcher of {lit} on deleted clause {}",
                    c.0
                );
                let len = self.arena.len(c);
                assert_eq!(
                    w.is_binary(),
                    len == 2,
                    "audit({point:?}): binary tag mismatch on clause {} (len {len})",
                    c.0
                );
                let (l0, l1) = (self.arena.lit(c, 0), self.arena.lit(c, 1));
                assert!(
                    l0 == lit || l1 == lit,
                    "audit({point:?}): {lit} watches clause {} but is not in slot 0/1",
                    c.0
                );
                if w.is_binary() {
                    let other = if l0 == lit { l1 } else { l0 };
                    assert_eq!(
                        w.blocker, other,
                        "audit({point:?}): binary blocker of clause {} is not the other literal",
                        c.0
                    );
                } else {
                    assert!(
                        (0..len).any(|k| self.arena.lit(c, k) == w.blocker),
                        "audit({point:?}): blocker {} not a literal of clause {}",
                        w.blocker,
                        c.0
                    );
                }
            }
        }
        let mut attached = 0usize;
        for &c in self.clauses.iter().chain(self.learnts.iter().flatten()) {
            if self.arena.is_deleted(c) {
                continue; // tombstone legality checked in audit_refs
            }
            attached += 1;
            for k in 0..2 {
                let l = self.arena.lit(c, k);
                assert!(
                    self.watches[l.code()].iter().any(|w| w.cref() == c),
                    "audit({point:?}): clause {} missing its watcher on {l}",
                    c.0
                );
            }
        }
        assert_eq!(
            watcher_count,
            2 * attached,
            "audit({point:?}): watcher count disagrees with attached clause count"
        );
        if !allow_tombstones {
            let live_words: usize = self
                .clauses
                .iter()
                .chain(self.learnts.iter().flatten())
                .map(|&c| HEADER_WORDS + self.arena.len(c))
                .sum();
            assert_eq!(
                self.arena.data.len(),
                live_words,
                "audit({point:?}): arena holds words beyond the live clauses"
            );
        }
    }

    /// The relaxed trail invariant: assignment-ordered, level-bounded.
    fn audit_trail(&self, point: AuditPoint) {
        assert!(
            self.qhead <= self.trail.len(),
            "audit({point:?}): propagation queue head past the trail"
        );
        // Note: `trail_lim.len()` is NOT bounded by `num_vars` —
        // satisfied (or repeated) assumptions open empty levels.
        let mut prev = 0usize;
        for (d, &lim) in self.trail_lim.iter().enumerate() {
            assert!(
                lim >= prev && lim <= self.trail.len(),
                "audit({point:?}): trail_lim[{d}] out of order"
            );
            prev = lim;
        }
        let assigned = self.lit_val.iter().step_by(2).filter(|&&v| v != 0).count();
        assert_eq!(
            assigned,
            self.trail.len(),
            "audit({point:?}): trail length disagrees with assigned-variable count"
        );
        let mut on_trail = vec![false; self.num_vars];
        let mut seg = 0usize; // level of the current trail segment
        for (i, &l) in self.trail.iter().enumerate() {
            while seg < self.trail_lim.len() && self.trail_lim[seg] <= i {
                seg += 1;
            }
            let v = l.var().index();
            assert!(
                !on_trail[v],
                "audit({point:?}): {} assigned twice on the trail",
                l.var()
            );
            on_trail[v] = true;
            assert_eq!(
                self.value(l),
                1,
                "audit({point:?}): trail literal {l} is not true"
            );
            let lv = self.level[v] as usize;
            assert!(
                lv <= seg,
                "audit({point:?}): {l} sits in trail segment {seg} above its recorded \
                 level {lv} — compaction left a literal above its level"
            );
            if self.reason[v] == ClauseRef::NONE && lv > 0 {
                assert_eq!(
                    self.trail_lim[lv - 1],
                    i,
                    "audit({point:?}): decision {l} of level {lv} is not at its level boundary"
                );
            }
        }
        for (v, &assigned) in on_trail.iter().enumerate() {
            if !assigned {
                assert_eq!(
                    self.lit_val[2 * v],
                    0,
                    "audit({point:?}): {} assigned but not on the trail",
                    Var(v as u32)
                );
                assert_eq!(
                    self.reason[v],
                    ClauseRef::NONE,
                    "audit({point:?}): unassigned {} retains a reason",
                    Var(v as u32)
                );
            }
        }
    }

    /// Reason soundness: each implied literal's reason is unit under
    /// the trail prefix at the recorded assertion level.
    fn audit_reasons(&self, point: AuditPoint) {
        let mut pos = vec![usize::MAX; self.num_vars];
        for (i, &l) in self.trail.iter().enumerate() {
            pos[l.var().index()] = i;
        }
        for &l in &self.trail {
            let v = l.var().index();
            let r = self.reason[v];
            if r == ClauseRef::NONE {
                continue;
            }
            assert!(
                !self.arena.is_deleted(r),
                "audit({point:?}): reason of {l} is a deleted clause"
            );
            assert!(
                self.arena.lit(r, 0) == l || self.arena.lit(r, 1) == l,
                "audit({point:?}): {l} is not in a watched slot of its reason clause"
            );
            for k in 0..self.arena.len(r) {
                let q = self.arena.lit(r, k);
                if q == l {
                    continue;
                }
                assert_ne!(
                    q.var(),
                    l.var(),
                    "audit({point:?}): reason of {l} contains both polarities of {}",
                    l.var()
                );
                let qv = q.var().index();
                assert_eq!(
                    self.value(q),
                    -1,
                    "audit({point:?}): reason of {l} is not unit — {q} is not false"
                );
                assert!(
                    pos[qv] < pos[v],
                    "audit({point:?}): reason literal {q} assigned after its implication {l}"
                );
                assert!(
                    self.level[qv] <= self.level[v],
                    "audit({point:?}): {l} asserts at level {} below reason literal {q} \
                     at level {}",
                    self.level[v],
                    self.level[qv]
                );
            }
        }
    }

    /// VSIDS heap shape: `pos` inverts `heap`, the max-heap ordering
    /// holds, and no unassigned variable is missing.
    fn audit_heap(&self, point: AuditPoint) {
        let o = &self.order;
        assert_eq!(
            o.pos.len(),
            self.num_vars,
            "audit({point:?}): heap position index has the wrong size"
        );
        let in_heap = o.pos.iter().filter(|&&p| p >= 0).count();
        assert_eq!(
            in_heap,
            o.heap.len(),
            "audit({point:?}): heap position index disagrees with heap size"
        );
        for (i, &v) in o.heap.iter().enumerate() {
            assert!(
                (v as usize) < self.num_vars,
                "audit({point:?}): heap holds unknown variable {v}"
            );
            assert_eq!(
                o.pos[v as usize], i as i64,
                "audit({point:?}): heap position of v{v} is stale"
            );
            if i > 0 {
                let parent = o.heap[(i - 1) / 2];
                assert!(
                    !o.better(v, parent),
                    "audit({point:?}): heap ordering violated at index {i}"
                );
            }
        }
        for v in 0..self.num_vars {
            if self.is_unassigned(v) && !self.eliminated[v] {
                assert!(
                    o.contains(v as u32),
                    "audit({point:?}): unassigned {} missing from the decision heap",
                    Var(v as u32)
                );
            }
        }
    }

    /// Variable-elimination discipline: one elimination-stack frame per
    /// eliminated variable, eliminated variables unassigned,
    /// reason-free, unfrozen, and absent from every live clause.
    fn audit_elim(&self, point: AuditPoint) {
        let eliminated = self.eliminated.iter().filter(|&&e| e).count();
        assert_eq!(
            self.elim_stack.len(),
            eliminated,
            "audit({point:?}): elimination stack does not carry one frame per eliminated variable"
        );
        for frame in &self.elim_stack {
            let v = frame.var.index();
            assert!(
                self.eliminated[v],
                "audit({point:?}): elimination stack frame for non-eliminated {}",
                frame.var
            );
            assert!(
                self.is_unassigned(v),
                "audit({point:?}): eliminated {} is assigned",
                frame.var
            );
            assert_eq!(
                self.reason[v],
                ClauseRef::NONE,
                "audit({point:?}): eliminated {} retains a reason",
                frame.var
            );
            assert!(
                !self.frozen[v],
                "audit({point:?}): frozen {} was eliminated",
                frame.var
            );
        }
        for &c in self.clauses.iter().chain(self.learnts.iter().flatten()) {
            if self.arena.is_deleted(c) {
                continue;
            }
            for k in 0..self.arena.len(c) {
                let l = self.arena.lit(c, k);
                assert!(
                    !self.eliminated[l.var().index()],
                    "audit({point:?}): live clause {} mentions eliminated {}",
                    c.0,
                    l.var()
                );
            }
        }
    }

    /// On SAT: total assignment over the non-eliminated variables,
    /// every clause satisfied.
    fn audit_model(&self, point: AuditPoint) {
        for v in 0..self.num_vars {
            assert!(
                !self.is_unassigned(v) || self.eliminated[v],
                "audit({point:?}): SAT answer leaves {} unassigned",
                Var(v as u32)
            );
        }
        for (what, refs) in [
            ("original", &self.clauses),
            ("core learnt", &self.learnts[TIER_CORE]),
            ("tier2 learnt", &self.learnts[TIER_TIER2]),
            ("local learnt", &self.learnts[TIER_LOCAL]),
        ] {
            for &c in refs {
                let sat = (0..self.arena.len(c)).any(|k| self.value(self.arena.lit(c, k)) == 1);
                assert!(
                    sat,
                    "audit({point:?}): SAT model falsifies {what} clause {}",
                    c.0
                );
            }
        }
    }

    /// Occurrence-index/signature agreement, called from `subsume`
    /// right after the index is built: the index covers exactly the
    /// live clauses, each entry under the literals it contains, with
    /// matching signatures.
    // lint:allow(no-std-hashmap)
    pub(super) fn audit_occ_index(&self, occs: &[Vec<ClauseRef>], sigs: &SigMap) {
        let mut live = 0usize;
        for &c in self.clauses.iter().chain(self.learnts.iter().flatten()) {
            if self.arena.is_deleted(c) {
                continue;
            }
            live += 1;
            let mut sig = 0u64;
            for k in 0..self.arena.len(c) {
                let l = self.arena.lit(c, k);
                sig |= 1u64 << (l.var().0 & 63);
                assert!(
                    occs[l.code()].contains(&c),
                    "audit(occ-index): live clause {} missing from the occurrence list of {l}",
                    c.0
                );
            }
            assert_eq!(
                sigs.get(&c.0),
                Some(&sig),
                "audit(occ-index): stale signature for clause {}",
                c.0
            );
        }
        assert_eq!(
            sigs.len(),
            live,
            "audit(occ-index): signature table covers a different clause set"
        );
        for (code, list) in occs.iter().enumerate() {
            let lit = Lit::from_code(code);
            for &c in list {
                assert!(
                    !self.arena.is_deleted(c),
                    "audit(occ-index): tombstone {} indexed under {lit}",
                    c.0
                );
                assert!(
                    (0..self.arena.len(c)).any(|k| self.arena.lit(c, k) == lit),
                    "audit(occ-index): clause {} indexed under {lit} it does not contain",
                    c.0
                );
            }
        }
    }
}

/// Mutation tests: corrupt one invariant at a time and assert the
/// auditor catches that corruption class. A clean-state control runs
/// first in each so a pass can only come from the seeded fault.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cnf;

    fn lit(i: i64) -> Lit {
        Lit::from_dimacs(i)
    }

    /// A small audited state with a decision and three implications:
    /// deciding 1 propagates 2 (binary reason), then 3, then 4.
    fn audited_state() -> State {
        let mut c = Cnf::new(0);
        c.add_clause([lit(-1), lit(2)]);
        c.add_clause([lit(-1), lit(-2), lit(3)]);
        c.add_clause([lit(-2), lit(-3), lit(4)]);
        c.add_clause([lit(-4), lit(5), lit(6)]);
        let config = CdclConfig {
            audit: true,
            ..CdclConfig::default()
        };
        let mut st = State::new(&c, config);
        st.trail_lim.push(st.trail.len());
        st.enqueue(lit(1), ClauseRef::NONE);
        assert!(st.propagate().is_none());
        assert_eq!(st.trail.len(), 4);
        st.audit_now(AuditPoint::Propagate); // control: clean state passes
        st
    }

    #[test]
    #[should_panic(expected = "watcher")]
    fn corrupted_watch_list_is_caught() {
        let mut st = audited_state();
        let victim = st
            .watches
            .iter()
            .position(|l| !l.is_empty())
            .expect("attached clauses have watchers");
        st.watches[victim].pop();
        st.audit_now(AuditPoint::Propagate);
    }

    #[test]
    #[should_panic(expected = "above its recorded level")]
    fn corrupted_trail_level_is_caught() {
        let mut st = audited_state();
        // Pretend the decision's first implication was assigned at a
        // level that does not exist: its segment (level 1) now sits
        // *below* the recorded level, the compaction bug class.
        let v = st.trail[1].var().index();
        st.level[v] = 7;
        st.audit_now(AuditPoint::Backtrack);
    }

    #[test]
    #[should_panic(expected = "reason")]
    fn corrupted_reason_ref_is_caught() {
        let mut st = audited_state();
        // Rewire an implication's reason to a clause that does not
        // contain it (the binary clause {¬1, 2} for implied literal 3).
        let v = lit(3).var().index();
        assert_ne!(st.reason[v], ClauseRef::NONE);
        st.reason[v] = st.clauses[0];
        st.audit_now(AuditPoint::Analyze);
    }

    #[test]
    #[should_panic(expected = "forwarding address")]
    fn corrupted_gc_forwarding_is_caught() {
        let mut st = audited_state();
        // Relocate a clause out of the arena without rewriting any of
        // the references through the forwarding address — exactly the
        // half-finished GC state the protocol must never leak.
        let mut scratch = Vec::new();
        let c = st.clauses[3];
        st.arena.relocate(c, &mut scratch);
        st.audit_now(AuditPoint::Gc);
    }

    #[test]
    #[should_panic(expected = "elimination stack")]
    fn corrupted_elimination_stack_is_caught() {
        // (1 ∨ 2), (¬1 ∨ 3): variable 1 is eliminable, its frame keeps
        // both clauses and the database keeps the resolvent (2 ∨ 3).
        let mut c = Cnf::new(0);
        c.add_clause([lit(1), lit(2)]);
        c.add_clause([lit(-1), lit(3)]);
        let config = CdclConfig {
            audit: true,
            ..CdclConfig::default()
        };
        let mut st = State::new(&c, config);
        assert!(st.eliminate_vars(None));
        assert!(st.eliminated[0]);
        st.collect_garbage();
        st.audit_now(AuditPoint::Gc); // control: eliminated-var invariants hold
                                      // Control: a model of the remaining formula (2 true satisfies
                                      // the resolvent) reconstructs and audits cleanly.
        let mut values = vec![false, true, false];
        st.reconstruct_model(&mut values);
        st.audit_reconstruction(&values);
        // Corrupt the frame so no single polarity of variable 1 can
        // satisfy all stored clauses; the reconstruction audit must
        // name the elimination stack.
        st.elim_stack[0].clauses = vec![vec![lit(1)], vec![lit(-1)]];
        let mut values = vec![false, true, false];
        st.reconstruct_model(&mut values);
        st.audit_reconstruction(&values);
    }

    #[test]
    fn auditor_is_invisible_to_the_search() {
        // Identical configs except `audit` must produce identical
        // statistics: the auditor reads, never steers.
        let mut c = Cnf::new(0);
        for cl in [
            [lit(1), lit(2), lit(3)],
            [lit(-1), lit(-2), lit(3)],
            [lit(1), lit(-2), lit(-3)],
            [lit(-1), lit(2), lit(-3)],
        ] {
            c.add_clause(cl);
        }
        let quiet = CdclConfig::default();
        let loud = CdclConfig {
            audit: true,
            audit_interval: 2,
            ..CdclConfig::default()
        };
        let mut a = CdclSolver::with_config(quiet);
        let mut b = CdclSolver::with_config(loud);
        assert!(a.solve(&c).is_sat());
        assert!(b.solve(&c).is_sat());
        assert_eq!(a.stats.conflicts, b.stats.conflicts);
        assert_eq!(a.stats.decisions, b.stats.decisions);
        assert_eq!(a.stats.propagations, b.stats.propagations);
    }

    #[test]
    fn audited_solve_stays_correct_under_pressure() {
        // Drive a full audited search through restarts, GC and
        // inprocessing on a pigeonhole instance: every checkpoint must
        // hold on real (not hand-built) states.
        let holes = 4i64;
        let p = |i: i64, j: i64| (i - 1) * holes + j;
        let mut c = Cnf::new(0);
        for i in 1..=holes + 1 {
            c.add_clause((1..=holes).map(|j| lit(p(i, j))));
        }
        for j in 1..=holes {
            for i in 1..=holes + 1 {
                for k in i + 1..=holes + 1 {
                    c.add_clause([lit(-p(i, j)), lit(-p(k, j))]);
                }
            }
        }
        let config = CdclConfig {
            audit: true,
            restart_base: 2,
            restart_policy: RestartPolicy::Luby,
            restart_activation_conflicts: 0,
            max_learnts_floor: 4.0,
            inprocess_interval: 8,
            chrono_activation_conflicts: 0,
            ..CdclConfig::default()
        };
        let mut s = CdclSolver::with_config(config);
        assert!(s.solve(&c).is_unsat());
        assert!(s.stats.conflicts > 0);
    }
}
