//! Bounded variable elimination and failed-literal probing.
//!
//! The second half of the SatELite preprocessing pair (subsumption and
//! self-subsuming resolution landed with `inprocess.rs`), run as
//! *inprocessing*: at restart boundaries, on the live clause database,
//! interleaved with search.
//!
//! * **Bounded variable elimination** ([`State::eliminate_vars`]):
//!   a variable `v` is eliminated by replacing every original clause
//!   containing `v` with the non-tautological resolvents of the
//!   positive × negative occurrence pairs (distribution). The pass is
//!   *bounded*: a variable is only eliminated when the resolvent count
//!   does not exceed the clause count it replaces (never-grow rule),
//!   both occurrence sides are small, and every participating clause
//!   is short. Learnt clauses containing `v` are consequences of the
//!   originals and are simply deleted. Pure literals fall out as the
//!   zero-resolvent special case.
//!
//!   Eliminating a variable changes the *model*, not just the search:
//!   the deleted original clauses are pushed onto an **elimination
//!   stack** ([`ElimFrame`]) and a SAT answer walks the stack backwards
//!   to extend the assignment over the eliminated variables
//!   ([`State::reconstruct_model`]). The incremental API restores
//!   eliminated variables on demand ([`State::restore_var`]): a new
//!   clause or assumption mentioning one pops stack frames LIFO —
//!   popping in reverse elimination order guarantees a popped frame's
//!   clauses never mention a variable that is still eliminated — and
//!   re-adds the stored clauses. Frozen variables
//!   ([`CdclSolver::freeze`]) are never eliminated in the first place;
//!   the synthesis layers freeze their activation literals and
//!   assumption variables up front.
//!
//! * **Failed-literal probing** ([`State::probe_failed_literals`]):
//!   at level 0, assume a literal `l` at a pseudo-decision level and
//!   propagate; if propagation conflicts, `¬l` is a root-level
//!   consequence and is asserted as a unit. Candidates are restricted
//!   to *binary-implication roots* — literals whose assignment drives
//!   at least one binary watcher but which no binary clause implies —
//!   so one probe covers its whole binary implication subtree.
//!   Budgeted by propagation count; a rotating cursor resumes where
//!   the previous pass stopped. Phase saving is suspended during
//!   probes, so probing is invisible to the search heuristics.
//!
//! Both passes run only at decision level 0 with no assumptions
//! applied, so everything they derive is a consequence of the added
//! clauses alone. Both are scheduled by `maybe_inprocess` and gated on
//! [`CdclConfig::simplify_activation_conflicts`], mirroring
//! `chrono_activation_conflicts`: below the gate the clause database
//! evolves exactly as it did before this module existed, keeping the
//! small benchmark records conflict-identical.

use super::*;

/// One eliminated variable: the original clauses that mentioned it,
/// recorded in elimination order. [`State::reconstruct_model`] walks
/// frames newest-first to complete a model; [`State::restore_var`]
/// pops them (strictly LIFO) to reintroduce a variable the incremental
/// API needs back.
#[derive(Clone, Debug)]
pub(super) struct ElimFrame {
    /// The eliminated variable.
    pub(super) var: Var,
    /// Literal vectors of every original clause that contained
    /// [`ElimFrame::var`] when it was eliminated (both polarities).
    pub(super) clauses: Vec<Vec<Lit>>,
}

impl State {
    /// Queues every variable of `c` for retry at the next BVE pass —
    /// called wherever an *original* clause is deleted, strengthened,
    /// or promoted, since that changes its variables' resolution
    /// partner sets. (Additions mark through `add_original_clause`.)
    pub(super) fn elim_touch_clause(&mut self, c: ClauseRef) {
        for i in 0..self.arena.len(c) {
            self.elim_dirty[self.arena.lit(c, i).var().index()] = true;
        }
    }

    /// Marks a variable as frozen (exempt from elimination). If it was
    /// already eliminated in an earlier pass, it is restored first —
    /// freezing promises the caller can mention the variable in future
    /// clauses and assumptions without surprises.
    pub(super) fn freeze_var(&mut self, v: Var) {
        let i = v.index();
        if self.eliminated[i] {
            self.restore_var(i);
        }
        self.frozen[i] = true;
    }

    /// Reintroduces an eliminated variable by popping elimination-stack
    /// frames LIFO until the variable's own frame has been replayed.
    /// LIFO order is what makes replay sound: a frame's stored clauses
    /// can only mention variables that were live when it was pushed,
    /// and every variable eliminated later sits above it on the stack.
    pub(super) fn restore_var(&mut self, v: usize) {
        while self.eliminated[v] {
            self.restore_last_eliminated();
            if self.root_unsat {
                return;
            }
        }
    }

    /// Pops the top elimination frame and re-adds its clauses. The
    /// added resolvents stay — they are consequences of the restored
    /// clauses, so the formula only tightens. A root contradiction
    /// while replaying latches `root_unsat`.
    fn restore_last_eliminated(&mut self) {
        let frame = self
            .elim_stack
            .pop()
            .expect("restore_last_eliminated with an empty elimination stack"); // lint:allow(no-panic)
        let v = frame.var.index();
        debug_assert!(self.eliminated[v]);
        self.eliminated[v] = false;
        // `eliminated_vars` reports the *net* count so `--stats` agrees
        // with the number of variables the search actually skips.
        self.stats.eliminated_vars = self.stats.eliminated_vars.saturating_sub(1);
        self.order.insert(v as u32);
        for lits in &frame.clauses {
            // A restored clause is not a consequence of the current
            // formula (BVE only preserves satisfiability), but it *is*
            // RAT on its literal over the frame variable: the frame's
            // occurrences were all proof-deleted at elimination time,
            // so positive-side clauses see no resolution partner, and
            // negative-side partners resolve into the still-live BVE
            // resolvents. DRAT pivots are positional — rotate the frame
            // literal to the front for the proof step only.
            if self.proof.is_some() {
                let mut rat = lits.clone();
                if let Some(i) = rat.iter().position(|l| l.var() == frame.var) {
                    rat.swap(0, i);
                }
                self.proof_add_derived(&rat);
            }
            if !self.add_original_clause(lits) {
                self.root_unsat = true;
                return;
            }
        }
    }

    /// One bounded-variable-elimination pass. Returns whether any
    /// clause was deleted (the caller then runs the compacting GC).
    ///
    /// The occurrence index is built once per pass; committing an
    /// elimination adds resolvents the index does not know about, so
    /// every variable of a resolvent is marked *dirty* and skipped for
    /// the remainder of the pass (its index entry is incomplete — a
    /// missed resolution partner would make elimination unsound).
    /// Deleted clauses, by contrast, stay harmlessly in the index as
    /// tombstones and are filtered on use.
    /// `deadline` is the governor's wall cutoff, polled every 1024
    /// variables: an out-of-time pass stops resolving and falls
    /// through to the closing GC with whatever it committed.
    pub(super) fn eliminate_vars(&mut self, deadline: Option<Instant>) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if self.root_unsat || self.num_vars == 0 {
            return false;
        }
        // Candidate set first: only variables whose original
        // occurrences changed since their last attempt (see
        // `elim_dirty`) are retried, and the occurrence index is built
        // for *their* literals only — a quiesced database costs one
        // cheap scan, not a full index rebuild.
        let mut candidate = vec![false; self.num_vars];
        let mut any = false;
        for (v, cand) in candidate.iter_mut().enumerate() {
            if self.elim_dirty[v]
                && self.is_unassigned(v)
                && !self.frozen[v]
                && !self.assumed[v]
                && !self.eliminated[v]
            {
                *cand = true;
                any = true;
            }
        }
        if !any {
            return false;
        }
        let mut occs: Vec<Vec<ClauseRef>> = vec![Vec::new(); 2 * self.num_vars];
        for &c in self.clauses.iter().chain(self.learnts.iter().flatten()) {
            if self.arena.is_deleted(c) {
                continue;
            }
            for i in 0..self.arena.len(c) {
                let l = self.arena.lit(c, i);
                if candidate[l.var().index()] {
                    occs[l.code()].push(c);
                }
            }
        }
        // Within-pass staleness: committing an elimination adds
        // resolvents the occurrence index does not know about, so every
        // variable of a resolvent is skipped for the remainder of the
        // pass (a missed resolution partner would make elimination
        // unsound). Deleted clauses, by contrast, stay harmlessly in
        // the index as tombstones and are filtered on use. The
        // *cross-pass* work list is `self.elim_dirty`: variables whose
        // original occurrences are unchanged since their last attempt
        // are skipped outright.
        let mut index_stale = vec![false; self.num_vars];
        // Stamped marks over literal codes, shared by the tautology
        // check and resolvent construction (one stamp per positive
        // clause, never cleared).
        let mut mark = vec![0u32; 2 * self.num_vars];
        let mut stamp = 0u32;
        let mut budget = self.config.elim_check_budget as i64;
        let mut changed = false;
        for v in 0..self.num_vars {
            if budget <= 0 || self.root_unsat {
                break;
            }
            if v.is_multiple_of(1024) && governor_halt(None, deadline) {
                break;
            }
            if !candidate[v] || index_stale[v] || self.eliminated[v] || !self.is_unassigned(v) {
                continue;
            }
            let pos_lit = Lit::pos(Var(v as u32));
            let neg_lit = Lit::neg(Var(v as u32));
            // Resolution partners are the *original* clauses only;
            // learnt clauses are consequences and need no resolvents.
            let mut sides: [Vec<ClauseRef>; 2] = [Vec::new(), Vec::new()];
            let mut capped = false;
            for (side, lit) in [pos_lit, neg_lit].into_iter().enumerate() {
                for &c in &occs[lit.code()] {
                    budget -= 1;
                    if self.arena.is_deleted(c) || self.arena.is_learnt(c) {
                        continue;
                    }
                    if self.arena.len(c) > self.config.elim_clause_size_cap
                        || sides[side].len() >= self.config.elim_occurrence_cap
                    {
                        capped = true;
                        break;
                    }
                    sides[side].push(c);
                }
                if capped {
                    break;
                }
            }
            if capped {
                // Conclusive: only a shrinking occurrence list can
                // change the verdict, and deletions re-mark the dirty
                // bit.
                self.elim_dirty[v] = false;
                continue;
            }
            let [pos, neg] = sides;
            // Never-grow rule: count the non-tautological resolvents
            // and give up on this variable as soon as they exceed the
            // clauses they would replace.
            let limit = pos.len() + neg.len() + self.config.elim_grow;
            let mut count = 0usize;
            let mut grew = false;
            // lint:hot-path — the resolve-and-check loop is quadratic
            // in the occurrence lists and runs over the whole variable
            // range; it touches only the preallocated stamp marks.
            'count: for &p in &pos {
                stamp += 1;
                let p_len = self.arena.len(p);
                for i in 0..p_len {
                    mark[self.arena.lit(p, i).code()] = stamp;
                }
                for &q in &neg {
                    let q_len = self.arena.len(q);
                    budget -= (p_len + q_len) as i64;
                    let mut taut = false;
                    for j in 0..q_len {
                        let l = self.arena.lit(q, j);
                        if l != neg_lit && mark[(!l).code()] == stamp {
                            taut = true;
                            break;
                        }
                    }
                    if !taut {
                        count += 1;
                        if count > limit {
                            grew = true;
                            break 'count;
                        }
                    }
                }
            }
            // lint:hot-path-end
            if grew {
                self.elim_dirty[v] = false;
                continue;
            }
            if budget <= 0 {
                // Inconclusive — the dirty bit stays set so the next
                // pass retries this variable with a fresh budget.
                continue;
            }
            self.elim_dirty[v] = false;
            // Commit. Record the frame first (reconstruction needs the
            // clauses exactly as they were), then delete every live
            // clause containing `v` — originals and learnts alike — and
            // only then add the resolvents, so no propagation can ever
            // assign the variable being eliminated.
            let mut frame = ElimFrame {
                var: Var(v as u32),
                clauses: Vec::with_capacity(limit),
            };
            let mut resolvents: Vec<Vec<Lit>> = Vec::with_capacity(count);
            for &p in &pos {
                stamp += 1;
                let p_len = self.arena.len(p);
                for i in 0..p_len {
                    mark[self.arena.lit(p, i).code()] = stamp;
                }
                for &q in &neg {
                    let q_len = self.arena.len(q);
                    let mut taut = false;
                    for j in 0..q_len {
                        let l = self.arena.lit(q, j);
                        if l != neg_lit && mark[(!l).code()] == stamp {
                            taut = true;
                            break;
                        }
                    }
                    if taut {
                        continue;
                    }
                    let mut r: Vec<Lit> = Vec::with_capacity(p_len + q_len - 2);
                    for i in 0..p_len {
                        let l = self.arena.lit(p, i);
                        if l != pos_lit {
                            r.push(l);
                        }
                    }
                    for j in 0..q_len {
                        let l = self.arena.lit(q, j);
                        // The stamp marks double as the dedup filter.
                        if l != neg_lit && mark[l.code()] != stamp {
                            r.push(l);
                        }
                    }
                    resolvents.push(r);
                }
            }
            debug_assert_eq!(resolvents.len(), count);
            // Each resolvent is RUP while both of its parents are still
            // live, so the proof must see every resolvent *before* the
            // occurrence deletions below.
            if self.proof.is_some() {
                for r in &resolvents {
                    self.proof_add_derived(r);
                }
            }
            for side in [&pos, &neg] {
                for &c in side {
                    frame.clauses.push(
                        (0..self.arena.len(c))
                            .map(|i| self.arena.lit(c, i))
                            .collect(),
                    );
                }
            }
            for lit in [pos_lit, neg_lit] {
                // `v` is done after this loop, so its occurrence lists
                // can be consumed (no later candidate reads them).
                let side = std::mem::take(&mut occs[lit.code()]);
                for &c in &side {
                    if self.arena.is_deleted(c) {
                        continue;
                    }
                    // A clause with an unassigned literal can never be
                    // the reason of a trail literal.
                    debug_assert!(!self.is_locked(c));
                    // The deletion shrinks every co-occurring
                    // variable's partner set — queue them for retry.
                    if !self.arena.is_learnt(c) {
                        self.elim_touch_clause(c);
                    }
                    self.proof_delete_cref(c);
                    self.arena.mark_deleted(c);
                    self.detach_clause(c);
                    changed = true;
                }
            }
            self.eliminated[v] = true;
            self.elim_stack.push(frame);
            self.stats.eliminated_vars += 1;
            self.stats.elim_resolvents += count as u64;
            for r in &resolvents {
                for &l in r {
                    index_stale[l.var().index()] = true;
                }
                // `add_original_clause` re-marks the resolvent's
                // variables in `elim_dirty` for the next pass.
                if !self.add_original_clause(r) {
                    self.root_unsat = true;
                    return changed;
                }
            }
        }
        changed
    }

    /// One failed-literal probing pass over the binary-implication
    /// roots, bounded by [`CdclConfig::probe_propagation_budget`]
    /// propagations (and, amortized every 512 probes, the governor's
    /// wall `deadline`). Each failed probe asserts a root-level unit.
    pub(super) fn probe_failed_literals(&mut self, deadline: Option<Instant>) {
        debug_assert_eq!(self.decision_level(), 0);
        let n = 2 * self.num_vars;
        if n == 0 || self.root_unsat {
            return;
        }
        let props_start = self.stats.propagations;
        let budget = self.config.probe_propagation_budget;
        let start = self.probe_cursor % n;
        let mut processed = 0;
        self.phase_probing = true;
        // lint:hot-path — candidate filtering and the probe itself
        // (enqueue/propagate/backtrack) allocate nothing.
        while processed < n {
            if self.root_unsat || self.stats.propagations - props_start >= budget {
                break;
            }
            if processed.is_multiple_of(512) && governor_halt(None, deadline) {
                break;
            }
            let l = Lit::from_code((start + processed) % n);
            processed += 1;
            let v = l.var().index();
            if !self.is_unassigned(v) || self.eliminated[v] {
                continue;
            }
            // A binary-implication root: assigning `l` drives at least
            // one binary watcher (so the probe is not a no-op), but no
            // binary clause implies `l` (so probing the subtree leaves
            // would be redundant).
            let drives_binary = self.watches[(!l).code()].iter().any(|w| w.is_binary());
            let implied_by_binary = self.watches[l.code()].iter().any(|w| w.is_binary());
            if !drives_binary || implied_by_binary {
                continue;
            }
            self.stats.probed_literals += 1;
            self.trail_lim.push(self.trail.len());
            self.enqueue(l, ClauseRef::NONE);
            let failed = self.propagate().is_some();
            self.cancel_until(0);
            if failed {
                self.stats.failed_literals += 1;
                // The failed probe's conflict is reproducible by the
                // checker's (complete) unit propagation, so `¬l` is RUP.
                self.proof_add_derived(&[!l]);
                if !self.assert_root_unit(!l) {
                    break;
                }
            }
        }
        // lint:hot-path-end
        self.probe_cursor = (start + processed) % n;
        self.phase_probing = false;
        debug_assert_eq!(self.decision_level(), 0);
    }

    /// Completes a model over the eliminated variables, newest frame
    /// first. For each frame, any stored clause not already satisfied
    /// by the other variables forces the frame variable to the polarity
    /// it has in that clause. At most one polarity class of a frame can
    /// be otherwise-unsatisfied — two opposing unsatisfied clauses
    /// would have produced a falsified non-tautological resolvent, and
    /// all resolvents were added to (and satisfied by) the formula the
    /// model came from — so the first forced assignment settles the
    /// frame.
    pub(super) fn reconstruct_model(&self, values: &mut [bool]) {
        for frame in self.elim_stack.iter().rev() {
            let v = frame.var.index();
            for lits in &frame.clauses {
                let satisfied_without_v = lits
                    .iter()
                    .any(|&l| l.var().index() != v && (values[l.var().index()] ^ l.is_neg()));
                if !satisfied_without_v {
                    let own = lits
                        .iter()
                        .find(|l| l.var().index() == v)
                        .expect("elimination frames store clauses containing their variable"); // lint:allow(no-panic)
                    values[v] = !own.is_neg();
                    break;
                }
            }
        }
    }

    /// Audit hook: asserts that the reconstructed model satisfies every
    /// clause stored on the elimination stack — the part of the
    /// original formula that no longer exists in the clause database
    /// and which `audit_model`'s live-clause check therefore cannot
    /// see.
    pub(super) fn audit_reconstruction(&self, values: &[bool]) {
        for (fi, frame) in self.elim_stack.iter().enumerate() {
            for lits in &frame.clauses {
                assert!(
                    lits.iter().any(|&l| values[l.var().index()] ^ l.is_neg()),
                    "audit: elimination stack frame {fi} (var {}) holds a clause the \
                     reconstructed model falsifies: {lits:?}",
                    frame.var
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, Budget, Cnf};

    fn lit(i: i64) -> Lit {
        Lit::from_dimacs(i)
    }

    fn state(clauses: &[&[i64]], config: CdclConfig) -> State {
        let mut c = Cnf::new(0);
        for cl in clauses {
            c.add_clause(cl.iter().map(|&d| lit(d)));
        }
        State::new(&c, config)
    }

    #[test]
    fn eliminates_a_variable_and_keeps_the_resolvent() {
        // Variable 1 resolves (1 2) × (-1 3) into (2 3); the two
        // originals land on the elimination stack.
        let mut st = state(&[&[1, 2], &[-1, 3]], CdclConfig::default());
        assert!(st.eliminate_vars(None));
        assert!(st.eliminated[0]);
        assert_eq!(st.stats.eliminated_vars, 1);
        assert_eq!(st.stats.elim_resolvents, 1);
        assert_eq!(st.elim_stack.len(), 1);
        assert_eq!(st.elim_stack[0].var, Var(0));
        assert_eq!(st.elim_stack[0].clauses.len(), 2);
        let live: Vec<Vec<Lit>> = st
            .clauses
            .iter()
            .filter(|&&c| !st.arena.is_deleted(c))
            .map(|&c| (0..st.arena.len(c)).map(|i| st.arena.lit(c, i)).collect())
            .collect();
        assert_eq!(live, vec![vec![lit(2), lit(3)]]);
    }

    #[test]
    fn frozen_and_assumed_variables_are_never_eliminated() {
        let mut st = state(&[&[1, 2], &[-1, 3]], CdclConfig::default());
        st.frozen[0] = true;
        st.assumed[1] = true;
        st.frozen[2] = true;
        assert!(!st.eliminate_vars(None));
        assert!(!st.eliminated.iter().any(|&e| e));
        // Melting a variable makes it eliminable again.
        st.frozen[0] = false;
        assert!(st.eliminate_vars(None));
        assert!(st.eliminated[0]);
        assert!(!st.eliminated[1]);
        assert!(!st.eliminated[2]);
    }

    #[test]
    fn tautological_resolvents_enable_pure_style_elimination() {
        // (1 2) × (-1 -2) is tautological: eliminating variable 1 adds
        // nothing, and variable 2 then goes out as a pure literal.
        let mut st = state(&[&[1, 2], &[-1, -2]], CdclConfig::default());
        assert!(st.eliminate_vars(None));
        assert!(st.eliminated[0]);
        assert_eq!(st.stats.elim_resolvents, 0);
    }

    #[test]
    fn restore_var_replays_frames_lifo() {
        let mut st = state(&[&[1, 2], &[-1, 3]], CdclConfig::default());
        assert!(st.eliminate_vars(None));
        assert!(st.eliminated[0]);
        st.restore_var(0);
        assert!(!st.eliminated[0]);
        assert!(st.elim_stack.is_empty());
        assert_eq!(st.stats.eliminated_vars, 0);
        assert!(!st.root_unsat);
        // The two original clauses are back among the live clauses.
        let live: Vec<Vec<Lit>> = st
            .clauses
            .iter()
            .filter(|&&c| !st.arena.is_deleted(c))
            .map(|&c| (0..st.arena.len(c)).map(|i| st.arena.lit(c, i)).collect())
            .collect();
        assert!(live.contains(&vec![lit(1), lit(2)]));
        assert!(live.contains(&vec![lit(-1), lit(3)]));
    }

    #[test]
    fn freeze_restores_an_already_eliminated_variable() {
        let mut st = state(&[&[1, 2], &[-1, 3]], CdclConfig::default());
        assert!(st.eliminate_vars(None));
        assert!(st.eliminated[0]);
        st.freeze_var(Var(0));
        assert!(!st.eliminated[0]);
        assert!(st.frozen[0]);
        // A frozen variable stays put through further passes.
        assert!(!st.eliminate_vars(None) || !st.eliminated[0]);
    }

    #[test]
    fn reconstruction_completes_the_model_over_eliminated_vars() {
        // Force variable 1 to matter: (1 2) and (-1 3) with 2 and 3
        // both false requires... no model; pick values satisfying the
        // resolvent only one way. With 2 false and 3 true, clause (1 2)
        // forces variable 1 true.
        let mut st = state(&[&[1, 2], &[-1, 3]], CdclConfig::default());
        assert!(st.eliminate_vars(None));
        let mut values = vec![false, false, true];
        st.reconstruct_model(&mut values);
        assert!(values[0], "clause (1 2) with 2 false forces 1 true");
        st.audit_reconstruction(&values);
        // And the opposite corner: 2 true, 3 false forces 1 false.
        let mut values = vec![true, true, false];
        st.reconstruct_model(&mut values);
        assert!(!values[0], "clause (-1 3) with 3 false forces 1 false");
        st.audit_reconstruction(&values);
    }

    #[test]
    fn seeded_failed_literal_is_learned_at_the_root() {
        // Probing variable 1 positively propagates both polarities of
        // variable 2 through the binaries: the probe fails and ¬1 is
        // asserted at the root. Variable 3 keeps the formula SAT.
        let mut st = state(
            &[&[-1, 2], &[-1, -2], &[3, 1, 2]],
            CdclConfig {
                probe_propagation_budget: 1000,
                ..CdclConfig::default()
            },
        );
        st.probe_failed_literals(None);
        assert_eq!(st.stats.failed_literals, 1);
        assert!(st.stats.probed_literals >= 1);
        assert_eq!(st.value(lit(-1)), 1, "failed probe asserts the negation");
        assert_eq!(st.decision_level(), 0);
        assert!(!st.root_unsat);
    }

    #[test]
    fn probing_respects_its_propagation_budget() {
        let mut st = state(
            &[&[-1, 2], &[-1, -2], &[3, 1, 2]],
            CdclConfig {
                probe_propagation_budget: 0,
                ..CdclConfig::default()
            },
        );
        st.probe_failed_literals(None);
        assert_eq!(st.stats.probed_literals, 0);
        assert_eq!(st.stats.failed_literals, 0);
    }

    /// Satisfiable pigeonhole (`n` into `n`): enough conflicts under
    /// aggressive schedules that inprocessing really fires.
    fn php_sat(n: i64) -> Cnf {
        let p = |i: i64, j: i64| (i - 1) * n + j;
        let mut c = Cnf::new(0);
        for i in 1..=n {
            c.add_clause((1..=n).map(|j| lit(p(i, j))));
        }
        for j in 1..=n {
            for a in 1..=n {
                for b in (a + 1)..=n {
                    c.add_clause([lit(-p(a, j)), lit(-p(b, j))]);
                }
            }
        }
        c
    }

    #[test]
    fn end_to_end_solve_with_elimination_reconstructs_valid_models() {
        // The returned model must satisfy the *original* clauses even
        // for variables BVE resolved away (reconstruction), with every
        // audit — including the reconstruction check — switched on.
        let c = php_sat(5);
        let config = CdclConfig {
            simplify_activation_conflicts: 0,
            inprocess_interval: 0,
            restart_base: 1,
            audit: true,
            ..CdclConfig::default()
        };
        let mut s = CdclSolver::with_config(config);
        let out = s.solve_with(&c, &[], &Budget::default());
        match out {
            SolveOutcome::Sat(model) => assert!(c.eval(&model), "reconstructed model is bogus"),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn incremental_clause_addition_reintroduces_eliminated_vars() {
        // Eliminate a variable, then add a clause that mentions it: the
        // addition must replay the elimination frame before attaching.
        let config = CdclConfig {
            audit: true,
            ..CdclConfig::default()
        };
        let mut s = CdclSolver::with_config(config);
        for _ in 0..3 {
            s.new_var();
        }
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-1), lit(3)]);
        {
            let st = s.session.as_mut().unwrap();
            assert!(st.eliminate_vars(None));
            assert!(st.eliminated[0]);
            st.collect_garbage();
        }
        s.add_clause([lit(1)]);
        assert!(!s.session.as_ref().unwrap().eliminated[0]);
        // With the frame replayed, (1) forces 3 through (-1 3).
        assert!(s.solve_assuming(&[lit(-3)], &Budget::default()).is_unsat());
        assert!(s.solve_assuming(&[], &Budget::default()).is_sat());
    }

    #[test]
    fn assumptions_on_eliminated_vars_restore_them() {
        let config = CdclConfig {
            audit: true,
            ..CdclConfig::default()
        };
        let mut s = CdclSolver::with_config(config);
        for _ in 0..3 {
            s.new_var();
        }
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-1), lit(3)]);
        {
            let st = s.session.as_mut().unwrap();
            assert!(st.eliminate_vars(None));
            assert!(st.eliminated[0]);
            st.collect_garbage();
        }
        // Assuming the eliminated variable restores it; 1 ∧ ¬3 then
        // contradicts the replayed (-1 3).
        assert!(s
            .solve_assuming(&[lit(1), lit(-3)], &Budget::default())
            .is_unsat());
        assert!(!s.session.as_ref().unwrap().eliminated[0]);
        assert!(s.solve_assuming(&[lit(1)], &Budget::default()).is_sat());
    }

    #[test]
    fn freeze_melt_api_controls_eliminability() {
        let config = CdclConfig {
            simplify_activation_conflicts: 0,
            inprocess_interval: 0,
            restart_base: 1,
            ..CdclConfig::default()
        };
        let mut s = CdclSolver::with_config(config);
        s.freeze(Var(0)); // grows the session on demand
        for _ in 0..3 {
            s.new_var();
        }
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-1), lit(3)]);
        assert!(s.solve_assuming(&[], &Budget::default()).is_sat());
        s.melt(Var(0));
        assert!(s.solve_assuming(&[], &Budget::default()).is_sat());
    }
}
