//! Deterministic fault injection for the solve supervisor.
//!
//! Production fault-containment claims ("a crashed worker is
//! quarantined", "a corrupted shared clause is rejected", "a truncated
//! proof is refused by the checker") are only worth anything if the
//! faults are actually injected and the containment observed. This
//! module is the injection half: a [`FaultPlan`] armed on a solver
//! (via [`CdclConfig::fault_plan`](super::CdclConfig::fault_plan) or
//! the `LASSYNTH_FAULT` environment variable) fires **exactly once**,
//! at a deterministic trigger point, so every containment test is
//! replayable:
//!
//! * [`FaultKind::Panic`] — the solver panics inside `solve` once its
//!   session conflict count reaches the trigger, modeling a worker
//!   crash inside a portfolio quantum;
//! * [`FaultKind::CorruptExchange`] — the next exported learnt clause
//!   at or past the trigger conflict is published with its first
//!   literal flipped, modeling a corrupted clause in flight (the
//!   importer's RUP filter must reject it or prove it harmless);
//! * [`FaultKind::TruncateProof`] — the proof log is frozen at the
//!   trigger conflict: later derivations are silently dropped, so the
//!   log ends without a refutation and the DRAT checker must reject
//!   it;
//! * [`FaultKind::ArenaOom`] — the solve reports memory exhaustion
//!   once the clause arena reaches the trigger word count, modeling
//!   an arena-growth failure (the session must stay sound on a
//!   re-solve).
//!
//! The environment form is `LASSYNTH_FAULT=<kind>@<n>[@seed]`, e.g.
//! `LASSYNTH_FAULT=panic@50` or `LASSYNTH_FAULT=corrupt-clause@10@2`;
//! the optional third field restricts the fault to the solver whose
//! config seed matches, so exactly one portfolio worker takes the hit.
//! Like `LASSYNTH_AUDIT`, the variable is sampled once per solver
//! construction. With no plan armed, the per-conflict cost is one
//! `Option` test.

use std::str::FromStr;

/// Which fault to inject (see the [module docs](self)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside `solve` at the trigger conflict.
    Panic,
    /// Flip the first literal of the next exported clause at or past
    /// the trigger conflict.
    CorruptExchange,
    /// Freeze the proof log at the trigger conflict.
    TruncateProof,
    /// Report memory exhaustion once the arena reaches the trigger
    /// word count.
    ArenaOom,
}

/// A one-shot deterministic fault: `kind` fires when its trigger
/// counter reaches `at`, on every solver unless `only_seed` restricts
/// it to one portfolio member.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The fault to inject.
    pub kind: FaultKind,
    /// Trigger threshold: session conflicts for
    /// [`FaultKind::Panic`] / [`FaultKind::CorruptExchange`] /
    /// [`FaultKind::TruncateProof`], arena words for
    /// [`FaultKind::ArenaOom`].
    pub at: u64,
    /// Fire only on the solver whose `config.seed` matches.
    pub only_seed: Option<u64>,
}

impl FaultPlan {
    /// The plan armed by `LASSYNTH_FAULT`, if the variable is set and
    /// parses. A set-but-malformed value is ignored (the harness must
    /// never turn an env typo into a behavior change).
    pub fn from_env() -> Option<FaultPlan> {
        std::env::var("LASSYNTH_FAULT").ok()?.parse().ok()
    }

    /// Whether the plan applies to a solver with the given seed.
    pub fn applies_to(&self, seed: u64) -> bool {
        self.only_seed.is_none_or(|s| s == seed)
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    /// Parses `<kind>@<n>[@seed]` with kinds `panic`,
    /// `corrupt-clause`, `truncate-proof`, `arena-oom`.
    fn from_str(s: &str) -> Result<FaultPlan, String> {
        let mut parts = s.split('@');
        let kind = match parts.next().unwrap_or("") {
            "panic" => FaultKind::Panic,
            "corrupt-clause" => FaultKind::CorruptExchange,
            "truncate-proof" => FaultKind::TruncateProof,
            "arena-oom" => FaultKind::ArenaOom,
            other => return Err(format!("unknown fault kind {other:?}")),
        };
        let at = parts
            .next()
            .ok_or_else(|| format!("fault plan {s:?} is missing its @N trigger"))?
            .parse::<u64>()
            .map_err(|e| format!("bad fault trigger in {s:?}: {e}"))?;
        let only_seed = match parts.next() {
            None => None,
            Some(seed) => Some(
                seed.parse::<u64>()
                    .map_err(|e| format!("bad fault seed in {s:?}: {e}"))?,
            ),
        };
        if parts.next().is_some() {
            return Err(format!("trailing fields in fault plan {s:?}"));
        }
        Ok(FaultPlan {
            kind,
            at,
            only_seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind() {
        for (text, kind) in [
            ("panic@50", FaultKind::Panic),
            ("corrupt-clause@10", FaultKind::CorruptExchange),
            ("truncate-proof@3", FaultKind::TruncateProof),
            ("arena-oom@4096", FaultKind::ArenaOom),
        ] {
            let plan: FaultPlan = text.parse().expect(text);
            assert_eq!(plan.kind, kind);
            assert_eq!(plan.only_seed, None);
        }
    }

    #[test]
    fn parses_seed_restriction() {
        let plan: FaultPlan = "panic@50@2".parse().unwrap();
        assert_eq!(plan.only_seed, Some(2));
        assert!(plan.applies_to(2));
        assert!(!plan.applies_to(3));
        assert!(FaultPlan::from_str("panic@1").unwrap().applies_to(7));
    }

    #[test]
    fn rejects_malformed_plans() {
        for bad in [
            "",
            "panic",
            "panic@",
            "panic@x",
            "oom@5",
            "panic@1@x",
            "panic@1@2@3",
        ] {
            assert!(FaultPlan::from_str(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
