//! Inprocessing: clause-database simplification between restarts.
//!
//! Industrial CDCL solvers interleave search with *inprocessing* —
//! cheap, budgeted simplification of the clause database that pays for
//! itself through faster propagation and shorter learnt clauses. This
//! module schedules the four passes the ROADMAP names as the
//! remaining single-solve throughput levers, plus the machinery they
//! share:
//!
//! * **Subsumption and self-subsuming resolution** ([`State::subsume`]):
//!   a SatELite-style backward pass over an occurrence index. Every
//!   live clause carries a 64-bit *signature* (a Bloom filter of its
//!   variables); a clause `C` can only subsume `D` when
//!   `sig(C) & !sig(D) == 0`, which rejects almost all candidate pairs
//!   without touching their literals. A full check then either deletes
//!   `D` (`C ⊆ D`) or strengthens it (`C \ {l} ⊆ D` with `¬l ∈ D`
//!   resolves to `D \ {¬l}`). Strengthened clauses re-enter the queue —
//!   they are stronger subsumers than their originals.
//!
//! * **Vivification** ([`State::vivify`]): each candidate clause is
//!   detached and re-derived literal by literal — assume the negation
//!   of a prefix, propagate, and stop early when the prefix already
//!   implies the clause (a literal turns true or propagation
//!   conflicts) or a literal is implied false (it drops out). Runs
//!   under a propagation budget; phase saving is suspended while
//!   probing so vivification cannot pollute the search's saved
//!   polarities.
//!
//! * **Bounded variable elimination** and **failed-literal probing**
//!   live in the sibling `elim` module ([`State::eliminate_vars`],
//!   [`State::probe_failed_literals`]) and run on the same schedule,
//!   gated additionally on
//!   [`CdclConfig::simplify_activation_conflicts`]. The pass order is
//!   subsume → eliminate → vivify → probe.
//!
//! Both passes run at restart boundaries (decision level 0, no
//! assumptions applied), so every derived fact and rewritten clause is
//! a consequence of the added clauses alone — exactly the invariant the
//! incremental API needs. Deleted clauses are detached from the watch
//! lists immediately and reclaimed by the same compacting GC that
//! `reduce_db` uses ([`State::collect_garbage`] rewrites ref lists,
//! watchers and trail reasons through forwarding addresses), so no
//! tombstone ever survives into `propagate`. Clauses that currently
//! serve as the reason of a root-level trail literal are locked and
//! skipped. A learnt clause that subsumes an *original* clause is
//! promoted to original first — deleting the original in favor of a
//! deletable learnt would let `reduce_db` silently drop a constraint.

use super::*;

/// Outcome of matching a subsumer `C` against a candidate `D`.
enum SubMatch {
    /// `C` neither subsumes nor strengthens `D`.
    None,
    /// `C ⊆ D`: `D` is redundant.
    Subsumes,
    /// `C` resolves with `D` on exactly one flipped literal: `D` can
    /// drop the carried literal (the one that occurs in `D`).
    Strengthens(Lit),
}

impl State {
    /// Runs one inprocessing pass (subsumption, then bounded variable
    /// elimination, then vivification, then failed-literal probing,
    /// then a compacting GC) if the conflict count has crossed the
    /// schedule. Called at restart boundaries only — the solver must
    /// sit at decision level 0. With restarts disabled inprocessing
    /// never triggers.
    ///
    /// `stop` is the cooperative cancellation flag of the caller's
    /// [`Budget`] and `deadline` its wall-clock cutoff: both are
    /// re-checked at every pass boundary (and between elimination
    /// rounds), so a cancelled or out-of-time worker abandons the
    /// remaining passes instead of burning a full
    /// subsume/eliminate/vivify/probe cycle after its result stopped
    /// mattering. Search-level determinism is unaffected — the checks
    /// only ever *skip* work on the way out of a run whose result is
    /// already discarded (no governor set, no behavior change).
    pub(super) fn maybe_inprocess(&mut self, stop: Option<&AtomicBool>, deadline: Option<Instant>) {
        if !self.config.use_vivification
            && !self.config.use_subsumption
            && !self.config.use_elim
            && !self.config.use_probing
        {
            return;
        }
        if self.stats.conflicts < self.next_inprocess {
            return;
        }
        debug_assert_eq!(self.decision_level(), 0);
        // Variable elimination and probing share the tier database's
        // activation gate: below it the clause database (and hence any
        // conflict-identical record) stays untouched by the new passes.
        let simplify_on = self.stats.conflicts >= self.config.simplify_activation_conflicts;
        let mut changed = false;
        if self.config.use_subsumption
            && !self.root_unsat
            && !governor_halt(stop, deadline)
            && self.stats.conflicts >= self.next_subsume
        {
            changed |= self.subsume();
            self.next_subsume = self.stats.conflicts + self.config.subsume_conflict_gap;
            // Tombstones are legal here (the closing GC reclaims them);
            // the checkpoint still rejects them in watches and reasons.
            if !self.root_unsat {
                self.audit_checkpoint(AuditPoint::Inprocess);
            }
        }
        // Elimination runs right after subsumption (on the freshly
        // shrunk database) and before vivification, so vivification
        // never wastes budget distilling clauses elimination is about
        // to resolve away.
        if self.config.use_elim && simplify_on && !self.root_unsat && !governor_halt(stop, deadline)
        {
            for _ in 0..self.config.elim_rounds.max(1) {
                // Record the round's work *before* deciding whether to
                // continue: a stop raised mid-pass must not skip the
                // closing GC for deletions already marked.
                let round_changed = self.eliminate_vars(deadline);
                changed |= round_changed;
                if !round_changed || self.root_unsat || governor_halt(stop, deadline) {
                    break;
                }
            }
            if !self.root_unsat {
                self.audit_checkpoint(AuditPoint::Inprocess);
            }
        }
        if self.config.use_vivification
            && !self.root_unsat
            && !governor_halt(stop, deadline)
            && self.stats.conflicts >= self.next_vivify
        {
            changed |= self.vivify();
            self.next_vivify = self.stats.conflicts + self.config.vivify_conflict_gap;
            if !self.root_unsat {
                self.audit_checkpoint(AuditPoint::Inprocess);
            }
        }
        if self.config.use_probing
            && simplify_on
            && !self.root_unsat
            && !governor_halt(stop, deadline)
        {
            self.probe_failed_literals(deadline);
            if !self.root_unsat {
                self.audit_checkpoint(AuditPoint::Inprocess);
            }
        }
        // Reclaim everything the passes marked deleted. Safe even when
        // a root conflict was derived: locked clauses are never marked,
        // so every trail reason forwards. A pass that touched nothing
        // skips the GC — copying a multi-megaword arena to reclaim
        // zero words is pure overhead.
        if changed {
            self.collect_garbage();
        }
        self.inprocess_passes += 1;
        // Geometric back-off: pass k waits k+1 base intervals, keeping
        // total inprocessing cost a bounded fraction of the search.
        self.next_inprocess = self.stats.conflicts
            + self
                .config
                .inprocess_interval
                .saturating_mul(self.inprocess_passes + 1);
    }

    /// Backward subsumption + self-subsuming resolution, bounded by
    /// [`CdclConfig::subsumption_check_budget`] literal comparisons.
    /// Returns whether any clause was deleted or rewritten.
    ///
    /// With [`CdclConfig::subsumption_touched_only`] the *subsumer
    /// queue* is restricted to clauses touched since the previous pass
    /// (learnt, strengthened, vivified, user-added) — steady-state
    /// passes stop re-matching the same quiesced database against
    /// itself, which was the dominant inprocessing overhead on the
    /// T-factory instances. The occurrence index still spans every
    /// live clause (anything may be subsumed *by* a touched clause),
    /// and every [`CdclConfig::subsumption_full_sweep_interval`]-th
    /// pass (including the first) sweeps the full database to pick up
    /// the old-subsumes-new direction touched-only passes cannot see.
    fn subsume(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        let mut changed = false;
        let full_sweep = !self.config.subsumption_touched_only
            || (self.config.subsumption_full_sweep_interval > 0
                && self
                    .subsumption_passes
                    .is_multiple_of(self.config.subsumption_full_sweep_interval));
        self.subsumption_passes += 1;
        // The touched list is consumed either way: a full sweep
        // supersedes it. Replacements attached mid-pass re-enter the
        // fresh list and seed the next pass. An empty queue returns
        // before the O(database) occurrence index is built (the pass
        // still counted toward the full-sweep cadence).
        let touched = std::mem::take(&mut self.touched);
        let mut queue: Vec<ClauseRef> = if full_sweep {
            self.clauses
                .iter()
                .chain(self.learnts.iter().flatten())
                .copied()
                .filter(|&c| !self.arena.is_deleted(c))
                .collect()
        } else {
            touched
                .into_iter()
                .filter(|&c| !self.arena.is_deleted(c))
                .collect()
        };
        if queue.is_empty() {
            return false;
        }
        // Short clauses are the strongest subsumers; try them first.
        queue.sort_by_key(|&c| self.arena.len(c));
        // The occurrence index and signatures span every live clause —
        // anything may be subsumed *by* a queued clause. The index is
        // a flat CSR (counting scan, prefix sum, filling scan): at
        // eager pass cadence a vec-of-vecs build was the dominant
        // inprocessing wall cost. Clauses attached mid-pass
        // (strengthened replacements) append to the sparse `over`
        // side-lists instead; both halves are tombstone-filtered on
        // use like before.
        let n_lits = 2 * self.num_vars;
        let mut starts = vec![0u32; n_lits + 1];
        for &c in self.clauses.iter().chain(self.learnts.iter().flatten()) {
            if self.arena.is_deleted(c) {
                continue;
            }
            for i in 0..self.arena.len(c) {
                starts[self.arena.lit(c, i).code() + 1] += 1;
            }
        }
        for i in 1..starts.len() {
            starts[i] += starts[i - 1];
        }
        let mut flat = vec![ClauseRef::NONE; starts[n_lits] as usize];
        let mut cursor: Vec<u32> = starts[..n_lits].to_vec();
        let mut sigs = SigMap::with_capacity_and_hasher(
            2 * (self.clauses.len() + self.num_learnts()),
            Default::default(),
        );
        for &c in self.clauses.iter().chain(self.learnts.iter().flatten()) {
            if self.arena.is_deleted(c) {
                continue;
            }
            let mut sig = 0u64;
            for i in 0..self.arena.len(c) {
                let l = self.arena.lit(c, i);
                flat[cursor[l.code()] as usize] = c;
                cursor[l.code()] += 1;
                sig |= 1u64 << (l.var().0 & 63);
            }
            sigs.insert(c.0, sig);
        }
        let mut over: Vec<Vec<ClauseRef>> = vec![Vec::new(); n_lits];
        let occ_len = |starts: &[u32], over: &[Vec<ClauseRef>], code: usize| {
            (starts[code + 1] - starts[code]) as usize + over[code].len()
        };
        if self.audit_on {
            let mut occs_audit: Vec<Vec<ClauseRef>> = vec![Vec::new(); n_lits];
            for (code, list) in occs_audit.iter_mut().enumerate() {
                list.extend_from_slice(&flat[starts[code] as usize..starts[code + 1] as usize]);
            }
            self.audit_occ_index(&occs_audit, &sigs);
        }
        let mut budget = self.config.subsumption_check_budget as i64;
        let mut qi = 0;
        while qi < queue.len() && budget > 0 {
            let c = queue[qi];
            qi += 1;
            if self.arena.is_deleted(c) {
                continue;
            }
            let c_len = self.arena.len(c);
            let c_sig = sigs[&c.0];
            let min_lit = (0..c_len)
                .map(|i| self.arena.lit(c, i))
                .min_by_key(|l| occ_len(&starts, &over, l.code()))
                .expect("clauses have at least two literals"); // lint:allow(no-panic)
                                                               // Clauses containing `min_lit` are subsumption (and
                                                               // strengthening-elsewhere) candidates; clauses containing
                                                               // `¬min_lit` can only be strengthened *at* `min_lit`.
            for probe in [min_lit, !min_lit] {
                // Snapshot the length: strengthened replacements append
                // to the overflow lists mid-loop and get their own
                // queue turn.
                let csr_lo = starts[probe.code()] as usize;
                let csr_n = starts[probe.code() + 1] as usize - csr_lo;
                let n = csr_n + over[probe.code()].len();
                for k in 0..n {
                    let d = if k < csr_n {
                        flat[csr_lo + k]
                    } else {
                        over[probe.code()][k - csr_n]
                    };
                    if d == c || self.arena.is_deleted(d) || self.arena.is_deleted(c) {
                        continue;
                    }
                    let d_len = self.arena.len(d);
                    if d_len < c_len {
                        continue;
                    }
                    budget -= 1;
                    if c_sig & !sigs[&d.0] != 0 {
                        continue;
                    }
                    budget -= (c_len + d_len) as i64;
                    match self.subsume_check(c, d) {
                        SubMatch::None => {}
                        SubMatch::Subsumes => {
                            if self.is_locked(d) {
                                continue;
                            }
                            if self.arena.is_learnt(c) && !self.arena.is_learnt(d) {
                                self.promote_to_original(c);
                            }
                            if !self.arena.is_learnt(d) {
                                self.elim_touch_clause(d);
                            }
                            self.proof_delete_cref(d);
                            self.arena.mark_deleted(d);
                            self.detach_clause(d);
                            self.stats.subsumed_clauses += 1;
                            changed = true;
                        }
                        SubMatch::Strengthens(rem) => {
                            if self.is_locked(d) {
                                continue;
                            }
                            let new_lits: Vec<Lit> = (0..d_len)
                                .map(|i| self.arena.lit(d, i))
                                .filter(|&l| l != rem)
                                .collect();
                            let learnt = self.arena.is_learnt(d);
                            let lbd = self.arena.lbd(d).min(new_lits.len() as u32);
                            if !learnt {
                                self.elim_touch_clause(d);
                            }
                            // The self-subsuming resolvent is RUP while
                            // both `c` and `d` are live: log it before
                            // the original's deletion.
                            self.proof_add_derived(&new_lits);
                            self.proof_delete_cref(d);
                            self.arena.mark_deleted(d);
                            self.detach_clause(d);
                            self.stats.strengthened_clauses += 1;
                            changed = true;
                            if new_lits.len() == 1 {
                                if !self.assert_root_unit(new_lits[0]) {
                                    return true;
                                }
                            } else {
                                let nd = self.attach_clause_quiet(&new_lits, learnt, lbd);
                                let mut sig = 0u64;
                                for &l in &new_lits {
                                    over[l.code()].push(nd);
                                    sig |= 1u64 << (l.var().0 & 63);
                                }
                                sigs.insert(nd.0, sig);
                                queue.push(nd);
                            }
                        }
                    }
                    if budget <= 0 {
                        break;
                    }
                }
                if budget <= 0 {
                    break;
                }
            }
        }
        changed
    }

    /// Does `c` subsume `d`, possibly up to one flipped literal?
    /// Assumes `len(c) <= len(d)`; quadratic in the clause lengths (the
    /// signature filter keeps this off the common path).
    fn subsume_check(&self, c: ClauseRef, d: ClauseRef) -> SubMatch {
        let c_len = self.arena.len(c);
        let d_len = self.arena.len(d);
        let mut flipped: Option<Lit> = None;
        'subsumer: for i in 0..c_len {
            let l = self.arena.lit(c, i);
            for j in 0..d_len {
                let m = self.arena.lit(d, j);
                if m == l {
                    continue 'subsumer;
                }
                if m == !l && flipped.is_none() {
                    flipped = Some(m);
                    continue 'subsumer;
                }
            }
            return SubMatch::None;
        }
        match flipped {
            None => SubMatch::Subsumes,
            Some(m) => SubMatch::Strengthens(m),
        }
    }

    /// Moves a learnt clause into the original database (clears the
    /// learnt header bit and switches ref lists) so `reduce_db` can
    /// never delete it. Applied before a learnt clause is allowed to
    /// subsume an original one. The header tier bits name the owning
    /// ref list (an audited invariant), so no cross-tier search is
    /// needed.
    fn promote_to_original(&mut self, c: ClauseRef) {
        let tier = self.arena.tier(c);
        let pos = self.learnts[tier]
            .iter()
            .position(|&x| x == c)
            .expect("promoted clause is in its tier's learnt list"); // lint:allow(no-panic)
        self.learnts[tier].swap_remove(pos);
        self.clauses.push(c);
        self.arena.data[c.0 as usize] &= !LEARNT_BIT;
        // A promoted clause is a brand-new resolution partner.
        self.elim_touch_clause(c);
    }

    /// Asserts a literal derived at the root and propagates it to
    /// fixpoint. Returns `false` (latching `root_unsat`) on
    /// contradiction.
    /// Callers log the unit clause itself (its derivation argument is
    /// theirs); this only logs the terminal empty clause when the unit
    /// contradicts the root state.
    pub(super) fn assert_root_unit(&mut self, l: Lit) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        match self.value(l) {
            1 => true,
            -1 => {
                self.root_unsat = true;
                self.proof_add_empty();
                false
            }
            _ => {
                self.enqueue(l, ClauseRef::NONE);
                if self.propagate().is_some() {
                    self.root_unsat = true;
                    self.proof_add_empty();
                    false
                } else {
                    true
                }
            }
        }
    }

    /// Vivifies (distills) candidate clauses under the pass's
    /// propagation budget: learnt clauses first (they are also the
    /// `reduce_db` deletion candidates, so shortening them has double
    /// payoff), then long original clauses. Returns whether any clause
    /// was deleted or rewritten.
    ///
    /// Successive passes resume where the previous one ran out of
    /// budget (`vivify_cursor` rotates through the candidate order):
    /// without the cursor every pass would re-probe the same
    /// already-minimal clauses at the head of the lists and the tail
    /// would never be distilled.
    fn vivify(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        let props_start = self.stats.propagations;
        let budget = self.config.vivify_propagation_budget;
        let cands: Vec<ClauseRef> = self
            .learnts
            .iter()
            .flatten()
            .chain(self.clauses.iter())
            .copied()
            .filter(|&c| !self.arena.is_deleted(c) && self.arena.len(c) >= 3)
            .collect();
        if cands.is_empty() {
            return false;
        }
        let start = self.vivify_cursor % cands.len();
        let mut processed = 0;
        let mut changed = false;
        self.phase_probing = true;
        while processed < cands.len() {
            if self.root_unsat || self.stats.propagations - props_start >= budget {
                break;
            }
            let c = cands[(start + processed) % cands.len()];
            processed += 1;
            // Deletion and root propagation during this pass can
            // invalidate earlier snapshots; re-check.
            if self.arena.is_deleted(c) || self.is_locked(c) {
                continue;
            }
            changed |= self.vivify_clause(c);
        }
        self.vivify_cursor = (start + processed) % cands.len();
        self.phase_probing = false;
        debug_assert_eq!(self.decision_level(), 0);
        changed
    }

    /// Re-derives one clause literal by literal. The clause is detached
    /// first so it cannot propagate on itself; each kept literal `l` is
    /// probed by assuming `¬l` at a fresh pseudo-level. Three outcomes
    /// shorten it: a literal already false drops out, a literal turning
    /// true truncates the clause after it, and a propagation conflict
    /// truncates it after the current literal. Every replacement clause
    /// is entailed by the *rest* of the formula and at least as strong
    /// as the original, so swapping it in preserves equivalence.
    /// Returns whether the clause was deleted or rewritten.
    fn vivify_clause(&mut self, cref: ClauseRef) -> bool {
        let len = self.arena.len(cref);
        let lits: Vec<Lit> = (0..len).map(|i| self.arena.lit(cref, i)).collect();
        self.detach_clause(cref);
        let mut kept: Vec<Lit> = Vec::with_capacity(len);
        let mut satisfied_at_root = false;
        for (i, &l) in lits.iter().enumerate() {
            match self.value(l) {
                1 => {
                    if self.decision_level() == 0 {
                        satisfied_at_root = true;
                    } else {
                        // ¬kept ⊨ l: the clause shrinks to kept ∪ {l}.
                        kept.push(l);
                    }
                    break;
                }
                -1 => {
                    // ¬kept ⊨ ¬l: the literal contributes nothing.
                }
                _ => {
                    kept.push(l);
                    if i + 1 == lits.len() {
                        // Probing the final literal cannot shorten the
                        // clause any further; skip the propagation.
                        break;
                    }
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(!l, ClauseRef::NONE);
                    if self.propagate().is_some() {
                        // ¬kept is contradictory: kept is itself implied.
                        break;
                    }
                }
            }
        }
        self.cancel_until(0);
        if satisfied_at_root {
            // True at the root: drop the clause entirely (not counted
            // as vivified literals — nothing was distilled).
            if !self.arena.is_learnt(cref) {
                self.elim_touch_clause(cref);
            }
            self.proof_delete_cref(cref);
            self.arena.mark_deleted(cref);
            return true;
        }
        if kept.len() == lits.len() {
            // Nothing learned; reattach the original watchers.
            let binary = lits.len() == 2;
            self.watches[lits[0].code()].push(Watcher::new(cref, lits[1], binary));
            self.watches[lits[1].code()].push(Watcher::new(cref, lits[0], binary));
            return false;
        }
        self.stats.vivified_lits += (lits.len() - kept.len()) as u64;
        if !self.arena.is_learnt(cref) {
            self.elim_touch_clause(cref);
        }
        // The truncated clause is RUP (the checker's complete root
        // propagation reproduces every probe outcome), so it must enter
        // the proof before the original it replaces is deleted.
        if kept.is_empty() {
            self.proof_add_empty();
        } else {
            self.proof_add_derived(&kept);
        }
        self.proof_delete_cref(cref);
        self.arena.mark_deleted(cref);
        match kept.len() {
            0 => {
                // Every literal is false at the root: empty clause.
                self.root_unsat = true;
            }
            1 => {
                self.assert_root_unit(kept[0]);
            }
            _ => {
                let learnt = self.arena.is_learnt(cref);
                let lbd = self.arena.lbd(cref).min(kept.len() as u32);
                self.attach_clause_quiet(&kept, learnt, lbd);
            }
        }
        true
    }
}
