//! Restart scheduling and phase management: the search-control half of
//! the solver's "when to give up on this trajectory" machinery.
//!
//! Two schedules are selectable through [`CdclConfig::restart_policy`]:
//!
//! * [`RestartPolicy::Luby`] — the classic reluctant-doubling schedule:
//!   the i-th run lasts `restart_base × luby(i)` conflicts. Blind to
//!   search quality, but its long tail of short runs is a robust
//!   default on small instances.
//! * [`RestartPolicy::Ema`] — Glucose-style adaptive restarts. Two
//!   exponential moving averages of learnt-clause LBD are maintained:
//!   a *fast* one (α = 1/32, tracking the last few dozen conflicts)
//!   and a *slow* one (α = 1/4096, the long-run baseline). When the
//!   fast average exceeds `ema_restart_margin ×` the slow one, recent
//!   conflicts are producing worse (higher-LBD) clauses than the run's
//!   norm — the trajectory has gone stale and a restart is triggered.
//!   Restarts are *blocked* (postponed by [`RestartSched::on_block`])
//!   when the assignment trail at the latest conflict is
//!   `ema_block_margin ×` longer than its own moving average: an
//!   unusually deep trail suggests the search is closing in on a model
//!   that a restart would throw away (Glucose's trail-blocking rule).
//!
//! The EMA policy only takes over after
//! [`CdclConfig::restart_activation_conflicts`] conflicts; before that
//! the Luby schedule runs even under [`RestartPolicy::Ema`]. Like
//! chronological backtracking, adaptive restarts are a *long-run*
//! steering mechanism — small lucky-trajectory instances (the majority
//! gate solves in ~164 conflicts) finish before activation and keep
//! their exact pre-EMA trajectories. The simplification machinery
//! (learnt-clause tiering, bounded variable elimination, failed-literal
//! probing) follows the same pattern behind its own
//! [`CdclConfig::simplify_activation_conflicts`] gate, so the short
//! runs also keep their exact pre-simplification trajectories.
//!
//! [`RephaseSched`] drives target-phase rephasing: the solver snapshots
//! the polarities of the deepest trail seen (the *target phases*,
//! maintained by the solver proper) and, every
//! [`CdclConfig::rephase_interval`] conflicts (stretching with each
//! pass), resets the saved phases at a restart boundary — to the best
//! snapshot, to their inversion, or to random values, in a fixed
//! rotation. Long runs on the T-factory instances otherwise wedge into
//! one polarity basin for hundreds of thousands of conflicts.
//!
//! [`CdclConfig::restart_policy`]: super::CdclConfig::restart_policy
//! [`CdclConfig::restart_activation_conflicts`]: super::CdclConfig::restart_activation_conflicts
//! [`CdclConfig::simplify_activation_conflicts`]: super::CdclConfig::simplify_activation_conflicts
//! [`CdclConfig::rephase_interval`]: super::CdclConfig::rephase_interval

use super::CdclConfig;

/// Which restart schedule drives the search. See the [module
/// docs](self) for the trade-offs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Luby-sequence restarts (`restart_base × luby(i)` conflicts).
    Luby,
    /// Glucose-style adaptive restarts: LBD fast/slow EMAs trigger,
    /// trail-size EMA blocks. Falls back to Luby until
    /// `restart_activation_conflicts`.
    Ema,
}

/// The i-th element (0-based) of the Luby sequence (1, 1, 2, 1, 1, 2, 4, …).
pub(super) fn luby(mut x: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// Smoothing factor of the fast (recent-window) LBD average.
pub(super) const EMA_FAST_ALPHA: f64 = 1.0 / 32.0;
/// Smoothing factor of the slow (long-run baseline) LBD and trail
/// averages.
pub(super) const EMA_SLOW_ALPHA: f64 = 1.0 / 4096.0;

/// An exponential moving average primed by its first sample (so the
/// early average is not dragged toward an arbitrary zero init).
#[derive(Clone, Copy, Debug)]
pub(super) struct Ema {
    value: f64,
    alpha: f64,
    primed: bool,
}

impl Ema {
    pub(super) fn new(alpha: f64) -> Ema {
        Ema {
            value: 0.0,
            alpha,
            primed: false,
        }
    }

    pub(super) fn update(&mut self, x: f64) {
        if self.primed {
            self.value += self.alpha * (x - self.value);
        } else {
            self.value = x;
            self.primed = true;
        }
    }

    pub(super) fn get(&self) -> f64 {
        self.value
    }
}

/// What the scheduler wants at a quiescence point (no conflict from
/// propagation, before the next decision).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum RestartDecision {
    /// Keep searching.
    Continue,
    /// Restart now (back to decision level 0).
    Restart,
    /// The LBD trigger fired but the trail is unusually deep: postpone
    /// (the caller counts it and calls [`RestartSched::on_block`]).
    Block,
}

/// Per-solve restart scheduler: EMAs, the conflicts-since-restart
/// counter, and the cached Luby budget.
#[derive(Clone, Debug)]
pub(super) struct RestartSched {
    fast_lbd: Ema,
    slow_lbd: Ema,
    trail_avg: Ema,
    /// Conflicts since the last restart (or blocked restart).
    conflicts_since: u64,
    /// Trail size at the most recent conflict — what blocking compares
    /// against the trail average.
    last_trail: usize,
    /// Cached `restart_base × luby(restarts)` for the current run.
    luby_budget: u64,
}

impl RestartSched {
    pub(super) fn new(config: &CdclConfig, restarts: u64) -> RestartSched {
        RestartSched {
            fast_lbd: Ema::new(EMA_FAST_ALPHA),
            slow_lbd: Ema::new(EMA_SLOW_ALPHA),
            trail_avg: Ema::new(EMA_SLOW_ALPHA),
            conflicts_since: 0,
            last_trail: 0,
            luby_budget: config.restart_base.saturating_mul(luby(restarts)),
        }
    }

    /// Feeds one analyzed conflict (its learnt LBD and the trail size
    /// at the conflict) into the averages.
    pub(super) fn on_conflict(&mut self, lbd: u32, trail: usize) {
        self.conflicts_since += 1;
        self.fast_lbd.update(lbd as f64);
        self.slow_lbd.update(lbd as f64);
        self.trail_avg.update(trail as f64);
        self.last_trail = trail;
    }

    /// The scheduling decision at a quiescence point. `total_conflicts`
    /// selects Luby-vs-EMA under the activation gate; `restarts` is
    /// only read through the cached Luby budget.
    pub(super) fn decide(&self, config: &CdclConfig, total_conflicts: u64) -> RestartDecision {
        let ema_active = config.restart_policy == RestartPolicy::Ema
            && total_conflicts >= config.restart_activation_conflicts;
        if !ema_active {
            return if self.conflicts_since >= self.luby_budget {
                RestartDecision::Restart
            } else {
                RestartDecision::Continue
            };
        }
        if self.conflicts_since < config.ema_min_interval {
            return RestartDecision::Continue;
        }
        if self.fast_lbd.get() <= config.ema_restart_margin * self.slow_lbd.get() {
            return RestartDecision::Continue;
        }
        if (self.last_trail as f64) > config.ema_block_margin * self.trail_avg.get() {
            return RestartDecision::Block;
        }
        RestartDecision::Restart
    }

    /// Resets the run counter after a restart and re-caches the Luby
    /// budget for the next run.
    pub(super) fn on_restart(&mut self, config: &CdclConfig, restarts: u64) {
        self.conflicts_since = 0;
        self.luby_budget = config.restart_base.saturating_mul(luby(restarts));
    }

    /// Postpones a blocked restart: the trigger must accumulate another
    /// `ema_min_interval` conflicts before firing again (the EMA
    /// analogue of Glucose clearing its bounded LBD queue).
    pub(super) fn on_block(&mut self) {
        self.conflicts_since = 0;
    }
}

/// What a rephase pass resets the saved phases to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum RephaseKind {
    /// Copy the target phases (deepest-trail snapshot).
    Best,
    /// Invert every saved phase.
    Invert,
    /// Randomize every saved phase.
    Random,
}

/// Rephasing schedule: fires every `rephase_interval × (passes + 1)`
/// conflicts, rotating Best → Invert → Best → Random (the best
/// snapshot is revisited twice per cycle — it is the strongest signal,
/// the other kinds exist to escape it when it is wrong).
#[derive(Clone, Debug)]
pub(super) struct RephaseSched {
    /// Conflict count that triggers the next rephase.
    next: u64,
    /// Passes run so far — stretches the interval and selects the kind.
    passes: u64,
    /// Deepest trail seen since the last rephase; gates target-phase
    /// snapshots.
    pub(super) best_trail: usize,
}

impl RephaseSched {
    pub(super) fn new(config: &CdclConfig) -> RephaseSched {
        RephaseSched {
            next: config.rephase_interval.max(1),
            passes: 0,
            best_trail: 0,
        }
    }

    /// Whether the trail at a conflict is deep enough (5% over the best
    /// so far) to re-snapshot the target phases. Keeps snapshot cost at
    /// O(log trail) copies per epoch instead of one per improvement.
    pub(super) fn improves(&self, trail: usize) -> bool {
        trail > self.best_trail + self.best_trail / 20
    }

    pub(super) fn record(&mut self, trail: usize) {
        self.best_trail = trail;
    }

    /// If the schedule has fired, returns the kind of this pass and
    /// advances the schedule (geometrically stretched, best-trail
    /// tracking re-armed).
    pub(super) fn fire(&mut self, config: &CdclConfig, conflicts: u64) -> Option<RephaseKind> {
        if conflicts < self.next {
            return None;
        }
        let kind = match self.passes % 4 {
            0 => RephaseKind::Best,
            1 => RephaseKind::Invert,
            2 => RephaseKind::Best,
            _ => RephaseKind::Random,
        };
        self.passes += 1;
        self.next = conflicts
            + config
                .rephase_interval
                .max(1)
                .saturating_mul(self.passes + 1);
        self.best_trail = 0;
        Some(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
        // Power-of-two boundaries deep into the sequence.
        assert_eq!(luby(62), 32);
        assert_eq!(luby(63), 1);
    }

    #[test]
    fn ema_primes_on_first_sample_then_smooths() {
        let mut e = Ema::new(0.5);
        e.update(10.0);
        assert_eq!(e.get(), 10.0, "first sample primes the average");
        e.update(20.0);
        assert_eq!(e.get(), 15.0);
        e.update(15.0);
        assert_eq!(e.get(), 15.0, "at the mean the average is stationary");
    }

    fn ema_config() -> CdclConfig {
        CdclConfig {
            restart_policy: RestartPolicy::Ema,
            restart_activation_conflicts: 0,
            ema_min_interval: 4,
            ema_restart_margin: 1.25,
            ema_block_margin: 1.4,
            ..CdclConfig::default()
        }
    }

    #[test]
    fn ema_trigger_fires_on_lbd_degradation() {
        let config = ema_config();
        let mut sched = RestartSched::new(&config, 0);
        // A long run of low-LBD conflicts: fast ≈ slow, no restart.
        for _ in 0..64 {
            sched.on_conflict(2, 10);
        }
        assert_eq!(sched.decide(&config, 64), RestartDecision::Continue);
        // LBD degrades sharply: the fast average outruns the slow one
        // past the 1.25× margin within a few conflicts.
        for _ in 0..16 {
            sched.on_conflict(30, 10);
        }
        assert_eq!(sched.decide(&config, 80), RestartDecision::Restart);
        // After the restart the counter must re-arm.
        sched.on_restart(&config, 1);
        assert_eq!(
            sched.decide(&config, 80),
            RestartDecision::Continue,
            "min-interval re-arms after restart"
        );
    }

    #[test]
    fn ema_min_interval_holds_trigger_back() {
        let config = ema_config();
        let mut sched = RestartSched::new(&config, 0);
        for _ in 0..64 {
            sched.on_conflict(2, 10);
        }
        sched.on_restart(&config, 1);
        // Degrading LBDs, but fewer than min_interval conflicts since
        // the restart.
        for _ in 0..3 {
            sched.on_conflict(40, 10);
        }
        assert_eq!(sched.decide(&config, 67), RestartDecision::Continue);
        sched.on_conflict(40, 10);
        assert_eq!(sched.decide(&config, 68), RestartDecision::Restart);
    }

    #[test]
    fn deep_trail_blocks_and_on_block_postpones() {
        let config = ema_config();
        let mut sched = RestartSched::new(&config, 0);
        for _ in 0..64 {
            sched.on_conflict(2, 100);
        }
        // Trigger condition satisfied, but the latest conflict sits on
        // a trail 1.4× deeper than the average: blocked.
        for _ in 0..16 {
            sched.on_conflict(30, 500);
        }
        assert_eq!(sched.decide(&config, 80), RestartDecision::Block);
        sched.on_block();
        assert_eq!(
            sched.decide(&config, 80),
            RestartDecision::Continue,
            "blocking postpones by the min interval"
        );
    }

    #[test]
    fn activation_gate_falls_back_to_luby() {
        let mut config = ema_config();
        config.restart_activation_conflicts = 1000;
        config.restart_base = 8;
        let mut sched = RestartSched::new(&config, 0);
        // A stable low-LBD prefix, then sharp degradation: the EMA
        // trigger condition holds, but below the activation gate the
        // Luby budget (8 × luby(0) = 8) rules.
        for _ in 0..4 {
            sched.on_conflict(2, 10);
        }
        for _ in 0..3 {
            sched.on_conflict(50, 10);
        }
        assert_eq!(sched.decide(&config, 7), RestartDecision::Continue);
        sched.on_conflict(50, 10);
        assert_eq!(sched.decide(&config, 8), RestartDecision::Restart);
        // Past the gate the same state consults the EMAs, which also
        // fire (fast has outrun slow well past the margin).
        assert_eq!(sched.decide(&config, 1000), RestartDecision::Restart);
    }

    #[test]
    fn rephase_schedule_rotates_and_stretches() {
        let config = CdclConfig {
            rephase_interval: 100,
            ..CdclConfig::default()
        };
        let mut sched = RephaseSched::new(&config);
        assert_eq!(sched.fire(&config, 99), None);
        assert_eq!(sched.fire(&config, 100), Some(RephaseKind::Best));
        // Next pass waits 2× the interval, then 3×, rotating kinds.
        assert_eq!(sched.fire(&config, 250), None);
        assert_eq!(sched.fire(&config, 300), Some(RephaseKind::Invert));
        assert_eq!(sched.fire(&config, 600), Some(RephaseKind::Best));
        assert_eq!(sched.fire(&config, 1000), Some(RephaseKind::Random));
        assert_eq!(sched.fire(&config, 1500), Some(RephaseKind::Best));
    }

    #[test]
    fn rephase_improvement_gate_requires_5_percent_growth() {
        let config = CdclConfig::default();
        let mut sched = RephaseSched::new(&config);
        assert!(sched.improves(1), "anything beats an empty best trail");
        sched.record(100);
        assert!(!sched.improves(100));
        assert!(!sched.improves(105));
        assert!(sched.improves(106));
    }
}
