//! Core SAT types: variables, literals, models, budgets, backends.

use crate::Cnf;
use std::fmt;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

impl Var {
    /// The variable's index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation, encoded as `var << 1 | sign`.
///
/// ```
/// use sat::{Lit, Var};
/// let a = Lit::pos(Var(3));
/// assert_eq!((!a).var(), Var(3));
/// assert!((!a).is_neg());
/// assert_eq!(!!a, a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    #[inline]
    pub fn pos(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    #[inline]
    pub fn neg(var: Var) -> Lit {
        Lit(var.0 << 1 | 1)
    }

    /// Builds a literal from a variable and a sign (`true` = negated).
    #[inline]
    pub fn new(var: Var, negated: bool) -> Lit {
        Lit(var.0 << 1 | negated as u32)
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is negated.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 != 0
    }

    /// Dense code usable as an array index (`2*var + sign`).
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// Converts to the DIMACS convention (`±(var+1)`).
    pub fn to_dimacs(self) -> i64 {
        let v = (self.var().0 + 1) as i64;
        if self.is_neg() {
            -v
        } else {
            v
        }
    }

    /// Parses from the DIMACS convention.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn from_dimacs(d: i64) -> Lit {
        assert_ne!(d, 0, "dimacs literal 0 is the clause terminator");
        let var = Var(d.unsigned_abs() as u32 - 1);
        Lit::new(var, d < 0)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "¬{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lit({self})")
    }
}

/// A satisfying assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// Wraps a dense assignment (index = variable number).
    pub fn new(values: Vec<bool>) -> Model {
        Model { values }
    }

    /// The value assigned to `var`.
    ///
    /// # Panics
    ///
    /// Panics if the variable is out of range.
    pub fn value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// Whether `lit` is true under the model.
    pub fn lit_true(&self, lit: Lit) -> bool {
        self.value(lit.var()) ^ lit.is_neg()
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model assigns no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Why a solve gave up before reaching a verdict.
///
/// The resource governor distinguishes the budget axes so callers can
/// react differently: a conflict budget expiring mid-portfolio means
/// "rotate to the next worker", a deadline means "report the anytime
/// answer", a memory ceiling means "this instance needs a bigger box".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExhaustionReason {
    /// The conflict budget ([`Budget::max_conflicts`]) expired.
    Conflicts,
    /// The propagation budget ([`Budget::max_propagations`]) expired.
    Propagations,
    /// The wall-clock deadline ([`Budget::max_time`]) passed.
    Deadline,
    /// The memory ceiling ([`Budget::max_memory_words`]) was reached
    /// (clause-arena words, covering original and learnt clauses), or
    /// arena growth failed.
    Memory,
    /// The cooperative [`Budget::stop`] flag was raised, or the
    /// backend was interrupted without a resource verdict.
    Cancelled,
}

impl fmt::Display for ExhaustionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExhaustionReason::Conflicts => "conflict budget",
            ExhaustionReason::Propagations => "propagation budget",
            ExhaustionReason::Deadline => "deadline",
            ExhaustionReason::Memory => "memory ceiling",
            ExhaustionReason::Cancelled => "cancelled",
        })
    }
}

/// Result of a solve call.
#[derive(Clone, Debug)]
pub enum SolveOutcome {
    /// A satisfying assignment was found.
    Sat(Model),
    /// The formula (with assumptions) is unsatisfiable.
    Unsat,
    /// The budget expired before a verdict, for the given reason.
    Unknown(ExhaustionReason),
}

impl SolveOutcome {
    /// Whether the outcome is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveOutcome::Sat(_))
    }

    /// Whether the outcome is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveOutcome::Unsat)
    }

    /// Extracts the model.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is not `Sat`.
    pub fn expect_sat(self) -> Model {
        match self {
            SolveOutcome::Sat(m) => m,
            other => panic!("expected SAT, got {other:?}"), // lint:allow(no-panic)
        }
    }
}

/// Resource limits for a solve call.
///
/// The default budget is unlimited. The `stop` flag supports the
/// parallel portfolio in `synth::optimize`: the first worker to finish
/// raises it and the others abandon their search.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Give up after this many conflicts.
    pub max_conflicts: Option<u64>,
    /// Give up after this many literal propagations.
    pub max_propagations: Option<u64>,
    /// Give up after this much wall-clock time.
    pub max_time: Option<Duration>,
    /// Give up when the clause arena (original + learnt clauses,
    /// header words included) reaches this many `u32` words. This is
    /// the solver's dominant allocation, so the ceiling is an
    /// effective memory governor without global allocator hooks.
    pub max_memory_words: Option<u64>,
    /// Cooperative cancellation flag, checked periodically.
    pub stop: Option<Arc<AtomicBool>>,
}

impl Budget {
    /// An unlimited budget.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A wall-clock budget.
    pub fn time_limit(limit: Duration) -> Budget {
        Budget {
            max_time: Some(limit),
            ..Budget::default()
        }
    }

    /// A conflict-count budget.
    pub fn conflict_limit(limit: u64) -> Budget {
        Budget {
            max_conflicts: Some(limit),
            ..Budget::default()
        }
    }

    /// A propagation-count budget.
    pub fn propagation_limit(limit: u64) -> Budget {
        Budget {
            max_propagations: Some(limit),
            ..Budget::default()
        }
    }

    /// A clause-arena memory ceiling in `u32` words (see
    /// [`Budget::max_memory_words`]).
    pub fn memory_limit_words(limit: u64) -> Budget {
        Budget {
            max_memory_words: Some(limit),
            ..Budget::default()
        }
    }

    /// Attaches a cancellation flag.
    pub fn with_stop(mut self, stop: Arc<AtomicBool>) -> Budget {
        self.stop = Some(stop);
        self
    }

    /// Attaches a memory ceiling in `u32` arena words.
    pub fn with_memory_words(mut self, limit: u64) -> Budget {
        self.max_memory_words = Some(limit);
        self
    }
}

/// A SAT solving backend.
///
/// The paper emphasizes that its pipeline "is straightforward to port
/// to any SAT solver on the market" via DIMACS; this trait is that
/// porting seam. Implemented by [`crate::CdclSolver`] (ours) and
/// [`crate::VarisatBackend`].
pub trait Backend {
    /// A short human-readable name for reports.
    fn name(&self) -> &str;

    /// Solves `cnf` under `assumptions` within `budget`.
    fn solve_with(&mut self, cnf: &Cnf, assumptions: &[Lit], budget: &Budget) -> SolveOutcome;

    /// Solves without assumptions or limits.
    fn solve(&mut self, cnf: &Cnf) -> SolveOutcome {
        self.solve_with(cnf, &[], &Budget::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_encoding_roundtrip() {
        let v = Var(7);
        assert_eq!(Lit::pos(v).var(), v);
        assert!(!Lit::pos(v).is_neg());
        assert!(Lit::neg(v).is_neg());
        assert_eq!(!Lit::pos(v), Lit::neg(v));
        assert_eq!(Lit::from_code(Lit::neg(v).code()), Lit::neg(v));
    }

    #[test]
    fn dimacs_roundtrip() {
        for d in [1i64, -1, 5, -42] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
    }

    #[test]
    #[should_panic(expected = "terminator")]
    fn dimacs_zero_panics() {
        Lit::from_dimacs(0);
    }

    #[test]
    fn model_lookup() {
        let m = Model::new(vec![true, false]);
        assert!(m.value(Var(0)));
        assert!(!m.lit_true(Lit::neg(Var(0))));
        assert!(m.lit_true(Lit::neg(Var(1))));
    }

    #[test]
    fn outcome_helpers() {
        assert!(SolveOutcome::Unsat.is_unsat());
        assert!(SolveOutcome::Sat(Model::new(vec![])).is_sat());
        assert!(!SolveOutcome::Unknown(ExhaustionReason::Conflicts).is_sat());
    }

    #[test]
    fn exhaustion_reasons_render() {
        let rendered: Vec<String> = [
            ExhaustionReason::Conflicts,
            ExhaustionReason::Propagations,
            ExhaustionReason::Deadline,
            ExhaustionReason::Memory,
            ExhaustionReason::Cancelled,
        ]
        .iter()
        .map(|r| r.to_string())
        .collect();
        assert_eq!(
            rendered,
            [
                "conflict budget",
                "propagation budget",
                "deadline",
                "memory ceiling",
                "cancelled"
            ]
        );
    }

    #[test]
    fn budget_constructors_set_one_axis() {
        let b = Budget::propagation_limit(10);
        assert_eq!(b.max_propagations, Some(10));
        assert!(b.max_conflicts.is_none() && b.max_memory_words.is_none());
        let b = Budget::memory_limit_words(1 << 20);
        assert_eq!(b.max_memory_words, Some(1 << 20));
        let b = Budget::conflict_limit(5).with_memory_words(64);
        assert_eq!((b.max_conflicts, b.max_memory_words), (Some(5), Some(64)));
    }
}
