//! Adapter exposing the `varisat` CDCL solver through [`Backend`].
//!
//! The paper's pipeline treats the SAT solver as a swappable component
//! behind DIMACS; this adapter is our second solver for cross-checking
//! verdicts of the in-tree [`crate::CdclSolver`] and for portfolio runs.
//! `varisat` has no cooperative interrupt API, so [`Budget`] limits are
//! ignored here (portfolio callers run it on its own thread).

use crate::{Backend, Budget, Cnf, Lit, Model, SolveOutcome};
use varisat::ExtendFormula;

/// A [`Backend`] implemented by the `varisat` crate.
#[derive(Debug, Default, Clone)]
pub struct VarisatBackend;

impl Backend for VarisatBackend {
    fn name(&self) -> &str {
        "varisat"
    }

    fn solve_with(&mut self, cnf: &Cnf, assumptions: &[Lit], _budget: &Budget) -> SolveOutcome {
        let mut solver = varisat::Solver::new();
        let mut formula = varisat::CnfFormula::new();
        for clause in cnf {
            let lits: Vec<varisat::Lit> = clause
                .iter()
                .map(|l| varisat::Lit::from_dimacs(l.to_dimacs() as isize))
                .collect();
            formula.add_clause(&lits);
        }
        solver.add_formula(&formula);
        let assume: Vec<varisat::Lit> = assumptions
            .iter()
            .map(|l| varisat::Lit::from_dimacs(l.to_dimacs() as isize))
            .collect();
        solver.assume(&assume);
        match solver.solve() {
            Ok(true) => {
                let model = solver.model().unwrap_or_default();
                let mut values = vec![false; cnf.num_vars()];
                for lit in model {
                    let d = lit.to_dimacs();
                    let idx = d.unsigned_abs() - 1;
                    if idx < values.len() {
                        values[idx] = d > 0;
                    }
                }
                SolveOutcome::Sat(Model::new(values))
            }
            Ok(false) => SolveOutcome::Unsat,
            // The shim has no budget semantics: an internal solver
            // error surfaces as an interruption, not a resource
            // verdict.
            Err(_) => SolveOutcome::Unknown(crate::ExhaustionReason::Cancelled),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    #[test]
    fn agrees_with_cdcl_on_small_instances() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..15 {
            let n = 12;
            let m = rng.random_range(20..60);
            let mut c = Cnf::new(n);
            for _ in 0..m {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    cl.push(Lit::new(
                        Var(rng.random_range(0..n as u32)),
                        rng.random_bool(0.5),
                    ));
                }
                c.add_clause(cl);
            }
            let ours = crate::CdclSolver::default().solve(&c).is_sat();
            let theirs = VarisatBackend.solve(&c).is_sat();
            assert_eq!(ours, theirs);
        }
    }

    #[test]
    fn varisat_model_satisfies() {
        let mut c = Cnf::new(3);
        c.add_clause([Lit::pos(Var(0)), Lit::neg(Var(1))]);
        c.add_clause([Lit::pos(Var(1))]);
        c.add_clause([Lit::neg(Var(2))]);
        if let SolveOutcome::Sat(m) = VarisatBackend.solve(&c) {
            assert!(c.eval(&m));
        } else {
            panic!("expected sat");
        }
    }

    #[test]
    fn respects_assumptions() {
        let mut c = Cnf::new(2);
        c.add_clause([Lit::pos(Var(0)), Lit::pos(Var(1))]);
        let out = VarisatBackend.solve_with(
            &c,
            &[Lit::neg(Var(0)), Lit::neg(Var(1))],
            &Budget::default(),
        );
        assert!(out.is_unsat());
    }
}
