//! End-to-end UNSAT certification: the solver's proof log for the
//! pigeonhole family must pass the in-tree forward DRAT checker, the
//! binary/text DRAT writers must round-trip through the parser against
//! the original DIMACS inputs, and corrupted proofs must be rejected.

use sat::proof::{self, StepKind};
use sat::{certify_unsat, Budget, CdclConfig, CdclSolver, Cnf, Lit, ProofLog, RestartPolicy};

fn lit(i: i64) -> Lit {
    Lit::from_dimacs(i)
}

/// Pigeonhole principle: `pigeons` into `pigeons - 1` holes, UNSAT.
fn pigeonhole(pigeons: i64) -> Cnf {
    let holes = pigeons - 1;
    let p = |i: i64, j: i64| (i - 1) * holes + j;
    let mut c = Cnf::new(0);
    for i in 1..=pigeons {
        c.add_clause((1..=holes).map(|j| lit(p(i, j))));
    }
    for j in 1..=holes {
        for a in 1..=pigeons {
            for b in (a + 1)..=pigeons {
                c.add_clause([lit(-p(a, j)), lit(-p(b, j))]);
            }
        }
    }
    c
}

/// Every inprocessing pass on from the first conflict, so the proof
/// exercises subsumption, vivification, BVE, probing, tier demotion
/// and GC deletions — not just 1UIP learnts.
fn aggressive() -> CdclConfig {
    CdclConfig {
        inprocess_interval: 0,
        restart_base: 2,
        chrono_threshold: 0,
        chrono_activation_conflicts: 0,
        simplify_activation_conflicts: 0,
        max_learnts_floor: 8.0,
        restart_policy: RestartPolicy::Ema,
        restart_activation_conflicts: 0,
        ema_min_interval: 2,
        use_vivification: true,
        use_probing: true,
        ..CdclConfig::default()
    }
}

/// Solves `c` (expected UNSAT at the root) with proof logging on and
/// returns the owned log.
fn refute(c: &Cnf, config: CdclConfig) -> ProofLog {
    let mut s = CdclSolver::with_config(config);
    s.enable_proof();
    s.add_cnf(c);
    assert!(s.solve_assuming(&[], &Budget::default()).is_unsat());
    assert!(s.final_assumption_conflict().is_empty());
    s.proof().expect("proof logging enabled").clone()
}

#[test]
fn pigeonhole_family_certifies() {
    for n in 3..=6 {
        for config in [CdclConfig::default(), aggressive()] {
            let log = refute(&pigeonhole(n), config);
            let report = certify_unsat(&log, &[])
                .unwrap_or_else(|e| panic!("php({n}) proof rejected: {e:?}"));
            assert!(report.refuted(), "php({n}) proof has no refutation");
            assert!(report.derived_checked > 0, "php({n}) proof checked nothing");
        }
    }
}

/// The DRAT writer emits only the derived/deleted lines (the input
/// clauses come from the DIMACS side, as `drat-trim` expects); parsing
/// the written file back against the CNF must reproduce a proof the
/// checker accepts, in both text and binary format.
#[test]
fn drat_files_round_trip_against_the_cnf() {
    let c = pigeonhole(5);
    let log = refute(&c, aggressive());
    for binary in [false, true] {
        let mut buf = Vec::new();
        log.write_drat(&mut buf, binary).expect("write drat");
        let back = ProofLog::from_cnf_and_drat(&c, &buf)
            .unwrap_or_else(|e| panic!("binary={binary} drat re-parse failed: {e:?}"));
        let report = proof::check(&back)
            .unwrap_or_else(|e| panic!("binary={binary} round-tripped proof rejected: {e:?}"));
        assert!(report.refuted());
    }
}

/// Rebuilds `log`, letting `f` decide per step whether to keep it
/// verbatim (`Some(step)`) with possibly altered literals, or drop it.
fn mutate(
    log: &ProofLog,
    mut f: impl FnMut(usize, StepKind, &[Lit]) -> Option<Vec<Lit>>,
) -> ProofLog {
    let mut out = ProofLog::new();
    for (i, (kind, lits)) in log.iter().enumerate() {
        let Some(lits) = f(i, kind, lits) else {
            continue;
        };
        match kind {
            StepKind::AddInput => out.add_input(&lits),
            StepKind::AddDerived => out.add_derived(&lits),
            StepKind::Delete => out.delete(&lits),
        }
    }
    out
}

/// Removing a single input clause turns php(5) satisfiable, so a sound
/// checker cannot accept the (unchanged) refutation: some derived or
/// delete step must fail.
#[test]
fn proof_with_a_dropped_input_is_rejected() {
    let log = refute(&pigeonhole(5), aggressive());
    let mut dropped = false;
    let mutated = mutate(&log, |_, kind, lits| {
        if !dropped && kind == StepKind::AddInput {
            dropped = true;
            return None;
        }
        Some(lits.to_vec())
    });
    assert!(dropped);
    assert!(
        certify_unsat(&mutated, &[]).is_err(),
        "checker accepted a refutation of a satisfiable formula"
    );
}

/// Corrupting one literal of one input line (the first pigeon clause
/// loses hole 1) also leaves a satisfiable formula; the unchanged
/// derivation steps must stop checking out.
#[test]
fn proof_with_a_corrupted_input_literal_is_rejected() {
    let log = refute(&pigeonhole(5), aggressive());
    let mut corrupted = false;
    let mutated = mutate(&log, |_, kind, lits| {
        let mut lits = lits.to_vec();
        if !corrupted && kind == StepKind::AddInput {
            corrupted = true;
            lits[0] = !lits[0];
        }
        Some(lits)
    });
    assert!(corrupted);
    assert!(
        certify_unsat(&mutated, &[]).is_err(),
        "checker accepted a proof whose input was tampered with"
    );
}
