//! Property-based tests for the SAT stack: solver soundness against
//! brute force, builder gadget semantics, DIMACS round trips, and the
//! inprocessing config-matrix torture harness.

use proptest::prelude::*;
use sat::{Backend, Budget, CdclConfig, CdclSolver, Cnf, CnfBuilder, Lit, RestartPolicy, Var};

/// The baseline solver configuration for the differential tests. With
/// `LASSYNTH_FORCE_INPROCESS` set in the environment (CI runs the
/// whole suite a second time that way) it turns into an aggressive
/// inprocessing configuration — restart every other conflict, an
/// inprocessing pass at every restart boundary, fully chronological
/// (out-of-order) backtracking, adaptive EMA restarts, eager
/// rephasing, and the tier database / variable elimination /
/// failed-literal probing active from the first conflict — so every
/// differential property in this file also tortures the new code
/// paths.
fn base_config() -> CdclConfig {
    let mut config = CdclConfig::default();
    if std::env::var_os("LASSYNTH_FORCE_INPROCESS").is_some() {
        config.restart_base = 1;
        config.inprocess_interval = 0;
        config.chrono_threshold = 0;
        config.chrono_activation_conflicts = 0;
        config.simplify_activation_conflicts = 0;
        config.max_learnts_floor = 8.0;
        config.restart_policy = RestartPolicy::Ema;
        config.restart_activation_conflicts = 0;
        config.ema_min_interval = 2;
        config.rephase_interval = 8;
    }
    config
}

/// The full search/inprocessing matrix: 16 sessions of vivification ×
/// subsumption × out-of-order chronological backtracking × restart
/// policy (Luby / adaptive EMA), each on/off, under schedules
/// aggressive enough that the tiny torture instances actually reach
/// the code (inprocess at every restart, restart every other conflict,
/// chrono on every eligible conflict, EMA restarts and rephasing
/// active from the first conflict, GC-heavy learnt budget), plus 8
/// sessions of tier database × bounded variable elimination ×
/// failed-literal probing, each on/off with the simplify activation
/// gate dropped to zero so the new passes fire from the first
/// conflict. (In the first 16 sessions those features sit behind the
/// default 2000-conflict gate, which the tiny instances never reach —
/// they double as the legacy-behaviour control.)
fn inprocessing_matrix() -> Vec<CdclConfig> {
    let mut configs = Vec::with_capacity(24);
    for viv in [false, true] {
        for sub in [false, true] {
            for chrono in [false, true] {
                for ema in [false, true] {
                    configs.push(CdclConfig {
                        use_vivification: viv,
                        use_subsumption: sub,
                        use_chrono: chrono,
                        chrono_threshold: 0,
                        chrono_activation_conflicts: 0,
                        inprocess_interval: 0,
                        restart_base: 1,
                        max_learnts_floor: 8.0,
                        restart_policy: if ema {
                            RestartPolicy::Ema
                        } else {
                            RestartPolicy::Luby
                        },
                        restart_activation_conflicts: 0,
                        ema_min_interval: 2,
                        rephase_interval: if ema { 8 } else { 10_000 },
                        ..CdclConfig::default()
                    });
                }
            }
        }
    }
    for tiers in [false, true] {
        for elim in [false, true] {
            for probing in [false, true] {
                configs.push(CdclConfig {
                    use_tiers: tiers,
                    use_elim: elim,
                    use_probing: probing,
                    simplify_activation_conflicts: 0,
                    use_chrono: true,
                    chrono_threshold: 0,
                    chrono_activation_conflicts: 0,
                    inprocess_interval: 0,
                    restart_base: 1,
                    max_learnts_floor: 8.0,
                    restart_policy: RestartPolicy::Ema,
                    restart_activation_conflicts: 0,
                    ema_min_interval: 2,
                    rephase_interval: 8,
                    ..CdclConfig::default()
                });
            }
        }
    }
    configs
}

/// Pigeonhole CNF: `pigeons` into `holes` (UNSAT iff pigeons > holes).
fn pigeonhole_cnf(pigeons: i64, holes: i64) -> Cnf {
    let p = |i: i64, j: i64| (i - 1) * holes + j;
    let mut cnf = Cnf::new(0);
    for i in 1..=pigeons {
        cnf.add_clause((1..=holes).map(|j| Lit::from_dimacs(p(i, j))));
    }
    for j in 1..=holes {
        for a in 1..=pigeons {
            for b in (a + 1)..=pigeons {
                cnf.add_clause([Lit::from_dimacs(-p(a, j)), Lit::from_dimacs(-p(b, j))]);
            }
        }
    }
    cnf
}

/// Differential check against the vendored `varisat` backend on
/// pigeonhole instances, both the UNSAT (n+1 into n) and the SAT
/// (n into n) family, including a GC-heavy configuration.
#[cfg(feature = "varisat")]
#[test]
fn cdcl_matches_varisat_on_pigeonhole() {
    for holes in 2i64..=6 {
        for pigeons in [holes, holes + 1] {
            let cnf = pigeonhole_cnf(pigeons, holes);
            let theirs = sat::VarisatBackend.solve(&cnf).is_sat();
            for config in [
                CdclConfig::default(),
                CdclConfig {
                    max_learnts_floor: 10.0,
                    ..CdclConfig::default()
                },
            ] {
                match CdclSolver::with_config(config.clone()).solve(&cnf) {
                    sat::SolveOutcome::Sat(model) => {
                        assert!(
                            theirs,
                            "php({pigeons},{holes}) verdict mismatch: {config:?}"
                        );
                        assert!(cnf.eval(&model), "php({pigeons},{holes}) bogus model");
                    }
                    sat::SolveOutcome::Unsat => {
                        assert!(
                            !theirs,
                            "php({pigeons},{holes}) verdict mismatch: {config:?}"
                        );
                    }
                    sat::SolveOutcome::Unknown(_) => {
                        panic!("php({pigeons},{holes}) unbounded solve returned unknown")
                    }
                }
            }
        }
    }
}

fn arb_cnf(max_vars: u32, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    let clause = proptest::collection::vec((0..max_vars, any::<bool>()), 1..4);
    proptest::collection::vec(clause, 0..max_clauses).prop_map(move |clauses| {
        let mut cnf = Cnf::new(max_vars as usize);
        for c in clauses {
            cnf.add_clause(c.into_iter().map(|(v, neg)| Lit::new(Var(v), neg)));
        }
        cnf
    })
}

/// Exhaustive SAT check for tiny variable counts.
fn brute_force_sat(cnf: &Cnf) -> bool {
    let n = cnf.num_vars();
    assert!(n <= 16);
    (0u32..1 << n).any(|mask| {
        cnf.iter().all(|clause| {
            clause.iter().any(|l| {
                let val = mask >> l.var().0 & 1 == 1;
                val ^ l.is_neg()
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The CDCL verdict matches brute force on every small instance,
    /// and SAT models actually satisfy the formula.
    #[test]
    fn cdcl_matches_brute_force(cnf in arb_cnf(8, 24)) {
        let expected = brute_force_sat(&cnf);
        match CdclSolver::with_config(base_config()).solve(&cnf) {
            sat::SolveOutcome::Sat(model) => {
                prop_assert!(expected);
                prop_assert!(cnf.eval(&model));
            }
            sat::SolveOutcome::Unsat => prop_assert!(!expected),
            sat::SolveOutcome::Unknown(_) => prop_assert!(false, "unbounded solve returned unknown"),
        }
    }

    /// Every ablated configuration stays sound.
    #[test]
    fn ablations_match_brute_force(cnf in arb_cnf(7, 18), which in 0usize..5) {
        let config = match which {
            0 => CdclConfig { use_restarts: false, ..CdclConfig::default() },
            1 => CdclConfig { use_phase_saving: false, ..CdclConfig::default() },
            2 => CdclConfig { use_clause_deletion: false, ..CdclConfig::default() },
            3 => CdclConfig { use_minimization: false, ..CdclConfig::default() },
            _ => CdclConfig { random_var_freq: 0.3, random_polarity_freq: 0.3,
                              ..CdclConfig::default() },
        };
        let got = CdclSolver::with_config(config).solve(&cnf).is_sat();
        prop_assert_eq!(got, brute_force_sat(&cnf));
    }

    /// Solving under assumptions equals solving with the assumptions
    /// added as unit clauses.
    #[test]
    fn assumptions_equal_units(cnf in arb_cnf(6, 14), a in 0u32..6, neg in any::<bool>()) {
        let lit = Lit::new(Var(a), neg);
        let with_assumption =
            CdclSolver::default().solve_with(&cnf, &[lit], &Budget::default()).is_sat();
        let mut with_unit = cnf.clone();
        with_unit.add_clause([lit]);
        let expected = brute_force_sat(&with_unit);
        prop_assert_eq!(with_assumption, expected);
    }

    /// DIMACS round trips preserve the formula exactly.
    #[test]
    fn dimacs_roundtrip(cnf in arb_cnf(10, 20)) {
        let text = sat::dimacs::to_string(&cnf);
        let back = sat::dimacs::parse_str(&text).unwrap();
        prop_assert_eq!(back, cnf);
    }

    /// Emit → parse → emit is a fixed point, and the parse is immune to
    /// comments (both `c` and legacy `%`) and blank lines injected
    /// between any two emitted lines.
    #[test]
    fn dimacs_emit_parse_emit_fixed_point(cnf in arb_cnf(10, 20), noise in any::<u64>()) {
        let text = sat::dimacs::to_string(&cnf);
        let mut noisy = String::new();
        for (i, line) in text.lines().enumerate() {
            match (noise >> (2 * (i % 32))) & 3 {
                1 => noisy.push_str("c injected comment 1 2 0\n"),
                2 => noisy.push_str("\n   \n"),
                3 => noisy.push_str("% legacy comment\n"),
                _ => {}
            }
            noisy.push_str(line);
            noisy.push('\n');
        }
        let parsed = sat::dimacs::parse_str(&noisy).expect("noisy emit parses");
        prop_assert_eq!(&parsed, &cnf, "comments/blank lines must not change the formula");
        let text2 = sat::dimacs::to_string(&parsed);
        prop_assert_eq!(&text2, &text, "emit is a fixed point");
        let parsed2 = sat::dimacs::parse_str(&text2).expect("fixed point parses");
        prop_assert_eq!(parsed2, cnf);
    }

    /// Every way of mangling the problem line (and clause bodies) is
    /// rejected with a syntax error rather than silently accepted.
    #[test]
    fn dimacs_rejects_malformed_input(cnf in arb_cnf(6, 8), which in 0usize..7) {
        let body = sat::dimacs::to_string(&cnf);
        let clause_lines: String = body
            .lines()
            .skip(1)
            .flat_map(|l| [l, "\n"])
            .collect();
        let vars = cnf.num_vars();
        let clauses = cnf.num_clauses();
        let bad = match which {
            0 => format!("p dnf {vars} {clauses}\n{clause_lines}"),
            1 => format!("p cnf x {clauses}\n{clause_lines}"),
            2 => format!("p cnf {vars}\n{clause_lines}"),
            3 => format!("p cnf {vars} y\n{clause_lines}"),
            4 => format!("p cnf {vars} {clauses} extra\n{clause_lines}"),
            5 => format!("{body}p cnf {vars} {clauses}\n"),
            _ => format!("{body}7 junk 0\n"),
        };
        prop_assert!(
            sat::dimacs::parse_str(&bad).is_err(),
            "variant {} must be rejected:\n{}",
            which,
            bad
        );
    }

    /// Builder XOR gadget: brute-force equivalence of the emitted CNF
    /// with the parity function.
    #[test]
    fn xor_gadget_is_parity(k in 1usize..5, parity in any::<bool>()) {
        let mut b = CnfBuilder::new();
        let terms = b.new_lits(k);
        b.xor_under(&[], &terms, parity);
        // Enumerate assignments of the k term variables; each must be
        // extendable to a model iff it has the right parity.
        for mask in 0u32..1 << k {
            let assumptions: Vec<Lit> = terms
                .iter()
                .enumerate()
                .map(|(i, &t)| if mask >> i & 1 == 1 { t } else { !t })
                .collect();
            let ok = CdclSolver::default()
                .solve_with(b.cnf(), &assumptions, &Budget::default())
                .is_sat();
            let want = (mask.count_ones() % 2 == 1) == parity;
            prop_assert_eq!(ok, want, "mask {:b}", mask);
        }
    }

    /// Differential check against the vendored `varisat` backend on
    /// random 3-SAT near the phase transition: identical SAT/UNSAT
    /// verdicts, and our SAT models actually satisfy the formula.
    #[cfg(feature = "varisat")]
    #[test]
    fn cdcl_matches_varisat_on_random_3sat(seed in any::<u64>(), n in 8usize..24) {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = (n as f64 * 4.2) as usize; // near the SAT/UNSAT threshold
        let mut cnf = Cnf::new(n);
        for _ in 0..m {
            let mut cl = Vec::new();
            for _ in 0..3 {
                cl.push(Lit::new(Var(rng.random_range(0..n as u32)), rng.random_bool(0.5)));
            }
            cnf.add_clause(cl);
        }
        let theirs = sat::VarisatBackend.solve(&cnf).is_sat();
        match CdclSolver::with_config(base_config()).solve(&cnf) {
            sat::SolveOutcome::Sat(model) => {
                prop_assert!(theirs, "we say SAT, varisat says UNSAT");
                prop_assert!(cnf.eval(&model), "bogus model");
            }
            sat::SolveOutcome::Unsat => prop_assert!(!theirs, "we say UNSAT, varisat says SAT"),
            sat::SolveOutcome::Unknown(_) => prop_assert!(false, "unbounded solve returned unknown"),
        }
    }

    /// Same differential check under a tiny learnt-clause budget, so
    /// every solve runs through multiple clause-DB GC passes.
    #[cfg(feature = "varisat")]
    #[test]
    fn gc_heavy_cdcl_matches_varisat(seed in any::<u64>()) {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 20;
        let mut cnf = Cnf::new(n);
        for _ in 0..85 {
            let mut cl = Vec::new();
            for _ in 0..3 {
                cl.push(Lit::new(Var(rng.random_range(0..n as u32)), rng.random_bool(0.5)));
            }
            cnf.add_clause(cl);
        }
        let config = CdclConfig { max_learnts_floor: 8.0, ..base_config() };
        let ours = CdclSolver::with_config(config).solve(&cnf);
        let theirs = sat::VarisatBackend.solve(&cnf).is_sat();
        match ours {
            sat::SolveOutcome::Sat(model) => {
                prop_assert!(theirs);
                prop_assert!(cnf.eval(&model));
            }
            sat::SolveOutcome::Unsat => prop_assert!(!theirs),
            sat::SolveOutcome::Unknown(_) => prop_assert!(false, "unbounded solve returned unknown"),
        }
    }

    /// and_many is the conjunction.
    #[test]
    fn and_many_gadget(k in 1usize..5, mask in 0u32..32) {
        let mut b = CnfBuilder::new();
        let xs = b.new_lits(k);
        let t = b.and_many(&xs);
        let mut assumptions: Vec<Lit> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| if mask >> i & 1 == 1 { x } else { !x })
            .collect();
        let all_true = (0..k).all(|i| mask >> i & 1 == 1);
        assumptions.push(if all_true { t } else { !t });
        let ok = CdclSolver::default()
            .solve_with(b.cnf(), &assumptions, &Budget::default())
            .is_sat();
        prop_assert!(ok);
        // And the opposite value of t must be unsat.
        *assumptions.last_mut().unwrap() = if all_true { !t } else { t };
        let bad = CdclSolver::default()
            .solve_with(b.cnf(), &assumptions, &Budget::default())
            .is_sat();
        prop_assert!(!bad);
    }
}

proptest! {
    // The incremental differential harness runs on hundreds of random
    // interleavings — each case is a handful of tiny solves, so the
    // larger budget stays cheap.
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Config-matrix torture harness for the *incremental* API: a
    /// random interleaving of clause additions and assumption solves is
    /// executed by one retained incremental session per search/
    /// inprocessing combination (vivification × subsumption ×
    /// out-of-order chronological backtracking × Luby/EMA restarts,
    /// plus tier database × variable elimination × failed-literal
    /// probing, each on/off, under schedules that fire on tiny
    /// instances), and
    /// every solve is compared against a fresh `CdclSolver` on the
    /// accumulated formula and the vendored varisat shim. SAT models are checked against the formula and the
    /// assumptions; on UNSAT every session's failing-assumption subset
    /// must itself refute on a fresh solver.
    #[test]
    fn incremental_inprocessing_matrix_matches_fresh_and_varisat(
        n in 6usize..10,
        // Clauses of 2–4 literals: long enough that the accumulated
        // formula develops real conflicts (unit-heavy streams go
        // root-UNSAT before inprocessing can ever fire).
        ops in proptest::collection::vec(
            (any::<bool>(), proptest::collection::vec((0u32..10, any::<bool>()), 2..5)),
            1..45,
        ),
    ) {
        let mut sessions: Vec<(CdclConfig, CdclSolver)> = inprocessing_matrix()
            .into_iter()
            .map(|config| (config.clone(), CdclSolver::with_config(config)))
            .collect();
        for (_, session) in &mut sessions {
            // Proof logging on from the first clause: every UNSAT below
            // must come with a checker-accepted refutation.
            session.enable_proof();
            for _ in 0..n {
                session.new_var();
            }
        }
        let mut accumulated = Cnf::new(n);
        for (is_clause, raw) in &ops {
            let lits: Vec<Lit> = raw
                .iter()
                .map(|&(v, neg)| Lit::new(Var(v % n as u32), neg))
                .collect();
            if *is_clause {
                accumulated.add_clause(lits.clone());
                for (_, session) in &mut sessions {
                    session.add_clause(lits.clone());
                }
                continue;
            }
            let fresh = CdclSolver::default()
                .solve_with(&accumulated, &lits, &Budget::default());
            #[cfg(feature = "varisat")]
            {
                let shim = sat::VarisatBackend
                    .solve_with(&accumulated, &lits, &Budget::default());
                prop_assert_eq!(
                    fresh.is_sat(),
                    shim.is_sat(),
                    "fresh vs varisat diverge"
                );
            }
            for (config, session) in &mut sessions {
                let ours = session.solve_assuming(&lits, &Budget::default());
                prop_assert_eq!(
                    ours.is_sat(),
                    fresh.is_sat(),
                    "incremental vs fresh diverge under viv={} sub={} chrono={}",
                    config.use_vivification,
                    config.use_subsumption,
                    config.use_chrono
                );
                match ours {
                    sat::SolveOutcome::Sat(model) => {
                        prop_assert!(accumulated.eval(&model), "bogus incremental model");
                        for &a in &lits {
                            prop_assert!(model.lit_true(a), "model violates assumption {a}");
                        }
                    }
                    sat::SolveOutcome::Unsat => {
                        let core = session.final_assumption_conflict().to_vec();
                        for l in &core {
                            prop_assert!(lits.contains(l), "core literal {l} not assumed");
                        }
                        let recheck = CdclSolver::default()
                            .solve_with(&accumulated, &core, &Budget::default());
                        prop_assert!(recheck.is_unsat(), "assumption core fails to refute");
                        let certified = sat::certify_unsat(
                            session.proof().expect("proof logging enabled"),
                            &core,
                        );
                        prop_assert!(
                            certified.is_ok(),
                            "DRAT check rejects the session proof under viv={} sub={} \
                             chrono={} tiers={} elim={} probing={}: {:?}",
                            config.use_vivification,
                            config.use_subsumption,
                            config.use_chrono,
                            config.use_tiers,
                            config.use_elim,
                            config.use_probing,
                            certified.err()
                        );
                    }
                    sat::SolveOutcome::Unknown(_) => {
                        prop_assert!(false, "unbounded solve returned unknown")
                    }
                }
            }
        }
    }
}

proptest! {
    // Fewer cases than the plain matrix: each case drives two workers
    // per config, so the per-case work roughly doubles.
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Import-enabled axis of the torture matrix: every matrix config
    /// drives a *pair* of incremental sessions (seeds 0 and 1) wired
    /// through a [`sat::ClauseExchange`], so each solve also consumes
    /// whatever its sibling exported on earlier solves — imports land
    /// at solve entry and restart boundaries, after RUP-filtering, and
    /// interleave with clause additions, assumption solves and every
    /// inprocessing pass the config enables. Each worker's verdict
    /// must match a fresh solver on the accumulated formula, SAT
    /// models are checked against formula and assumptions, and every
    /// UNSAT must certify under the DRAT checker: imported clauses are
    /// logged as derived (RUP) steps, so an import-fed session's log
    /// stays self-contained and checkable.
    #[test]
    fn exchange_fed_sessions_match_fresh_and_certify(
        n in 6usize..10,
        ops in proptest::collection::vec(
            (any::<bool>(), proptest::collection::vec((0u32..10, any::<bool>()), 2..5)),
            1..35,
        ),
    ) {
        use std::sync::Arc;
        let mut fleets: Vec<(CdclConfig, Vec<CdclSolver>)> = inprocessing_matrix()
            .into_iter()
            .map(|config| {
                let hub = Arc::new(sat::ClauseExchange::new(2, 256));
                let workers: Vec<CdclSolver> = (0..2)
                    .map(|w| {
                        let mut solver = CdclSolver::with_config(CdclConfig {
                            seed: w as u64,
                            ..config.clone()
                        });
                        solver.enable_proof();
                        for _ in 0..n {
                            solver.new_var();
                        }
                        solver.connect_exchange(
                            Arc::clone(&hub),
                            w,
                            sat::ShareLimits::default(),
                        );
                        solver
                    })
                    .collect();
                (config, workers)
            })
            .collect();
        let mut accumulated = Cnf::new(n);
        for (is_clause, raw) in &ops {
            let lits: Vec<Lit> = raw
                .iter()
                .map(|&(v, neg)| Lit::new(Var(v % n as u32), neg))
                .collect();
            if *is_clause {
                accumulated.add_clause(lits.clone());
                for (_, workers) in &mut fleets {
                    for session in workers.iter_mut() {
                        session.add_clause(lits.clone());
                    }
                }
                continue;
            }
            let fresh = CdclSolver::default()
                .solve_with(&accumulated, &lits, &Budget::default());
            for (config, workers) in &mut fleets {
                for (w, session) in workers.iter_mut().enumerate() {
                    let ours = session.solve_assuming(&lits, &Budget::default());
                    prop_assert_eq!(
                        ours.is_sat(),
                        fresh.is_sat(),
                        "import-fed worker {} diverges from fresh under viv={} sub={} \
                         chrono={} tiers={} elim={} probing={}",
                        w,
                        config.use_vivification,
                        config.use_subsumption,
                        config.use_chrono,
                        config.use_tiers,
                        config.use_elim,
                        config.use_probing
                    );
                    match ours {
                        sat::SolveOutcome::Sat(model) => {
                            prop_assert!(accumulated.eval(&model), "bogus import-fed model");
                            for &a in &lits {
                                prop_assert!(model.lit_true(a), "model violates assumption {a}");
                            }
                        }
                        sat::SolveOutcome::Unsat => {
                            let core = session.final_assumption_conflict().to_vec();
                            for l in &core {
                                prop_assert!(lits.contains(l), "core literal {l} not assumed");
                            }
                            let recheck = CdclSolver::default()
                                .solve_with(&accumulated, &core, &Budget::default());
                            prop_assert!(recheck.is_unsat(), "assumption core fails to refute");
                            let certified = sat::certify_unsat(
                                session.proof().expect("proof logging enabled"),
                                &core,
                            );
                            prop_assert!(
                                certified.is_ok(),
                                "DRAT check rejects an import-fed proof (worker {}) under \
                                 viv={} sub={} chrono={} tiers={} elim={} probing={}: {:?}",
                                w,
                                config.use_vivification,
                                config.use_subsumption,
                                config.use_chrono,
                                config.use_tiers,
                                config.use_elim,
                                config.use_probing,
                                certified.err()
                            );
                        }
                        sat::SolveOutcome::Unknown(_) => {
                            prop_assert!(false, "unbounded solve returned unknown")
                        }
                    }
                }
            }
        }
    }
}

proptest! {
    // Each case reruns the whole matrix with three sabotage solves per
    // real solve, so keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Cancellation axis of the torture matrix: before every real
    /// solve, each session is interrupted mid-search — once at a
    /// random small conflict quantum, once under a pre-raised stop
    /// flag, once under a one-word memory ceiling — and the re-solve
    /// on the same session must still be sound: verdicts match a fresh
    /// solver, models satisfy formula and assumptions, UNSAT cores
    /// refute and their proofs certify. Interrupted solves may answer
    /// early (that is fine); what they must never do is corrupt the
    /// retained session state they abandoned mid-conflict.
    #[test]
    fn cancelled_sessions_stay_sound_on_resolve(
        n in 6usize..10,
        quantum in 1u64..8,
        ops in proptest::collection::vec(
            (any::<bool>(), proptest::collection::vec((0u32..10, any::<bool>()), 2..5)),
            1..30,
        ),
    ) {
        use std::sync::Arc;
        use std::sync::atomic::AtomicBool;
        let mut sessions: Vec<(CdclConfig, CdclSolver)> = inprocessing_matrix()
            .into_iter()
            .map(|config| (config.clone(), CdclSolver::with_config(config)))
            .collect();
        for (_, session) in &mut sessions {
            session.enable_proof();
            for _ in 0..n {
                session.new_var();
            }
        }
        let mut accumulated = Cnf::new(n);
        for (op_index, (is_clause, raw)) in ops.iter().enumerate() {
            let lits: Vec<Lit> = raw
                .iter()
                .map(|&(v, neg)| Lit::new(Var(v % n as u32), neg))
                .collect();
            if *is_clause {
                accumulated.add_clause(lits.clone());
                for (_, session) in &mut sessions {
                    session.add_clause(lits.clone());
                }
                continue;
            }
            let fresh = CdclSolver::default()
                .solve_with(&accumulated, &lits, &Budget::default());
            // Vary the interruption point across the op stream so the
            // abandonment lands at different search phases.
            let q = quantum + (op_index as u64 % 5);
            for (config, session) in &mut sessions {
                let partial = session.solve_assuming(&lits, &Budget::conflict_limit(q));
                if let sat::SolveOutcome::Sat(m) = &partial {
                    prop_assert!(accumulated.eval(m), "bogus model from interrupted solve");
                }
                let stopped = Budget {
                    stop: Some(Arc::new(AtomicBool::new(true))),
                    ..Budget::default()
                };
                let _ = session.solve_assuming(&lits, &stopped);
                let _ = session.solve_assuming(&lits, &Budget::memory_limit_words(1));
                let ours = session.solve_assuming(&lits, &Budget::default());
                prop_assert_eq!(
                    ours.is_sat(),
                    fresh.is_sat(),
                    "re-solve after cancellation diverges from fresh under viv={} sub={} \
                     chrono={} tiers={} elim={} probing={}",
                    config.use_vivification,
                    config.use_subsumption,
                    config.use_chrono,
                    config.use_tiers,
                    config.use_elim,
                    config.use_probing
                );
                match ours {
                    sat::SolveOutcome::Sat(model) => {
                        prop_assert!(accumulated.eval(&model), "bogus post-cancellation model");
                        for &a in &lits {
                            prop_assert!(model.lit_true(a), "model violates assumption {a}");
                        }
                    }
                    sat::SolveOutcome::Unsat => {
                        let core = session.final_assumption_conflict().to_vec();
                        for l in &core {
                            prop_assert!(lits.contains(l), "core literal {l} not assumed");
                        }
                        let recheck = CdclSolver::default()
                            .solve_with(&accumulated, &core, &Budget::default());
                        prop_assert!(recheck.is_unsat(), "assumption core fails to refute");
                        let certified = sat::certify_unsat(
                            session.proof().expect("proof logging enabled"),
                            &core,
                        );
                        prop_assert!(
                            certified.is_ok(),
                            "DRAT check rejects a post-cancellation proof: {:?}",
                            certified.err()
                        );
                    }
                    sat::SolveOutcome::Unknown(_) => {
                        prop_assert!(false, "unbounded solve returned unknown")
                    }
                }
            }
        }
    }
}
