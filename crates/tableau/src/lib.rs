//! Aaronson–Gottesman stabilizer tableau simulation.
//!
//! This crate is the workspace's substitute for Stim: it simulates
//! Clifford circuits on stabilizer states, supports measurement of
//! arbitrary Pauli-product observables with *forced* outcomes
//! (post-selection), and can extract/reduce the stabilizer group of the
//! simulated state. The ZX flow derivation in `las-zx` is built on it:
//! spiders become GHZ-like gadgets, edges are contracted by forced Bell
//! measurements, and the surviving stabilizer group on the open legs
//! gives the diagram's stabilizer flows.
//!
//! # Examples
//!
//! Prepare a Bell pair and observe the deterministic `XX` outcome:
//!
//! ```
//! use tableau::Tableau;
//!
//! let mut t = Tableau::new(2);
//! t.h(0);
//! t.cx(0, 1);
//! let m = t.measure_pauli(&"XX".parse()?, None);
//! assert!(m.deterministic);
//! assert!(!m.value); // +1 outcome
//! # Ok::<(), pauli::ParsePauliError>(())
//! ```

#![forbid(unsafe_code)]

mod sim;

pub use sim::{MeasurementOutcome, Tableau};
