//! The tableau simulator.

use pauli::{Pauli, PauliString, Phase};
use rand::{Rng, RngExt};

/// Result of measuring a Pauli observable on a stabilizer state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeasurementOutcome {
    /// `false` for the `+1` eigenvalue, `true` for `-1`.
    pub value: bool,
    /// Whether the outcome was already determined by the state. When
    /// `false`, the outcome was random (or forced by the caller) and the
    /// state has been projected accordingly.
    pub deterministic: bool,
}

/// A stabilizer state on `n` qubits in the Aaronson–Gottesman
/// destabilizer/stabilizer representation.
///
/// Rows `0..n` are destabilizers, rows `n..2n` are stabilizers; row
/// signs are tracked exactly through [`PauliString`] phases (which stay
/// real, `±1`, for Hermitian rows).
///
/// # Examples
///
/// ```
/// use tableau::Tableau;
/// let mut t = Tableau::new(1);
/// t.h(0);
/// // |+> is stabilized by +X
/// assert_eq!(t.stabilizers()[0].to_string(), "X");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tableau {
    n: usize,
    rows: Vec<PauliString>,
}

impl Tableau {
    /// Creates the all-`|0⟩` state on `n` qubits.
    pub fn new(n: usize) -> Self {
        let mut rows = Vec::with_capacity(2 * n);
        for q in 0..n {
            rows.push(PauliString::single(n, q, Pauli::X));
        }
        for q in 0..n {
            rows.push(PauliString::single(n, q, Pauli::Z));
        }
        Tableau { n, rows }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The current stabilizer generators (rows `n..2n`).
    pub fn stabilizers(&self) -> &[PauliString] {
        &self.rows[self.n..]
    }

    /// The current destabilizer generators (rows `0..n`).
    pub fn destabilizers(&self) -> &[PauliString] {
        &self.rows[..self.n]
    }

    /// Applies a Hadamard gate on qubit `q`.
    pub fn h(&mut self, q: usize) {
        for row in &mut self.rows {
            let (x, z) = row.get(q).xz();
            if x && z {
                row.negate();
            }
            row.set(q, Pauli::from_xz(z, x));
        }
    }

    /// Applies an S (phase) gate on qubit `q`.
    pub fn s(&mut self, q: usize) {
        for row in &mut self.rows {
            let (x, z) = row.get(q).xz();
            if x && z {
                row.negate();
            }
            row.set(q, Pauli::from_xz(x, z ^ x));
        }
    }

    /// Applies S† on qubit `q`.
    pub fn sdg(&mut self, q: usize) {
        self.z(q);
        self.s(q);
    }

    /// Applies a Pauli X gate on qubit `q`.
    pub fn x(&mut self, q: usize) {
        for row in &mut self.rows {
            if row.get(q).xz().1 {
                row.negate();
            }
        }
    }

    /// Applies a Pauli Z gate on qubit `q`.
    pub fn z(&mut self, q: usize) {
        for row in &mut self.rows {
            if row.get(q).xz().0 {
                row.negate();
            }
        }
    }

    /// Applies a Pauli Y gate on qubit `q`.
    pub fn y(&mut self, q: usize) {
        self.z(q);
        self.x(q);
    }

    /// Applies a CNOT with control `c` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics if `c == t`.
    pub fn cx(&mut self, c: usize, t: usize) {
        assert_ne!(c, t, "cx with c == t");
        for row in &mut self.rows {
            let (xc, zc) = row.get(c).xz();
            let (xt, zt) = row.get(t).xz();
            if xc && zt && (xt == zc) {
                row.negate();
            }
            row.set(t, Pauli::from_xz(xt ^ xc, zt));
            row.set(c, Pauli::from_xz(xc, zc ^ zt));
        }
    }

    /// Applies a CZ between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cx(a, b);
        self.h(b);
    }

    /// Swaps qubits `a` and `b`.
    pub fn swap(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for row in &mut self.rows {
            let pa = row.get(a);
            row.set(a, row.get(b));
            row.set(b, pa);
        }
    }

    /// Measures the single-qubit Z observable on `q`.
    ///
    /// See [`Tableau::measure_pauli`] for the `forced` semantics.
    pub fn measure_z(&mut self, q: usize, forced: Option<bool>) -> MeasurementOutcome {
        self.measure_pauli(&PauliString::single(self.n, q, Pauli::Z), forced)
    }

    /// Measures an arbitrary Hermitian Pauli-product observable.
    ///
    /// If the outcome is random, `forced` selects it (post-selection);
    /// when `forced` is `None` the `+1` outcome is chosen, which is the
    /// appropriate convention for flow derivation where any consistent
    /// choice works. Use [`Tableau::measure_pauli_rng`] for genuinely
    /// random outcomes.
    ///
    /// If the outcome is deterministic, `forced` is ignored and the
    /// actual value is returned; callers that post-select must compare.
    ///
    /// # Panics
    ///
    /// Panics if `p` has an imaginary phase (not Hermitian) or a length
    /// other than the qubit count.
    pub fn measure_pauli(&mut self, p: &PauliString, forced: Option<bool>) -> MeasurementOutcome {
        self.measure_impl(p, forced, None::<&mut rand::rngs::ThreadRng>)
    }

    /// Like [`Tableau::measure_pauli`], but random outcomes are drawn
    /// from `rng` when not forced.
    pub fn measure_pauli_rng<R: Rng>(
        &mut self,
        p: &PauliString,
        forced: Option<bool>,
        rng: &mut R,
    ) -> MeasurementOutcome {
        self.measure_impl(p, forced, Some(rng))
    }

    fn measure_impl<R: Rng>(
        &mut self,
        p: &PauliString,
        forced: Option<bool>,
        rng: Option<&mut R>,
    ) -> MeasurementOutcome {
        assert_eq!(p.len(), self.n, "observable length mismatch");
        assert!(p.phase().is_real(), "observable must be Hermitian");
        let pivot = (self.n..2 * self.n).find(|&i| !self.rows[i].commutes_with(p));
        match pivot {
            Some(pivot) => {
                // Random outcome: project. The destabilizer paired with
                // the pivot is skipped — it is overwritten below, and
                // multiplying it (it anticommutes with the pivot row)
                // would produce an imaginary intermediate.
                let pivot_row = self.rows[pivot].clone();
                let paired_destab = pivot - self.n;
                for (i, row) in self.rows.iter_mut().enumerate() {
                    if i != pivot && i != paired_destab && !row.commutes_with(p) {
                        *row = row.mul(&pivot_row);
                        debug_assert!(row.phase().is_real());
                    }
                }
                let value = forced.unwrap_or_else(|| rng.is_some_and(|r| r.random_bool(0.5)));
                self.rows[pivot - self.n] = pivot_row;
                let sign = if value { Phase::MINUS_ONE } else { Phase::ONE };
                self.rows[pivot] = p.clone().with_phase(p.phase() + sign);
                MeasurementOutcome {
                    value,
                    deterministic: false,
                }
            }
            None => {
                // Deterministic: p is in the stabilizer group up to sign.
                let mut scratch = PauliString::identity(self.n);
                for i in 0..self.n {
                    if !self.rows[i].commutes_with(p) {
                        scratch = scratch.mul(&self.rows[i + self.n]);
                    }
                }
                debug_assert!(scratch.same_letters(p), "commuting observable not in group");
                let value = scratch.phase() != p.phase();
                MeasurementOutcome {
                    value,
                    deterministic: true,
                }
            }
        }
    }

    /// Reduces the stabilizer group to the elements supported entirely
    /// on `keep`, returned restricted to those qubits (in `keep` order).
    ///
    /// This is the projection step of the ZX flow derivation: after
    /// contracting internal edges, the flows of the diagram are the
    /// stabilizers of the state supported only on the open legs.
    pub fn stabilizers_on(&self, keep: &[usize]) -> Vec<PauliString> {
        let keep_set: std::collections::HashSet<usize> = keep.iter().copied().collect();
        let internal: Vec<usize> = (0..self.n).filter(|q| !keep_set.contains(q)).collect();
        let mut rows: Vec<PauliString> = self.stabilizers().to_vec();
        let mut used = vec![false; rows.len()];
        // Eliminate X then Z support on each internal qubit.
        for &q in &internal {
            for want_x in [true, false] {
                let hit = |row: &PauliString| {
                    let (x, z) = row.get(q).xz();
                    if want_x {
                        x
                    } else {
                        z
                    }
                };
                let Some(pivot) = (0..rows.len()).find(|&r| !used[r] && hit(&rows[r])) else {
                    continue;
                };
                let pivot_row = rows[pivot].clone();
                for (r, row) in rows.iter_mut().enumerate() {
                    if r != pivot && !used[r] && hit(row) {
                        *row = row.mul(&pivot_row);
                    }
                }
                used[pivot] = true;
            }
        }
        rows.iter()
            .zip(&used)
            .filter(|(row, &u)| !u && internal.iter().all(|&q| row.get(q) == Pauli::I))
            .map(|(row, _)| row.restrict(keep))
            .collect()
    }

    /// Canonical (row-reduced, sign-tracked) form of the stabilizer
    /// generators. Two tableaus represent the same state iff their
    /// canonical stabilizers are equal.
    pub fn canonical_stabilizers(&self) -> Vec<PauliString> {
        canonicalize(self.stabilizers().to_vec(), self.n)
    }
}

/// Canonicalizes a set of independent commuting Pauli strings by
/// Gaussian elimination (X support first, then Z), tracking signs.
pub fn canonicalize(mut rows: Vec<PauliString>, n: usize) -> Vec<PauliString> {
    let mut next = 0;
    // X pass.
    for q in 0..n {
        if let Some(pivot) = (next..rows.len()).find(|&r| rows[r].get(q).xz().0) {
            rows.swap(next, pivot);
            let pr = rows[next].clone();
            for (r, row) in rows.iter_mut().enumerate() {
                if r != next && row.get(q).xz().0 {
                    *row = row.mul(&pr);
                }
            }
            next += 1;
        }
    }
    // Z pass on the remaining rows (which have no X support left).
    for q in 0..n {
        if let Some(pivot) = (next..rows.len()).find(|&r| rows[r].get(q).xz().1) {
            rows.swap(next, pivot);
            let pr = rows[next].clone();
            for (r, row) in rows.iter_mut().enumerate() {
                if r != next && row.get(q) == Pauli::Z {
                    *row = row.mul(&pr);
                }
            }
            next += 1;
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn initial_state_stabilized_by_z() {
        let t = Tableau::new(3);
        assert_eq!(t.stabilizers()[0], ps("Z.."));
        assert_eq!(t.stabilizers()[2], ps("..Z"));
        assert_eq!(t.destabilizers()[1], ps(".X."));
    }

    #[test]
    fn h_maps_z_to_x() {
        let mut t = Tableau::new(1);
        t.h(0);
        assert_eq!(t.stabilizers()[0], ps("X"));
        t.h(0);
        assert_eq!(t.stabilizers()[0], ps("Z"));
    }

    #[test]
    fn s_turns_x_into_y() {
        let mut t = Tableau::new(1);
        t.h(0); // |+>, stab X
        t.s(0); // |i>, stab Y
        assert_eq!(t.stabilizers()[0], ps("Y"));
        t.sdg(0);
        assert_eq!(t.stabilizers()[0], ps("X"));
    }

    #[test]
    fn x_flips_z_sign() {
        let mut t = Tableau::new(1);
        t.x(0); // |1>, stab -Z
        assert_eq!(t.stabilizers()[0], ps("-Z"));
        let m = t.measure_z(0, None);
        assert!(m.deterministic);
        assert!(m.value);
    }

    #[test]
    fn bell_pair_stabilizers() {
        let mut t = Tableau::new(2);
        t.h(0);
        t.cx(0, 1);
        let mxx = t.measure_pauli(&ps("XX"), None);
        let mzz = t.measure_pauli(&ps("ZZ"), None);
        assert!(mxx.deterministic && !mxx.value);
        assert!(mzz.deterministic && !mzz.value);
    }

    #[test]
    fn cz_creates_graph_state() {
        // 2-qubit graph state: stabilizers XZ, ZX.
        let mut t = Tableau::new(2);
        t.h(0);
        t.h(1);
        t.cz(0, 1);
        for s in ["XZ", "ZX"] {
            let m = t.measure_pauli(&ps(s), None);
            assert!(m.deterministic && !m.value, "stabilizer {s}");
        }
    }

    #[test]
    fn random_measurement_projects() {
        let mut t = Tableau::new(1);
        t.h(0); // |+>
        let m = t.measure_z(0, Some(true)); // force |1>
        assert!(!m.deterministic);
        assert!(m.value);
        let m2 = t.measure_z(0, None);
        assert!(m2.deterministic);
        assert!(m2.value);
    }

    #[test]
    fn forced_bell_contraction_teleports() {
        // Qubits: 0-1 Bell, 2-3 Bell; Bell-measure (1,2) forced +1.
        let mut t = Tableau::new(4);
        t.h(0);
        t.cx(0, 1);
        t.h(2);
        t.cx(2, 3);
        let m1 = t.measure_pauli(&ps(".XX."), Some(false));
        let m2 = t.measure_pauli(&ps(".ZZ."), Some(false));
        assert!(!m1.value && !m2.value);
        // Now 0 and 3 are a Bell pair.
        let flows = t.stabilizers_on(&[0, 3]);
        assert_eq!(flows.len(), 2);
        let letters: Vec<String> = flows
            .iter()
            .map(|f| f.clone().with_phase(Phase::ONE).to_string())
            .collect();
        assert!(letters.contains(&"XX".to_string()), "{letters:?}");
        assert!(letters.contains(&"ZZ".to_string()), "{letters:?}");
    }

    #[test]
    fn stabilizers_on_subset_of_product_state() {
        let mut t = Tableau::new(3);
        t.h(1);
        let flows = t.stabilizers_on(&[1]);
        assert_eq!(flows, vec![ps("X")]);
    }

    #[test]
    fn measurement_outcome_sign_convention() {
        let mut t = Tableau::new(1);
        // measure -Z on |0>: outcome of -Z is -1 → value = true
        let m = t.measure_pauli(&ps("-Z"), None);
        assert!(m.deterministic);
        assert!(m.value);
    }

    #[test]
    fn swap_moves_state() {
        let mut t = Tableau::new(2);
        t.x(0);
        t.swap(0, 1);
        assert!(t.measure_z(1, None).value);
        assert!(!t.measure_z(0, None).value);
    }

    #[test]
    fn ghz_state_flows() {
        let mut t = Tableau::new(3);
        t.h(0);
        t.cx(0, 1);
        t.cx(0, 2);
        for s in ["XXX", "ZZ.", ".ZZ", "Z.Z"] {
            let m = t.measure_pauli(&ps(s), None);
            assert!(m.deterministic && !m.value, "{s}");
        }
    }

    #[test]
    fn canonical_forms_agree_for_equal_states() {
        let mut a = Tableau::new(2);
        a.h(0);
        a.cx(0, 1);
        let mut b = Tableau::new(2);
        b.h(1);
        b.cx(1, 0);
        assert_eq!(a.canonical_stabilizers(), b.canonical_stabilizers());
    }

    #[test]
    fn canonical_forms_distinguish_signs() {
        let mut a = Tableau::new(1);
        let mut b = Tableau::new(1);
        b.x(0);
        assert_ne!(a.canonical_stabilizers(), b.canonical_stabilizers());
        a.x(0);
        assert_eq!(a.canonical_stabilizers(), b.canonical_stabilizers());
    }

    #[test]
    fn measure_pauli_with_y() {
        let mut t = Tableau::new(1);
        t.h(0);
        t.s(0); // |i>
        let m = t.measure_pauli(&ps("Y"), None);
        assert!(m.deterministic && !m.value);
    }

    #[test]
    fn cx_propagates_x_and_z() {
        let mut t = Tableau::new(2);
        // X on control propagates to target: start |+0>.
        t.h(0);
        t.cx(0, 1);
        let m = t.measure_pauli(&ps("XX"), None);
        assert!(m.deterministic && !m.value);
    }

    #[test]
    fn rng_measurement_is_consistent_after_projection() {
        let mut rng = rand::rng();
        let mut t = Tableau::new(1);
        t.h(0);
        let m = t.measure_pauli_rng(&ps("Z"), None, &mut rng);
        assert!(!m.deterministic);
        let m2 = t.measure_z(0, None);
        assert!(m2.deterministic);
        assert_eq!(m2.value, m.value);
    }
}
