//! Property-based tests for the stabilizer simulator: invariants that
//! must hold for any random Clifford circuit.

use pauli::PauliString;
use proptest::prelude::*;
use tableau::Tableau;

#[derive(Clone, Debug)]
enum Gate {
    H(usize),
    S(usize),
    X(usize),
    Z(usize),
    Cx(usize, usize),
    Cz(usize, usize),
    Swap(usize, usize),
}

fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    prop_oneof![
        q.clone().prop_map(Gate::H),
        q.clone().prop_map(Gate::S),
        q.clone().prop_map(Gate::X),
        q.clone().prop_map(Gate::Z),
        (0..n, 0..n).prop_filter_map("distinct", |(a, b)| (a != b).then_some(Gate::Cx(a, b))),
        (0..n, 0..n).prop_filter_map("distinct", |(a, b)| (a != b).then_some(Gate::Cz(a, b))),
        (0..n, 0..n).prop_map(|(a, b)| Gate::Swap(a, b)),
    ]
}

fn apply(t: &mut Tableau, g: &Gate) {
    match *g {
        Gate::H(q) => t.h(q),
        Gate::S(q) => t.s(q),
        Gate::X(q) => t.x(q),
        Gate::Z(q) => t.z(q),
        Gate::Cx(a, b) => t.cx(a, b),
        Gate::Cz(a, b) => t.cz(a, b),
        Gate::Swap(a, b) => t.swap(a, b),
    }
}

const N: usize = 5;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stabilizer/destabilizer structure is preserved by any circuit:
    /// stabilizers commute pairwise, destab_i anticommutes exactly with
    /// stab_i, and all rows stay Hermitian (±1 phases).
    #[test]
    fn tableau_invariants(gates in proptest::collection::vec(arb_gate(N), 0..40)) {
        let mut t = Tableau::new(N);
        for g in &gates {
            apply(&mut t, g);
        }
        let stabs = t.stabilizers().to_vec();
        let destabs = t.destabilizers().to_vec();
        for (i, s) in stabs.iter().enumerate() {
            prop_assert!(s.phase().is_real());
            for (j, s2) in stabs.iter().enumerate() {
                if i != j {
                    prop_assert!(s.commutes_with(s2));
                }
            }
            for (j, d) in destabs.iter().enumerate() {
                prop_assert_eq!(d.commutes_with(s), i != j, "destab {} vs stab {}", j, i);
            }
        }
    }

    /// Measuring a current stabilizer is deterministic with value +1;
    /// measuring it negated is deterministic with value −1.
    #[test]
    fn stabilizers_measure_plus_one(gates in proptest::collection::vec(arb_gate(N), 0..40)) {
        let mut t = Tableau::new(N);
        for g in &gates {
            apply(&mut t, g);
        }
        let stabs = t.stabilizers().to_vec();
        for s in stabs {
            let m = t.measure_pauli(&s, None);
            prop_assert!(m.deterministic);
            prop_assert!(!m.value);
            let mut neg = s.clone();
            neg.negate();
            let m2 = t.measure_pauli(&neg, None);
            prop_assert!(m2.deterministic);
            prop_assert!(m2.value);
        }
    }

    /// Forcing a random measurement projects: re-measuring is then
    /// deterministic with the forced value.
    #[test]
    fn forced_projection_sticks(
        gates in proptest::collection::vec(arb_gate(N), 0..30),
        obs in proptest::collection::vec(0u8..4, N),
        forced in any::<bool>(),
    ) {
        let mut t = Tableau::new(N);
        for g in &gates {
            apply(&mut t, g);
        }
        let mut p = PauliString::identity(N);
        for (q, &k) in obs.iter().enumerate() {
            p.set(q, match k { 0 => pauli::Pauli::I, 1 => pauli::Pauli::X,
                               2 => pauli::Pauli::Y, _ => pauli::Pauli::Z });
        }
        if p.is_identity() {
            return Ok(());
        }
        let m = t.measure_pauli(&p, Some(forced));
        let expected = if m.deterministic { m.value } else { forced };
        let m2 = t.measure_pauli(&p, None);
        prop_assert!(m2.deterministic);
        prop_assert_eq!(m2.value, expected);
    }

    /// `stabilizers_on` of the full qubit set spans the same group as
    /// the raw stabilizer rows.
    #[test]
    fn reduction_to_full_set_preserves_group(
        gates in proptest::collection::vec(arb_gate(N), 0..30),
    ) {
        let mut t = Tableau::new(N);
        for g in &gates {
            apply(&mut t, g);
        }
        let all: Vec<usize> = (0..N).collect();
        let reduced = t.stabilizers_on(&all);
        prop_assert_eq!(reduced.len(), N);
        // Every original stabilizer must measure deterministically +1
        // against the reduced description used as a fresh state. Cheap
        // proxy: letters of the reduced rows are independent.
        prop_assert_eq!(pauli::independent_count(&reduced), N);
    }
}
