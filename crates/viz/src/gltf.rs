//! Minimal glTF 2.0 export (the paper's 3D output format).
//!
//! Produces a single-file `.gltf` (JSON with an embedded base64
//! buffer): one mesh of vertex-colored triangles, one node, one scene.
//! Valid for Blender, three.js and the usual viewers.

use crate::scene::Scene;
use serde_json::json;

/// Serializes a scene as a self-contained glTF 2.0 JSON string.
pub fn to_gltf(scene: &Scene) -> String {
    let mut positions: Vec<f32> = Vec::new();
    let mut colors: Vec<f32> = Vec::new();
    let mut indices: Vec<u32> = Vec::new();
    for b in scene.boxes() {
        let base = (positions.len() / 3) as u32;
        let corners = box_corners(b.min, b.max);
        for c in corners {
            positions.extend_from_slice(&c);
            colors.extend_from_slice(&b.color);
        }
        for tri in BOX_TRIANGLES {
            indices.extend(tri.iter().map(|&v| base + v));
        }
    }
    let (min, max) = bounds(&positions);

    let mut buffer: Vec<u8> = Vec::new();
    for p in &positions {
        buffer.extend_from_slice(&p.to_le_bytes());
    }
    let colors_offset = buffer.len();
    for c in &colors {
        buffer.extend_from_slice(&c.to_le_bytes());
    }
    let indices_offset = buffer.len();
    for i in &indices {
        buffer.extend_from_slice(&i.to_le_bytes());
    }

    let doc = json!({
        "asset": {"version": "2.0", "generator": "las-viz"},
        "scene": 0,
        "scenes": [{"nodes": [0]}],
        "nodes": [{"mesh": 0}],
        "meshes": [{
            "primitives": [{
                "attributes": {"POSITION": 0, "COLOR_0": 1},
                "indices": 2,
                "mode": 4
            }]
        }],
        "buffers": [{
            "byteLength": buffer.len(),
            "uri": format!("data:application/octet-stream;base64,{}", base64(&buffer)),
        }],
        "bufferViews": [
            {"buffer": 0, "byteOffset": 0, "byteLength": colors_offset, "target": 34962},
            {"buffer": 0, "byteOffset": colors_offset,
             "byteLength": indices_offset - colors_offset, "target": 34962},
            {"buffer": 0, "byteOffset": indices_offset,
             "byteLength": buffer.len() - indices_offset, "target": 34963}
        ],
        "accessors": [
            {"bufferView": 0, "componentType": 5126, "count": positions.len() / 3,
             "type": "VEC3", "min": min, "max": max},
            {"bufferView": 1, "componentType": 5126, "count": colors.len() / 4,
             "type": "VEC4"},
            {"bufferView": 2, "componentType": 5125, "count": indices.len(),
             "type": "SCALAR"}
        ]
    });
    serde_json::to_string_pretty(&doc).expect("gltf json serializes") // lint:allow(no-panic)
}

fn bounds(positions: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let mut min = vec![f32::MAX; 3];
    let mut max = vec![f32::MIN; 3];
    for chunk in positions.chunks_exact(3) {
        for d in 0..3 {
            min[d] = min[d].min(chunk[d]);
            max[d] = max[d].max(chunk[d]);
        }
    }
    if positions.is_empty() {
        return (vec![0.0; 3], vec![0.0; 3]);
    }
    (min, max)
}

fn box_corners(min: [f32; 3], max: [f32; 3]) -> [[f32; 3]; 8] {
    [
        [min[0], min[1], min[2]],
        [max[0], min[1], min[2]],
        [max[0], max[1], min[2]],
        [min[0], max[1], min[2]],
        [min[0], min[1], max[2]],
        [max[0], min[1], max[2]],
        [max[0], max[1], max[2]],
        [min[0], max[1], max[2]],
    ]
}

/// The 12 triangles of a box, CCW seen from outside.
const BOX_TRIANGLES: [[u32; 3]; 12] = [
    [0, 2, 1],
    [0, 3, 2], // bottom (z = min)
    [4, 5, 6],
    [4, 6, 7], // top
    [0, 1, 5],
    [0, 5, 4], // front (y = min)
    [2, 3, 7],
    [2, 7, 6], // back
    [1, 2, 6],
    [1, 6, 5], // right
    [0, 4, 7],
    [0, 7, 3], // left
];

/// Standard base64 (RFC 4648, with padding).
pub fn base64(data: &[u8]) -> String {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = (b[0] as u32) << 16 | (b[1] as u32) << 8 | b[2] as u32;
        let chars = [
            ALPHABET[(n >> 18 & 63) as usize],
            ALPHABET[(n >> 12 & 63) as usize],
            ALPHABET[(n >> 6 & 63) as usize],
            ALPHABET[(n & 63) as usize],
        ];
        let keep = chunk.len() + 1;
        for (i, &ch) in chars.iter().enumerate() {
            out.push(if i < keep { ch as char } else { '=' });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SceneOptions;

    #[test]
    fn base64_known_vectors() {
        assert_eq!(base64(b""), "");
        assert_eq!(base64(b"f"), "Zg==");
        assert_eq!(base64(b"fo"), "Zm8=");
        assert_eq!(base64(b"foo"), "Zm9v");
        assert_eq!(base64(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn gltf_is_valid_json_with_required_keys() {
        let mut d = lasre::fixtures::cnot_design();
        d.infer_k_colors();
        let scene = Scene::from_design(&d, SceneOptions::default());
        let text = to_gltf(&scene);
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(doc["asset"]["version"], "2.0");
        assert_eq!(doc["accessors"].as_array().unwrap().len(), 3);
        let count = doc["accessors"][0]["count"].as_u64().unwrap();
        assert_eq!(count % 8, 0, "8 vertices per box");
        assert!(doc["buffers"][0]["uri"]
            .as_str()
            .unwrap()
            .starts_with("data:"));
    }

    #[test]
    fn empty_scene_serializes() {
        let text = to_gltf(&Scene::default());
        assert!(serde_json::from_str::<serde_json::Value>(&text).is_ok());
    }
}
