//! 3D visualization of lattice-surgery subroutines (paper contribution 5).
//!
//! Translates a solved [`lasre::LasDesign`] into 3D modeling formats so
//! designs can be inspected in standard viewers instead of hand-drawn
//! time slices:
//!
//! * [`gltf`] — a minimal but valid glTF 2.0 writer (JSON with an
//!   embedded base64 buffer, per-vertex colors), matching the paper's
//!   choice of output format,
//! * [`obj`] — Wavefront OBJ for quick inspection/diffing in tests,
//! * [`scene`] — turns cubes/pipes/Y-cubes/domain walls into colored
//!   boxes, optionally overlaying one stabilizer's correlation surface
//!   (paper Fig. 10).

#![forbid(unsafe_code)]

pub mod gltf;
pub mod obj;
pub mod scene;

pub use scene::{Scene, SceneOptions};
