//! Wavefront OBJ export, for quick inspection and diffable tests.

use crate::scene::Scene;
use std::fmt::Write as _;

/// Serializes a scene as OBJ text (one group per box, no materials).
pub fn to_obj(scene: &Scene) -> String {
    let mut out = String::from("# lattice-surgery subroutine (las-viz)\n");
    let mut base = 1usize; // OBJ indices are 1-based
    for (idx, b) in scene.boxes().iter().enumerate() {
        let _ = writeln!(out, "g box{idx}");
        let (lo, hi) = (b.min, b.max);
        let corners = [
            [lo[0], lo[1], lo[2]],
            [hi[0], lo[1], lo[2]],
            [hi[0], hi[1], lo[2]],
            [lo[0], hi[1], lo[2]],
            [lo[0], lo[1], hi[2]],
            [hi[0], lo[1], hi[2]],
            [hi[0], hi[1], hi[2]],
            [lo[0], hi[1], hi[2]],
        ];
        for c in corners {
            let _ = writeln!(out, "v {} {} {}", c[0], c[1], c[2]);
        }
        let quads = [
            [0, 3, 2, 1],
            [4, 5, 6, 7],
            [0, 1, 5, 4],
            [2, 3, 7, 6],
            [1, 2, 6, 5],
            [0, 4, 7, 3],
        ];
        for q in quads {
            let _ = writeln!(
                out,
                "f {} {} {} {}",
                base + q[0],
                base + q[1],
                base + q[2],
                base + q[3]
            );
        }
        base += 8;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{Scene, SceneOptions};

    #[test]
    fn obj_counts_match() {
        let mut d = lasre::fixtures::cnot_design();
        d.infer_k_colors();
        let scene = Scene::from_design(&d, SceneOptions::default());
        let text = to_obj(&scene);
        let vertices = text.lines().filter(|l| l.starts_with("v ")).count();
        let faces = text.lines().filter(|l| l.starts_with("f ")).count();
        assert_eq!(vertices, scene.boxes().len() * 8);
        assert_eq!(faces, scene.boxes().len() * 6);
    }

    #[test]
    fn indices_are_one_based_and_in_range() {
        let mut d = lasre::fixtures::cnot_design();
        d.infer_k_colors();
        let scene = Scene::from_design(&d, SceneOptions::default());
        let text = to_obj(&scene);
        let max_vertex = scene.boxes().len() * 8;
        for line in text.lines().filter(|l| l.starts_with("f ")) {
            for tok in line.split_whitespace().skip(1) {
                let idx: usize = tok.parse().unwrap();
                assert!(idx >= 1 && idx <= max_vertex);
            }
        }
    }
}
