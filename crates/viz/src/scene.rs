//! Building colored-box scenes from solved designs.

use lasre::{Axis, Coord, CubeKind, LasDesign, PipeRef};

/// An axis-aligned colored box.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Box3 {
    /// Minimum corner (x, y, z) = (i, j, k).
    pub min: [f32; 3],
    /// Maximum corner.
    pub max: [f32; 3],
    /// RGBA color, each component in 0..=1.
    pub color: [f32; 4],
}

/// Scene construction options.
#[derive(Clone, Copy, Debug)]
pub struct SceneOptions {
    /// Side length of cube boxes (1.0 = touching).
    pub cube_size: f32,
    /// Cross-section of pipe boxes.
    pub pipe_width: f32,
    /// Overlay the correlation surface of this stabilizer index.
    pub correlation: Option<usize>,
}

impl Default for SceneOptions {
    fn default() -> Self {
        SceneOptions {
            cube_size: 0.5,
            pipe_width: 0.3,
            correlation: None,
        }
    }
}

/// Color palette (RGBA).
mod palette {
    pub const CUBE: [f32; 4] = [0.75, 0.75, 0.78, 1.0];
    pub const Y_CUBE: [f32; 4] = [0.18, 0.75, 0.29, 1.0]; // green, paper's Y cubes
    pub const PORT: [f32; 4] = [0.95, 0.95, 0.99, 1.0];
    pub const PIPE: [f32; 4] = [0.62, 0.62, 0.68, 1.0];
    pub const DOMAIN_WALL: [f32; 4] = [0.95, 0.85, 0.1, 1.0]; // yellow ring
    pub const RED_JUNCTION: [f32; 4] = [0.85, 0.25, 0.2, 1.0];
    pub const BLUE_JUNCTION: [f32; 4] = [0.2, 0.35, 0.85, 1.0];
    pub const SURFACE: [f32; 4] = [0.1, 0.85, 0.85, 0.6]; // cyan overlay
}

/// A renderable scene: colored boxes in design coordinates.
///
/// ```
/// use viz::{Scene, SceneOptions};
/// let mut design = lasre::fixtures::cnot_design();
/// design.infer_k_colors();
/// let scene = Scene::from_design(&design, SceneOptions::default());
/// assert!(scene.boxes().len() > 10);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Scene {
    boxes: Vec<Box3>,
}

impl Scene {
    /// Builds the scene for a (post-processed) design.
    pub fn from_design(design: &LasDesign, options: SceneOptions) -> Scene {
        let mut scene = Scene::default();
        let half = options.cube_size / 2.0;
        for c in design.used_cubes() {
            let color = match design.classify(c) {
                CubeKind::Empty => continue,
                CubeKind::Port(_) => palette::PORT,
                CubeKind::Y => palette::Y_CUBE,
                CubeKind::Straight { .. } => palette::CUBE,
                CubeKind::Junction { red, .. } => {
                    if red {
                        palette::RED_JUNCTION
                    } else {
                        palette::BLUE_JUNCTION
                    }
                }
                CubeKind::Invalid => [1.0, 0.0, 1.0, 1.0],
            };
            scene.push_centered(center(c), [half; 3], color);
        }
        for pipe in design.pipes() {
            scene.push_pipe(pipe, options, palette::PIPE);
            if pipe.axis == Axis::K && design.domain_walls().contains(&pipe.base) {
                // Yellow ring at the pipe's middle.
                let mut size = [options.pipe_width / 2.0 + 0.06; 3];
                size[pipe.axis.index()] = 0.08;
                let mut mid = center(pipe.base);
                mid[pipe.axis.index()] += 0.5;
                scene.push_centered(mid, size, palette::DOMAIN_WALL);
            }
        }
        if let Some(s) = options.correlation {
            for pipe in design.pipes() {
                for kind in lasre::CorrKind::all() {
                    if kind.pipe_axis == pipe.axis && design.corr(s, kind, pipe.base) {
                        let mut size = [0.05; 3];
                        size[pipe.axis.index()] = 0.55;
                        size[kind.plane.index()] = options.pipe_width / 2.0 + 0.02;
                        let mut mid = center(pipe.base);
                        mid[pipe.axis.index()] += 0.5;
                        scene.push_centered(mid, size, palette::SURFACE);
                    }
                }
            }
        }
        scene
    }

    fn push_pipe(&mut self, pipe: PipeRef, options: SceneOptions, color: [f32; 4]) {
        let mut size = [options.pipe_width / 2.0; 3];
        size[pipe.axis.index()] = 0.5;
        let mut mid = center(pipe.base);
        mid[pipe.axis.index()] += 0.5;
        self.push_centered(mid, size, color);
    }

    fn push_centered(&mut self, center: [f32; 3], half: [f32; 3], color: [f32; 4]) {
        self.boxes.push(Box3 {
            min: [
                center[0] - half[0],
                center[1] - half[1],
                center[2] - half[2],
            ],
            max: [
                center[0] + half[0],
                center[1] + half[1],
                center[2] + half[2],
            ],
            color,
        });
    }

    /// The boxes of the scene.
    pub fn boxes(&self) -> &[Box3] {
        &self.boxes
    }
}

fn center(c: Coord) -> [f32; 3] {
    [c.i as f32, c.j as f32, c.k as f32]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasre::fixtures::cnot_design;

    fn scene() -> Scene {
        let mut d = cnot_design();
        d.infer_k_colors();
        Scene::from_design(&d, SceneOptions::default())
    }

    #[test]
    fn scene_has_cubes_and_pipes() {
        let s = scene();
        // 6 structural cubes + 2 virtual port cubes + 9 pipes.
        assert_eq!(s.boxes().len(), 17);
    }

    #[test]
    fn junction_colors_present() {
        let s = scene();
        let reds = s
            .boxes()
            .iter()
            .filter(|b| b.color == palette::RED_JUNCTION)
            .count();
        let blues = s
            .boxes()
            .iter()
            .filter(|b| b.color == palette::BLUE_JUNCTION)
            .count();
        assert!(reds >= 1, "expected the XX junction");
        assert!(blues >= 1, "expected the ZZ junction");
    }

    #[test]
    fn correlation_overlay_adds_boxes() {
        let mut d = cnot_design();
        d.infer_k_colors();
        let plain = Scene::from_design(&d, SceneOptions::default());
        let overlay = Scene::from_design(
            &d,
            SceneOptions {
                correlation: Some(1),
                ..SceneOptions::default()
            },
        );
        assert!(overlay.boxes().len() > plain.boxes().len());
    }

    #[test]
    fn boxes_are_well_formed() {
        for b in scene().boxes() {
            for d in 0..3 {
                assert!(b.min[d] < b.max[d]);
            }
        }
    }
}
