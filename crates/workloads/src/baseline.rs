//! The 2-lane baseline compiler for graph states.
//!
//! A faithful substitute for the substrate scheduler of Liu et al. that
//! the paper benchmarks against (Sec. V-B): a logical 2-lane
//! architecture where each qubit is a **2-tile patch** (both X and Z
//! boundaries exposed to the ancilla lane, footprint `2n × 2 = 4n`
//! tiles), initialization bases are chosen via maximum independent set
//! so those stabilizers hold at initialization, and the remaining
//! stabilizers are measured as multi-qubit parities whose ancilla-lane
//! intervals are packed into layers by interval scheduling.

use crate::graphs::Graph;
use crate::mis::max_independent_set;

/// Initialization basis of one qubit in the baseline layout.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Basis {
    /// `|+⟩` (satisfies its own graph-state stabilizer at init).
    Plus,
    /// `|0⟩`.
    Zero,
}

/// Output of the baseline compiler.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// Tiles occupied (2-tile patches on 2 lanes: `4n`).
    pub footprint: usize,
    /// Depth in units of `d` rounds.
    pub depth: usize,
    /// `footprint × depth`.
    pub volume: usize,
    /// Chosen initialization bases.
    pub init_basis: Vec<Basis>,
    /// Indices of stabilizers that still need measurement.
    pub measured: Vec<usize>,
    /// Measurement layers (each a set of stabilizer indices whose
    /// ancilla intervals do not overlap).
    pub layers: Vec<Vec<usize>>,
}

/// Compiles an `n`-qubit graph state on the 2-lane baseline.
pub fn compile_graph_state(g: &Graph) -> BaselineResult {
    let n = g.num_vertices();
    let mis = max_independent_set(g);
    let in_mis = |v: usize| mis.contains(&v);
    let init_basis: Vec<Basis> = (0..n)
        .map(|v| if in_mis(v) { Basis::Plus } else { Basis::Zero })
        .collect();
    // Stabilizer X_v Z_{N(v)} is satisfied at init iff v ∈ MIS (then v is
    // |+⟩ and all neighbors are |0⟩, MIS independence guarantees it).
    let measured: Vec<usize> = (0..n).filter(|&v| !in_mis(v)).collect();
    // Each measurement touches columns [min support, max support]; the
    // ancilla lane segment spanning them is busy for one unit of depth.
    let mut intervals: Vec<(usize, usize, usize)> = measured
        .iter()
        .map(|&v| {
            let mut cols: Vec<usize> = g.neighbors(v);
            cols.push(v);
            let lo = *cols.iter().min().expect("non-empty"); // lint:allow(no-panic)
            let hi = *cols.iter().max().expect("non-empty"); // lint:allow(no-panic)
            (lo, hi, v)
        })
        .collect();
    // Greedy interval-graph coloring: sort by left endpoint, place each
    // interval in the first layer whose last interval ends before it.
    intervals.sort();
    let mut layers: Vec<Vec<usize>> = Vec::new();
    let mut layer_ends: Vec<usize> = Vec::new();
    for (lo, hi, v) in intervals {
        match layer_ends.iter().position(|&end| end < lo) {
            Some(idx) => {
                layers[idx].push(v);
                layer_ends[idx] = hi;
            }
            None => {
                layers.push(vec![v]);
                layer_ends.push(hi);
            }
        }
    }
    let depth = layers.len().max(1);
    let footprint = 4 * n;
    BaselineResult {
        footprint,
        depth,
        volume: footprint * depth,
        init_basis,
        measured,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::fig14_graph;

    #[test]
    fn star_graph_needs_one_layer() {
        // MIS of a star = the leaves; only the hub's stabilizer needs
        // measuring: one layer, depth 1.
        let r = compile_graph_state(&Graph::star(8));
        assert_eq!(r.measured, vec![0]);
        assert_eq!(r.depth, 1);
        assert_eq!(r.footprint, 32);
        assert_eq!(r.volume, 32);
    }

    #[test]
    fn fig14_example_costs_two_layers() {
        // Paper Fig. 14c: the baseline solution is 8×4×2 = 64 volume
        // (our footprint accounting: 32 × depth 2).
        let r = compile_graph_state(&fig14_graph());
        assert_eq!(r.footprint, 32);
        assert_eq!(r.depth, 2, "layers: {:?}", r.layers);
        assert_eq!(r.volume, 64);
        assert_eq!(r.measured.len(), 2);
    }

    #[test]
    fn complete_graph_measures_all_but_one() {
        let r = compile_graph_state(&Graph::complete(5));
        assert_eq!(r.measured.len(), 4);
        // All intervals span everything: one per layer.
        assert_eq!(r.depth, 4);
    }

    #[test]
    fn layers_have_disjoint_intervals() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10 {
            let g = Graph::random_connected(8, 0.35, &mut rng);
            let r = compile_graph_state(&g);
            for layer in &r.layers {
                let mut spans: Vec<(usize, usize)> = layer
                    .iter()
                    .map(|&v| {
                        let mut cols = g.neighbors(v);
                        cols.push(v);
                        (*cols.iter().min().unwrap(), *cols.iter().max().unwrap())
                    })
                    .collect();
                spans.sort();
                for w in spans.windows(2) {
                    assert!(w[0].1 < w[1].0, "overlap in layer: {spans:?}");
                }
            }
        }
    }

    #[test]
    fn init_bases_match_mis() {
        let g = Graph::path(6);
        let r = compile_graph_state(&g);
        let plus_count = r.init_basis.iter().filter(|b| **b == Basis::Plus).count();
        assert_eq!(plus_count + r.measured.len(), 6);
    }
}
