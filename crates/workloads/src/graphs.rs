//! Simple undirected graphs, generators, and graph-state stabilizers.
//!
//! Graph states are the paper's "average case" workload (Sec. V-B):
//! any stabilizer state is a graph state up to local Cliffords. The
//! paper benchmarks on the 101 local-Clifford equivalence classes of
//! connected 8-vertex graphs from a published database; offline, we
//! substitute a deterministic, diverse benchmark set of the same size
//! (structured families plus seeded random connected graphs,
//! de-duplicated by graph invariants) — see DESIGN.md §2.

use gf2::BitVec;
use pauli::{Pauli, PauliString};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A simple undirected graph on `n` vertices (adjacency bitsets).
///
/// ```
/// use workloads::graphs::Graph;
/// let g = Graph::cycle(4);
/// assert_eq!(g.num_edges(), 4);
/// assert!(g.is_connected());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Graph {
    n: usize,
    adj: Vec<BitVec>,
}

impl Graph {
    /// The empty graph on `n` vertices.
    pub fn new(n: usize) -> Graph {
        Graph {
            n,
            adj: vec![BitVec::zeros(n); n],
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range vertices.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert_ne!(a, b, "no self-loops");
        self.adj[a].set(b, true);
        self.adj[b].set(a, true);
    }

    /// Whether `a` and `b` are adjacent.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a].get(b)
    }

    /// The neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> Vec<usize> {
        self.adj[v].iter_ones().collect()
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].count_ones()
    }

    /// All edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for a in 0..self.n {
            for b in self.adj[a].iter_ones() {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges().len()
    }

    /// Whether the graph is connected (true for `n ≤ 1`).
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for u in self.adj[v].iter_ones() {
                if !seen[u] {
                    seen[u] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == self.n
    }

    /// Local complementation at `v`: complements the subgraph induced
    /// by `v`'s neighborhood. Orbits of this operation are the
    /// local-Clifford equivalence classes of graph states.
    pub fn local_complement(&mut self, v: usize) {
        let nb = self.neighbors(v);
        for (i, &a) in nb.iter().enumerate() {
            for &b in &nb[i + 1..] {
                let had = self.has_edge(a, b);
                self.adj[a].set(b, !had);
                self.adj[b].set(a, !had);
            }
        }
    }

    /// The graph-state stabilizers `X_v ∏_{u ∈ N(v)} Z_u` (paper Fig. 14a).
    pub fn stabilizers(&self) -> Vec<PauliString> {
        (0..self.n)
            .map(|v| {
                let mut s = PauliString::identity(self.n);
                s.set(v, Pauli::X);
                for u in self.adj[v].iter_ones() {
                    s.set(u, Pauli::Z);
                }
                s
            })
            .collect()
    }

    /// A cheap isomorphism-ish invariant used to de-duplicate the
    /// benchmark set: (n, m, sorted degrees, sorted triangle counts).
    pub fn invariant(&self) -> (usize, usize, Vec<usize>, Vec<usize>) {
        let mut degrees: Vec<usize> = (0..self.n).map(|v| self.degree(v)).collect();
        degrees.sort_unstable();
        let mut triangles = vec![0usize; self.n];
        for (a, b) in self.edges() {
            for (v, count) in triangles.iter_mut().enumerate() {
                if v != a && v != b && self.has_edge(v, a) && self.has_edge(v, b) {
                    *count += 1;
                }
            }
        }
        triangles.sort_unstable();
        (self.n, self.num_edges(), degrees, triangles)
    }

    // ----- generators -----

    /// Path 0–1–…–(n−1).
    pub fn path(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for v in 1..n {
            g.add_edge(v - 1, v);
        }
        g
    }

    /// Cycle on `n ≥ 3` vertices.
    pub fn cycle(n: usize) -> Graph {
        assert!(n >= 3, "cycle needs ≥ 3 vertices");
        let mut g = Graph::path(n);
        g.add_edge(n - 1, 0);
        g
    }

    /// Star with center 0.
    pub fn star(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for v in 1..n {
            g.add_edge(0, v);
        }
        g
    }

    /// Complete graph.
    pub fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for a in 0..n {
            for b in a + 1..n {
                g.add_edge(a, b);
            }
        }
        g
    }

    /// Complete bipartite graph on parts of size `a` and `b`.
    pub fn complete_bipartite(a: usize, b: usize) -> Graph {
        let mut g = Graph::new(a + b);
        for x in 0..a {
            for y in 0..b {
                g.add_edge(x, a + y);
            }
        }
        g
    }

    /// Wheel: a cycle on `n−1` vertices plus a hub.
    pub fn wheel(n: usize) -> Graph {
        assert!(n >= 4, "wheel needs ≥ 4 vertices");
        let mut g = Graph::new(n);
        for v in 1..n {
            g.add_edge(0, v);
            let next = if v == n - 1 { 1 } else { v + 1 };
            g.add_edge(v, next);
        }
        g
    }

    /// A seeded random connected graph with edge probability `p`
    /// (resampled until connected).
    pub fn random_connected(n: usize, p: f64, rng: &mut SmallRng) -> Graph {
        loop {
            let mut g = Graph::new(n);
            for a in 0..n {
                for b in a + 1..n {
                    if rng.random_bool(p) {
                        g.add_edge(a, b);
                    }
                }
            }
            if g.is_connected() {
                return g;
            }
        }
    }
}

/// The 8-qubit graph of paper Fig. 14a (edges read off its stabilizer
/// list: 0–7, 1–7, 2–7, 3–7, 4–7, 5–6, 6–7).
pub fn fig14_graph() -> Graph {
    let mut g = Graph::new(8);
    for v in [0, 1, 2, 3, 4] {
        g.add_edge(v, 7);
    }
    g.add_edge(5, 6);
    g.add_edge(6, 7);
    g
}

/// A deterministic benchmark set of `count` distinct connected
/// `n`-vertex graphs: structured families first, then seeded random
/// graphs at varied densities, de-duplicated by [`Graph::invariant`].
///
/// With `n = 8, count = 101` this substitutes the paper's 101
/// LC-equivalence-class representatives.
pub fn benchmark_set(n: usize, count: usize, seed: u64) -> Vec<Graph> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out: Vec<Graph> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut push = |g: Graph, out: &mut Vec<Graph>| {
        if g.is_connected() && seen.insert(g.invariant()) {
            out.push(g);
        }
    };
    push(Graph::path(n), &mut out);
    if n >= 3 {
        push(Graph::cycle(n), &mut out);
    }
    push(Graph::star(n), &mut out);
    push(Graph::complete(n), &mut out);
    if n >= 4 {
        push(Graph::wheel(n), &mut out);
        for a in 1..n {
            push(Graph::complete_bipartite(a, n - a), &mut out);
        }
    }
    if n == 8 {
        push(fig14_graph(), &mut out);
    }
    let densities = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
    let mut density_idx = 0;
    let mut attempts = 0;
    while out.len() < count && attempts < 50 * count {
        let p = densities[density_idx % densities.len()];
        density_idx += 1;
        attempts += 1;
        push(Graph::random_connected(n, p, &mut rng), &mut out);
    }
    out.truncate(count);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pauli::all_commute;

    #[test]
    fn generators_have_expected_edge_counts() {
        assert_eq!(Graph::path(5).num_edges(), 4);
        assert_eq!(Graph::cycle(5).num_edges(), 5);
        assert_eq!(Graph::star(5).num_edges(), 4);
        assert_eq!(Graph::complete(5).num_edges(), 10);
        assert_eq!(Graph::complete_bipartite(2, 3).num_edges(), 6);
        assert_eq!(Graph::wheel(5).num_edges(), 8);
    }

    #[test]
    fn connectivity() {
        assert!(Graph::path(6).is_connected());
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert!(!g.is_connected());
    }

    #[test]
    fn graph_state_stabilizers_commute() {
        for g in [
            Graph::path(6),
            Graph::cycle(5),
            Graph::complete(4),
            fig14_graph(),
        ] {
            let stabs = g.stabilizers();
            assert!(all_commute(&stabs));
            assert_eq!(pauli::independent_count(&stabs), g.num_vertices());
        }
    }

    #[test]
    fn fig14_graph_matches_paper_stabilizers() {
        let stabs = fig14_graph().stabilizers();
        assert_eq!(stabs[0].to_string(), "X......Z");
        assert_eq!(stabs[6].to_string(), ".....ZXZ");
        assert_eq!(stabs[5].to_string(), ".....XZ.");
    }

    #[test]
    fn local_complement_is_involution() {
        let mut g = Graph::wheel(6);
        let orig = g.clone();
        g.local_complement(0);
        assert_ne!(g, orig);
        g.local_complement(0);
        assert_eq!(g, orig);
    }

    #[test]
    fn benchmark_set_is_distinct_and_connected() {
        let set = benchmark_set(8, 101, 2024);
        assert_eq!(set.len(), 101, "need 101 distinct 8-vertex graphs");
        for g in &set {
            assert!(g.is_connected());
            assert_eq!(g.num_vertices(), 8);
        }
        let inv: std::collections::HashSet<_> = set.iter().map(|g| g.invariant()).collect();
        assert_eq!(inv.len(), 101);
    }

    #[test]
    fn benchmark_set_is_deterministic() {
        assert_eq!(benchmark_set(6, 20, 7), benchmark_set(6, 20, 7));
    }
}
