//! Workloads and baselines for the paper's evaluation (Sec. V).
//!
//! * [`graphs`] — simple undirected graphs, generators, graph-state
//!   stabilizers, local complementation, and the 8-qubit benchmark set
//!   substituting the paper's 101 LC-equivalence-class database,
//! * [`mis`] — exact maximum-independent-set solver (branch and bound),
//!   used by the baseline's initialization-basis selection,
//! * [`baseline`] — the 2-lane baseline compiler substituting Liu et
//!   al.'s substrate scheduler: MIS init + interval-scheduled parity
//!   measurements at footprint 32,
//! * [`specs`] — LaS specifications for the paper's subjects: CNOT
//!   (Fig. 2/8/10), graph states (Fig. 13/14), the majority gate
//!   (Fig. 15) and the 15-to-1 T-factory (Figs. 16–18).

#![forbid(unsafe_code)]

pub mod baseline;
pub mod graphs;
pub mod mis;
pub mod specs;
