//! Exact maximum independent set (MIS) by branch and bound.
//!
//! The baseline compiler selects initialization bases by solving MIS on
//! the graph (paper Sec. V-B: "selecting the initialization basis is a
//! Maximum Independent Set problem"). Instances are small (n ≤ 20 or
//! so), so an exact bitmask branch-and-bound is both fair and fast.

use crate::graphs::Graph;

/// Computes a maximum independent set of `g`.
///
/// # Panics
///
/// Panics if `g` has more than 64 vertices (bitmask representation).
pub fn max_independent_set(g: &Graph) -> Vec<usize> {
    let n = g.num_vertices();
    assert!(n <= 64, "bitmask MIS supports at most 64 vertices");
    let masks: Vec<u64> = (0..n)
        .map(|v| g.neighbors(v).iter().fold(0u64, |m, &u| m | 1 << u))
        .collect();
    let mut best: u64 = 0;
    let all = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    solve(&masks, all, 0, &mut best);
    (0..n).filter(|&v| best >> v & 1 == 1).collect()
}

fn solve(masks: &[u64], candidates: u64, chosen: u64, best: &mut u64) {
    if candidates == 0 {
        if chosen.count_ones() > best.count_ones() {
            *best = chosen;
        }
        return;
    }
    // Bound: even taking every candidate cannot beat the best.
    if chosen.count_ones() + candidates.count_ones() <= best.count_ones() {
        return;
    }
    // Branch on a candidate of maximum degree within the candidate set.
    let v = (0..64)
        .filter(|&v| candidates >> v & 1 == 1)
        .max_by_key(|&v| (masks[v as usize] & candidates).count_ones())
        .expect("candidates non-empty"); // lint:allow(no-panic)
                                         // Include v.
    solve(
        masks,
        candidates & !(1 << v) & !masks[v as usize],
        chosen | 1 << v,
        best,
    );
    // Exclude v.
    solve(masks, candidates & !(1 << v), chosen, best);
}

/// Checks that `set` is independent in `g`.
pub fn is_independent(g: &Graph, set: &[usize]) -> bool {
    for (i, &a) in set.iter().enumerate() {
        for &b in &set[i + 1..] {
            if g.has_edge(a, b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_mis_is_the_leaves() {
        let g = Graph::star(6);
        let mis = max_independent_set(&g);
        assert_eq!(mis, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn complete_graph_mis_is_one() {
        assert_eq!(max_independent_set(&Graph::complete(5)).len(), 1);
    }

    #[test]
    fn path_mis_is_ceil_half() {
        assert_eq!(max_independent_set(&Graph::path(7)).len(), 4);
        assert_eq!(max_independent_set(&Graph::path(8)).len(), 4);
    }

    #[test]
    fn cycle_mis_is_floor_half() {
        assert_eq!(max_independent_set(&Graph::cycle(7)).len(), 3);
        assert_eq!(max_independent_set(&Graph::cycle(8)).len(), 4);
    }

    #[test]
    fn bipartite_mis_is_bigger_part() {
        assert_eq!(
            max_independent_set(&Graph::complete_bipartite(3, 5)).len(),
            5
        );
    }

    #[test]
    fn results_are_independent_sets() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = Graph::random_connected(10, 0.4, &mut rng);
            let mis = max_independent_set(&g);
            assert!(is_independent(&g, &mis));
            assert!(!mis.is_empty());
        }
    }
}
