//! LaS specifications for the paper's evaluation subjects.
//!
//! * [`graph_state_spec`] — n-qubit graph states on the 2-lane
//!   architecture (Fig. 13/14),
//! * [`majority_gate_spec`] — the CCZ-consuming majority gate
//!   (Fig. 15); its nine stabilizer flows are *derived* by simulating
//!   the gate's Clifford gadget on the Choi state with our tableau,
//! * [`t_factory_nodelay_spec`] / [`t_factory_spec`] — the 15-to-1
//!   T-factory (Figs. 16–18) with the [[15,1,3]] flow table transcribed
//!   from Fig. 16c,
//! * plus re-exports of the CNOT fixture.
//!
//! Port geometries follow the paper's stated constraints (see DESIGN.md
//! §2 for the interpretation where the figures are not recoverable from
//! text).

pub use lasre::fixtures::{cnot_design, cnot_spec};

use crate::graphs::Graph;
use lasre::{Axis, LasSpec, Port};
use pauli::PauliString;
use tableau::Tableau;

/// Spec for generating the graph state of `g` on the 2-lane
/// architecture: footprint `n × 2`, all `n` output ports on the back
/// lane's top face, time extent `depth`.
///
/// # Panics
///
/// Panics if `depth == 0`.
pub fn graph_state_spec(g: &Graph, depth: usize) -> LasSpec {
    assert!(depth > 0, "depth must be positive");
    let n = g.num_vertices();
    LasSpec {
        name: format!("graph-state-{n}q-d{depth}"),
        max_i: n,
        max_j: 2,
        max_k: depth,
        ports: (0..n)
            .map(|i| Port::parse(i as i32, 0, depth as i32, "-K", Axis::J))
            .collect(),
        stabilizers: g.stabilizers(),
        forbidden_cubes: Vec::new(),
        allow_y_cubes: true,
    }
}

/// Like [`graph_state_spec`] but with a configurable number of lanes
/// (`max_j`), for the paper's future-work architecture exploration
/// (Sec. VII: "quasi-1D architectures, or very small footprint
/// architectures"). `lanes = 1` is the quasi-1D case; `lanes = 2` is
/// the paper's evaluation architecture.
///
/// # Panics
///
/// Panics if `depth == 0` or `lanes == 0`.
pub fn graph_state_spec_arch(g: &Graph, depth: usize, lanes: usize) -> LasSpec {
    assert!(depth > 0 && lanes > 0, "depth and lanes must be positive");
    let n = g.num_vertices();
    LasSpec {
        name: format!("graph-state-{n}q-d{depth}-l{lanes}"),
        max_i: n,
        max_j: lanes,
        max_k: depth,
        ports: (0..n)
            .map(|i| Port::parse(i as i32, 0, depth as i32, "-K", Axis::J))
            .collect(),
        stabilizers: g.stabilizers(),
        forbidden_cubes: Vec::new(),
        allow_y_cubes: true,
    }
}

/// Derives the nine stabilizer flows of the CCZ-consuming majority gate
/// by Choi-state simulation of its Clifford gadget: `CNOT(a→t)`,
/// `CNOT(a→c)`, then each operand line is teleported onto its |CCZ⟩
/// qubit via a `ZZ` parity measurement and an `X` measurement (the
/// AutoCCZ consumption pattern of Ref. [20]).
///
/// Port order: `a_in, t_in, c_in, a_out, t_out, c_out, ccz_a, ccz_t,
/// ccz_c`.
pub fn majority_flows() -> Vec<PauliString> {
    // Qubits: 0..3 input legs, 3..6 working wires, 6..9 ccz legs,
    // 9..12 resource wires (which become the outputs).
    let mut t = Tableau::new(12);
    for x in 0..3 {
        // Bell pairs: input leg ↔ working wire, ccz leg ↔ resource wire.
        t.h(x);
        t.cx(x, 3 + x);
        t.h(6 + x);
        t.cx(6 + x, 9 + x);
    }
    t.cx(3, 4); // CNOT a→t
    t.cx(3, 5); // CNOT a→c
    for x in 0..3 {
        let mut zz = PauliString::identity(12);
        zz.set(3 + x, pauli::Pauli::Z);
        zz.set(9 + x, pauli::Pauli::Z);
        t.measure_pauli(&zz, Some(false));
        let mut xm = PauliString::identity(12);
        xm.set(3 + x, pauli::Pauli::X);
        t.measure_pauli(&xm, Some(false));
    }
    // Open legs in port order: inputs, outputs (resource wires), ccz legs.
    let flows = t.stabilizers_on(&[0, 1, 2, 9, 10, 11, 6, 7, 8]);
    // Drop signs: the spec is letters-only.
    flows
        .into_iter()
        .map(|f| f.with_phase(pauli::Phase::ONE))
        .collect()
}

/// Spec for the majority gate (paper Fig. 15): the three data lines
/// enter through a virtual padding column at `i = 0` and exit on the
/// `+I` face at the same heights (`k` = 1, 2, 3 for `a`, `t`, `c`); the
/// three |CCZ⟩ ports enter through the `+J` face, vertically aligned.
/// `interior_i` is the usable footprint width along I (the paper's
/// baseline is 5, the discovered design 3).
pub fn majority_gate_spec(interior_i: usize) -> LasSpec {
    let max_i = interior_i + 1; // one virtual padding column at i = 0
    let out = max_i as i32;
    let mid = (max_i / 2) as i32;
    LasSpec {
        name: format!("majority-{interior_i}x3x5"),
        max_i,
        max_j: 3,
        max_k: 5,
        ports: vec![
            Port::parse(0, 0, 1, "+I", Axis::K),   // a in
            Port::parse(0, 1, 2, "+I", Axis::K),   // t in
            Port::parse(0, 2, 3, "+I", Axis::K),   // c in
            Port::parse(out, 0, 1, "-I", Axis::K), // a out
            Port::parse(out, 1, 2, "-I", Axis::K), // t out
            Port::parse(out, 2, 3, "-I", Axis::K), // c out
            Port::parse(mid, 3, 1, "-J", Axis::K), // ccz a
            Port::parse(mid, 3, 2, "-J", Axis::K), // ccz t
            Port::parse(mid, 3, 3, "-J", Axis::K), // ccz c
        ],
        stabilizers: majority_flows(),
        forbidden_cubes: Vec::new(),
        allow_y_cubes: true,
    }
}

/// The sixteen stabilizer flows of the 15-to-1 T-factory over its 15
/// injection ports (columns 0–E) and the output port (column F),
/// transcribed from paper Fig. 16c ([[15,1,3]] code).
pub fn t_factory_flows() -> Vec<PauliString> {
    const TABLE: [&str; 16] = [
        "X...XXX.X..X.XX.",
        ".X..XX.XX.X.X.X.",
        "..X.X.XXXX..XX..",
        "...X.XXXXXXX....",
        "ZZZ.Z...........",
        "ZZ.Z.Z..........",
        "Z.ZZ..Z.........",
        ".ZZZ...Z........",
        "ZZZZ....Z......Z",
        "..ZZ.....Z.....Z",
        ".Z.Z......Z....Z",
        "Z..Z.......Z...Z",
        ".ZZ.........Z..Z",
        "Z.Z..........Z.Z",
        "ZZ............ZZ",
        "........XXXXXXXX",
    ];
    TABLE
        .iter()
        .map(|s| s.parse().expect("valid table row")) // lint:allow(no-panic)
        .collect()
}

/// The no-injection-delay 15-to-1 T-factory spec (paper Fig. 18): a
/// 3×3 footprint ("9-patch floorplan"), depth `depth` (11 for the
/// paper's 99-volume design), injections on the `+I` face, output on
/// the top face.
pub fn t_factory_nodelay_spec(depth: usize) -> LasSpec {
    let mut ports = Vec::new();
    for k in [1i32, 3, 5, 7, 9] {
        for j in 0..3 {
            let k = k.min(depth as i32 - 1);
            ports.push(Port::parse(3, j, k, "-I", Axis::K));
        }
    }
    ports.push(Port::parse(1, 1, depth as i32, "-K", Axis::J));
    LasSpec {
        name: format!("t-factory-3x3x{depth}"),
        max_i: 3,
        max_j: 3,
        max_k: depth,
        ports,
        stabilizers: t_factory_flows(),
        forbidden_cubes: Vec::new(),
        allow_y_cubes: true,
    }
}

/// The injection-aware 15-to-1 T-factory spec (paper Fig. 17): a 9×4
/// footprint, injections entering through a bottom padding layer (each
/// bends inward, leaving room for S fixups), output on top. Depth
/// `depth` layers above the padding; the paper's design uses 4 (plus
/// the 0.5-layer fixup accounting applied outside the model).
pub fn t_factory_spec(depth: usize) -> LasSpec {
    let injection_sites: [(i32, i32); 15] = [
        (0, 0),
        (2, 0),
        (4, 0),
        (6, 0),
        (8, 0),
        (0, 2),
        (2, 2),
        (4, 2),
        (6, 2),
        (8, 2),
        (0, 3),
        (2, 3),
        (4, 3),
        (6, 3),
        (8, 3),
    ];
    let mut ports: Vec<Port> = injection_sites
        .iter()
        .map(|&(i, j)| Port::parse(i, j, 0, "+K", Axis::J))
        .collect();
    ports.push(Port::parse(4, 1, 1 + depth as i32, "-K", Axis::J));
    LasSpec {
        name: format!("t-factory-9x4x{depth}"),
        max_i: 9,
        max_j: 4,
        max_k: 1 + depth, // bottom padding layer + working layers
        ports,
        stabilizers: t_factory_flows(),
        forbidden_cubes: Vec::new(),
        allow_y_cubes: true,
    }
}

/// Published baseline volumes the paper compares against (Sec. V).
pub mod baselines {
    /// Majority gate of Ref. [20]: 3×5×5.
    pub const MAJORITY_VOLUME: usize = 75;
    /// 15-to-1 factory of Refs. [10], [21]: 8×4 footprint × 5.5 average depth.
    pub const T_FACTORY_VOLUME: usize = 176;
    /// Litinski's no-delay factory (Ref. [8]): 11 patches × 11 depth.
    pub const T_FACTORY_NODELAY_VOLUME: usize = 121;
    /// The paper's discovered majority gate: 3×3×5.
    pub const PAPER_MAJORITY_VOLUME: usize = 45;
    /// The paper's discovered factory: 9×4×4.5.
    pub const PAPER_T_FACTORY_VOLUME: usize = 162;
    /// The paper's discovered no-delay factory: 3×3×11.
    pub const PAPER_T_FACTORY_NODELAY_VOLUME: usize = 99;
}

#[cfg(test)]
mod tests {
    use super::*;
    use pauli::{all_commute, independent_count};

    #[test]
    fn graph_state_spec_is_valid() {
        let g = Graph::cycle(5);
        let spec = graph_state_spec(&g, 3);
        assert!(spec.validate().is_ok(), "{:?}", spec.validate());
        assert_eq!(spec.ports.len(), 5);
        assert_eq!(spec.nstab(), 5);
    }

    #[test]
    fn arch_variants_are_valid() {
        let g = Graph::cycle(5);
        for lanes in 1..4 {
            let spec = graph_state_spec_arch(&g, 3, lanes);
            assert!(spec.validate().is_ok(), "lanes {lanes}");
            assert_eq!(spec.max_j, lanes);
        }
    }

    #[test]
    fn majority_flows_are_consistent() {
        let flows = majority_flows();
        assert_eq!(flows.len(), 9);
        assert!(all_commute(&flows));
        assert_eq!(independent_count(&flows), 9);
        // Z on input a flows to Z on output a (letters; CNOT control).
        assert!(flows_contain(&flows, "Z..Z....."));
    }

    fn flows_contain(flows: &[PauliString], target: &str) -> bool {
        // GF(2) membership via rank comparison.
        let target: PauliString = target.parse().unwrap();
        let mut with: Vec<PauliString> = flows.to_vec();
        with.push(target);
        independent_count(&with) == independent_count(flows)
    }

    #[test]
    fn majority_spec_is_valid() {
        let spec = majority_gate_spec(3);
        assert_eq!(spec.validate(), Ok(()));
        assert_eq!(spec.ports.len(), 9);
        // Pairs at the same height (paper Fig. 15a).
        assert_eq!(spec.ports[0].location.k, spec.ports[3].location.k);
        assert_eq!(spec.ports[1].location.k, spec.ports[4].location.k);
        assert_eq!(spec.ports[2].location.k, spec.ports[5].location.k);
        // CCZ ports vertically aligned.
        assert_eq!(spec.ports[6].location.i, spec.ports[7].location.i);
        assert_eq!(spec.ports[7].location.i, spec.ports[8].location.i);
    }

    #[test]
    fn t_factory_table_matches_code_structure() {
        let flows = t_factory_flows();
        assert_eq!(flows.len(), 16);
        assert!(all_commute(&flows), "[[15,1,3]] flows must commute");
        assert_eq!(independent_count(&flows), 16);
        // Four weight-8 X rows over the inputs.
        let x_rows = flows
            .iter()
            .take(4)
            .filter(|f| f.weight() == 8 && f.xs().count_ones() == 8)
            .count();
        assert_eq!(x_rows, 4);
        // The output column (F) carries X exactly once, on the last row.
        assert_eq!(flows[15].get(15), pauli::Pauli::X);
    }

    #[test]
    fn t_factory_specs_are_valid() {
        let s99 = t_factory_nodelay_spec(11);
        assert_eq!(s99.validate(), Ok(()));
        assert_eq!(s99.ports.len(), 16);
        assert_eq!(s99.bounds().volume(), 99);
        let s162 = t_factory_spec(4);
        assert_eq!(s162.validate(), Ok(()));
        assert_eq!(s162.ports.len(), 16);
        assert_eq!(s162.bounds().volume(), 9 * 4 * 5);
    }

    #[test]
    fn reported_improvements_match_paper_claims() {
        use baselines::*;
        // −40% majority, −8% factory, −18% no-delay factory.
        assert_eq!(100 - 100 * PAPER_MAJORITY_VOLUME / MAJORITY_VOLUME, 40);
        assert_eq!(
            100 * (T_FACTORY_VOLUME - PAPER_T_FACTORY_VOLUME) / T_FACTORY_VOLUME,
            7
        );
        assert_eq!(
            100 * (T_FACTORY_NODELAY_VOLUME - PAPER_T_FACTORY_NODELAY_VOLUME)
                / T_FACTORY_NODELAY_VOLUME,
            18
        );
    }
}
