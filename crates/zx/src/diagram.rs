//! ZX diagram data structure.

use std::fmt;

/// Identifies a node in a [`Diagram`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// Identifies an edge in a [`Diagram`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EdgeId(pub(crate) usize);

/// The species of a node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SpiderKind {
    /// Z-spider (copies in the computational basis).
    Z,
    /// X-spider (copies in the Hadamard basis).
    X,
    /// An open leg of the diagram (an input/output port).
    Boundary,
}

#[derive(Clone, Debug)]
pub(crate) struct Node {
    pub kind: SpiderKind,
    /// Phase in units of π/2 (0..4); only Clifford phases are supported.
    pub quarters: u8,
    pub deleted: bool,
}

#[derive(Clone, Debug)]
pub(crate) struct Edge {
    pub a: NodeId,
    pub b: NodeId,
    /// Whether the wire carries a Hadamard box (a domain wall in the
    /// lattice-surgery picture).
    pub hadamard: bool,
    pub deleted: bool,
}

/// An undirected ZX diagram with Clifford phases (multiples of π/2) and
/// optional Hadamard edges.
///
/// Boundary nodes are ordered by insertion; that order is the qubit
/// order of the derived stabilizer flows.
///
/// ```
/// use zx::{Diagram, SpiderKind};
/// let mut d = Diagram::new();
/// let b_in = d.add_boundary();
/// let b_out = d.add_boundary();
/// let s = d.add_spider(SpiderKind::Z, 0);
/// d.add_edge(b_in, s);
/// d.add_edge(s, b_out);
/// // A 2-legged phase-0 spider is the identity wire: flows XX and ZZ.
/// let flows = d.stabilizer_flows().unwrap();
/// assert!(flows.contains_letters(&"XX".parse().unwrap()));
/// assert!(flows.contains_letters(&"ZZ".parse().unwrap()));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Diagram {
    pub(crate) nodes: Vec<Node>,
    pub(crate) edges: Vec<Edge>,
}

impl Diagram {
    /// Creates an empty diagram.
    pub fn new() -> Diagram {
        Diagram::default()
    }

    /// Adds a boundary (open leg); boundaries are ordered by insertion.
    pub fn add_boundary(&mut self) -> NodeId {
        self.add_node(SpiderKind::Boundary, 0)
    }

    /// Adds a spider with a phase of `quarters · π/2`.
    ///
    /// # Panics
    ///
    /// Panics if asked for a `Boundary` (use [`Diagram::add_boundary`])
    /// or a phase outside `0..4`.
    pub fn add_spider(&mut self, kind: SpiderKind, quarters: u8) -> NodeId {
        assert!(
            kind != SpiderKind::Boundary,
            "use add_boundary for boundaries"
        );
        assert!(quarters < 4, "phase must be in quarter turns 0..4");
        self.add_node(kind, quarters)
    }

    fn add_node(&mut self, kind: SpiderKind, quarters: u8) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            kind,
            quarters,
            deleted: false,
        });
        id
    }

    /// Adds a plain edge.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> EdgeId {
        self.add_edge_inner(a, b, false)
    }

    /// Adds a Hadamard edge.
    pub fn add_h_edge(&mut self, a: NodeId, b: NodeId) -> EdgeId {
        self.add_edge_inner(a, b, true)
    }

    fn add_edge_inner(&mut self, a: NodeId, b: NodeId, hadamard: bool) -> EdgeId {
        assert!(
            a.0 < self.nodes.len() && b.0 < self.nodes.len(),
            "edge endpoints must exist"
        );
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge {
            a,
            b,
            hadamard,
            deleted: false,
        });
        id
    }

    /// The kind of a node.
    pub fn kind(&self, n: NodeId) -> SpiderKind {
        self.nodes[n.0].kind
    }

    /// The phase of a node, in quarter turns.
    pub fn phase_quarters(&self, n: NodeId) -> u8 {
        self.nodes[n.0].quarters
    }

    /// Live boundary nodes in insertion order.
    pub fn boundaries(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .map(NodeId)
            .filter(|&n| !self.nodes[n.0].deleted && self.nodes[n.0].kind == SpiderKind::Boundary)
            .collect()
    }

    /// Live edges incident to `n` (self-loops appear twice).
    pub fn incident_edges(&self, n: NodeId) -> Vec<EdgeId> {
        let mut out = Vec::new();
        for (i, e) in self.edges.iter().enumerate() {
            if e.deleted {
                continue;
            }
            if e.a == n {
                out.push(EdgeId(i));
            }
            if e.b == n {
                out.push(EdgeId(i));
            }
        }
        out
    }

    /// Degree of `n` (self-loops count twice).
    pub fn degree(&self, n: NodeId) -> usize {
        self.incident_edges(n).len()
    }

    /// The endpoints and Hadamard flag of an edge.
    pub fn edge(&self, e: EdgeId) -> (NodeId, NodeId, bool) {
        let edge = &self.edges[e.0];
        (edge.a, edge.b, edge.hadamard)
    }

    /// Number of live nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| !n.deleted).count()
    }

    /// Number of live edges.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().filter(|e| !e.deleted).count()
    }

    /// Live non-boundary spiders.
    pub fn spiders(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .map(NodeId)
            .filter(|&n| !self.nodes[n.0].deleted && self.nodes[n.0].kind != SpiderKind::Boundary)
            .collect()
    }

    pub(crate) fn is_deleted(&self, n: NodeId) -> bool {
        self.nodes[n.0].deleted
    }
}

impl fmt::Display for Diagram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "zx diagram: {} nodes, {} edges",
            self.num_nodes(),
            self.num_edges()
        )?;
        for (i, n) in self.nodes.iter().enumerate() {
            if n.deleted {
                continue;
            }
            let kind = match n.kind {
                SpiderKind::Z => "Z",
                SpiderKind::X => "X",
                SpiderKind::Boundary => "∂",
            };
            writeln!(f, "  n{i}: {kind}({}π/2)", n.quarters)?;
        }
        for e in &self.edges {
            if e.deleted {
                continue;
            }
            let h = if e.hadamard { " [H]" } else { "" };
            writeln!(f, "  n{} — n{}{h}", e.a.0, e.b.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut d = Diagram::new();
        let b = d.add_boundary();
        let s = d.add_spider(SpiderKind::X, 2);
        let e = d.add_edge(b, s);
        assert_eq!(d.kind(s), SpiderKind::X);
        assert_eq!(d.phase_quarters(s), 2);
        assert_eq!(d.degree(s), 1);
        assert_eq!(d.edge(e), (b, s, false));
        assert_eq!(d.boundaries(), vec![b]);
        assert_eq!(d.spiders(), vec![s]);
    }

    #[test]
    fn h_edge_flag() {
        let mut d = Diagram::new();
        let a = d.add_boundary();
        let b = d.add_boundary();
        let e = d.add_h_edge(a, b);
        assert!(d.edge(e).2);
    }

    #[test]
    fn self_loop_counts_twice() {
        let mut d = Diagram::new();
        let s = d.add_spider(SpiderKind::Z, 0);
        d.add_edge(s, s);
        assert_eq!(d.degree(s), 2);
    }

    #[test]
    #[should_panic(expected = "phase must be")]
    fn rejects_bad_phase() {
        Diagram::new().add_spider(SpiderKind::Z, 4);
    }

    #[test]
    fn display_lists_everything() {
        let mut d = Diagram::new();
        let b = d.add_boundary();
        let s = d.add_spider(SpiderKind::Z, 1);
        d.add_h_edge(b, s);
        let text = d.to_string();
        assert!(text.contains("∂"));
        assert!(text.contains("[H]"));
    }
}
