//! Stabilizer-flow derivation for ZX diagrams (the Stim ZX substitute).
//!
//! Every spider becomes a GHZ-like stabilizer-state gadget with one
//! qubit per leg; every internal edge contracts two legs by a forced
//! Bell measurement (with a Hadamard on one side for H-edges). What
//! remains on the open (boundary) legs is the diagram's Choi state; its
//! stabilizer group, reduced to the open legs, is the diagram's set of
//! stabilizer flows. Flows are reported **up to sign** (the paper
//! handles signs with off-chip Pauli-frame fixes).

use crate::diagram::{Diagram, SpiderKind};
use gf2::BitMat;
use pauli::{PauliString, Phase};
use std::collections::HashMap;
use std::fmt;
use tableau::Tableau;

/// Error cases of flow derivation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ZxError {
    /// A boundary node must have exactly one edge.
    BoundaryDegree(usize),
    /// A spider has no legs (a scalar factor we do not track).
    DegreeZeroSpider(usize),
}

impl fmt::Display for ZxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZxError::BoundaryDegree(n) => write!(f, "boundary node {n} must have degree 1"),
            ZxError::DegreeZeroSpider(n) => write!(f, "spider {n} has no legs"),
        }
    }
}

impl std::error::Error for ZxError {}

/// The stabilizer flows of a diagram: a group of Pauli strings over the
/// boundary legs, in boundary insertion order.
#[derive(Clone, Debug)]
pub struct FlowGroup {
    n: usize,
    gens: Vec<PauliString>,
    /// Number of edge contractions whose forced `+1` outcome was
    /// deterministically `-1` (a global sign the flows cannot see).
    sign_obstructions: usize,
}

impl FlowGroup {
    /// Number of boundary legs.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The generators, with the signs the contraction produced.
    pub fn generators(&self) -> &[PauliString] {
        &self.gens
    }

    /// Number of independent generators.
    pub fn rank(&self) -> usize {
        self.gens.len()
    }

    /// Count of sign obstructions hit during contraction.
    pub fn sign_obstructions(&self) -> usize {
        self.sign_obstructions
    }

    /// Whether `p` (ignoring its sign) is a product of the generators
    /// (ignoring theirs).
    ///
    /// # Panics
    ///
    /// Panics if `p` has the wrong length.
    pub fn contains_letters(&self, p: &PauliString) -> bool {
        assert_eq!(p.len(), self.n, "flow length mismatch");
        let mut m = BitMat::zeros(0, 2 * self.n);
        for g in &self.gens {
            m.push_row(symplectic_row(g));
        }
        m.row_space_contains(&symplectic_row(p))
    }

    /// Checks a whole specification's stabilizers; returns the indices
    /// of the ones **not** realized by the diagram.
    pub fn missing_letters(&self, stabilizers: &[PauliString]) -> Vec<usize> {
        stabilizers
            .iter()
            .enumerate()
            .filter(|(_, s)| !self.contains_letters(s))
            .map(|(i, _)| i)
            .collect()
    }
}

fn symplectic_row(p: &PauliString) -> gf2::BitVec {
    let n = p.len();
    let mut v = gf2::BitVec::zeros(2 * n);
    for q in p.xs().iter_ones() {
        v.set(q, true);
    }
    for q in p.zs().iter_ones() {
        v.set(n + q, true);
    }
    v
}

impl Diagram {
    /// Derives the stabilizer flows of the diagram.
    ///
    /// # Errors
    ///
    /// Returns [`ZxError`] if a boundary has degree ≠ 1 or a spider has
    /// no legs.
    pub fn stabilizer_flows(&self) -> Result<FlowGroup, ZxError> {
        // Assign one qubit per spider leg (one per edge end). A
        // boundary's unique leg shares the qubit of the spider leg it
        // connects to (or a fresh Bell half for boundary-boundary wires).
        let mut next_qubit = 0usize;
        let mut node_legs: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut edge_legs: HashMap<usize, Vec<usize>> = HashMap::new();
        for n in self.spiders() {
            let legs = self.incident_edges(n);
            if legs.is_empty() {
                return Err(ZxError::DegreeZeroSpider(n.0));
            }
            for e in &legs {
                edge_legs.entry(e.0).or_default().push(next_qubit);
                node_legs.entry(n.0).or_default().push(next_qubit);
                next_qubit += 1;
            }
        }
        for b in self.boundaries() {
            if self.degree(b) != 1 {
                return Err(ZxError::BoundaryDegree(b.0));
            }
        }
        // Boundary-boundary edges need a Bell pair (two fresh qubits).
        let mut extra_bells: Vec<(usize, usize)> = Vec::new();
        let mut boundary_qubit: HashMap<usize, usize> = HashMap::new();
        for (ei, e) in self.edges.iter().enumerate() {
            if e.deleted {
                continue;
            }
            let a_b = self.nodes[e.a.0].kind == SpiderKind::Boundary;
            let b_b = self.nodes[e.b.0].kind == SpiderKind::Boundary;
            if a_b && b_b {
                let (qa, qb) = (next_qubit, next_qubit + 1);
                next_qubit += 2;
                extra_bells.push((qa, qb));
                boundary_qubit.insert(e.a.0, qa);
                boundary_qubit.insert(e.b.0, qb);
            } else if a_b {
                boundary_qubit.insert(e.a.0, edge_legs[&ei][0]);
            } else if b_b {
                boundary_qubit.insert(e.b.0, edge_legs[&ei][0]);
            }
        }

        let mut t = Tableau::new(next_qubit);
        // Prepare spider gadgets.
        for n in self.spiders() {
            let legs = &node_legs[&n.0];
            let q0 = legs[0];
            t.h(q0);
            for &q in &legs[1..] {
                t.cx(q0, q);
            }
            for _ in 0..self.phase_quarters(n) {
                t.s(q0);
            }
            if self.kind(n) == SpiderKind::X {
                for &q in legs {
                    t.h(q);
                }
            }
        }
        for &(qa, qb) in &extra_bells {
            t.h(qa);
            t.cx(qa, qb);
        }
        // Contract internal (spider-spider) edges with Bell projections.
        let mut sign_obstructions = 0usize;
        let mut h_pending: Vec<usize> = Vec::new();
        for (ei, e) in self.edges.iter().enumerate() {
            if e.deleted {
                continue;
            }
            let a_b = self.nodes[e.a.0].kind == SpiderKind::Boundary;
            let b_b = self.nodes[e.b.0].kind == SpiderKind::Boundary;
            if a_b || b_b {
                // H on a boundary edge applies to the open qubit at the end.
                if e.hadamard {
                    let bnode = if a_b { e.a.0 } else { e.b.0 };
                    h_pending.push(boundary_qubit[&bnode]);
                }
                continue;
            }
            let legs = &edge_legs[&ei];
            debug_assert_eq!(legs.len(), 2, "internal edge has two legs");
            let (qa, qb) = (legs[0], legs[1]);
            if e.hadamard {
                t.h(qb);
            }
            for obs in [
                pair_obs(next_qubit, qa, qb, pauli::Pauli::X),
                pair_obs(next_qubit, qa, qb, pauli::Pauli::Z),
            ] {
                let m = t.measure_pauli(&obs, Some(false));
                if m.deterministic && m.value {
                    sign_obstructions += 1;
                }
            }
        }
        for q in h_pending {
            t.h(q);
        }

        // Read off the Choi-state stabilizers on the open legs.
        let open: Vec<usize> = self
            .boundaries()
            .iter()
            .map(|b| boundary_qubit[&b.0])
            .collect();
        let gens = t.stabilizers_on(&open);
        Ok(FlowGroup {
            n: open.len(),
            gens,
            sign_obstructions,
        })
    }
}

/// The two-qubit observable `P_a P_b` on `n` qubits.
fn pair_obs(n: usize, a: usize, b: usize, p: pauli::Pauli) -> PauliString {
    let mut s = PauliString::identity(n).with_phase(Phase::ONE);
    s.set(a, p);
    s.set(b, p);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagram::{NodeId, SpiderKind};

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    /// Identity wire through one spider.
    fn wire(kind: SpiderKind) -> FlowGroup {
        let mut d = Diagram::new();
        let a = d.add_boundary();
        let b = d.add_boundary();
        let s = d.add_spider(kind, 0);
        d.add_edge(a, s);
        d.add_edge(s, b);
        d.stabilizer_flows().unwrap()
    }

    #[test]
    fn identity_wire_flows() {
        for kind in [SpiderKind::Z, SpiderKind::X] {
            let f = wire(kind);
            assert_eq!(f.rank(), 2);
            assert!(f.contains_letters(&ps("XX")));
            assert!(f.contains_letters(&ps("ZZ")));
            assert!(!f.contains_letters(&ps("XZ")));
        }
    }

    #[test]
    fn bare_wire_between_boundaries() {
        let mut d = Diagram::new();
        let a = d.add_boundary();
        let b = d.add_boundary();
        d.add_edge(a, b);
        let f = d.stabilizer_flows().unwrap();
        assert!(f.contains_letters(&ps("XX")));
        assert!(f.contains_letters(&ps("ZZ")));
    }

    #[test]
    fn hadamard_wire_swaps_x_and_z() {
        let mut d = Diagram::new();
        let a = d.add_boundary();
        let b = d.add_boundary();
        let s = d.add_spider(SpiderKind::Z, 0);
        d.add_edge(a, s);
        d.add_h_edge(s, b);
        let f = d.stabilizer_flows().unwrap();
        assert!(f.contains_letters(&ps("XZ")));
        assert!(f.contains_letters(&ps("ZX")));
        assert!(!f.contains_letters(&ps("XX")));
    }

    #[test]
    fn z_spider_copies_z() {
        // One Z-spider with three boundary legs: GHZ-like flows.
        let mut d = Diagram::new();
        let bs: Vec<_> = (0..3).map(|_| d.add_boundary()).collect();
        let s = d.add_spider(SpiderKind::Z, 0);
        for &b in &bs {
            d.add_edge(b, s);
        }
        let f = d.stabilizer_flows().unwrap();
        assert_eq!(f.rank(), 3);
        assert!(f.contains_letters(&ps("ZZ.")));
        assert!(f.contains_letters(&ps(".ZZ")));
        assert!(f.contains_letters(&ps("XXX")));
        assert!(!f.contains_letters(&ps("XX.")));
    }

    #[test]
    fn x_spider_copies_x() {
        let mut d = Diagram::new();
        let bs: Vec<_> = (0..3).map(|_| d.add_boundary()).collect();
        let s = d.add_spider(SpiderKind::X, 0);
        for &b in &bs {
            d.add_edge(b, s);
        }
        let f = d.stabilizer_flows().unwrap();
        assert!(f.contains_letters(&ps("XX.")));
        assert!(f.contains_letters(&ps("ZZZ")));
    }

    #[test]
    fn phase_spider_y_state() {
        // A 1-leg Z-spider with phase π/2 is |+i⟩: stabilized by Y.
        let mut d = Diagram::new();
        let b = d.add_boundary();
        let s = d.add_spider(SpiderKind::Z, 1);
        d.add_edge(b, s);
        let f = d.stabilizer_flows().unwrap();
        assert_eq!(f.rank(), 1);
        assert!(f.contains_letters(&ps("Y")));
    }

    #[test]
    fn zero_phase_state_spiders() {
        // 1-leg Z-spider phase 0 = |+⟩ (stab X); X-spider = |0⟩ (stab Z).
        let mut d = Diagram::new();
        let b = d.add_boundary();
        let s = d.add_spider(SpiderKind::Z, 0);
        d.add_edge(b, s);
        assert!(d.stabilizer_flows().unwrap().contains_letters(&ps("X")));

        let mut d = Diagram::new();
        let b2 = d.add_boundary();
        let s2 = d.add_spider(SpiderKind::X, 0);
        d.add_edge(b2, s2);
        assert!(d.stabilizer_flows().unwrap().contains_letters(&ps("Z")));
    }

    /// The CNOT of paper Fig. 5d.
    fn cnot_diagram() -> Diagram {
        let mut d = Diagram::new();
        let _cin = d.add_boundary();
        let _tin = d.add_boundary();
        let _cout = d.add_boundary();
        let _tout = d.add_boundary();
        let zc = d.add_spider(SpiderKind::Z, 0);
        let xt = d.add_spider(SpiderKind::X, 0);
        d.add_edge(NodeId(0), zc);
        d.add_edge(zc, NodeId(2));
        d.add_edge(NodeId(1), xt);
        d.add_edge(xt, NodeId(3));
        d.add_edge(zc, xt);
        d
    }

    #[test]
    fn cnot_flows_all_present() {
        let f = cnot_diagram().stabilizer_flows().unwrap();
        assert_eq!(f.rank(), 4);
        for s in ["Z.Z.", ".ZZZ", "X.XX", ".X.X"] {
            assert!(f.contains_letters(&ps(s)), "missing {s}");
        }
        // And a wrong flow is absent:
        assert!(!f.contains_letters(&ps("Z..Z")));
        assert_eq!(f.missing_letters(&[ps("Z.Z."), ps("Z..Z")]), vec![1]);
    }

    #[test]
    fn boundary_degree_checked() {
        let mut d = Diagram::new();
        let _ = d.add_boundary();
        assert_eq!(
            d.stabilizer_flows().unwrap_err(),
            ZxError::BoundaryDegree(0)
        );
    }

    #[test]
    fn degree_zero_spider_rejected() {
        let mut d = Diagram::new();
        d.add_spider(SpiderKind::Z, 0);
        assert!(matches!(
            d.stabilizer_flows(),
            Err(ZxError::DegreeZeroSpider(_))
        ));
    }

    #[test]
    fn no_sign_obstructions_for_plain_diagrams() {
        let f = cnot_diagram().stabilizer_flows().unwrap();
        assert_eq!(f.sign_obstructions(), 0);
    }
}
