//! ZX-calculus diagrams and stabilizer-flow derivation.
//!
//! This crate substitutes the paper's use of *Stim ZX* (contribution 4,
//! verification): it represents ZX diagrams with Clifford phases
//! (multiples of π/2), derives the stabilizer flows a diagram implements
//! by simulating spider gadgets on a stabilizer tableau and contracting
//! edges with forced Bell measurements, and checks a LaS specification's
//! stabilizers against the derived flow group (up to sign — the paper
//! tracks signs off-chip via Pauli frame corrections).
//!
//! It also ships a few textbook rewrite rules (spider fusion, identity
//! removal) used in tests to confirm that rewriting preserves flows.
//!
//! # Examples
//!
//! ```
//! use zx::{Diagram, SpiderKind};
//!
//! // The CNOT as a ZX diagram: Z-spider on the control wire, X-spider
//! // on the target wire, connected by an internal edge (paper Fig. 5d).
//! let mut d = Diagram::new();
//! let cin = d.add_boundary();
//! let tin = d.add_boundary();
//! let cout = d.add_boundary();
//! let tout = d.add_boundary();
//! let zc = d.add_spider(SpiderKind::Z, 0);
//! let xt = d.add_spider(SpiderKind::X, 0);
//! d.add_edge(cin, zc);
//! d.add_edge(zc, cout);
//! d.add_edge(tin, xt);
//! d.add_edge(xt, tout);
//! d.add_edge(zc, xt);
//!
//! let flows = d.stabilizer_flows().unwrap();
//! // ports in order (cin, tin, cout, tout): IZ -> ZZ is a CNOT flow
//! assert!(flows.contains_letters(&".ZZZ".parse().unwrap()));
//! ```

#![forbid(unsafe_code)]

mod diagram;
mod flows;
mod rewrite;

pub use diagram::{Diagram, EdgeId, NodeId, SpiderKind};
pub use flows::{FlowGroup, ZxError};
