//! Basic ZX rewrite rules.
//!
//! The paper uses rewrite rules (spider merge, Hadamard inversion, Hopf)
//! to *interpret* generated designs by hand (Fig. 15e). Here we provide
//! the two workhorse rules — same-kind spider fusion and identity
//! removal — mainly so tests can confirm that rewriting preserves the
//! derived stabilizer flows, which is the whole point of the calculus.

use crate::diagram::{Diagram, NodeId, SpiderKind};

impl Diagram {
    /// Fuses two same-kind spiders joined by a plain edge: phases add,
    /// the edge disappears, all other edges of `b` move to `a`.
    ///
    /// Returns `false` (no change) unless `a` and `b` are distinct live
    /// same-kind non-boundary spiders joined by at least one plain edge.
    pub fn fuse(&mut self, a: NodeId, b: NodeId) -> bool {
        if a == b || self.is_deleted(a) || self.is_deleted(b) {
            return false;
        }
        if self.kind(a) == SpiderKind::Boundary || self.kind(a) != self.kind(b) {
            return false;
        }
        let Some(joining) = self.edges.iter().position(|e| {
            !e.deleted && !e.hadamard && ((e.a == a && e.b == b) || (e.a == b && e.b == a))
        }) else {
            return false;
        };
        self.edges[joining].deleted = true;
        for e in &mut self.edges {
            if e.deleted {
                continue;
            }
            if e.a == b {
                e.a = a;
            }
            if e.b == b {
                e.b = a;
            }
        }
        self.nodes[a.0].quarters = (self.nodes[a.0].quarters + self.nodes[b.0].quarters) % 4;
        self.nodes[b.0].deleted = true;
        // A plain self-loop on a spider is trivial; remove them.
        for e in &mut self.edges {
            if !e.deleted && e.a == e.b && !e.hadamard {
                e.deleted = true;
            }
        }
        true
    }

    /// Removes a degree-2 phase-0 spider, splicing its two edges into
    /// one (Hadamard flags combine by XOR).
    ///
    /// Returns `false` if `n` is not a removable identity.
    pub fn remove_identity(&mut self, n: NodeId) -> bool {
        if self.is_deleted(n) || self.kind(n) == SpiderKind::Boundary || self.phase_quarters(n) != 0
        {
            return false;
        }
        let inc = self.incident_edges(n);
        if inc.len() != 2 || inc[0] == inc[1] {
            return false; // degree ≠ 2 or a self-loop
        }
        let (e1, e2) = (inc[0], inc[1]);
        let other = |eid: crate::diagram::EdgeId| {
            let e = &self.edges[eid.0];
            if e.a == n {
                e.b
            } else {
                e.a
            }
        };
        let (u, v) = (other(e1), other(e2));
        let h = self.edges[e1.0].hadamard ^ self.edges[e2.0].hadamard;
        self.edges[e1.0].deleted = true;
        self.edges[e2.0].deleted = true;
        self.nodes[n.0].deleted = true;
        if h {
            self.add_h_edge(u, v);
        } else {
            self.add_edge(u, v);
        }
        true
    }

    /// Repeatedly fuses plain-connected same-kind spiders and removes
    /// identities until fixpoint. Returns the number of rewrites.
    pub fn simplify(&mut self) -> usize {
        let mut count = 0;
        loop {
            let mut progress = false;
            // Fusion pass.
            let pairs: Vec<(NodeId, NodeId)> = self
                .edges
                .iter()
                .filter(|e| !e.deleted && !e.hadamard && e.a != e.b)
                .map(|e| (e.a, e.b))
                .collect();
            for (a, b) in pairs {
                if self.fuse(a, b) {
                    count += 1;
                    progress = true;
                }
            }
            // Identity pass.
            for n in self.spiders() {
                if self.degree(n) == 2 && self.phase_quarters(n) == 0 {
                    let inc = self.incident_edges(n);
                    if inc[0] != inc[1] && self.remove_identity(n) {
                        count += 1;
                        progress = true;
                    }
                }
            }
            if !progress {
                return count;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pauli::PauliString;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    fn chain(kinds: &[(SpiderKind, u8)], h_edges: &[bool]) -> Diagram {
        assert_eq!(h_edges.len(), kinds.len() + 1);
        let mut d = Diagram::new();
        let b_in = d.add_boundary();
        let b_out = d.add_boundary();
        let mut prev = b_in;
        for (i, &(k, q)) in kinds.iter().enumerate() {
            let s = d.add_spider(k, q);
            if h_edges[i] {
                d.add_h_edge(prev, s);
            } else {
                d.add_edge(prev, s);
            }
            prev = s;
        }
        if *h_edges.last().unwrap() {
            d.add_h_edge(prev, b_out);
        } else {
            d.add_edge(prev, b_out);
        }
        d
    }

    #[test]
    fn fusion_preserves_flows() {
        // Z(π/2) — Z(π/2) chain = S·S = Z: flows X→-Y·... letters: X↦Y?
        // S²=Z maps X→X with sign; letters XX and ZZ.
        let mut d = chain(
            &[(SpiderKind::Z, 1), (SpiderKind::Z, 1)],
            &[false, false, false],
        );
        let before = d.stabilizer_flows().unwrap();
        let spiders = d.spiders();
        assert!(d.fuse(spiders[0], spiders[1]));
        let after = d.stabilizer_flows().unwrap();
        for g in before.generators() {
            assert!(after.contains_letters(g));
        }
        assert_eq!(d.phase_quarters(spiders[0]), 2);
    }

    #[test]
    fn identity_removal_preserves_flows() {
        let mut d = chain(
            &[(SpiderKind::Z, 0), (SpiderKind::X, 1)],
            &[false, false, false],
        );
        let before = d.stabilizer_flows().unwrap();
        let id_spider = d.spiders()[0];
        assert!(d.remove_identity(id_spider));
        let after = d.stabilizer_flows().unwrap();
        for g in before.generators() {
            assert!(after.contains_letters(g), "lost {g}");
        }
    }

    #[test]
    fn identity_removal_combines_hadamards() {
        // ∂ —H— Z(0) —H— ∂  reduces to a plain wire.
        let mut d = chain(&[(SpiderKind::Z, 0)], &[true, true]);
        let s = d.spiders()[0];
        assert!(d.remove_identity(s));
        let f = d.stabilizer_flows().unwrap();
        assert!(f.contains_letters(&ps("XX")));
        assert!(f.contains_letters(&ps("ZZ")));
    }

    #[test]
    fn fuse_rejects_mismatched_kinds() {
        let mut d = chain(
            &[(SpiderKind::Z, 0), (SpiderKind::X, 0)],
            &[false, false, false],
        );
        let s = d.spiders();
        assert!(!d.fuse(s[0], s[1]));
    }

    #[test]
    fn fuse_rejects_hadamard_edge() {
        let mut d = chain(
            &[(SpiderKind::Z, 0), (SpiderKind::Z, 0)],
            &[false, true, false],
        );
        let s = d.spiders();
        assert!(!d.fuse(s[0], s[1]));
    }

    #[test]
    fn simplify_runs_to_fixpoint_and_preserves_flows() {
        let mut d = chain(
            &[
                (SpiderKind::Z, 0),
                (SpiderKind::Z, 1),
                (SpiderKind::Z, 0),
                (SpiderKind::X, 0),
                (SpiderKind::X, 2),
            ],
            &[false, false, false, false, false, false],
        );
        let before = d.stabilizer_flows().unwrap();
        let n = d.simplify();
        assert!(n >= 3, "expected several rewrites, got {n}");
        let after = d.stabilizer_flows().unwrap();
        for g in before.generators() {
            assert!(after.contains_letters(g), "lost {g}");
        }
        for g in after.generators() {
            assert!(before.contains_letters(g), "gained {g}");
        }
    }
}
