//! Graph-state generation on the 2-lane architecture (paper Sec. V-B):
//! pick a graph, find the optimal-depth LaS with the descending/
//! ascending depth search, and compare against the baseline compiler.
//!
//! Run with: `cargo run --release --example graph_state [n]`

use lassynth::synth::optimize::find_min_depth;
use lassynth::synth::SynthOptions;
use lassynth::workloads::baseline::compile_graph_state;
use lassynth::workloads::graphs::Graph;
use lassynth::workloads::specs::graph_state_spec;
use lassynth::{lasre, viz};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let g = Graph::cycle(n);
    println!("workload: {n}-qubit ring graph state");
    for s in g.stabilizers() {
        println!("  stabilizer {s}");
    }

    // Baseline: MIS initialization + interval-scheduled parity
    // measurements on 2-tile patches (footprint 4n).
    let base = compile_graph_state(&g);
    println!(
        "\nbaseline: footprint {} × depth {} = volume {} ({} parity measurements in {} layers)",
        base.footprint,
        base.depth,
        base.volume,
        base.measured.len(),
        base.layers.len()
    );

    // LaSsynth: footprint 2n, optimal depth by SAT search.
    let spec = graph_state_spec(&g, 3);
    let search = find_min_depth(&spec, 1, 6, 3, &SynthOptions::default())?;
    for probe in &search.probes {
        println!(
            "probe max_k = {}: {} in {:?}",
            probe.max_k,
            match probe.sat {
                Some(true) => "SAT",
                Some(false) => "UNSAT",
                None => "timeout",
            },
            probe.time
        );
    }
    let design = search.best.ok_or("no satisfiable depth in range")?;
    let depth = design.spec().max_k;
    let volume = 2 * n * depth;
    println!(
        "\nLaSsynth: footprint {} × depth {depth} = volume {volume}",
        2 * n
    );
    println!(
        "reduction vs baseline: {:.0}%",
        100.0 * (base.volume as f64 - volume as f64) / base.volume as f64
    );
    println!("\ntime slices:\n{}", lasre::slices::render(&design));

    std::fs::create_dir_all("target/experiments")?;
    let scene = viz::Scene::from_design(&design, viz::SceneOptions::default());
    std::fs::write(
        "target/experiments/graph_state.gltf",
        viz::gltf::to_gltf(&scene),
    )?;
    println!("wrote target/experiments/graph_state.gltf");
    Ok(())
}
