//! The CCZ-consuming majority gate (paper Fig. 15): derive its nine
//! stabilizer flows from the Clifford gadget, synthesize it at the
//! paper's 3×3×5 volume (40% below the published human design), verify,
//! and export the 3D model.
//!
//! Run with: `cargo run --release --example majority_gate`

use lassynth::synth::{SynthResult, Synthesizer};
use lassynth::workloads::specs::{baselines, majority_flows, majority_gate_spec};
use lassynth::{lasre, viz};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("derived stabilizer flows of the majority gadget");
    println!("(ports: a t c | a' t' c' | ccz_a ccz_t ccz_c):");
    for f in majority_flows() {
        println!("  {f}");
    }

    let spec = majority_gate_spec(3);
    let mut synth = Synthesizer::new(spec)?;
    println!(
        "\nencoding: V·nstab = {}, {} vars, {} clauses",
        synth.stats().v_nstab,
        synth.stats().num_vars,
        synth.stats().num_clauses
    );
    match synth.run()? {
        SynthResult::Sat(design) => {
            println!(
                "SAT in {:?}: 3×3×5 = {} spacetime volume (baseline: {}, −40%)",
                synth.last_solve_time().unwrap_or_default(),
                baselines::PAPER_MAJORITY_VOLUME,
                baselines::MAJORITY_VOLUME
            );
            println!("verified through ZX flows: {}", design.verified());
            println!("\ntime slices:\n{}", lasre::slices::render(&design));
            std::fs::create_dir_all("target/experiments")?;
            let scene = viz::Scene::from_design(&design, viz::SceneOptions::default());
            std::fs::write(
                "target/experiments/majority_gate.gltf",
                viz::gltf::to_gltf(&scene),
            )?;
            println!("wrote target/experiments/majority_gate.gltf");
        }
        other => println!("synthesis did not finish: {other:?}"),
    }
    Ok(())
}
