//! Quickstart: synthesize a CNOT lattice-surgery subroutine from a JSON
//! specification, inspect it, and verify it through ZX flows.
//!
//! Run with: `cargo run --release --example quickstart`

use lassynth::synth::{SynthResult, Synthesizer};
use lassynth::{lasre, viz, zx};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Load the specification (paper Fig. 2b format).
    let spec_json = include_str!("specs/cnot.json");
    let spec: lasre::LasSpec = serde_json_from(spec_json)?;
    println!(
        "spec: {} ({}×{}×{}, {} ports, {} stabilizers)",
        spec.name,
        spec.max_i,
        spec.max_j,
        spec.max_k,
        spec.ports.len(),
        spec.nstab()
    );
    for s in &spec.stabilizers {
        println!("  flow {s}");
    }

    // 2. Encode and solve.
    let mut synth = Synthesizer::new(spec)?;
    println!(
        "\nencoded: {} vars, {} clauses (V·nstab = {})",
        synth.stats().num_vars,
        synth.stats().num_clauses,
        synth.stats().v_nstab
    );
    let design = match synth.run()? {
        SynthResult::Sat(d) => *d,
        other => {
            println!("no design: {other:?}");
            return Ok(());
        }
    };

    // 3. Inspect: ASCII time slices (paper Fig. 5a style).
    println!(
        "\nsolved in {:?}; time slices:\n{}",
        synth.last_solve_time().unwrap_or_default(),
        lasre::slices::render(&design)
    );

    // 4. The design was verified by deriving its ZX diagram's
    //    stabilizer flows (paper's Stim ZX workflow) — do it again by
    //    hand to show the API.
    let diagram = lassynth::synth::verify::extract_zx(&design)?;
    let flows = diagram.stabilizer_flows()?;
    println!(
        "ZX diagram: {} spiders, {} edges; {} independent flows",
        diagram.spiders().len(),
        diagram.num_edges(),
        flows.rank()
    );
    let _ = zx::SpiderKind::Z; // (see the `zx` crate for diagram APIs)

    // 5. Export a 3D model (paper contribution 5).
    let scene = viz::Scene::from_design(&design, viz::SceneOptions::default());
    std::fs::create_dir_all("target/experiments")?;
    std::fs::write(
        "target/experiments/quickstart_cnot.gltf",
        viz::gltf::to_gltf(&scene),
    )?;
    println!("wrote target/experiments/quickstart_cnot.gltf");
    Ok(())
}

fn serde_json_from(s: &str) -> Result<lasre::LasSpec, Box<dyn std::error::Error>> {
    Ok(serde_json::from_str(s)?)
}
