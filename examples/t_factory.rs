//! The 15-to-1 T-state distillation factory (paper Figs. 16–18):
//! print the [[15,1,3]] flow table, encode both factory flavors, and
//! optionally attempt the full SAT synthesis (pass `--solve`).
//!
//! Run with: `cargo run --release --example t_factory [--solve]`

use lassynth::synth::{SynthOptions, SynthResult, Synthesizer};
use lassynth::workloads::specs::{
    baselines, t_factory_flows, t_factory_nodelay_spec, t_factory_spec,
};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let solve = std::env::args().any(|a| a == "--solve");
    println!("[[15,1,3]] stabilizer flows (ports 0..E = T injections, F = output):");
    for f in t_factory_flows() {
        println!("  {f}");
    }

    for (label, spec, paper_volume, baseline) in [
        (
            "no-delay factory (Fig. 18)",
            t_factory_nodelay_spec(11),
            baselines::PAPER_T_FACTORY_NODELAY_VOLUME,
            baselines::T_FACTORY_NODELAY_VOLUME,
        ),
        (
            "injection-aware factory (Fig. 17)",
            t_factory_spec(4),
            baselines::PAPER_T_FACTORY_VOLUME,
            baselines::T_FACTORY_VOLUME,
        ),
    ] {
        println!("\n== {label} ==");
        let synth = Synthesizer::new(spec)?;
        println!(
            "encoding: V·nstab = {}, {} vars, {} clauses",
            synth.stats().v_nstab,
            synth.stats().num_vars,
            synth.stats().num_clauses
        );
        println!("paper: volume {paper_volume} vs baseline {baseline}");
        if solve {
            let mut synth = synth
                .with_options(SynthOptions::default().with_time_limit(Duration::from_secs(600)));
            match synth.run()? {
                SynthResult::Sat(d) => println!(
                    "SAT in {:?}; verified = {}",
                    synth.last_solve_time().unwrap_or_default(),
                    d.verified()
                ),
                SynthResult::Unsat => println!("UNSAT (port layout too tight)"),
                SynthResult::Unknown => println!("timed out (the paper's Kissat needed minutes)"),
            }
        }
    }
    if !solve {
        println!("\n(pass --solve to attempt full synthesis)");
    }
    Ok(())
}
