//! Visualization tour (paper contribution 5): synthesize a CNOT, then
//! export glTF and OBJ models, including a correlation-surface overlay
//! like paper Fig. 10.
//!
//! Run with: `cargo run --release --example visualize`

use lassynth::synth::Synthesizer;
use lassynth::{lasre, viz};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = lasre::fixtures::cnot_spec();
    let design = Synthesizer::new(spec)?.run()?.expect_sat();
    std::fs::create_dir_all("target/experiments")?;

    // Plain structure.
    let scene = viz::Scene::from_design(&design, viz::SceneOptions::default());
    std::fs::write("target/experiments/cnot.gltf", viz::gltf::to_gltf(&scene))?;
    std::fs::write("target/experiments/cnot.obj", viz::obj::to_obj(&scene))?;

    // With the correlation surface of stabilizer 1 (IZ→ZZ) overlaid,
    // the view of paper Fig. 10.
    let overlay = viz::Scene::from_design(
        &design,
        viz::SceneOptions {
            correlation: Some(1),
            ..Default::default()
        },
    );
    std::fs::write(
        "target/experiments/cnot_surface.gltf",
        viz::gltf::to_gltf(&overlay),
    )?;

    println!(
        "wrote target/experiments/cnot.gltf ({} boxes)",
        scene.boxes().len()
    );
    println!("wrote target/experiments/cnot.obj");
    println!(
        "wrote target/experiments/cnot_surface.gltf ({} boxes incl. surface pieces)",
        overlay.boxes().len()
    );
    println!("\nopen them in any glTF viewer (Blender, three.js, vscode-gltf...)");
    Ok(())
}
