//! # LaSsynth — a SAT scalpel for lattice surgery (facade crate)
//!
//! Reproduction of *"A SAT Scalpel for Lattice Surgery: Representation and
//! Synthesis of Subroutines for Surface-Code Fault-Tolerant Quantum
//! Computing"* (ISCA 2024). This crate re-exports the whole workspace
//! under one roof; see the individual crates for details:
//!
//! * [`lasre`] — the LaS representation (specs, ports, pipe diagrams).
//! * [`synth`] — the synthesizer: SAT encoding, decoding, optimization.
//! * [`sat`] — the CDCL SAT solver substrate and CNF tooling.
//! * [`zx`] / [`tableau`] / [`pauli`] / [`gf2`] — verification substrates.
//! * [`workloads`] — graph states, majority gate, T-factory specs, baselines.
//! * [`viz`] — glTF/OBJ export of 3D pipe diagrams.
//!
//! # Quickstart
//!
//! Synthesize a CNOT lattice-surgery subroutine and verify it.
//! (`workloads::specs::cnot_spec` is a re-export of the canonical
//! [`lasre::fixtures::cnot_spec`]; both paths name the same fixture.)
//!
//! ```
//! use lassynth::workloads::specs::cnot_spec;
//! use lassynth::synth::{Synthesizer, SynthOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = cnot_spec();
//! let result = Synthesizer::new(spec)?.with_options(SynthOptions::default()).run()?;
//! let las = result.expect_sat();
//! assert!(las.verified());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use gf2;
pub use lasre;
pub use pauli;
pub use sat;
pub use synth;
pub use tableau;
pub use viz;
pub use workloads;
pub use zx;
